//! Facade crate re-exporting the PPM workspace.
pub use ppm_apps as apps;
pub use ppm_core as core;
pub use ppm_mps as mps;
pub use ppm_simnet as simnet;
