//! Application 1: Conjugate Gradient solver (paper §4.2, Figure 1).
//!
//! Solves `A·x = b` for the 27-point 3-D diffusion stencil of
//! [`crate::stencil27`], with `b` chosen so the exact solution is the ones
//! vector. Three implementations:
//!
//! * [`seq`] — sequential reference,
//! * [`ppm`] — the PPM program: the whole solver is one `ppm_do` with three
//!   global phases per iteration; the sparse mat-vec reads `p[j]` through
//!   fine-grained shared gets, which the runtime bundles,
//! * [`ppm_hier`] — the layered-parallelism variant (§3.3): only `p` is
//!   cluster-shared; `x`, `r`, `A·p` live in node-shared memory and take
//!   the cheaper physical-shared-memory path,
//! * [`mpi`] — the "highly-tuned MPI" baseline: precomputed halo
//!   send/receive lists, hand-bundled neighbour exchange, allreduce dot
//!   products, one rank per core.
//!
//! All three charge identical floating-point work, so simulated-time
//! differences come from the programming model (shared-access overhead vs
//! message costs), as in the paper.

pub mod mpi;
pub mod ppm;
pub mod ppm_hier;
pub mod seq;

use crate::stencil27::Stencil27;

/// CG run parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// The linear system.
    pub problem: Stencil27,
    /// Fixed iteration count (the paper times a fixed amount of work).
    pub iters: usize,
    /// PPM only: rows handled per virtual processor (the "degree of
    /// parallelism" knob of `PPM_do`).
    pub rows_per_vp: usize,
    /// Whether to gather the full solution vector (tests want it; the
    /// benchmark sweeps skip the cost).
    pub collect_x: bool,
    /// Optional convergence tolerance: stop as soon as
    /// `‖r‖² ≤ tol²·‖b‖²` (within the `iters` cap). Because the residual
    /// is shared state every virtual processor reads, the early exit is
    /// taken uniformly — phase sequences stay aligned across the cluster.
    pub tol: Option<f64>,
    /// PPM only: rows of the mat-vec handled per bulk read (0 = the whole
    /// VP slice at once, the historical behavior). With a tile budget set
    /// (`PpmConfig::with_tile_budget`), a nonzero chunk bounds both the
    /// transient CSR block and the `get_many` staging a VP holds live at
    /// any instant, which is what lets `fig1_cg --full` run 16.7M rows
    /// under a small residency budget. Results are bit-identical across
    /// chunk sizes (the read and accumulate order per row is unchanged);
    /// only wave structure — and hence simulated time — shifts.
    pub spmv_chunk: usize,
}

impl CgParams {
    /// Default parameters on a cubic grid.
    pub fn cube(g: usize, iters: usize) -> Self {
        CgParams {
            problem: Stencil27::cube(g),
            iters,
            rows_per_vp: 64,
            collect_x: true,
            tol: None,
            spmv_chunk: 0,
        }
    }

    /// Bound the mat-vec's per-bulk-read row chunk (0 disables chunking).
    pub fn with_spmv_chunk(mut self, rows: usize) -> Self {
        self.spmv_chunk = rows;
        self
    }

    /// Enable the relative-residual stopping test.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Drop the solution gather (benchmark sweeps).
    pub fn without_x(mut self) -> Self {
        self.collect_x = false;
        self
    }
}

/// Result of a CG run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// `‖r‖²` after the final iteration.
    pub rr: f64,
    /// Iterations actually executed (`< iters` only with a tolerance).
    pub iters_done: usize,
    /// Solution vector (tests) — per-version callers may drop it.
    pub x: Vec<f64>,
}

impl CgOutcome {
    /// Maximum absolute error against the exact ones solution.
    pub fn max_error_vs_ones(&self) -> f64 {
        self.x.iter().map(|&v| (v - 1.0).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_constructors() {
        let p = CgParams::cube(8, 10).without_x();
        assert_eq!(p.problem.n(), 512);
        assert_eq!(p.iters, 10);
        assert!(!p.collect_x);
    }
}
