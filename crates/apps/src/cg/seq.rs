//! Sequential CG reference.

use super::{CgOutcome, CgParams};
use crate::sparse::Csr;

/// Solve the stencil system sequentially with `params.iters` CG iterations.
pub fn solve(params: &CgParams) -> CgOutcome {
    let n = params.problem.n();
    let a: Csr = params.problem.csr_block(0..n);
    let b: Vec<f64> = (0..n).map(|i| params.problem.rhs_for_ones(i)).collect();

    let mut x = vec![0.0; n];
    let mut r = b;
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let stop_at = params.tol.map(|t| t * t * rr);
    let mut iters_done = 0;

    for _ in 0..params.iters {
        if let Some(limit) = stop_at {
            if rr <= limit {
                break;
            }
        }
        iters_done += 1;
        a.spmv(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    CgOutcome { rr, iters_done, x }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_ones() {
        let out = solve(&CgParams::cube(6, 25));
        assert!(out.rr < 1e-12, "residual {}", out.rr);
        assert!(out.max_error_vs_ones() < 1e-7);
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let short = solve(&CgParams::cube(6, 3)).rr;
        let long = solve(&CgParams::cube(6, 12)).rr;
        assert!(long < short);
    }
}
