//! Hierarchical PPM version of the CG solver — the paper's layered
//! parallelism (§3.3) put to work.
//!
//! Only the search direction `p` needs to be visible across nodes (the
//! sparse mat-vec reads remote entries of it); `x`, `r` and `A·p` are
//! touched exclusively by the rows' owner node. The plain PPM version
//! ([`super::ppm`]) keeps all four in cluster-wide shared arrays; this
//! variant declares the node-private three as `PPM_node_shared`, so their
//! accesses take the physical-shared-memory path — "using the node-level
//! can save overhead in global communication and synchronization" — while
//! the phase structure stays identical.

use std::sync::Arc;

use ppm_core::{AccumOp, NodeCtx};
use ppm_simnet::SimTime;

use super::{CgOutcome, CgParams};

const RR: usize = 0;
const PAP: usize = 1;
const RR_NEW: usize = 2;

/// Run hierarchical CG on the PPM runtime. Same contract as
/// [`super::ppm::solve`].
pub fn solve(node: &mut NodeCtx<'_>, params: &CgParams) -> (CgOutcome, SimTime) {
    assert!(
        params.tol.is_none(),
        "tolerance-based stopping is implemented in cg::ppm; this variant \
         demonstrates storage layering with a fixed iteration count"
    );
    let prob = params.problem;
    let n = prob.n();
    let iters = params.iters;

    // Cluster-level shared state: the mat-vec input and the reduction
    // scalars.
    let p = node.alloc_global::<f64>(n);
    let scal = node.alloc_global::<f64>(3);

    let range = node.local_range(&p);
    let lo = range.start;
    let nrows = range.len();

    // Node-level shared state: everything only this node's rows touch.
    let x = node.alloc_node::<f64>(nrows);
    let r = node.alloc_node::<f64>(nrows);
    let ap = node.alloc_node::<f64>(nrows);

    let a = Arc::new(prob.csr_block(range));
    let rpv = params.rows_per_vp.max(1);
    let k = nrows.div_ceil(rpv).max(1);

    node.ppm_do(k, move |vp| {
        let a = a.clone();
        async move {
            let vr = vp.node_rank();
            let rows = vr * rpv..((vr + 1) * rpv).min(nrows);

            // Initialization: r = p = b, rr = b·b.
            let (v, rs) = (vp.clone(), rows.clone());
            vp.global_phase(|ph| async move {
                let mut rr_part = 0.0;
                for li in rs {
                    let bi = prob.rhs_for_ones(lo + li);
                    ph.put_node(&r, li, bi);
                    ph.put(&p, lo + li, bi);
                    rr_part += bi * bi;
                    v.charge_flops(29);
                }
                ph.accumulate(&scal, RR, AccumOp::Add, rr_part);
            })
            .await;

            for _ in 0..iters {
                // Phase A: ap = A·p, pap = p·ap (bulk-read p, write the
                // node-shared ap).
                let (v, rs, am) = (vp.clone(), rows.clone(), a.clone());
                vp.global_phase(|ph| async move {
                    let span = am.row_ptr[rs.start]..am.row_ptr[rs.end];
                    let pv = ph
                        .get_many(&p, am.col_idx[span.clone()].iter().copied())
                        .await;
                    let mut pap_part = 0.0;
                    let mut at = 0;
                    for li in rs {
                        let (cols, vals) = am.row(li);
                        let mut acc = 0.0;
                        for &val in vals {
                            acc += val * pv[at];
                            at += 1;
                        }
                        ph.put_node(&ap, li, acc);
                        pap_part += ph.get(&p, lo + li).await * acc;
                        v.charge_flops(2 * cols.len() as u64 + 2);
                    }
                    ph.accumulate(&scal, PAP, AccumOp::Add, pap_part);
                })
                .await;

                // Phase B: the x/r updates touch only node memory.
                let (v, rs) = (vp.clone(), rows.clone());
                vp.global_phase(|ph| async move {
                    let s = ph.get_many(&scal, [RR, PAP]).await;
                    let alpha = s[0] / s[1];
                    let mut rr_part = 0.0;
                    for li in rs {
                        let xi = ph.get_node(&x, li);
                        let pi = ph.get(&p, lo + li).await;
                        let ri = ph.get_node(&r, li);
                        let api = ph.get_node(&ap, li);
                        ph.put_node(&x, li, xi + alpha * pi);
                        let rn = ri - alpha * api;
                        ph.put_node(&r, li, rn);
                        rr_part += rn * rn;
                        v.charge_flops(6);
                    }
                    ph.accumulate(&scal, RR_NEW, AccumOp::Add, rr_part);
                })
                .await;

                // Phase C: p = r + β·p.
                let (v, rs) = (vp.clone(), rows.clone());
                vp.global_phase(|ph| async move {
                    let s = ph.get_many(&scal, [RR_NEW, RR]).await;
                    let (rr_new, beta) = (s[0], s[0] / s[1]);
                    for li in rs {
                        let pi = ph.get(&p, lo + li).await;
                        let ri = ph.get_node(&r, li);
                        ph.put(&p, lo + li, ri + beta * pi);
                        v.charge_flops(2);
                    }
                    if v.global_rank() == 0 {
                        ph.put(&scal, RR, rr_new);
                    }
                })
                .await;
            }
        }
    });

    let t_solve = node.now();
    let rr = node.gather_global(&scal)[RR];
    let xv = if params.collect_x {
        // x is node-shared: gather the per-node slices in node order.
        let local = node.with_node(&x, |s| s.to_vec());
        node.allgatherv_nodes(local).into_iter().flatten().collect()
    } else {
        Vec::new()
    };
    (
        CgOutcome {
            rr,
            iters_done: iters,
            x: xv,
        },
        t_solve,
    )
}
