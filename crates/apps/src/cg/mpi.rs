//! MPI version of the CG solver — the "highly-tuned implementation by a top
//! MPI programmer" the paper compares against (§4.5).
//!
//! One rank per core, block row distribution. All the machinery PPM hides
//! is explicit here, and is what makes the MPI program big (Table 1):
//!
//! * discovery of the external (ghost) columns each rank needs,
//! * negotiation of symmetric send/receive lists at setup,
//! * per-iteration hand-packing of halo values into bundled messages,
//! * a ghost-value table to redirect matrix columns,
//! * explicit allreduce synchronization for the dot products.

use std::collections::HashMap;

use ppm_mps::Comm;
use ppm_simnet::SimTime;

use super::{CgOutcome, CgParams};
use crate::sparse::Csr;

/// Row range owned by `rank` out of `size` (block distribution, matching
/// the PPM runtime's block layout so the two versions partition alike).
fn row_block(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    let bs = n.div_ceil(size).max(1);
    let lo = (rank * bs).min(n);
    let hi = ((rank + 1) * bs).min(n);
    lo..hi
}

fn owner_of(col: usize, n: usize, size: usize) -> usize {
    let bs = n.div_ceil(size).max(1);
    (col / bs).min(size - 1)
}

/// Precomputed halo-exchange plan.
struct HaloPlan {
    /// For each peer rank: the *local* positions of my `p` entries to pack
    /// and ship there each iteration.
    send_lists: Vec<(usize, Vec<usize>)>,
    /// For each peer rank: how many values to expect and where each lands
    /// in the ghost table.
    recv_lists: Vec<(usize, Vec<usize>)>,
    /// Global column → ghost-table position.
    ghost_pos: HashMap<usize, usize>,
    /// Ghost-table size.
    ghosts: usize,
}

/// Negotiate send/receive lists from the sparsity pattern (setup cost the
/// tuned implementation pays once).
fn build_halo_plan(comm: &mut Comm<'_>, a: &Csr, lo: usize, hi: usize, n: usize) -> HaloPlan {
    let size = comm.size();
    // 1. Every external column this rank's rows touch, deduplicated.
    let mut ext: Vec<usize> = a
        .col_idx
        .iter()
        .copied()
        .filter(|&c| c < lo || c >= hi)
        .collect();
    ext.sort_unstable();
    ext.dedup();

    let mut ghost_pos = HashMap::with_capacity(ext.len());
    for (pos, &c) in ext.iter().enumerate() {
        ghost_pos.insert(c, pos);
    }

    // 2. Group wanted columns by owner.
    let mut want_from: Vec<Vec<u64>> = (0..size).map(|_| Vec::new()).collect();
    for &c in &ext {
        want_from[owner_of(c, n, size)].push(c as u64);
    }

    // 3. Tell every owner what we want; learn what everyone wants from us.
    let wanted_by = comm.alltoallv(want_from.clone());

    let send_lists: Vec<(usize, Vec<usize>)> = wanted_by
        .into_iter()
        .enumerate()
        .filter(|(_, w)| !w.is_empty())
        .map(|(peer, w)| (peer, w.into_iter().map(|c| c as usize - lo).collect()))
        .collect();
    let recv_lists: Vec<(usize, Vec<usize>)> = want_from
        .iter()
        .enumerate()
        .filter(|(_, w)| !w.is_empty())
        .map(|(peer, w)| (peer, w.iter().map(|&c| ghost_pos[&(c as usize)]).collect()))
        .collect();

    HaloPlan {
        send_lists,
        recv_lists,
        ghost_pos,
        ghosts: ext.len(),
    }
}

/// One halo exchange: pack, ship, unpack (per-iteration communication).
fn exchange_halo(comm: &mut Comm<'_>, plan: &HaloPlan, p: &[f64], ghost: &mut [f64], tag: u64) {
    for (peer, positions) in &plan.send_lists {
        let packed: Vec<f64> = positions.iter().map(|&i| p[i]).collect();
        comm.charge_mem_ops(positions.len() as u64);
        comm.send(*peer, tag, packed);
    }
    for (peer, landings) in &plan.recv_lists {
        let packed: Vec<f64> = comm.recv(*peer, tag);
        assert_eq!(packed.len(), landings.len(), "halo size mismatch");
        for (&pos, v) in landings.iter().zip(packed) {
            ghost[pos] = v;
        }
        comm.charge_mem_ops(landings.len() as u64);
    }
}

/// Run CG on the MPI-like substrate. Call from inside a [`ppm_mps::run`]
/// closure. Returns the outcome plus the simulated instant the solve
/// finished.
pub fn solve(comm: &mut Comm<'_>, params: &CgParams) -> (CgOutcome, SimTime) {
    let prob = params.problem;
    let n = prob.n();
    let size = comm.size();
    let rank = comm.rank();
    let range = row_block(n, rank, size);
    let (lo, hi) = (range.start, range.end);
    let nrows = range.len();

    let a = prob.csr_block(range);
    let plan = build_halo_plan(comm, &a, lo, hi, n);

    let mut x = vec![0.0f64; nrows];
    let mut r: Vec<f64> = (lo..hi).map(|i| prob.rhs_for_ones(i)).collect();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; nrows];
    let mut ghost = vec![0.0f64; plan.ghosts];
    comm.charge_flops(29 * nrows as u64);

    let rr_local: f64 = r.iter().map(|v| v * v).sum();
    comm.charge_flops(2 * nrows as u64);
    let mut rr = comm.allreduce(rr_local, |a, b| a + b);
    let stop_at = params.tol.map(|t| t * t * rr);
    let mut iters_done = 0;

    for it in 0..params.iters {
        if let Some(limit) = stop_at {
            // Every rank holds the same allreduced residual, so the exit
            // is taken uniformly.
            if rr <= limit {
                break;
            }
        }
        iters_done += 1;
        // Halo exchange so every rank can read the p values its rows need.
        exchange_halo(comm, &plan, &p, &mut ghost, it as u64);

        // Local SpMV with ghost redirection, fused with the p·Ap partial.
        let mut pap_local = 0.0;
        for li in 0..nrows {
            let (cols, vals) = a.row(li);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                let pv = if c >= lo && c < hi {
                    p[c - lo]
                } else {
                    ghost[plan.ghost_pos[&c]]
                };
                acc += v * pv;
            }
            ap[li] = acc;
            pap_local += p[li] * acc;
            comm.charge_flops(2 * cols.len() as u64 + 2);
        }
        let pap = comm.allreduce(pap_local, |a, b| a + b);
        let alpha = rr / pap;

        let mut rr_new_local = 0.0;
        for li in 0..nrows {
            x[li] += alpha * p[li];
            r[li] -= alpha * ap[li];
            rr_new_local += r[li] * r[li];
        }
        comm.charge_flops(6 * nrows as u64);
        let rr_new = comm.allreduce(rr_new_local, |a, b| a + b);
        let beta = rr_new / rr;
        rr = rr_new;

        for li in 0..nrows {
            p[li] = r[li] + beta * p[li];
        }
        comm.charge_flops(2 * nrows as u64);
    }

    let t_solve = comm.now();
    let xv = if params.collect_x {
        comm.allgather(x).into_iter().flatten().collect()
    } else {
        Vec::new()
    };
    (
        CgOutcome {
            rr,
            iters_done,
            x: xv,
        },
        t_solve,
    )
}
