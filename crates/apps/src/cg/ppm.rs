//! PPM version of the CG solver.
//!
//! The whole solver is one `PPM_do`: each virtual processor owns a slice of
//! matrix rows and the iteration loop lives inside the PPM function, three
//! global phases per iteration. The sparse mat-vec simply reads `p[j]`
//! through shared-variable gets — exactly the "array syntax as in the
//! mathematical algorithm" style the paper advertises; the runtime bundles
//! whatever turns out to be remote. No communication or synchronization
//! code appears anywhere below.

use std::ops::Range;

use ppm_core::{AccumOp, GlobalShared, NodeCtx, Phase, Vp};
use ppm_simnet::SimTime;

use super::{CgOutcome, CgParams, Stencil27};

/// Slots of the shared scalar accumulator.
const RR: usize = 0;
const PAP: usize = 1;
const RR_NEW: usize = 2;
/// Iterations completed (maintained by VP 0, read back by the caller).
const ITERS: usize = 3;

/// Phase A body: `ap = A·p` (one bulk read per row chunk for every p value
/// those rows touch) and the `p·Ap` partial.
///
/// The VP's rows can move between phases under adaptive balancing, so the
/// CSR slice is rebuilt from the stencil per phase — matrix setup, like
/// the original hoisted block build, is not part of the modeled cost.
/// `chunk` bounds how many rows' matrix entries and staged p-values exist
/// at once (0 = the whole slice, the historical single-bulk-read shape);
/// the per-row read/accumulate order is identical either way, so the
/// numerics are bit-identical across chunk sizes.
#[allow(clippy::too_many_arguments)]
async fn spmv_phase(
    ph: &Phase,
    prob: &Stencil27,
    rows: Range<usize>,
    chunk: usize,
    p: &GlobalShared<f64>,
    ap: &GlobalShared<f64>,
    scal: &GlobalShared<f64>,
    v: &Vp,
) {
    let mut pap_part = 0.0;
    for (crows, am) in prob.row_chunks(rows, chunk) {
        let pv = ph.get_many(p, am.col_idx.iter().copied()).await;
        let mut at = 0;
        for (li, gi) in crows.enumerate() {
            let (cols, vals) = am.row(li);
            let mut acc = 0.0;
            for &val in vals {
                acc += val * pv[at];
                at += 1;
            }
            ph.put(ap, gi, acc);
            pap_part += ph.get(p, gi).await * acc;
            v.charge_flops(2 * cols.len() as u64 + 2);
        }
    }
    ph.accumulate(scal, PAP, AccumOp::Add, pap_part);
}

/// Run CG on the PPM runtime. Call from inside a [`ppm_core::run`] SPMD
/// closure. Returns the outcome plus the simulated instant the solve
/// finished (before any result gathering).
pub fn solve(node: &mut NodeCtx<'_>, params: &CgParams) -> (CgOutcome, SimTime) {
    let prob = params.problem;
    let n = prob.n();
    let iters = params.iters;
    let tol = params.tol;
    let chunk = params.spmv_chunk;

    let x = node.alloc_global_balanced::<f64>(n);
    let r = node.alloc_global_balanced::<f64>(n);
    let p = node.alloc_global_balanced::<f64>(n);
    let ap = node.alloc_global_balanced::<f64>(n);
    let scal = node.alloc_global::<f64>(4);

    let nrows = node.local_range(&x).len();
    let rpv = params.rows_per_vp.max(1);
    // VP count is pinned to the initial (block-equal) bounds; each phase
    // re-derives its row slice from the live bounds, so work follows the
    // data when the adaptive balancer moves the partition.
    let k = nrows.div_ceil(rpv).max(1);
    let slice = move |rg: Range<usize>, vr: usize| {
        let cpv = rpv.max(rg.len().div_ceil(k));
        let a = (rg.start + vr * cpv).min(rg.end);
        a..(a + cpv).min(rg.end)
    };

    node.ppm_do(k, move |vp| {
        async move {
            let vr = vp.node_rank();

            // Initialization: r = p = b, rr = b·b.
            let v = vp.clone();
            vp.global_phase(|ph| async move {
                let mut rr_part = 0.0;
                for gi in slice(v.local_range(&r), vr) {
                    let bi = prob.rhs_for_ones(gi);
                    ph.put(&r, gi, bi);
                    ph.put(&p, gi, bi);
                    rr_part += bi * bi;
                    v.charge_flops(29);
                }
                ph.accumulate(&scal, RR, AccumOp::Add, rr_part);
            })
            .await;

            let mut limit: Option<f64> = None;
            for it in 0..iters {
                // Phase A. With a tolerance set, the shared residual is
                // consulted first — every VP reads the same value, so the
                // early exit is taken uniformly across the whole cluster.
                let v = vp.clone();
                let (proceed, lim) = vp
                    .global_phase(|ph| async move {
                        let rows = slice(v.local_range(&p), vr);
                        if let Some(t) = tol {
                            let rr_cur = ph.get(&scal, RR).await;
                            let lim = limit.unwrap_or(t * t * rr_cur);
                            if rr_cur <= lim {
                                return (false, lim);
                            }
                            spmv_phase(&ph, &prob, rows, chunk, &p, &ap, &scal, &v).await;
                            (true, lim)
                        } else {
                            spmv_phase(&ph, &prob, rows, chunk, &p, &ap, &scal, &v).await;
                            (true, 0.0)
                        }
                    })
                    .await;
                limit = Some(lim);
                if !proceed {
                    break;
                }

                // Phase B: x += α·p, r -= α·ap, rr_new = r·r.
                let v = vp.clone();
                vp.global_phase(|ph| async move {
                    let s = ph.get_many(&scal, [RR, PAP]).await;
                    let alpha = s[0] / s[1];
                    let mut rr_part = 0.0;
                    for gi in slice(v.local_range(&x), vr) {
                        let xi = ph.get(&x, gi).await;
                        let pi = ph.get(&p, gi).await;
                        let ri = ph.get(&r, gi).await;
                        let api = ph.get(&ap, gi).await;
                        ph.put(&x, gi, xi + alpha * pi);
                        let rn = ri - alpha * api;
                        ph.put(&r, gi, rn);
                        rr_part += rn * rn;
                        v.charge_flops(6);
                    }
                    ph.accumulate(&scal, RR_NEW, AccumOp::Add, rr_part);
                })
                .await;

                // Phase C: p = r + β·p; roll rr (and the iteration count)
                // forward.
                let v = vp.clone();
                vp.global_phase(|ph| async move {
                    let s = ph.get_many(&scal, [RR_NEW, RR]).await;
                    let (rr_new, beta) = (s[0], s[0] / s[1]);
                    for gi in slice(v.local_range(&p), vr) {
                        let pi = ph.get(&p, gi).await;
                        let ri = ph.get(&r, gi).await;
                        ph.put(&p, gi, ri + beta * pi);
                        v.charge_flops(2);
                    }
                    if v.global_rank() == 0 {
                        ph.put(&scal, RR, rr_new);
                        ph.put(&scal, ITERS, (it + 1) as f64);
                    }
                })
                .await;
            }
        }
    });

    let t_solve = node.now();
    let scal_v = node.gather_global(&scal);
    let xv = if params.collect_x {
        node.gather_global(&x)
    } else {
        Vec::new()
    };
    (
        CgOutcome {
            rr: scal_v[RR],
            iters_done: scal_v[ITERS] as usize,
            x: xv,
        },
        t_solve,
    )
}
