#![allow(clippy::needless_range_loop)] // index math mirrors the formulas
//! Compressed sparse row matrices (the minimal substrate the CG solver and
//! matrix-generation applications need).

/// A CSR matrix over `f64`. Row indices are local (0-based within the
/// stored row range); column indices are global.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of stored rows.
    pub rows: usize,
    /// Global number of columns.
    pub cols: usize,
    /// Row pointer array, length `rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub col_idx: Vec<usize>,
    /// Values, length `nnz`.
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from per-row `(column, value)` lists.
    pub fn from_rows(cols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for r in rows {
            for &(c, v) in r {
                debug_assert!(c < cols, "column {c} out of bounds");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: rows.len(),
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The `(columns, values)` of one stored row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// `y = A·x` where `x` is indexed by *global* column. Only valid when
    /// the matrix stores all rows (sequential use).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        Csr::from_rows(
            3,
            &[
                vec![(0, 2.0), (1, -1.0)],
                vec![(0, -1.0), (1, 2.0), (2, -1.0)],
                vec![(1, -1.0), (2, 2.0)],
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let a = small();
        assert_eq!(a.rows, 3);
        assert_eq!(a.nnz(), 7);
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = Csr::from_rows(4, &[vec![], vec![(3, 5.0)], vec![]]);
        assert_eq!(a.rows, 3);
        assert_eq!(a.nnz(), 1);
        let mut y = vec![9.0; 3];
        a.spmv(&[1.0, 1.0, 1.0, 2.0], &mut y);
        assert_eq!(y, vec![0.0, 10.0, 0.0]);
    }
}
