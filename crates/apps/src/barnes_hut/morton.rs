//! Morton (Z-order) keys for the octree.
//!
//! A depth-`D` key interleaves the top `D` bits of the three grid
//! coordinates, most significant octant first, so that the key of a cell's
//! child is `8·key + octant` — the property the level-by-level tree
//! representation relies on.

/// Maximum supported depth (3·10 = 30 key bits).
pub const MAX_DEPTH: usize = 10;

/// Interleave grid coordinates `(ix, iy, iz)` (each `< 2^depth`) into a
/// depth-`depth` Morton key.
pub fn encode(ix: u32, iy: u32, iz: u32, depth: usize) -> u64 {
    debug_assert!(depth <= MAX_DEPTH);
    debug_assert!(ix < (1 << depth) && iy < (1 << depth) && iz < (1 << depth));
    let mut key = 0u64;
    for level in (0..depth).rev() {
        let oct = (((ix >> level) & 1) << 2) | (((iy >> level) & 1) << 1) | ((iz >> level) & 1);
        key = (key << 3) | oct as u64;
    }
    key
}

/// Recover `(ix, iy, iz)` from a depth-`depth` key.
pub fn decode(key: u64, depth: usize) -> (u32, u32, u32) {
    let (mut ix, mut iy, mut iz) = (0u32, 0u32, 0u32);
    for level in 0..depth {
        let oct = ((key >> (3 * level)) & 7) as u32;
        ix |= ((oct >> 2) & 1) << level;
        iy |= ((oct >> 1) & 1) << level;
        iz |= (oct & 1) << level;
    }
    (ix, iy, iz)
}

/// The key's prefix at a shallower depth (its ancestor cell).
#[inline]
pub fn ancestor(key: u64, depth: usize, at: usize) -> u64 {
    debug_assert!(at <= depth);
    key >> (3 * (depth - at))
}

/// Grid coordinate of a normalized position `u ∈ [0, 1]` at `depth`.
#[inline]
pub fn grid_coord(u: f64, depth: usize) -> u32 {
    let side = 1u32 << depth;
    ((u * side as f64) as i64).clamp(0, side as i64 - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_depths() {
        for depth in [1usize, 3, 5, 10] {
            let side = 1u32 << depth;
            for &(x, y, z) in &[
                (0, 0, 0),
                (side - 1, 0, 1 % side),
                (side / 2, side - 1, side / 3),
            ] {
                let k = encode(x, y, z, depth);
                assert!(k < 1 << (3 * depth));
                assert_eq!(decode(k, depth), (x, y, z));
            }
        }
    }

    #[test]
    fn child_is_parent_times_8_plus_octant() {
        let depth = 4;
        let k = encode(5, 9, 3, depth);
        let parent = ancestor(k, depth, depth - 1);
        assert_eq!(k / 8, parent);
        assert!(k % 8 < 8);
        assert_eq!(ancestor(k, depth, 0), 0, "root is the empty prefix");
    }

    #[test]
    fn keys_are_unique_per_cell() {
        let depth = 3;
        let side = 1u32 << depth;
        let mut seen = std::collections::HashSet::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    assert!(seen.insert(encode(x, y, z, depth)));
                }
            }
        }
        assert_eq!(seen.len(), 1 << (3 * depth));
    }

    #[test]
    fn grid_coord_clamps_to_box() {
        assert_eq!(grid_coord(0.0, 4), 0);
        assert_eq!(grid_coord(0.999, 4), 15);
        assert_eq!(grid_coord(1.0, 4), 15, "upper edge stays in the last cell");
        assert_eq!(grid_coord(-0.1, 4), 0, "clamped below");
        assert_eq!(grid_coord(1.5, 4), 15, "clamped above");
        assert_eq!(grid_coord(0.5, 1), 1);
    }
}
