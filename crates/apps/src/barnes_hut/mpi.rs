//! MPI version of Barnes–Hut: the replicated-tree method.
//!
//! The paper (§4.5) describes the practical MPI approach it compares
//! against [its ref. 9]: because the tree accesses are data-driven and
//! cannot be prepared in advance, "each node needs to receive copies of
//! the trees from all other nodes" every round. We implement the
//! equivalent formulation: every rank allgathers *all* bodies each step —
//! O(N·P) total communication volume — and rebuilds the entire tree
//! locally (replicated computation), then computes forces for its own
//! block. This is exactly the extremely-high-volume exchange the paper
//! criticizes, and it is what stops this version from scaling.

use ppm_mps::Comm;
use ppm_simnet::SimTime;

use super::tree::{build_levels, force_on, LeafIndex};
use super::{initial_bodies, BBox, BhParams, Body, BUILD_FLOPS, DIRECT_FLOPS, STEP_FLOPS};

fn block(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    let bs = n.div_ceil(size).max(1);
    (rank * bs).min(n)..((rank + 1) * bs).min(n)
}

/// Simulate on the MPI-like substrate; returns the final bodies (gathered)
/// and the simulated instant the last step finished.
pub fn simulate(comm: &mut Comm<'_>, p: &BhParams) -> (Vec<Body>, SimTime) {
    let n = p.n_bodies;
    let range = block(n, comm.rank(), comm.size());
    let mut mine: Vec<Body> = {
        let all = initial_bodies(p);
        all[range.clone()].to_vec()
    };

    for _step in 0..p.steps {
        // The step's communication: every rank receives every body.
        let everyone: Vec<Body> = comm.allgather(mine.clone()).into_iter().flatten().collect();
        debug_assert_eq!(everyone.len(), n);

        // Replicated bounding box and tree build (every rank does ALL of
        // this work — the computational price of replication).
        let bb = BBox::of(&everyone);
        let levels = build_levels(&everyone, &bb, p.max_depth);
        let leaves = LeafIndex::of(&everyone, &bb, p.max_depth);
        comm.charge_flops(6 * n as u64 + BUILD_FLOPS * (n * (p.max_depth + 1)) as u64);
        comm.charge_mem_ops((n as u64) * (64 - (n as u64).leading_zeros() as u64)); // leaf sort

        // Forces only for the local block.
        let base = range.start as u64;
        let walks: Vec<_> = mine
            .iter()
            .enumerate()
            .map(|(i, b)| force_on(b, base + i as u64, &levels, &leaves, &bb, p))
            .collect();
        let visited: u64 = walks.iter().map(|w| w.visited).sum();
        let directs: u64 = walks.iter().map(|w| w.directs).sum();
        comm.charge_flops(super::tree::walk_flops(visited) + DIRECT_FLOPS * directs);

        for (b, w) in mine.iter_mut().zip(&walks) {
            b.vx += w.acc[0] * p.dt;
            b.vy += w.acc[1] * p.dt;
            b.vz += w.acc[2] * p.dt;
            b.x += b.vx * p.dt;
            b.y += b.vy * p.dt;
            b.z += b.vz * p.dt;
        }
        comm.charge_flops(STEP_FLOPS * mine.len() as u64);
    }

    let t_sim = comm.now();
    let all: Vec<Body> = comm.allgather(mine).into_iter().flatten().collect();
    (all, t_sim)
}
