//! Sequential Barnes–Hut reference.

use super::tree::{build_levels, force_on, LeafIndex};
use super::{initial_bodies, BBox, BhParams, Body};

/// Simulate `p.steps` leapfrog steps; returns the final bodies.
pub fn simulate(p: &BhParams) -> Vec<Body> {
    let mut bodies = initial_bodies(p);
    for _ in 0..p.steps {
        step(&mut bodies, p);
    }
    bodies
}

/// One time step: build, walk, kick-drift.
pub fn step(bodies: &mut [Body], p: &BhParams) {
    let bb = BBox::of(bodies);
    let levels = build_levels(bodies, &bb, p.max_depth);
    let leaves = LeafIndex::of(bodies, &bb, p.max_depth);
    let walks: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| force_on(b, i as u64, &levels, &leaves, &bb, p))
        .collect();
    for (b, w) in bodies.iter_mut().zip(&walks) {
        b.vx += w.acc[0] * p.dt;
        b.vy += w.acc[1] * p.dt;
        b.vz += w.acc[2] * p.dt;
        b.x += b.vx * p.dt;
        b.y += b.vy * p.dt;
        b.z += b.vz * p.dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_moves() {
        let p = BhParams::new(200);
        let a = simulate(&p);
        let b = simulate(&p);
        assert_eq!(a, b);
        let initial = initial_bodies(&p);
        assert!(a.iter().zip(&initial).any(|(x, y)| x.x != y.x));
    }

    #[test]
    fn momentum_stays_small() {
        // Forces are nearly pairwise-antisymmetric (approximation breaks
        // exact symmetry), so total momentum should stay near zero.
        let mut p = BhParams::new(300);
        p.steps = 3;
        let out = simulate(&p);
        let px: f64 = out.iter().map(|b| b.mass * b.vx).sum();
        let py: f64 = out.iter().map(|b| b.mass * b.vy).sum();
        assert!(px.abs() < 1e-2 && py.abs() < 1e-2, "p = ({px}, {py})");
    }
}
