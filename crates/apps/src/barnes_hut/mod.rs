//! Application 3: Barnes–Hut N-body simulation (paper §4.4, Figure 3).
//!
//! Every time step builds a tree over the particles and then computes
//! forces by walking it — "totally data-driven random access to the tree
//! and the particles" (§4.4). The octree is represented level by level:
//! depth `d` is a dense array of `8^d` cells indexed by Morton key, each
//! holding the mass moments ([`Com`]) of the bodies inside. Building is a
//! pure scatter-accumulate; the force walk is a breadth-first descent with
//! the θ multipole-acceptance criterion, reading only the cells it opens.
//!
//! Three implementations:
//! * [`seq`] — sequential reference (plus a direct `O(N²)` summation used
//!   to validate physics);
//! * [`ppm`] — bodies and cell levels are global shared arrays; build is
//!   `accumulate` scatter, the walk reads cells through bundled gets;
//! * [`mpi`] — the replicated method the paper describes as the practical
//!   MPI option [its ref. 9]: every rank allgathers *all* bodies each step
//!   and rebuilds the whole tree locally — O(N·P) communication volume.
//!
//! All three visit cells in the same order and accumulate in the same
//! per-source order, so positions agree bit-for-bit in the validated
//! configurations (in general, cross-node moment accumulation folds node
//! partials rather than single bodies, which can differ in the last ulp —
//! the test suite pins the configurations where agreement is exact).

pub mod morton;
pub mod mpi;
pub mod ppm;
pub mod seq;
pub mod tree;

use ppm_core::{ByteHash, ByteHasher};
use ppm_simnet::WireSize;

use crate::rng::SplitMix64;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct BhParams {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Tree depth `D` (finest level has `8^D` cells).
    pub max_depth: usize,
    /// Multipole acceptance parameter θ.
    pub theta: f64,
    /// Softening length.
    pub eps: f64,
    /// Time step.
    pub dt: f64,
    /// Number of leapfrog steps to simulate.
    pub steps: usize,
    /// PPM only: bodies per virtual processor.
    pub bodies_per_vp: usize,
    /// RNG seed for the Plummer sampler.
    pub seed: u64,
    /// Clustered initial condition: a dense core holds most of the bodies
    /// at the low indices (see [`clustered_plummer`]), so a block
    /// partition is heavily walk-imbalanced. Off by default.
    pub clustered: bool,
}

impl BhParams {
    /// Reasonable defaults for `n` bodies.
    pub fn new(n: usize) -> Self {
        // Depth so the finest level averages a handful of bodies per
        // occupied cell.
        let mut depth = 2;
        while (1usize << (3 * depth)) < n && depth < morton::MAX_DEPTH - 1 {
            depth += 1;
        }
        BhParams {
            n_bodies: n,
            max_depth: depth.min(6),
            theta: 0.5,
            eps: 1e-3,
            dt: 1e-3,
            steps: 2,
            bodies_per_vp: 16,
            seed: 0x5EED,
            clustered: false,
        }
    }

    /// The deliberately skewed fixture: same defaults, clustered initial
    /// condition. Used by the adaptive-balance gates.
    pub fn clustered(n: usize) -> Self {
        BhParams {
            clustered: true,
            ..BhParams::new(n)
        }
    }
}

/// One body: position, velocity, mass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Body {
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub vx: f64,
    pub vy: f64,
    pub vz: f64,
    pub mass: f64,
}

impl WireSize for Body {
    fn wire_size(&self) -> usize {
        56
    }
}

// Field-by-field identity hash (never raw struct memory: padding bytes are
// undefined). Feeds the conformance checker's write fingerprints.
impl ByteHash for Body {
    fn hash_bytes(&self, h: &mut ByteHasher) {
        for f in [self.x, self.y, self.z, self.vx, self.vy, self.vz, self.mass] {
            f.hash_bytes(h);
        }
    }
}

/// Mass moments of a cell: total mass and mass-weighted position. The
/// additive combining element of the tree build.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Com {
    pub m: f64,
    pub mx: f64,
    pub my: f64,
    pub mz: f64,
}

impl std::ops::Add for Com {
    type Output = Com;
    fn add(self, o: Com) -> Com {
        Com {
            m: self.m + o.m,
            mx: self.mx + o.mx,
            my: self.my + o.my,
            mz: self.mz + o.mz,
        }
    }
}

impl WireSize for Com {
    fn wire_size(&self) -> usize {
        32
    }
}

impl ByteHash for Com {
    fn hash_bytes(&self, h: &mut ByteHasher) {
        for f in [self.m, self.mx, self.my, self.mz] {
            f.hash_bytes(h);
        }
    }
}

impl Com {
    /// The moments contributed by one body.
    pub fn of(b: &Body) -> Com {
        Com {
            m: b.mass,
            mx: b.mass * b.x,
            my: b.mass * b.y,
            mz: b.mass * b.z,
        }
    }
}

// `Com` satisfies `AccumElem` (Elem + PartialOrd + Add); register it for
// `accumulate` support.
impl ppm_core::AccumElem for Com {}

/// Axis-aligned bounding box as the 6-tuple the versions agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub min: [f64; 3],
    pub max: [f64; 3],
}

impl BBox {
    /// Bounding box of a body set (exact min/max, order-independent).
    pub fn of(bodies: &[Body]) -> BBox {
        let mut bb = BBox {
            min: [f64::INFINITY; 3],
            max: [f64::NEG_INFINITY; 3],
        };
        for b in bodies {
            for (d, v) in [b.x, b.y, b.z].into_iter().enumerate() {
                bb.min[d] = bb.min[d].min(v);
                bb.max[d] = bb.max[d].max(v);
            }
        }
        bb
    }

    /// Edge of the cube the tree is built in: the largest extent (with a
    /// tiny margin so the maximum coordinate stays inside the last cell).
    pub fn edge(&self) -> f64 {
        let e = (0..3)
            .map(|d| self.max[d] - self.min[d])
            .fold(0.0, f64::max);
        if e > 0.0 {
            e * (1.0 + 1e-12)
        } else {
            1.0
        }
    }

    /// Morton key of a position at `depth`.
    pub fn key_of(&self, x: f64, y: f64, z: f64, depth: usize) -> u64 {
        let e = self.edge();
        let gx = morton::grid_coord((x - self.min[0]) / e, depth);
        let gy = morton::grid_coord((y - self.min[1]) / e, depth);
        let gz = morton::grid_coord((z - self.min[2]) / e, depth);
        morton::encode(gx, gy, gz, depth)
    }
}

/// Sample a Plummer sphere: the standard N-body benchmark distribution
/// (deterministic for a given seed).
pub fn plummer(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = SplitMix64::new(seed);
    let a = 1.0; // Plummer radius
    let m = 1.0 / n as f64;
    (0..n)
        .map(|_| {
            // Radius from the Plummer inverse CDF, capped to keep the box
            // compact.
            let u: f64 = rng.gen_range_f64(1e-6, 1.0);
            let r = (a / (u.powf(-2.0 / 3.0) - 1.0).sqrt()).min(8.0 * a);
            // Uniform direction.
            let cos_t: f64 = rng.gen_range_f64(-1.0, 1.0);
            let sin_t = (1.0 - cos_t * cos_t).sqrt();
            let phi: f64 = rng.gen_range_f64(0.0, std::f64::consts::TAU);
            // A mild tangential velocity so the system evolves.
            let vscale = 0.1 / (1.0 + r);
            Body {
                x: r * sin_t * phi.cos(),
                y: r * sin_t * phi.sin(),
                z: r * cos_t,
                vx: -vscale * phi.sin(),
                vy: vscale * phi.cos(),
                vz: 0.0,
                mass: m,
            }
        })
        .collect()
}

/// Sample a clustered configuration: a dense Plummer core (tiny radius)
/// holding the low-index half of the bodies, plus a wide displaced halo at
/// the high indices. Under a block partition the low-id nodes own the
/// dense core — far more cell opens and direct interactions per body — so
/// the walk load is heavily skewed toward them. Deterministic for a given
/// seed.
pub fn clustered_plummer(n: usize, seed: u64) -> Vec<Body> {
    let core = n - n / 2;
    let mut rng = SplitMix64::new(seed ^ 0xC1A5);
    let m = 1.0 / n as f64;
    let mut sample = |a: f64, cap: f64| -> Body {
        let u: f64 = rng.gen_range_f64(1e-6, 1.0);
        let r = (a / (u.powf(-2.0 / 3.0) - 1.0).sqrt()).min(cap);
        let cos_t: f64 = rng.gen_range_f64(-1.0, 1.0);
        let sin_t = (1.0 - cos_t * cos_t).sqrt();
        let phi: f64 = rng.gen_range_f64(0.0, std::f64::consts::TAU);
        let vscale = 0.1 / (1.0 + r);
        Body {
            x: r * sin_t * phi.cos(),
            y: r * sin_t * phi.sin(),
            z: r * cos_t,
            vx: -vscale * phi.sin(),
            vy: vscale * phi.cos(),
            vz: 0.0,
            mass: m,
        }
    };
    (0..n)
        .map(|i| {
            if i < core {
                sample(0.05, 0.4)
            } else {
                let mut b = sample(2.0, 8.0);
                b.x += 4.0;
                b
            }
        })
        .collect()
}

/// The initial condition every version shares, dispatched on the fixture
/// flag — so seq/MPI/PPM conformance holds for both configurations.
pub fn initial_bodies(p: &BhParams) -> Vec<Body> {
    if p.clustered {
        clustered_plummer(p.n_bodies, p.seed)
    } else {
        plummer(p.n_bodies, p.seed)
    }
}

/// One entry of the leaf index: a body projected to (Morton key, identity,
/// position, mass) — what `Direct` leaf interactions read.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SortedBody {
    pub key: u64,
    pub idx: u64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub mass: f64,
}

impl WireSize for SortedBody {
    fn wire_size(&self) -> usize {
        48
    }
}

impl ByteHash for SortedBody {
    fn hash_bytes(&self, h: &mut ByteHasher) {
        self.key.hash_bytes(h);
        self.idx.hash_bytes(h);
        for f in [self.x, self.y, self.z, self.mass] {
            f.hash_bytes(h);
        }
    }
}

/// Flops charged per cell examined during a walk (distance, MAC test,
/// kernel evaluation).
pub const VISIT_FLOPS: u64 = 22;
/// Flops charged per body-level interaction at a `Direct` leaf.
pub const DIRECT_FLOPS: u64 = 16;
/// Flops charged per body per level during the build (key + moment
/// scatter).
pub const BUILD_FLOPS: u64 = 10;
/// Flops charged per body for the bounding box and the leapfrog update.
pub const STEP_FLOPS: u64 = 18;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plummer_is_deterministic_and_bounded() {
        let a = plummer(100, 7);
        let b = plummer(100, 7);
        assert_eq!(a, b);
        assert_ne!(a, plummer(100, 8));
        let total_mass: f64 = a.iter().map(|b| b.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|b| b.x.abs() <= 8.0 && b.z.abs() <= 8.0));
    }

    #[test]
    fn bbox_covers_and_keys_stay_in_range() {
        let bodies = plummer(200, 1);
        let bb = BBox::of(&bodies);
        for b in &bodies {
            assert!(b.x >= bb.min[0] && b.x <= bb.max[0]);
            let k = bb.key_of(b.x, b.y, b.z, 5);
            assert!(k < 1 << 15);
        }
        assert!(bb.edge() > 0.0);
    }

    #[test]
    fn com_adds_componentwise() {
        let a = Com {
            m: 1.0,
            mx: 2.0,
            my: 3.0,
            mz: 4.0,
        };
        let b = Com {
            m: 0.5,
            mx: 0.25,
            my: 0.0,
            mz: -1.0,
        };
        let s = a + b;
        assert_eq!(s.m, 1.5);
        assert_eq!(s.mz, 3.0);
    }

    #[test]
    fn clustered_plummer_has_a_dense_low_index_core() {
        let n = 400;
        let bodies = clustered_plummer(n, 7);
        assert_eq!(bodies, clustered_plummer(n, 7));
        let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-12);
        let radius = |b: &Body| (b.x * b.x + b.y * b.y + b.z * b.z).sqrt();
        let core = n - n / 2;
        let core_mean: f64 = bodies[..core].iter().map(radius).sum::<f64>() / core as f64;
        let halo_mean: f64 = bodies[core..].iter().map(radius).sum::<f64>() / (n - core) as f64;
        // The low indices sit in a far denser region than the halo.
        assert!(
            core_mean * 10.0 < halo_mean,
            "core mean radius {core_mean} vs halo {halo_mean}"
        );
    }

    #[test]
    fn degenerate_bbox_has_unit_edge() {
        let one = vec![Body {
            mass: 1.0,
            ..Body::default()
        }];
        assert_eq!(BBox::of(&one).edge(), 1.0);
    }
}
