//! The level-by-level octree: shared build and walk logic.
//!
//! The sequential reference and the MPI version build the tree in hash
//! maps (one per level); the PPM version scatters the same moments into
//! global shared arrays. All versions *visit cells in the same order* —
//! breadth-first, children in octant order — and accumulate in ascending
//! body order, so forces agree bit-for-bit across implementations.

use std::collections::HashMap;

use super::{BBox, BhParams, Body, Com, VISIT_FLOPS};

/// Per-level cell moments, keyed by Morton index.
pub type Levels = Vec<HashMap<u64, Com>>;

/// Build the `0..=max_depth` levels over `bodies` (ascending body order).
pub fn build_levels(bodies: &[Body], bb: &BBox, max_depth: usize) -> Levels {
    let mut levels: Levels = (0..=max_depth).map(|_| HashMap::new()).collect();
    for b in bodies {
        let leaf = bb.key_of(b.x, b.y, b.z, max_depth);
        let moments = Com::of(b);
        for (d, level) in levels.iter_mut().enumerate() {
            let key = leaf >> (3 * (max_depth - d));
            let cell = level.entry(key).or_default();
            *cell = *cell + moments;
        }
    }
    levels
}

/// What the walk decided about one examined cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Empty cell: nothing to do.
    Skip,
    /// Accepted: its monopole contribution was added.
    Accept,
    /// Rejected by the MAC: its eight children go on the next frontier.
    Open,
    /// A finest-level cell too close for its monopole: interact with its
    /// individual bodies (fetched through the leaf index).
    Direct,
}

/// Examine one cell of the walk: apply the θ-criterion and, if accepted,
/// add its monopole contribution to `acc`. `my_leaf` is the walking body's
/// Morton key at `max_depth`; cells containing the body are always opened
/// (never summarized), and finest-level cells that fail the criterion are
/// referred to body-level interaction (`Visit::Direct`). This single
/// function defines the arithmetic every implementation shares.
#[allow(clippy::too_many_arguments)]
pub fn visit_cell(
    b: &Body,
    com: Com,
    depth: usize,
    key: u64,
    my_leaf: u64,
    p: &BhParams,
    edge: f64,
    acc: &mut [f64; 3],
) -> Visit {
    if com.m <= 0.0 {
        return Visit::Skip;
    }
    // A cell that contains the walking body is never summarized by its
    // monopole (the body sits among that mass): descend, and at the finest
    // level interact with its bodies individually.
    let contains = (my_leaf >> (3 * (p.max_depth - depth))) == key;
    if contains {
        return if depth < p.max_depth {
            Visit::Open
        } else {
            Visit::Direct
        };
    }
    let (cx, cy, cz) = (com.mx / com.m, com.my / com.m, com.mz / com.m);
    let (dx, dy, dz) = (cx - b.x, cy - b.y, cz - b.z);
    let r2 = dx * dx + dy * dy + dz * dz;
    let size = edge / (1u64 << depth) as f64;
    if size * size < p.theta * p.theta * r2 {
        let denom = (r2 + p.eps * p.eps).sqrt();
        let inv3 = 1.0 / (denom * denom * denom);
        acc[0] += com.m * dx * inv3;
        acc[1] += com.m * dy * inv3;
        acc[2] += com.m * dz * inv3;
        Visit::Accept
    } else if depth == p.max_depth {
        Visit::Direct
    } else {
        Visit::Open
    }
}

/// Body-to-body kernel used for `Visit::Direct` leaves. Self-interaction
/// is excluded by body identity.
#[inline]
pub fn direct_kernel(b: &Body, my_idx: u64, o: &super::SortedBody, eps: f64, acc: &mut [f64; 3]) {
    if o.idx == my_idx {
        return;
    }
    let (dx, dy, dz) = (o.x - b.x, o.y - b.y, o.z - b.z);
    let r2 = dx * dx + dy * dy + dz * dz;
    let denom = (r2 + eps * eps).sqrt();
    let inv3 = 1.0 / (denom * denom * denom);
    acc[0] += o.mass * dx * inv3;
    acc[1] += o.mass * dy * inv3;
    acc[2] += o.mass * dz * inv3;
}

/// The leaf index: the bodies sorted by Morton key with per-leaf runs —
/// what `Visit::Direct` interactions read. The sort is stable over
/// ascending body index, which fixes the interaction order all
/// implementations share.
pub struct LeafIndex {
    /// Bodies in (Morton key, original index) order.
    pub sorted: Vec<super::SortedBody>,
    runs: HashMap<u64, (usize, usize)>,
}

impl LeafIndex {
    /// Build from the bodies (ascending index order).
    pub fn of(bodies: &[Body], bb: &BBox, max_depth: usize) -> LeafIndex {
        let mut sorted: Vec<super::SortedBody> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| super::SortedBody {
                key: bb.key_of(b.x, b.y, b.z, max_depth),
                idx: i as u64,
                x: b.x,
                y: b.y,
                z: b.z,
                mass: b.mass,
            })
            .collect();
        sorted.sort_by_key(|sb| sb.key); // stable: ties stay in index order
        let mut runs = HashMap::new();
        let mut start = 0;
        for i in 1..=sorted.len() {
            if i == sorted.len() || sorted[i].key != sorted[start].key {
                runs.insert(sorted[start].key, (start, i - start));
                start = i;
            }
        }
        LeafIndex { sorted, runs }
    }

    /// The bodies of one leaf cell.
    pub fn leaf(&self, key: u64) -> &[super::SortedBody] {
        match self.runs.get(&key) {
            Some(&(start, len)) => &self.sorted[start..start + len],
            None => &[],
        }
    }
}

/// Result of a tree walk for one body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Walk {
    /// Acceleration on the body.
    pub acc: [f64; 3],
    /// Cells examined (for flop charging and statistics).
    pub visited: u64,
    /// Body-level interactions performed at `Direct` leaves.
    pub directs: u64,
}

/// Walk the tree breadth-first for one body (the canonical order):
/// monopole contributions accumulate during the descent; `Direct` leaves
/// are collected in frontier order and their body-level interactions are
/// applied after the descent.
pub fn force_on(
    b: &Body,
    my_idx: u64,
    levels: &Levels,
    leaves: &LeafIndex,
    bb: &BBox,
    p: &BhParams,
) -> Walk {
    let edge = bb.edge();
    let my_leaf = bb.key_of(b.x, b.y, b.z, p.max_depth);
    let mut acc = [0.0f64; 3];
    let mut visited = 0u64;
    let mut direct_cells = Vec::new();
    let mut frontier = vec![0u64];
    for (d, level) in levels.iter().enumerate() {
        let mut next = Vec::new();
        for &key in &frontier {
            visited += 1;
            let com = level.get(&key).copied().unwrap_or_default();
            match visit_cell(b, com, d, key, my_leaf, p, edge, &mut acc) {
                Visit::Open => {
                    for oct in 0..8 {
                        next.push(key * 8 + oct);
                    }
                }
                Visit::Direct => direct_cells.push(key),
                Visit::Accept | Visit::Skip => {}
            }
        }
        frontier = next;
    }
    let mut directs = 0u64;
    for key in direct_cells {
        for o in leaves.leaf(key) {
            direct_kernel(b, my_idx, o, p.eps, &mut acc);
            directs += 1;
        }
    }
    Walk {
        acc,
        visited,
        directs,
    }
}

/// Direct `O(N²)` summation (physics validation only).
pub fn direct_accels(bodies: &[Body], eps: f64) -> Vec<[f64; 3]> {
    bodies
        .iter()
        .map(|b| {
            let mut acc = [0.0f64; 3];
            for o in bodies {
                let (dx, dy, dz) = (o.x - b.x, o.y - b.y, o.z - b.z);
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 == 0.0 {
                    continue;
                }
                let denom = (r2 + eps * eps).sqrt();
                let inv3 = 1.0 / (denom * denom * denom);
                acc[0] += o.mass * dx * inv3;
                acc[1] += o.mass * dy * inv3;
                acc[2] += o.mass * dz * inv3;
            }
            acc
        })
        .collect()
}

/// Flops to charge for a walk that examined `visited` cells.
#[inline]
pub fn walk_flops(visited: u64) -> u64 {
    visited * VISIT_FLOPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barnes_hut::plummer;

    fn setup(n: usize) -> (Vec<Body>, BBox, BhParams) {
        let bodies = plummer(n, 3);
        let bb = BBox::of(&bodies);
        let p = BhParams::new(n);
        (bodies, bb, p)
    }

    #[test]
    fn build_conserves_mass_at_every_level() {
        let (bodies, bb, p) = setup(300);
        let levels = build_levels(&bodies, &bb, p.max_depth);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        for (d, level) in levels.iter().enumerate() {
            let m: f64 = level.values().map(|c| c.m).sum();
            assert!((m - total).abs() < 1e-12, "level {d}: {m} vs {total}");
        }
        assert_eq!(levels[0].len(), 1, "root holds everything");
    }

    #[test]
    fn parents_aggregate_children() {
        let (bodies, bb, p) = setup(200);
        let levels = build_levels(&bodies, &bb, p.max_depth);
        for d in 0..p.max_depth {
            for (&key, &com) in &levels[d] {
                let child_sum = (0..8)
                    .map(|oct| {
                        levels[d + 1]
                            .get(&(key * 8 + oct))
                            .copied()
                            .unwrap_or_default()
                    })
                    .fold(Com::default(), |a, b| a + b);
                assert!((com.m - child_sum.m).abs() < 1e-12, "depth {d} key {key}");
            }
        }
    }

    #[test]
    fn bh_accelerations_approximate_direct_sum() {
        let (bodies, bb, mut p) = setup(400);
        p.theta = 0.4;
        let levels = build_levels(&bodies, &bb, p.max_depth);
        let leaves = LeafIndex::of(&bodies, &bb, p.max_depth);
        let direct = direct_accels(&bodies, p.eps);
        let mut err2 = 0.0f64;
        let mut mag2 = 0.0f64;
        for (i, (b, d)) in bodies.iter().zip(&direct).enumerate() {
            let w = force_on(b, i as u64, &levels, &leaves, &bb, &p);
            err2 += (0..3).map(|k| (w.acc[k] - d[k]).powi(2)).sum::<f64>();
            mag2 += d.iter().map(|v| v * v).sum::<f64>();
        }
        let rms_rel = (err2 / mag2).sqrt();
        assert!(rms_rel < 0.05, "relative acceleration error {rms_rel}");
    }

    #[test]
    fn tighter_theta_is_more_accurate_and_visits_more() {
        let (bodies, bb, p) = setup(300);
        let levels = build_levels(&bodies, &bb, p.max_depth);
        let leaves = LeafIndex::of(&bodies, &bb, p.max_depth);
        let direct = direct_accels(&bodies, p.eps);
        let run = |theta: f64| {
            let mut pp = p;
            pp.theta = theta;
            let mut err = 0.0f64;
            let mut visits = 0u64;
            for (i, (b, d)) in bodies.iter().zip(&direct).enumerate() {
                let w = force_on(b, i as u64, &levels, &leaves, &bb, &pp);
                visits += w.visited + w.directs;
                err += (0..3).map(|k| (w.acc[k] - d[k]).powi(2)).sum::<f64>();
            }
            (err.sqrt(), visits)
        };
        let (err_tight, visits_tight) = run(0.2);
        let (err_loose, visits_loose) = run(0.9);
        assert!(err_tight < err_loose);
        assert!(visits_tight > visits_loose);
    }

    #[test]
    fn self_interaction_is_removed() {
        // Two distant bodies: each must feel only the other.
        let bodies = vec![
            Body {
                x: 0.0,
                mass: 1.0,
                ..Body::default()
            },
            Body {
                x: 10.0,
                mass: 2.0,
                ..Body::default()
            },
        ];
        let bb = BBox::of(&bodies);
        let mut p = BhParams::new(2);
        p.eps = 0.0;
        let levels = build_levels(&bodies, &bb, p.max_depth);
        let leaves = LeafIndex::of(&bodies, &bb, p.max_depth);
        let w = force_on(&bodies[0], 0, &levels, &leaves, &bb, &p);
        assert!((w.acc[0] - 2.0 / 100.0).abs() < 1e-9, "{:?}", w.acc);
        assert!(w.acc[1].abs() < 1e-12);
    }
}
