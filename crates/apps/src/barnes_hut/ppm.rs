//! PPM version of Barnes–Hut.
//!
//! The bodies, every tree level, and a Morton-sorted leaf index are global
//! shared arrays. Each step:
//!
//! 1. a `PPM_do` phase folds the bodies' extents into a shared bounding
//!    box with combining `Min`/`Max` writes;
//! 2. node-level code refreshes the leaf index: bodies are projected to
//!    (Morton key, identity, position, mass) records, sorted with the
//!    runtime's distributed sample sort, and each leaf run's start
//!    position is scattered into a dense per-cell array;
//! 3. a second `PPM_do` scatters mass moments into all tree levels with
//!    combining `Add` writes (phase *build*) and then walks the tree
//!    (phase *walk*): breadth-first descent fetching each depth's frontier
//!    cells in one bulk read, body-level interactions for too-close leaf
//!    cells fetched through the leaf index — the data-driven random access
//!    to "the tree and the particles" the paper highlights — and finally
//!    the kick-drift update and clearing of the occupied cells.

use std::sync::Arc;

use ppm_core::util::{scatter_global, sort_global_by_key};
use ppm_core::{AccumOp, GlobalShared, NodeCtx};
use ppm_simnet::SimTime;

use super::tree::{direct_kernel, visit_cell, Visit};
use super::{
    initial_bodies, BBox, BhParams, Body, Com, SortedBody, BUILD_FLOPS, DIRECT_FLOPS, STEP_FLOPS,
    VISIT_FLOPS,
};

/// Simulate on the PPM runtime; returns the final bodies (gathered) and
/// the simulated instant the last step finished.
pub fn simulate(node: &mut NodeCtx<'_>, p: &BhParams) -> (Vec<Body>, SimTime) {
    let params = *p;
    let n = p.n_bodies;
    let depth = p.max_depth;
    let cells = 1usize << (3 * depth);

    let bodies = node.alloc_global_balanced::<Body>(n);
    let bbox = node.alloc_global::<f64>(6); // min xyz, max xyz
                                            // Balanced like `bodies`: both arrays see the same length and the same
                                            // load vector, so their bounds move in lockstep and the local record
                                            // buffer below always matches the local body span.
    let sorted = node.alloc_global_balanced::<SortedBody>(n);
    let leaf_start = node.alloc_global::<u64>(cells);
    let leaf_count = node.alloc_global::<u64>(cells);
    let levels: Arc<Vec<GlobalShared<Com>>> = Arc::new(
        (0..=depth)
            .map(|d| node.alloc_global::<Com>(1usize << (3 * d)))
            .collect(),
    );

    // Everyone samples the same deterministic distribution and keeps its
    // own block.
    let range = node.local_range(&bodies);
    let n_local = range.len();
    {
        let all = initial_bodies(p);
        node.with_local_mut(&bodies, |s| s.copy_from_slice(&all[range]));
    }

    let bpv = params.bodies_per_vp.max(1);
    // VP count is pinned to the initial (block-equal) bounds; the body
    // partition itself can move between phases under adaptive balancing,
    // so every phase re-derives its slice from the live bounds.
    let k = n_local.div_ceil(bpv).max(1);
    let slice = move |r: std::ops::Range<usize>, vr: usize| {
        let cpv = bpv.max(r.len().div_ceil(k));
        let lo = (r.start + vr * cpv).min(r.end);
        (lo, (lo + cpv).min(r.end))
    };

    for _step in 0..params.steps {
        // --- 1. Shared bounding box. -----------------------------------
        node.ppm_do(k, move |vp| async move {
            let v = vp.clone();
            vp.global_phase(|ph| async move {
                let (lo, hi) = slice(v.local_range(&bodies), v.node_rank());
                let mine = ph.get_many(&bodies, lo..hi).await;
                for b in &mine {
                    for (d, val) in [b.x, b.y, b.z].into_iter().enumerate() {
                        ph.accumulate(&bbox, d, AccumOp::Min, val);
                        ph.accumulate(&bbox, 3 + d, AccumOp::Max, val);
                    }
                    v.charge_flops(6);
                }
            })
            .await;
        });
        let bbv = node.gather_global(&bbox);
        let bb = BBox {
            min: [bbv[0], bbv[1], bbv[2]],
            max: [bbv[3], bbv[4], bbv[5]],
        };

        // --- 2. Refresh the Morton-sorted leaf index. -------------------
        // The bodies' span may have moved at the last phase boundary, so
        // the record identities come from the live range, not the initial
        // one.
        let body_lo = node.local_range(&bodies).start;
        let records: Vec<SortedBody> = node.with_local(&bodies, |s| {
            s.iter()
                .enumerate()
                .map(|(off, b)| SortedBody {
                    key: bb.key_of(b.x, b.y, b.z, depth),
                    idx: (body_lo + off) as u64,
                    x: b.x,
                    y: b.y,
                    z: b.z,
                    mass: b.mass,
                })
                .collect()
        });
        node.charge_mem_ops(records.len() as u64 * 2);
        node.with_local_mut(&sorted, |s| s.copy_from_slice(&records));
        sort_global_by_key(node, &sorted, |sb| sb.key);

        // Leaf runs: a run starts wherever the key differs from the
        // previous element (consulting the previous non-empty node's
        // boundary key); scatter each start into the dense per-cell array.
        let my_sorted: Vec<(u64, u64)> =
            node.with_local(&sorted, |s| s.iter().map(|sb| (sb.key, sb.idx)).collect());
        let sort_lo = node.local_range(&sorted).start;
        let boundary = node.allgather_nodes(match my_sorted.last() {
            Some(&(key, _)) => (my_sorted.len() as u64, key),
            None => (0u64, 0u64),
        });
        let prev_key: Option<u64> = boundary[..node.node_id()]
            .iter()
            .rev()
            .find(|(len, _)| *len > 0)
            .map(|&(_, key)| key);
        let mut starts: Vec<(usize, u64)> = Vec::new();
        for (i, &(key, _)) in my_sorted.iter().enumerate() {
            let prev = if i == 0 {
                prev_key
            } else {
                Some(my_sorted[i - 1].0)
            };
            if prev != Some(key) {
                starts.push((key as usize, (sort_lo + i) as u64));
            }
        }
        scatter_global(node, &leaf_start, starts);

        // --- 3. Build + walk. -------------------------------------------
        let levels = levels.clone();
        node.ppm_do(k, move |vp| {
            let levels = levels.clone();
            async move {
                // Phase build: scatter mass moments into every level and
                // count leaf occupancy.
                let (v, lv) = (vp.clone(), levels.clone());
                vp.global_phase(|ph| async move {
                    let (lo, hi) = slice(v.local_range(&bodies), v.node_rank());
                    let bb = read_bbox(&ph, &bbox).await;
                    let mine = ph.get_many(&bodies, lo..hi).await;
                    for b in &mine {
                        let leaf = bb.key_of(b.x, b.y, b.z, depth);
                        let moments = Com::of(b);
                        for (d, level) in lv.iter().enumerate() {
                            let cell = (leaf >> (3 * (depth - d))) as usize;
                            ph.accumulate(level, cell, AccumOp::Add, moments);
                            v.charge_flops(BUILD_FLOPS);
                        }
                        ph.accumulate(&leaf_count, leaf as usize, AccumOp::Add, 1u64);
                    }
                })
                .await;

                // Phase walk: breadth-first descent (one bulk read per
                // depth), body-level leaf interactions, kick-drift, and
                // clearing of the occupied cells.
                let (v, lv) = (vp.clone(), levels.clone());
                vp.global_phase(|ph| async move {
                    let (lo, hi) = slice(v.local_range(&bodies), v.node_rank());
                    let bb = read_bbox(&ph, &bbox).await;
                    let edge = bb.edge();
                    let mine = ph.get_many(&bodies, lo..hi).await;
                    let leaves: Vec<u64> = mine
                        .iter()
                        .map(|b| bb.key_of(b.x, b.y, b.z, depth))
                        .collect();

                    let mut accs = vec![[0.0f64; 3]; mine.len()];
                    let mut direct_cells: Vec<Vec<u64>> = vec![Vec::new(); mine.len()];
                    let mut frontiers: Vec<Vec<u64>> = vec![vec![0]; mine.len()];
                    for (d, level) in lv.iter().enumerate() {
                        let wants: Vec<usize> = frontiers
                            .iter()
                            .flatten()
                            .map(|&key| key as usize)
                            .collect();
                        let coms = ph.get_many(level, wants).await;
                        let mut at = 0;
                        for (i, frontier) in frontiers.iter_mut().enumerate() {
                            let mut next = Vec::new();
                            for &key in frontier.iter() {
                                let com = coms[at];
                                at += 1;
                                v.charge_flops(VISIT_FLOPS);
                                match visit_cell(
                                    &mine[i],
                                    com,
                                    d,
                                    key,
                                    leaves[i],
                                    &params,
                                    edge,
                                    &mut accs[i],
                                ) {
                                    Visit::Open => {
                                        for oct in 0..8 {
                                            next.push(key * 8 + oct);
                                        }
                                    }
                                    Visit::Direct => direct_cells[i].push(key),
                                    Visit::Accept | Visit::Skip => {}
                                }
                            }
                            *frontier = next;
                        }
                    }

                    // Body-level interactions: fetch each direct leaf's run
                    // metadata, then the run's bodies, in three bulk reads.
                    let flat: Vec<usize> =
                        direct_cells.iter().flatten().map(|&c| c as usize).collect();
                    let run_starts = ph.get_many(&leaf_start, flat.iter().copied()).await;
                    let run_counts = ph.get_many(&leaf_count, flat.iter().copied()).await;
                    let wants: Vec<usize> = run_starts
                        .iter()
                        .zip(&run_counts)
                        .flat_map(|(&s, &c)| (s as usize)..(s + c) as usize)
                        .collect();
                    let neighbours = ph.get_many(&sorted, wants).await;
                    let mut run_at = 0;
                    let mut body_at = 0;
                    for (i, cells) in direct_cells.iter().enumerate() {
                        let my_idx = (lo + i) as u64;
                        for _ in cells {
                            let count = run_counts[run_at] as usize;
                            run_at += 1;
                            for _ in 0..count {
                                direct_kernel(
                                    &mine[i],
                                    my_idx,
                                    &neighbours[body_at],
                                    params.eps,
                                    &mut accs[i],
                                );
                                body_at += 1;
                                v.charge_flops(DIRECT_FLOPS);
                            }
                        }
                    }

                    // Kick-drift and clear this step's cells.
                    for (i, b) in mine.iter().enumerate() {
                        let mut nb = *b;
                        nb.vx += accs[i][0] * params.dt;
                        nb.vy += accs[i][1] * params.dt;
                        nb.vz += accs[i][2] * params.dt;
                        nb.x += nb.vx * params.dt;
                        nb.y += nb.vy * params.dt;
                        nb.z += nb.vz * params.dt;
                        ph.put(&bodies, lo + i, nb);
                        v.charge_flops(STEP_FLOPS);
                        for (d, level) in lv.iter().enumerate() {
                            let cell = (leaves[i] >> (3 * (depth - d))) as usize;
                            ph.put(level, cell, Com::default());
                        }
                    }
                })
                .await;
            }
        });
    }

    let t_sim = node.now();
    (node.gather_global(&bodies), t_sim)
}

/// Fetch the six bounding-box scalars.
async fn read_bbox(ph: &ppm_core::Phase, bbox: &GlobalShared<f64>) -> BBox {
    let v = ph.get_many(bbox, 0..6).await;
    BBox {
        min: [v[0], v[1], v[2]],
        max: [v[3], v[4], v[5]],
    }
}
