//! MPI version of PageRank: the push scatter becomes an explicit
//! contribution exchange — accumulate locally per destination rank, ship
//! with `alltoallv`, merge on arrival.

use ppm_mps::Comm;
use ppm_simnet::SimTime;

use super::{neighbour, out_degree, PrParams};

fn block(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    let bs = n.div_ceil(size).max(1);
    (rank * bs).min(n)..((rank + 1) * bs).min(n)
}

/// Run PageRank on the MPI-like substrate; returns the gathered rank
/// vector and the simulated finish instant.
pub fn rank(comm: &mut Comm<'_>, p: &PrParams) -> (Vec<f64>, SimTime) {
    let n = p.n;
    let size = comm.size();
    let range = block(n, comm.rank(), size);
    let (lo, len) = (range.start, range.len());
    let bs = n.div_ceil(size).max(1);

    let mut cur = vec![1.0 / n as f64; len];
    let mut contrib = vec![0.0f64; len];

    for _ in 0..p.iters {
        // Accumulate this rank's pushes, grouped by destination owner.
        let mut outgoing: Vec<std::collections::BTreeMap<u64, f64>> =
            (0..size).map(|_| Default::default()).collect();
        for v in lo..lo + len {
            let d = out_degree(p, v);
            let share = cur[v - lo] / d as f64;
            for e in 0..d {
                let t = neighbour(p, v, e);
                *outgoing[(t / bs).min(size - 1)]
                    .entry(t as u64)
                    .or_insert(0.0) += share;
            }
            comm.charge_flops(2 * d as u64 + 1);
        }
        let sends: Vec<Vec<(u64, f64)>> = outgoing
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect();
        let received = comm.alltoallv(sends);

        // Merge in source-rank order (matches the PPM runtime's
        // deterministic application order).
        contrib.iter_mut().for_each(|c| *c = 0.0);
        for batch in received {
            comm.charge_mem_ops(batch.len() as u64);
            for (t, share) in batch {
                contrib[t as usize - lo] += share;
            }
        }
        let teleport = (1.0 - p.damping) / n as f64;
        for (c, r) in cur.iter_mut().zip(&contrib) {
            *c = teleport + p.damping * r;
        }
        comm.charge_flops(2 * len as u64);
    }

    let t = comm.now();
    let all: Vec<f64> = comm.allgather(cur).into_iter().flatten().collect();
    (all, t)
}
