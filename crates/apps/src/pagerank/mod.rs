//! Demonstration application: PageRank on a synthetic scale-free graph.
//!
//! Not part of the paper's evaluation — but its introduction names *graph
//! algorithms* first among the unstructured applications that motivate PPM
//! (§1), so this module shows the model generalizing beyond the three
//! evaluated codes. The PPM program is the push formulation: each vertex's
//! contribution is a combining `accumulate` into its out-neighbours'
//! slots, i.e. the whole irregular scatter is two phases per iteration
//! with zero explicit communication.
//!
//! All versions accumulate contributions in ascending source-vertex order,
//! so ranks agree bit-for-bit.

pub mod mpi;
pub mod ppm;
pub mod seq;

use crate::matgen::splitmix64;

/// Graph + iteration parameters.
#[derive(Debug, Clone, Copy)]
pub struct PrParams {
    /// Vertices.
    pub n: usize,
    /// Maximum out-degree (degrees are 1..=max_degree, hash-distributed
    /// with a heavy head so some vertices are hubs).
    pub max_degree: usize,
    /// Damping factor.
    pub damping: f64,
    /// Power-iteration count.
    pub iters: usize,
    /// PPM only: vertices per virtual processor.
    pub vertices_per_vp: usize,
    /// Edge-hash seed.
    pub seed: u64,
    /// Power-law out-degree curve: when set, degree falls off as
    /// `max_degree·head/(v+head)` so the low-id vertices do almost all the
    /// pushing — a deliberately imbalanced workload for the adaptive
    /// repartitioner. Off by default (the uniform hash-skew graph).
    pub power_law: bool,
}

impl PrParams {
    /// Defaults for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        PrParams {
            n,
            max_degree: 12,
            damping: 0.85,
            iters: 20,
            vertices_per_vp: 32,
            seed: 0xBEEF,
            power_law: false,
        }
    }

    /// A deliberately skewed fixture: power-law out-degrees with a tall
    /// head, so under a block partition the low-id nodes carry several
    /// times the compute of the high-id ones. Used by the adaptive-balance
    /// gates.
    pub fn skewed(n: usize) -> Self {
        PrParams {
            max_degree: 64,
            power_law: true,
            ..PrParams::new(n)
        }
    }
}

/// Out-degree of vertex `v` (deterministic, 1..=max_degree, skewed so low
/// ids behave like hubs).
pub fn out_degree(p: &PrParams, v: usize) -> usize {
    if p.power_law {
        // Integer Zipf-style head: degree ~ max_degree·head/(v+head) plus
        // a seeded jitter of 0..=2. Integer arithmetic only, so the curve
        // (and therefore every version's ranks) is bit-identical on every
        // platform.
        let head = (p.n / 16).max(1);
        let base = p.max_degree * head / (v + head);
        let jit = (splitmix64(p.seed ^ (v as u64).wrapping_mul(0x9E37) ^ 0x5EED) % 3) as usize;
        return (base + jit).clamp(1, p.max_degree);
    }
    let h = splitmix64(p.seed ^ (v as u64).wrapping_mul(0x9E37));
    // Square the uniform draw to skew toward small degrees, then invert
    // for a heavy head.
    let u = (h % 1024) as f64 / 1024.0;
    1 + ((p.max_degree - 1) as f64 * u * u) as usize
}

/// The `k`-th out-neighbour of vertex `v`.
pub fn neighbour(p: &PrParams, v: usize, k: usize) -> usize {
    // Preferential-attachment flavour: half the edges land in the low-id
    // "head", the rest anywhere.
    let h = splitmix64(p.seed ^ ((v as u64) << 20) ^ k as u64);
    if h & 1 == 0 {
        (h >> 1) as usize % (p.n / 8).max(1)
    } else {
        (h >> 1) as usize % p.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_in_range_and_deterministic() {
        let p = PrParams::new(500);
        for v in 0..p.n {
            let d = out_degree(&p, v);
            assert!((1..=p.max_degree).contains(&d));
            assert_eq!(d, out_degree(&p, v));
            for k in 0..d {
                assert!(neighbour(&p, v, k) < p.n);
            }
        }
    }

    #[test]
    fn head_vertices_attract_more_edges() {
        let p = PrParams::new(800);
        let mut indeg = vec![0usize; p.n];
        for v in 0..p.n {
            for k in 0..out_degree(&p, v) {
                indeg[neighbour(&p, v, k)] += 1;
            }
        }
        let head: usize = indeg[..p.n / 8].iter().sum();
        let tail: usize = indeg[p.n / 8..].iter().sum();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn power_law_degrees_are_front_loaded() {
        let p = PrParams::skewed(1024);
        let quarter = |r: std::ops::Range<usize>| -> usize { r.map(|v| out_degree(&p, v)).sum() };
        let first = quarter(0..p.n / 4);
        let last = quarter(3 * p.n / 4..p.n);
        // The whole point of the fixture: a block partition is badly
        // imbalanced (well past the 9/8 rebalance threshold).
        assert!(
            first * 2 > last * 5,
            "first-quarter degree mass {first} vs last {last}"
        );
        for v in 0..p.n {
            let d = out_degree(&p, v);
            assert!((1..=p.max_degree).contains(&d));
            assert_eq!(d, out_degree(&p, v));
        }
    }
}
