//! Sequential PageRank reference.

use super::{neighbour, out_degree, PrParams};

/// Run `p.iters` power iterations; returns the rank vector.
pub fn rank(p: &PrParams) -> Vec<f64> {
    let n = p.n;
    let mut cur = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..p.iters {
        contrib.iter_mut().for_each(|c| *c = 0.0);
        for v in 0..n {
            let d = out_degree(p, v);
            let share = cur[v] / d as f64;
            for k in 0..d {
                contrib[neighbour(p, v, k)] += share;
            }
        }
        let teleport = (1.0 - p.damping) / n as f64;
        for (c, r) in cur.iter_mut().zip(&contrib) {
            *c = teleport + p.damping * r;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_stays_bounded_and_deterministic() {
        let p = PrParams::new(300);
        let r = rank(&p);
        assert_eq!(r, rank(&p));
        let total: f64 = r.iter().sum();
        // Push PageRank without dangling mass is conservative up to the
        // teleport mixing; total stays near 1.
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(r.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn hubs_outrank_tail_vertices() {
        let p = PrParams::new(600);
        let r = rank(&p);
        let head: f64 = r[..p.n / 8].iter().sum::<f64>() / (p.n / 8) as f64;
        let tail: f64 = r[p.n / 8..].iter().sum::<f64>() / (p.n - p.n / 8) as f64;
        assert!(head > 2.0 * tail, "head {head} vs tail {tail}");
    }
}
