//! PPM version of PageRank: the irregular scatter is a combining write.
//!
//! Two global phases per iteration: (1) every vertex accumulates its
//! rank share into its out-neighbours' contribution slots — the runtime
//! merges the per-node contributions and ships one bundle entry per
//! touched vertex per node; (2) every vertex folds the teleport term into
//! its own (locally owned) slot. No communication code anywhere.

use ppm_core::{AccumOp, NodeCtx};
use ppm_simnet::SimTime;

use super::{neighbour, out_degree, PrParams};

/// Run PageRank on the PPM runtime; returns the gathered rank vector and
/// the simulated finish instant.
pub fn rank(node: &mut NodeCtx<'_>, p: &PrParams) -> (Vec<f64>, SimTime) {
    let params = *p;
    let n = p.n;
    let cur = node.alloc_global_balanced::<f64>(n);
    let contrib = node.alloc_global_balanced::<f64>(n);

    let len = node.local_range(&cur).len();
    node.with_local_mut(&cur, |s| s.fill(1.0 / n as f64));

    let vpv = params.vertices_per_vp.max(1);
    // The VP count is fixed from the initial (block-equal) bounds; under
    // adaptive balancing the node's span can move between phases, so each
    // phase re-derives its slice — work follows the data.
    let k = len.div_ceil(vpv).max(1);
    let slice = move |r: std::ops::Range<usize>, vr: usize| {
        let cpv = vpv.max(r.len().div_ceil(k));
        let a = (r.start + vr * cpv).min(r.end);
        (a, (a + cpv).min(r.end))
    };

    for _ in 0..params.iters {
        node.ppm_do(k, move |vp| async move {
            // Phase 1: push shares along the out-edges.
            let v2 = vp.clone();
            vp.global_phase(|ph| async move {
                let (a, b) = slice(v2.local_range(&cur), v2.node_rank());
                for v in a..b {
                    let d = out_degree(&params, v);
                    let share = ph.get(&cur, v).await / d as f64;
                    for e in 0..d {
                        ph.accumulate(&contrib, neighbour(&params, v, e), AccumOp::Add, share);
                    }
                    v2.charge_flops(2 * d as u64 + 1);
                }
            })
            .await;

            // Phase 2: teleport mix (all local).
            let v2 = vp.clone();
            vp.global_phase(|ph| async move {
                let (a, b) = slice(v2.local_range(&contrib), v2.node_rank());
                let teleport = (1.0 - params.damping) / n as f64;
                for v in a..b {
                    let c = ph.get(&contrib, v).await;
                    ph.put(&cur, v, teleport + params.damping * c);
                    v2.charge_flops(2);
                }
            })
            .await;
        });
    }

    let t = node.now();
    (node.gather_global(&cur), t)
}
