//! In-repo seeded PRNG (std-only policy: no `rand` crate).
//!
//! SplitMix64 (Steele, Lea & Flood 2014): a 64-bit mixing generator with a
//! single u64 of state. It is not cryptographic, but it is fast, passes
//! BigCrush when used as a stream, and — the property the workspace
//! actually relies on — is *bit-deterministic for a given seed on every
//! platform*, which keeps every sampler (Plummer spheres, test-case
//! generation) reproducible.

/// Seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits of the next u64).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via 128-bit multiply (Lemire's unbiased-
    /// enough-for-simulation fast path; the tiny modulo bias of plain `%`
    /// is avoided without a rejection loop).
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index over an empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = g.gen_range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            let i = g.gen_index(17);
            assert!(i < 17);
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value of SplitMix64 seeded with 0 (pins the algorithm,
        // so a refactor cannot silently change every downstream dataset).
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
