//! The CG application's linear system: a 27-point implicit finite
//! difference discretization of a 3-D diffusion problem (paper §4.2).
//!
//! The paper solves a 16.7M-row system of this form on a "3D chimney
//! domain"; we generate the same stencil on a `gx × gy × gz` box (the
//! chimney is a tall box: `gz` can exceed `gx`/`gy`). The matrix is the
//! standard HPCG-style SPD operator: diagonal 26, −1 for each of the up to
//! 26 neighbours.

use crate::sparse::Csr;

/// Problem description: grid shape plus derived sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stencil27 {
    /// Grid extent in x.
    pub gx: usize,
    /// Grid extent in y.
    pub gy: usize,
    /// Grid extent in z.
    pub gz: usize,
}

impl Stencil27 {
    /// A cubic grid.
    pub fn cube(g: usize) -> Self {
        Stencil27 {
            gx: g,
            gy: g,
            gz: g,
        }
    }

    /// A "chimney": footprint `g × g`, height `4g` (tall box like the
    /// paper's domain).
    pub fn chimney(g: usize) -> Self {
        Stencil27 {
            gx: g,
            gy: g,
            gz: 4 * g,
        }
    }

    /// Number of unknowns.
    #[inline]
    pub fn n(&self) -> usize {
        self.gx * self.gy * self.gz
    }

    /// Flattened index of grid point `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.gx * (y + self.gy * z)
    }

    /// Grid coordinates of flattened index `i`.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.gx;
        let y = (i / self.gx) % self.gy;
        let z = i / (self.gx * self.gy);
        (x, y, z)
    }

    /// Visit the `(column, value)` entries of row `i` in ascending column
    /// order without allocating. The single generator behind
    /// [`row_entries`](Self::row_entries), [`csr_block`](Self::csr_block)
    /// and [`rhs_for_ones`](Self::rhs_for_ones).
    #[inline]
    pub fn for_each_entry(&self, i: usize, mut f: impl FnMut(usize, f64)) {
        let (x, y, z) = self.coords(i);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (nx, ny, nz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if nx < 0
                        || ny < 0
                        || nz < 0
                        || nx >= self.gx as i64
                        || ny >= self.gy as i64
                        || nz >= self.gz as i64
                    {
                        continue;
                    }
                    let j = self.idx(nx as usize, ny as usize, nz as usize);
                    let v = if j == i { 26.0 } else { -1.0 };
                    f(j, v);
                }
            }
        }
    }

    /// The `(column, value)` entries of row `i`, in ascending column order.
    pub fn row_entries(&self, i: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(27);
        self.for_each_entry(i, |j, v| out.push((j, v)));
        out
    }

    /// Assemble the CSR block for rows `range` (global column indexing).
    /// Rows stream straight into the CSR arrays — no intermediate
    /// per-row vectors — so peak memory is the block itself.
    pub fn csr_block(&self, range: std::ops::Range<usize>) -> Csr {
        let rows = range.len();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        // Interior rows carry 27 entries; boundary rows fewer. Reserving
        // for the dense case wastes under 4% on any grid ≥ 16³.
        let mut col_idx = Vec::with_capacity(rows * 27);
        let mut values = Vec::with_capacity(rows * 27);
        for i in range {
            self.for_each_entry(i, |j, v| {
                col_idx.push(j);
                values.push(v);
            });
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols: self.n(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Chunked row iterator: yields `(row range, CSR block)` pairs covering
    /// `range` in ascending order, at most `chunk_rows` rows per block
    /// (0 = the whole range as a single block). Each block is generated
    /// lazily when the iterator reaches it, so a consumer that processes
    /// and drops blocks holds O(chunk) matrix state instead of the full
    /// local block — the companion knob to the runtime's tile budget
    /// (DESIGN.md §18).
    pub fn row_chunks(
        &self,
        range: std::ops::Range<usize>,
        chunk_rows: usize,
    ) -> impl Iterator<Item = (std::ops::Range<usize>, Csr)> + '_ {
        let chunk = if chunk_rows == 0 {
            range.len().max(1)
        } else {
            chunk_rows
        };
        let (start, end) = (range.start, range.end);
        (0..range.len().div_ceil(chunk)).map(move |k| {
            let lo = start + k * chunk;
            let hi = (lo + chunk).min(end);
            (lo..hi, self.csr_block(lo..hi))
        })
    }

    /// Right-hand side making `x = 1⃗` the exact solution (`b = A·1⃗`),
    /// the standard HPCG validation trick.
    pub fn rhs_for_ones(&self, i: usize) -> f64 {
        let mut sum = 0.0;
        self.for_each_entry(i, |_, v| sum += v);
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_rows_have_27_entries() {
        let s = Stencil27::cube(5);
        let mid = s.idx(2, 2, 2);
        assert_eq!(s.row_entries(mid).len(), 27);
        // corner has 8 entries (itself + 7 neighbours)
        assert_eq!(s.row_entries(s.idx(0, 0, 0)).len(), 8);
    }

    #[test]
    fn idx_coords_roundtrip() {
        let s = Stencil27 {
            gx: 3,
            gy: 4,
            gz: 5,
        };
        for i in 0..s.n() {
            let (x, y, z) = s.coords(i);
            assert_eq!(s.idx(x, y, z), i);
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let s = Stencil27::cube(4);
        let a = s.csr_block(0..s.n());
        // check A[i][j] == A[j][i] by scanning
        for i in 0..s.n() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let (jc, jv) = a.row(j);
                let pos = jc.binary_search(&i).expect("symmetric pattern");
                assert_eq!(jv[pos], v);
            }
        }
    }

    #[test]
    fn matrix_is_diagonally_dominant_spd_style() {
        // Weakly diagonally dominant everywhere (interior rows have 26
        // off-diagonal −1s against the 26 diagonal), strictly dominant at
        // the boundary — which is what makes the operator SPD.
        let s = Stencil27::chimney(3);
        let a = s.csr_block(0..s.n());
        let mut strict = 0usize;
        for i in 0..s.n() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off, "row {i}: {diag} vs {off}");
            if diag > off {
                strict += 1;
            }
        }
        assert!(strict > 0, "boundary rows must be strictly dominant");
    }

    #[test]
    fn rhs_for_ones_is_row_sum() {
        let s = Stencil27::cube(3);
        let a = s.csr_block(0..s.n());
        let ones = vec![1.0; s.n()];
        let mut b = vec![0.0; s.n()];
        a.spmv(&ones, &mut b);
        for (i, &bi) in b.iter().enumerate() {
            assert_eq!(bi, s.rhs_for_ones(i));
        }
    }

    #[test]
    fn block_rows_match_full_matrix() {
        let s = Stencil27::cube(4);
        let full = s.csr_block(0..s.n());
        let block = s.csr_block(10..20);
        for (local, global) in (10..20).enumerate() {
            assert_eq!(block.row(local), full.row(global));
        }
    }

    #[test]
    fn row_chunks_cover_the_range_exactly() {
        let s = Stencil27::chimney(3);
        let full = s.csr_block(5..50);
        // Chunked generation concatenates to the monolithic block, for a
        // chunk that divides the range, one that leaves a short tail, and
        // the 0 = "one block" convention.
        for chunk in [1, 7, 9, 45, 1000, 0] {
            let mut next = 5usize;
            for (rg, blk) in s.row_chunks(5..50, chunk) {
                assert_eq!(rg.start, next, "chunk={chunk}");
                assert_eq!(blk.rows, rg.len());
                for (li, gi) in rg.clone().enumerate() {
                    assert_eq!(blk.row(li), full.row(gi - 5), "chunk={chunk}");
                }
                next = rg.end;
            }
            assert_eq!(next, 50, "chunk={chunk}");
        }
        assert_eq!(s.row_chunks(7..7, 4).count(), 0, "empty range, no chunks");
    }
}
