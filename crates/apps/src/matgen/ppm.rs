//! PPM version of the matrix generation.
//!
//! Per level: one `PPM_do` with two global phases — fill the level's
//! integration table (each VP computes the slots its node owns), then
//! compute the level's matrix entries, bulk-reading the hash-scattered
//! table values through the shared array. The random fine-grained reads
//! are expressed as plain indexing; the runtime bundles them.

use ppm_core::NodeCtx;
use ppm_simnet::SimTime;

use super::{coef, quad_value, read_idx, MatGenParams};

/// Generate the matrix on the PPM runtime. Returns the per-row entry sums
/// (gathered) plus the simulated instant generation finished.
pub fn generate(node: &mut NodeCtx<'_>, p: &MatGenParams) -> (Vec<f64>, SimTime) {
    let params = *p;
    let n = p.n();
    let table = node.alloc_global_balanced::<f64>(n);
    let rowsum = node.alloc_global_balanced::<f64>(n);

    for l in 0..p.levels {
        let off = params.offset(l);
        let w = params.width(l);
        // Rows of level >= l that this node owns right now: fixes the
        // level's VP count. Under adaptive balancing the spans can move at
        // any later phase boundary, so the phases below re-derive their
        // slices from the live bounds.
        let my_rows = node.local_range(&rowsum);
        let row_base0 = my_rows.start.max(off);
        let row_end0 = my_rows.end.max(row_base0);

        let rpv = params.rows_per_vp.max(1);
        let k = ((row_end0 - row_base0).div_ceil(rpv)).max(1);

        node.ppm_do(k, move |vp| async move {
            let vr = vp.node_rank();

            // Phase 1: numerical integration into the shared table —
            // each VP fills a slice of the level-l slots this node owns.
            let v = vp.clone();
            vp.global_phase(|ph| async move {
                let mine = v.local_range(&table);
                let slot_base = mine.start.max(off);
                let slot_end = mine.end.min(off + w).max(slot_base);
                let spv = (slot_end - slot_base).div_ceil(k).max(1);
                let slot_lo = (slot_base + vr * spv).min(slot_end);
                let slot_hi = (slot_lo + spv).min(slot_end);
                for g in slot_lo..slot_hi {
                    ph.put(&table, g, quad_value(l, g - off));
                    v.charge_flops(params.quad_flops);
                }
            })
            .await;

            // Phase 2: this level's entries, one bulk read per VP.
            let v = vp.clone();
            vp.global_phase(|ph| async move {
                let mine = v.local_range(&rowsum);
                let row_base = mine.start.max(off);
                let row_end = mine.end.max(row_base);
                let cpv = rpv.max((row_end - row_base).div_ceil(k));
                let row_lo = (row_base + vr * cpv).min(row_end);
                let row_hi = (row_lo + cpv).min(row_end);
                let c_per = params.per_level_entries;
                let m_per = params.terms;
                let reads: Vec<usize> = (row_lo..row_hi)
                    .flat_map(|i| {
                        (0..c_per).flat_map(move |c| {
                            (0..m_per).map(move |m| off + read_idx(i, l, c, m, w))
                        })
                    })
                    .collect();
                let tv = ph.get_many(&table, reads).await;
                let mut at = 0;
                for i in row_lo..row_hi {
                    // Matches the sequential reference's per-entry addition
                    // order, so results are bit-identical.
                    let mut rs = ph.get(&rowsum, i).await; // local row
                    for c in 0..c_per {
                        let mut acc = 0.0;
                        for m in 0..m_per {
                            acc += coef(i, l, c, m) * tv[at];
                            at += 1;
                        }
                        rs += acc;
                        v.charge_flops(params.entry_flops());
                    }
                    ph.put(&rowsum, i, rs);
                }
            })
            .await;
        });
    }

    let t_gen = node.now();
    (node.gather_global(&rowsum), t_gen)
}
