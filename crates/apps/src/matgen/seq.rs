#![allow(clippy::needless_range_loop)] // index math mirrors the formulas
//! Sequential reference for the matrix generation.

use super::{entry_value, quad_value, MatGenParams};

/// Generate the matrix sequentially. Returns the per-row sums of the
/// entries (in entry order), the validation quantity all versions agree on
/// bit-for-bit.
pub fn generate(p: &MatGenParams) -> Vec<f64> {
    let n = p.n();
    let mut rowsum = vec![0.0f64; n];
    let mut table = vec![0.0f64; n];

    for l in 0..p.levels {
        // Integration table of level l.
        let off = p.offset(l);
        for j in 0..p.width(l) {
            table[off + j] = quad_value(l, j);
        }
        // All entries whose column level is l (rows at level >= l).
        for i in p.offset(l)..n {
            for c in 0..p.per_level_entries {
                rowsum[i] += entry_value(p, i, l, c, |j| table[off + j]);
            }
        }
    }
    rowsum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nontrivial() {
        let p = MatGenParams::new(3, 8);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a, b);
        assert_eq!(a.len(), 56);
        assert!(a.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn level0_rows_only_touch_level0() {
        // A level-0 row's sum must not change if we add more levels.
        let p2 = MatGenParams::new(2, 8);
        let p3 = MatGenParams::new(3, 8);
        let a = generate(&p2);
        let b = generate(&p3);
        for i in 0..8 {
            assert_eq!(a[i], b[i], "row {i}");
        }
    }
}
