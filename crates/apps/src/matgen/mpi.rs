//! MPI version of the matrix generation.
//!
//! One rank per core; the integration tables and the rows are block-
//! distributed over ranks. Each level requires the explicit machinery the
//! paper charges against MPI (§4.6): gathering the hash-scattered table
//! indices every rank needs, deduplicating and grouping them by owner,
//! exchanging request index lists and value responses with `alltoallv`,
//! and indexing into the received buffers during entry computation.

use ppm_mps::Comm;
use ppm_simnet::SimTime;

use super::{coef, quad_value, read_idx, MatGenParams};

fn block(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    let bs = n.div_ceil(size).max(1);
    (rank * bs).min(n)..((rank + 1) * bs).min(n)
}

fn owner_of(g: usize, n: usize, size: usize) -> usize {
    let bs = n.div_ceil(size).max(1);
    (g / bs).min(size - 1)
}

/// Generate the matrix on the MPI-like substrate. Returns the per-row
/// entry sums (gathered) plus the simulated instant generation finished.
pub fn generate(comm: &mut Comm<'_>, p: &MatGenParams) -> (Vec<f64>, SimTime) {
    let n = p.n();
    let size = comm.size();
    let rank = comm.rank();
    let rows = block(n, rank, size);
    let tbl = block(n, rank, size);
    let mut my_table = vec![0.0f64; tbl.len()];
    let mut rowsum = vec![0.0f64; rows.len()];

    for l in 0..p.levels {
        let off = p.offset(l);
        let w = p.width(l);

        // 1. Numerical integration of this rank's slots of level l.
        let slot_lo = tbl.start.max(off);
        let slot_hi = tbl.end.min(off + w).max(slot_lo);
        for g in slot_lo..slot_hi {
            my_table[g - tbl.start] = quad_value(l, g - off);
            comm.charge_flops(p.quad_flops);
        }

        // 2. Collect the table positions this rank's entries will read,
        //    deduplicated and sorted (owner groups become contiguous).
        let row_lo = rows.start.max(off);
        let mut needed: Vec<u64> = (row_lo..rows.end)
            .flat_map(|i| {
                (0..p.per_level_entries).flat_map(move |c| {
                    (0..p.terms).map(move |m| (off + read_idx(i, l, c, m, w)) as u64)
                })
            })
            .collect();
        comm.charge_mem_ops(needed.len() as u64);
        needed.sort_unstable();
        needed.dedup();

        // 3. Group requests by owner and exchange index lists.
        let mut requests: Vec<Vec<u64>> = (0..size).map(|_| Vec::new()).collect();
        for &g in &needed {
            requests[owner_of(g as usize, n, size)].push(g);
        }
        let asked = comm.alltoallv(requests);

        // 4. Serve every rank's request from the local table slice.
        let responses: Vec<Vec<f64>> = asked
            .iter()
            .map(|idxs| {
                comm.charge_mem_ops(idxs.len() as u64);
                idxs.iter()
                    .map(|&g| my_table[g as usize - tbl.start])
                    .collect()
            })
            .collect();
        let received = comm.alltoallv(responses);

        // 5. Flatten the responses back into request order (owners are
        //    ascending, and each owner's list preserved our sorted order).
        let values: Vec<f64> = received.into_iter().flatten().collect();
        debug_assert_eq!(values.len(), needed.len());
        let lookup = |g: usize| -> f64 {
            let pos = needed.binary_search(&(g as u64)).expect("requested above");
            values[pos]
        };

        // 6. Compute this level's entries.
        for i in row_lo..rows.end {
            let li = i - rows.start;
            for c in 0..p.per_level_entries {
                let mut acc = 0.0;
                for m in 0..p.terms {
                    acc += coef(i, l, c, m) * lookup(off + read_idx(i, l, c, m, w));
                }
                rowsum[li] += acc;
                comm.charge_flops(p.entry_flops());
            }
        }
    }

    let t_gen = comm.now();
    let full: Vec<f64> = comm.allgather(rowsum).into_iter().flatten().collect();
    (full, t_gen)
}
