//! Application 2: sparse matrix generation for the multiscale collocation
//! method (paper §4.3, Figure 2).
//!
//! The paper generates the system matrix of a multiscale collocation method
//! for integral equations [Chen, Wu & Xu 2007]: basis functions live on `L`
//! levels of size `n₀·2^ℓ`; the algorithm iterates through the levels,
//! storing the (very expensive) numerical-integration results of each level
//! as global data and then reading them back at *hash-scattered* positions
//! determined by the matrix's nonzero pattern and the entries' linear
//! combinations. We reproduce exactly that structure with a synthetic
//! quadrature — a deterministic hash value plus a tunable flop charge — so
//! all three implementations compute bit-identical matrices while the
//! access pattern (high-volume random fine-grained reads of freshly
//! produced global data) matches the paper's description.
//!
//! Every row `i` (at level `ℓᵢ`) has `C` entries in each column level
//! `ℓ' ≤ ℓᵢ`, and each entry is a combination of `M` values of level `ℓ'`'s
//! integration table.

pub mod mpi;
pub mod ppm;
pub mod seq;

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct MatGenParams {
    /// Number of levels `L`.
    pub levels: usize,
    /// Base level size `n₀`.
    pub n0: usize,
    /// Entries per row per column level (`C`).
    pub per_level_entries: usize,
    /// Table reads per entry (`M`, the linear-combination width).
    pub terms: usize,
    /// Flops charged per integration-table value (the expensive quadrature;
    /// the paper calls the computation "rather complex", §4.5).
    pub quad_flops: u64,
    /// PPM only: rows per virtual processor.
    pub rows_per_vp: usize,
}

impl MatGenParams {
    /// A small but structurally faithful default.
    pub fn new(levels: usize, n0: usize) -> Self {
        MatGenParams {
            levels,
            n0,
            per_level_entries: 4,
            terms: 4,
            quad_flops: 400,
            rows_per_vp: 32,
        }
    }

    /// Size of level `l`.
    #[inline]
    pub fn width(&self, l: usize) -> usize {
        self.n0 << l
    }

    /// Offset of level `l`'s section in the concatenated table / row space.
    #[inline]
    pub fn offset(&self, l: usize) -> usize {
        self.n0 * ((1 << l) - 1)
    }

    /// Total rows (= total table length): `n₀·(2^L − 1)`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offset(self.levels)
    }

    /// Level of row (or table slot) `i`.
    pub fn level_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n());
        let mut l = 0;
        while self.offset(l + 1) <= i {
            l += 1;
        }
        l
    }

    /// Total nonzero entries of the generated matrix.
    pub fn nnz(&self) -> usize {
        (0..self.n())
            .map(|i| (self.level_of(i) + 1) * self.per_level_entries)
            .sum()
    }

    /// Flops charged per matrix entry (the `M`-term combination).
    #[inline]
    pub fn entry_flops(&self) -> u64 {
        2 * self.terms as u64
    }
}

/// The split-mix hash: the single source of all synthetic randomness, so
/// every implementation sees identical data.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x243F6A8885A308D3;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Uniform in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Synthetic quadrature value of table slot `j` at level `l`.
#[inline]
pub fn quad_value(l: usize, j: usize) -> f64 {
    unit(mix(&[1, l as u64, j as u64]))
}

/// Combination coefficient of term `m` of entry `(row, level, c)`,
/// in `[−0.5, 0.5)`.
#[inline]
pub fn coef(row: usize, l: usize, c: usize, m: usize) -> f64 {
    unit(mix(&[2, row as u64, l as u64, c as u64, m as u64])) - 0.5
}

/// Level-local table index read by term `m` of entry `(row, level, c)`.
#[inline]
pub fn read_idx(row: usize, l: usize, c: usize, m: usize, width: usize) -> usize {
    (mix(&[3, row as u64, l as u64, c as u64, m as u64]) % width as u64) as usize
}

/// One matrix entry, given the level-`l` table section.
/// `table_at(j)` must return `T_l[j]` for level-local `j`.
pub fn entry_value(
    p: &MatGenParams,
    row: usize,
    l: usize,
    c: usize,
    mut table_at: impl FnMut(usize) -> f64,
) -> f64 {
    let w = p.width(l);
    let mut acc = 0.0;
    for m in 0..p.terms {
        acc += coef(row, l, c, m) * table_at(read_idx(row, l, c, m, w));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let p = MatGenParams::new(3, 8);
        assert_eq!(p.width(0), 8);
        assert_eq!(p.width(2), 32);
        assert_eq!(p.offset(0), 0);
        assert_eq!(p.offset(1), 8);
        assert_eq!(p.offset(3), 56);
        assert_eq!(p.n(), 56);
        assert_eq!(p.level_of(0), 0);
        assert_eq!(p.level_of(7), 0);
        assert_eq!(p.level_of(8), 1);
        assert_eq!(p.level_of(55), 2);
    }

    #[test]
    fn nnz_counts_per_level_entries() {
        let p = MatGenParams::new(2, 4);
        // 4 rows at level 0 (1 level each), 8 rows at level 1 (2 levels).
        assert_eq!(p.nnz(), (4 + 8 * 2) * p.per_level_entries);
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let v = quad_value(1, 5);
        assert!((0.0..1.0).contains(&v));
        let c = coef(3, 1, 0, 2);
        assert!((-0.5..0.5).contains(&c));
        // read indices stay in range
        for m in 0..8 {
            assert!(read_idx(9, 2, 1, m, 32) < 32);
        }
    }

    #[test]
    fn entry_value_is_the_m_term_combination() {
        let p = MatGenParams::new(2, 4);
        let table: Vec<f64> = (0..p.width(1)).map(|j| quad_value(1, j)).collect();
        let direct = entry_value(&p, 5, 1, 0, |j| table[j]);
        let mut manual = 0.0;
        for m in 0..p.terms {
            manual += coef(5, 1, 0, m) * table[read_idx(5, 1, 0, m, p.width(1))];
        }
        assert_eq!(direct, manual);
    }
}
