//! # ppm-apps — the paper's applications
//!
//! The three unstructured applications of the paper's evaluation (§4), each
//! implemented three ways on the simulated cluster:
//!
//! | Application | Paper | Sequential | PPM | MPI baseline |
//! |---|---|---|---|---|
//! | Conjugate Gradient solver (27-pt 3-D diffusion) | §4.2, Fig. 1 | [`cg::seq`] | [`cg::ppm`] | [`cg::mpi`] (tuned halo exchange) |
//! | Sparse matrix generation, multiscale collocation | §4.3, Fig. 2 | [`matgen::seq`] | [`matgen::ppm`] | [`matgen::mpi`] (hand-bundled table exchange) |
//! | Barnes–Hut N-body | §4.4, Fig. 3 | [`barnes_hut::seq`] | [`barnes_hut::ppm`] | [`barnes_hut::mpi`] (replicated-tree method) |
//! | PageRank (demonstration beyond the evaluation; §1's "graph algorithms") | — | [`pagerank::seq`] | [`pagerank::ppm`] | [`pagerank::mpi`] |
//!
//! Every version of an application charges identical floating-point work
//! and computes (numerically) the same answer, so the simulated-time
//! comparisons isolate the programming models — which is what the paper's
//! figures show.

pub mod barnes_hut;
pub mod cg;
pub mod matgen;
pub mod pagerank;
pub mod rng;
pub mod sparse;
pub mod stencil27;
