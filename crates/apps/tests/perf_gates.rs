//! Acceptance gates for the phase-coherent read cache and wake-on-arrival
//! wave pipelining (DESIGN.md §13), at the figure-1 smoke configuration
//! (8x8x32 chimney, 10 CG iterations, 4 Franklin nodes — the config CI
//! runs): with both optimizations on, the solution must stay bit-identical
//! while simulated makespan, bundles sent, and bytes on the wire all drop
//! strictly below the both-off (seed) run.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::PpmConfig;
use ppm_simnet::{Counters, SimTime};

/// Result bits, simulated makespan, and job-total counters of one run.
type Run = (Vec<u64>, SimTime, Counters);

fn fig1_smoke(cfg: PpmConfig) -> Run {
    let p = CgParams {
        problem: Stencil27::chimney(8),
        iters: 10,
        rows_per_vp: 64,
        collect_x: true,
        tol: None,
        spmv_chunk: 0,
    };
    let report = ppm_core::run(cfg, move |node| {
        let (out, _) = cg::ppm::solve(node, &p);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    });
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    (first, report.makespan(), report.total_counters())
}

// Knobs are pinned explicitly (not left to the `PPM_READ_CACHE` /
// `PPM_WAVE_PIPELINE` env defaults) so CI matrix cells that override the
// environment still test both sides.
fn both_on(cfg: PpmConfig) -> PpmConfig {
    cfg.with_read_cache(true).with_wave_pipelining(true)
}

fn both_off(cfg: PpmConfig) -> PpmConfig {
    cfg.with_read_cache(false).with_wave_pipelining(false)
}

#[test]
fn fig1_smoke_opts_strictly_beat_seed_with_identical_results() {
    let (bits_on, t_on, c_on) = fig1_smoke(both_on(PpmConfig::franklin(4)));
    let (bits_off, t_off, c_off) = fig1_smoke(both_off(PpmConfig::franklin(4)));
    println!(
        "fig1 smoke  on: makespan {t_on:?}, bundles {}, bytes {}\n\
         fig1 smoke off: makespan {t_off:?}, bundles {}, bytes {}",
        c_on.bundles_sent, c_on.bytes_sent, c_off.bundles_sent, c_off.bytes_sent
    );
    assert_eq!(bits_on, bits_off, "optimizations changed the CG solution");
    assert!(
        t_on < t_off,
        "makespan must strictly drop: on {t_on:?}, off {t_off:?}"
    );
    assert!(
        c_on.bundles_sent < c_off.bundles_sent,
        "bundles_sent must strictly drop: on {}, off {}",
        c_on.bundles_sent,
        c_off.bundles_sent
    );
    assert!(
        c_on.bytes_sent < c_off.bytes_sent,
        "bytes_sent must strictly drop: on {}, off {}",
        c_on.bytes_sent,
        c_off.bytes_sent
    );
    // The new counters actually fire on this config…
    assert!(c_on.cache_hits > 0, "no cache hits on fig1 smoke");
    assert!(c_on.partial_wakes > 0, "no partial wakes on fig1 smoke");
    // …and are properly silenced with the knobs off.
    assert_eq!(c_off.cache_hits, 0);
    assert_eq!(c_off.partial_wakes, 0);
    assert!(
        c_off.cache_misses >= c_on.cache_misses,
        "cache off must reach the wire at least as often"
    );
}

/// Each optimization alone also keeps the bits and never costs time.
#[test]
fn fig1_smoke_each_opt_alone_is_no_worse() {
    let (bits_off, t_off, _) = fig1_smoke(both_off(PpmConfig::franklin(4)));
    for (desc, cfg) in [
        (
            "cache only",
            both_on(PpmConfig::franklin(4)).with_wave_pipelining(false),
        ),
        (
            "pipeline only",
            both_on(PpmConfig::franklin(4)).with_read_cache(false),
        ),
    ] {
        let (bits, t, _) = fig1_smoke(cfg);
        assert_eq!(bits, bits_off, "{desc}: changed the CG solution");
        assert!(
            t <= t_off,
            "{desc}: makespan {t:?} worse than off {t_off:?}"
        );
    }
}
