//! Property-based tests of the application substrates (in-repo `testkit`
//! harness from ppm-core).

use ppm_apps::barnes_hut::{morton, BBox, Body};
use ppm_apps::matgen::{self, MatGenParams};
use ppm_apps::sparse::Csr;
use ppm_apps::stencil27::Stencil27;
use ppm_core::testkit::forall;
use ppm_core::{prop_assert, prop_assert_eq};

#[test]
fn morton_roundtrip() {
    forall(
        "morton_roundtrip",
        64,
        |g| {
            (
                g.usize_in(1..11),
                (g.u64() as u32, g.u64() as u32, g.u64() as u32),
            )
        },
        |&(depth, raw)| {
            if depth == 0 || depth > 10 {
                return Ok(());
            }
            let side = 1u32 << depth;
            let (x, y, z) = (raw.0 % side, raw.1 % side, raw.2 % side);
            let k = morton::encode(x, y, z, depth);
            prop_assert!(k < 1u64 << (3 * depth));
            prop_assert_eq!(morton::decode(k, depth), (x, y, z));
            // Ancestors are prefixes.
            for at in 0..=depth {
                prop_assert_eq!(morton::ancestor(k, depth, at), k >> (3 * (depth - at)));
            }
            Ok(())
        },
    );
}

#[test]
fn morton_preserves_containment() {
    forall(
        "morton_preserves_containment",
        64,
        |g| {
            (
                g.usize_in(2..9),
                (g.u64() as u32, g.u64() as u32, g.u64() as u32),
            )
        },
        |&(depth, raw)| {
            if !(2..=8).contains(&depth) {
                return Ok(());
            }
            // A child's ancestor at depth-1 equals the key of the coarser
            // grid coordinates.
            let side = 1u32 << depth;
            let (x, y, z) = (raw.0 % side, raw.1 % side, raw.2 % side);
            let child = morton::encode(x, y, z, depth);
            let parent = morton::encode(x / 2, y / 2, z / 2, depth - 1);
            prop_assert_eq!(child / 8, parent);
            Ok(())
        },
    );
}

#[test]
fn stencil_rows_symmetric_and_bounded() {
    forall(
        "stencil_rows_symmetric_and_bounded",
        32,
        |g| (g.usize_in(1..6), g.usize_in(1..6), g.usize_in(1..6)),
        |&(gx, gy, gz)| {
            if gx == 0 || gy == 0 || gz == 0 {
                return Ok(());
            }
            let s = Stencil27 { gx, gy, gz };
            for i in 0..s.n() {
                let row = s.row_entries(i);
                prop_assert!(!row.is_empty() && row.len() <= 27);
                // Columns ascend and include the diagonal.
                prop_assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
                prop_assert!(row.iter().any(|&(j, v)| j == i && v == 26.0));
                for &(j, v) in &row {
                    // Symmetry: (j, i) exists with the same value.
                    let back = s.row_entries(j);
                    prop_assert!(back.iter().any(|&(jj, vv)| jj == i && vv == v));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn csr_spmv_matches_dense() {
    forall(
        "csr_spmv_matches_dense",
        64,
        |g| (g.usize_in(1..8), g.usize_in(1..8), g.u64()),
        |&(rows, cols, seed)| {
            if rows == 0 || cols == 0 {
                return Ok(());
            }
            // Deterministic pseudo-random sparse matrix.
            let h = |a: u64, b: u64| matgen::splitmix64(seed ^ (a << 32) ^ b);
            let lists: Vec<Vec<(usize, f64)>> = (0..rows)
                .map(|r| {
                    (0..cols)
                        .filter(|&c| h(r as u64, c as u64) % 3 == 0)
                        .map(|c| (c, (h(r as u64, c as u64) % 100) as f64 - 50.0))
                        .collect()
                })
                .collect();
            let a = Csr::from_rows(cols, &lists);
            let x: Vec<f64> = (0..cols).map(|c| (h(7, c as u64) % 10) as f64).collect();
            let mut y = vec![0.0; rows];
            a.spmv(&x, &mut y);
            for r in 0..rows {
                let dense: f64 = lists[r].iter().map(|&(c, v)| v * x[c]).sum();
                prop_assert_eq!(y[r], dense);
            }
            Ok(())
        },
    );
}

#[test]
fn matgen_geometry_consistent() {
    forall(
        "matgen_geometry_consistent",
        32,
        |g| (g.usize_in(1..6), g.usize_in(1..20)),
        |&(levels, n0)| {
            if levels == 0 || n0 == 0 {
                return Ok(());
            }
            let p = MatGenParams::new(levels, n0);
            // level_of is the inverse of the offsets.
            for l in 0..levels {
                prop_assert_eq!(p.level_of(p.offset(l)), l);
                prop_assert_eq!(p.level_of(p.offset(l) + p.width(l) - 1), l);
            }
            prop_assert_eq!(p.offset(levels), p.n());
            // read indices always in range
            for m in 0..p.terms {
                let l = levels - 1;
                prop_assert!(matgen::read_idx(3, l, 1, m, p.width(l)) < p.width(l));
            }
            Ok(())
        },
    );
}

#[test]
fn bbox_keys_are_grid_consistent() {
    forall(
        "bbox_keys_are_grid_consistent",
        64,
        |g| {
            (
                g.vec(1..50, |g| {
                    (
                        g.f64_in(-10.0..10.0),
                        g.f64_in(-10.0..10.0),
                        g.f64_in(-10.0..10.0),
                    )
                }),
                g.usize_in(1..8),
            )
        },
        |(pts, depth)| {
            let depth = *depth;
            if pts.is_empty() || depth == 0 || depth > 8 {
                return Ok(());
            }
            let bodies: Vec<Body> = pts
                .iter()
                .map(|&(x, y, z)| Body {
                    x,
                    y,
                    z,
                    mass: 1.0,
                    ..Body::default()
                })
                .collect();
            let bb = BBox::of(&bodies);
            for b in &bodies {
                let k = bb.key_of(b.x, b.y, b.z, depth);
                prop_assert!(k < 1u64 << (3 * depth));
                // The ancestor relationship holds between depths.
                if depth > 1 {
                    let parent = bb.key_of(b.x, b.y, b.z, depth - 1);
                    prop_assert_eq!(k >> 3, parent);
                }
            }
            Ok(())
        },
    );
}
