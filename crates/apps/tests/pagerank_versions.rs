//! Cross-version validation of the PageRank demonstration app.
//!
//! Unlike the matrix generation (whose entries are computed row-locally),
//! PageRank's contributions to one vertex are *combined across nodes*: the
//! runtime pre-combines per node and then folds the node partials, while
//! the sequential reference left-folds over sources one at a time. Those
//! associations can differ in the last ulp, so cross-version checks use a
//! tight relative tolerance; run-to-run determinism is still bit-exact.

use ppm_apps::pagerank::{self, PrParams};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-12 * w.abs().max(1e-300),
            "{what}: rank[{i}] {g} vs {w}"
        );
    }
}

#[test]
fn ppm_matches_sequential_to_ulp() {
    let p = PrParams::new(400);
    let reference = pagerank::seq::rank(&p);
    for nodes in [1u32, 2, 3] {
        let report = ppm_core::run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
            pagerank::ppm::rank(node, &p).0
        });
        for got in &report.results {
            assert_close(got, &reference, &format!("ppm nodes={nodes}"));
        }
        // On one node there is a single partial per vertex, so the fold
        // order coincides and agreement is exact.
        if nodes == 1 {
            assert_eq!(report.results[0], reference);
        }
    }
}

#[test]
fn mpi_matches_sequential_to_ulp() {
    let p = PrParams::new(400);
    let reference = pagerank::seq::rank(&p);
    for (nodes, cores) in [(1u32, 1u32), (2, 2), (3, 2)] {
        let report = ppm_mps::run(MachineConfig::new(nodes, cores), move |comm| {
            pagerank::mpi::rank(comm, &p).0
        });
        for got in &report.results {
            assert_close(got, &reference, &format!("mpi {nodes}x{cores}"));
        }
    }
}

/// The skewed power-law fixture: all three versions agree on it, and the
/// PPM version agrees even while the adaptive balancer is migrating the
/// partition under the iteration loop.
#[test]
fn skewed_fixture_versions_agree() {
    let p = PrParams::skewed(400);
    let reference = pagerank::seq::rank(&p);
    for nodes in [1u32, 2, 3] {
        for adaptive in [false, true] {
            let cfg = PpmConfig::new(MachineConfig::new(nodes, 2)).with_adaptive_balance(adaptive);
            let report = ppm_core::run(cfg, move |node| pagerank::ppm::rank(node, &p).0);
            for got in &report.results {
                assert_close(
                    got,
                    &reference,
                    &format!("ppm skewed nodes={nodes} adaptive={adaptive}"),
                );
            }
        }
    }
    let report = ppm_mps::run(MachineConfig::new(3, 2), move |comm| {
        pagerank::mpi::rank(comm, &p).0
    });
    for got in &report.results {
        assert_close(got, &reference, "mpi skewed 3x2");
    }
}

#[test]
fn ppm_pagerank_is_bitwise_deterministic() {
    let p = PrParams::new(300);
    let go = || {
        ppm_core::run(PpmConfig::franklin(3), move |node| {
            let (r, t) = pagerank::ppm::rank(node, &p);
            (r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), t)
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn push_scatter_bundles_well() {
    // The irregular scatter must compress into few messages — the point of
    // running a graph kernel on PPM.
    let p = PrParams::new(2000);
    let report = ppm_core::run(PpmConfig::franklin(4), move |node| {
        pagerank::ppm::rank(node, &p);
        node.ep_counters()
    });
    let c = report
        .counters
        .iter()
        .fold(ppm_simnet::Counters::default(), |a, b| a.merge(b));
    assert!(c.remote_puts > 50_000, "scatter size: {}", c.remote_puts);
    // Per iteration: ≤ nodes·(nodes−1) write bundles per phase pair.
    assert!(
        c.bundles_sent <= 4 * 3 * (p.iters as u64 * 2 + 2),
        "bundles {}",
        c.bundles_sent
    );
}

/// The PPM PageRank (accumulate-heavy scatter) is a conforming phase
/// program under the conformance checker: all cross-VP combining goes
/// through `accumulate`, never plain `put`.
#[test]
fn ppm_version_is_phase_conformant() {
    let p = PrParams::new(200);
    for nodes in [1u32, 3] {
        let report = ppm_core::run(
            PpmConfig::new(MachineConfig::new(nodes, 2)).with_checker(true),
            move |node| {
                pagerank::ppm::rank(node, &p);
                node.take_violations()
            },
        );
        for v in &report.results {
            assert!(v.is_empty(), "nodes={nodes}: checker reported {v:?}");
        }
    }
}
