//! Cross-version validation of the matrix generation: PPM and MPI must be
//! bit-identical to the sequential reference, and the simulated times must
//! show the paper's Figure 2 character (PPM consistently ahead).

use ppm_apps::matgen::{self, MatGenParams};
use ppm_core::PpmConfig;
use ppm_simnet::{MachineConfig, SimTime};

fn params() -> MatGenParams {
    MatGenParams::new(4, 8) // 120 rows, 4 levels
}

#[test]
fn ppm_is_bit_identical_to_sequential() {
    let reference = matgen::seq::generate(&params());
    for nodes in [1u32, 2, 3, 5] {
        let p = params();
        let report = ppm_core::run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
            matgen::ppm::generate(node, &p).0
        });
        for got in &report.results {
            assert_eq!(got, &reference, "nodes={nodes}");
        }
    }
}

#[test]
fn mpi_is_bit_identical_to_sequential() {
    let reference = matgen::seq::generate(&params());
    for (nodes, cores) in [(1u32, 1u32), (1, 4), (2, 3), (4, 2)] {
        let p = params();
        let report = ppm_mps::run(MachineConfig::new(nodes, cores), move |comm| {
            matgen::mpi::generate(comm, &p).0
        });
        for got in &report.results {
            assert_eq!(got, &reference, "{nodes}x{cores}");
        }
    }
}

#[test]
fn figure2_character_ppm_consistently_faster() {
    // Figure 2: heavy per-entry computation makes the PPM overhead
    // negligible while its bundling/exchange efficiency wins — PPM should
    // beat MPI at every node count here.
    let mut p = MatGenParams::new(5, 16);
    p.quad_flops = 2000;
    for nodes in [2u32, 4, 8] {
        let ppm_t = ppm_core::run(PpmConfig::franklin(nodes), move |node| {
            matgen::ppm::generate(node, &p).1
        })
        .results
        .into_iter()
        .fold(SimTime::ZERO, SimTime::max);
        let mpi_t = ppm_mps::run(MachineConfig::franklin(nodes), move |comm| {
            matgen::mpi::generate(comm, &p).1
        })
        .results
        .into_iter()
        .fold(SimTime::ZERO, SimTime::max);
        assert!(
            ppm_t < mpi_t,
            "nodes={nodes}: PPM {ppm_t} should beat MPI {mpi_t}"
        );
    }
}

#[test]
fn ppm_matgen_is_deterministic() {
    let p = params();
    let go = || {
        ppm_core::run(PpmConfig::new(MachineConfig::new(3, 2)), move |node| {
            let (sums, t) = matgen::ppm::generate(node, &p);
            (
                sums.iter().fold(0u64, |a, v| a.wrapping_add(v.to_bits())),
                t,
            )
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan(), b.makespan());
}

/// The PPM matrix generation is a conforming phase program under the
/// conformance checker.
#[test]
fn ppm_version_is_phase_conformant() {
    for nodes in [1u32, 4] {
        let p = params();
        let report = ppm_core::run(
            PpmConfig::new(MachineConfig::new(nodes, 2)).with_checker(true),
            move |node| {
                matgen::ppm::generate(node, &p);
                node.take_violations()
            },
        );
        for v in &report.results {
            assert!(v.is_empty(), "nodes={nodes}: checker reported {v:?}");
        }
    }
}
