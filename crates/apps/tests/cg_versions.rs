//! Cross-version validation of the CG application: the PPM program and the
//! MPI baseline must agree with the sequential reference, on several
//! machine shapes, and the simulated-time relationship between them must
//! show the paper's Figure 1 character.

use ppm_apps::cg::{self, CgParams};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

fn params() -> CgParams {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    p
}

#[test]
fn ppm_matches_sequential() {
    let reference = cg::seq::solve(&params());
    for nodes in [1u32, 2, 3, 4] {
        let p = params();
        let report = ppm_core::run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
            cg::ppm::solve(node, &p)
        });
        for (out, _) in &report.results {
            assert!(
                (out.rr - reference.rr).abs() <= 1e-9 * (1.0 + reference.rr),
                "nodes={nodes}: rr {} vs reference {}",
                out.rr,
                reference.rr
            );
            let max_dx = out
                .x
                .iter()
                .zip(&reference.x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(max_dx < 1e-8, "nodes={nodes}: max |Δx| = {max_dx}");
        }
    }
}

#[test]
fn hierarchical_ppm_matches_plain_ppm_bitwise() {
    // Same arithmetic, different storage levels: results must be
    // bit-identical, and the node-shared variant must be *faster* (its
    // x/r/ap accesses take the cheaper node-memory path).
    for nodes in [1u32, 2, 4] {
        let p = params();
        let plain = ppm_core::run(PpmConfig::franklin(nodes), move |node| {
            let (out, t) = cg::ppm::solve(node, &p);
            (
                out.rr.to_bits(),
                out.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                t,
            )
        });
        let p = params();
        let hier = ppm_core::run(PpmConfig::franklin(nodes), move |node| {
            let (out, t) = cg::ppm_hier::solve(node, &p);
            (
                out.rr.to_bits(),
                out.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                t,
            )
        });
        for (a, b) in plain.results.iter().zip(&hier.results) {
            assert_eq!(a.0, b.0, "nodes={nodes}: rr differs");
            assert_eq!(a.1, b.1, "nodes={nodes}: x differs");
            assert!(
                b.2 < a.2,
                "nodes={nodes}: hierarchical {} should beat plain {}",
                b.2,
                a.2
            );
        }
    }
}

#[test]
fn mpi_matches_sequential() {
    let reference = cg::seq::solve(&params());
    for (nodes, cores) in [(1u32, 1u32), (1, 4), (2, 2), (3, 2)] {
        let p = params();
        let report = ppm_mps::run(MachineConfig::new(nodes, cores), move |comm| {
            cg::mpi::solve(comm, &p)
        });
        for (out, _) in &report.results {
            assert!(
                (out.rr - reference.rr).abs() <= 1e-9 * (1.0 + reference.rr),
                "{nodes}x{cores}: rr {} vs {}",
                out.rr,
                reference.rr
            );
            let max_dx = out
                .x
                .iter()
                .zip(&reference.x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(max_dx < 1e-8, "{nodes}x{cores}: max |Δx| = {max_dx}");
        }
    }
}

#[test]
fn both_versions_converge_toward_ones() {
    let p = CgParams::cube(6, 30);
    let ppm_out = ppm_core::run(PpmConfig::franklin(2), move |node| {
        cg::ppm::solve(node, &p).0
    });
    let mpi_out = ppm_mps::run(MachineConfig::franklin(2), move |comm| {
        cg::mpi::solve(comm, &p).0
    });
    assert!(ppm_out.results[0].max_error_vs_ones() < 1e-6);
    assert!(mpi_out.results[0].max_error_vs_ones() < 1e-6);
}

#[test]
fn figure1_character_ppm_loses_on_one_node_catches_up() {
    // The paper's Figure 1 story: PPM is slower on one node (shared-access
    // overhead) but the gap narrows as nodes (and communication) grow.
    let p = params().without_x();
    let time = |nodes: u32| {
        let ppm_t = ppm_core::run(PpmConfig::franklin(nodes), move |node| {
            cg::ppm::solve(node, &p).1
        })
        .results
        .iter()
        .copied()
        .fold(ppm_simnet::SimTime::ZERO, ppm_simnet::SimTime::max);
        let mpi_t = ppm_mps::run(MachineConfig::franklin(nodes), move |comm| {
            cg::mpi::solve(comm, &p).1
        })
        .results
        .iter()
        .copied()
        .fold(ppm_simnet::SimTime::ZERO, ppm_simnet::SimTime::max);
        (ppm_t, mpi_t)
    };
    let (ppm1, mpi1) = time(1);
    let (ppm4, mpi4) = time(4);
    let ratio1 = ppm1.as_ns_f64() / mpi1.as_ns_f64();
    let ratio4 = ppm4.as_ns_f64() / mpi4.as_ns_f64();
    assert!(ratio1 > 1.0, "PPM must lose on 1 node: ratio {ratio1:.2}");
    assert!(
        ratio4 < ratio1,
        "the PPM/MPI ratio must shrink with node count: {ratio1:.2} -> {ratio4:.2}"
    );
}

#[test]
fn tolerance_stops_early_and_uniformly() {
    // Generous iteration cap, tight tolerance: both parallel versions must
    // stop early, at (nearly) the same iteration as the sequential
    // reference (reduction trees round differently, so allow ±1), with the
    // residual actually under the threshold.
    let p = CgParams::cube(6, 100).with_tol(1e-6);
    let seq = cg::seq::solve(&p);
    assert!(seq.iters_done < 100, "must stop early: {}", seq.iters_done);

    let pp = p;
    let ppm_rep = ppm_core::run(PpmConfig::franklin(2), move |node| {
        let (out, _) = cg::ppm::solve(node, &pp);
        (out.iters_done, out.rr)
    });
    let pp = p;
    let mpi_rep = ppm_mps::run(MachineConfig::franklin(2), move |comm| {
        let (out, _) = cg::mpi::solve(comm, &pp);
        (out.iters_done, out.rr)
    });
    let rr0: f64 = {
        let prob = p.problem;
        (0..prob.n()).map(|i| prob.rhs_for_ones(i).powi(2)).sum()
    };
    let limit = 1e-12 * rr0;
    for (iters_done, rr) in ppm_rep.results.iter().chain(&mpi_rep.results) {
        assert!(
            (*iters_done as i64 - seq.iters_done as i64).abs() <= 1,
            "iterations {iters_done} vs seq {}",
            seq.iters_done
        );
        assert!(*rr <= limit * (1.0 + 1e-9), "rr {rr} vs limit {limit}");
    }
}

#[test]
fn ppm_cg_is_deterministic() {
    let p = params();
    let go = || {
        ppm_core::run(PpmConfig::new(MachineConfig::new(3, 2)), move |node| {
            let (out, t) = cg::ppm::solve(node, &p);
            (out.rr.to_bits(), t)
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan(), b.makespan());
}

/// The PPM CG solver is a conforming phase program: with the conformance
/// checker enabled, no write-write conflicts or read-own-write hazards.
#[test]
fn ppm_version_is_phase_conformant() {
    for nodes in [1u32, 3] {
        let p = params();
        let report = ppm_core::run(
            PpmConfig::new(MachineConfig::new(nodes, 2)).with_checker(true),
            move |node| {
                cg::ppm::solve(node, &p);
                node.take_violations()
            },
        );
        for v in &report.results {
            assert!(v.is_empty(), "nodes={nodes}: checker reported {v:?}");
        }
    }
}
