//! Acceptance gates for trace-guided adaptive repartitioning
//! (DESIGN.md §14): on deliberately skewed fixtures the adaptive runs
//! must strictly beat the static ones on simulated makespan and on the
//! max/mean per-node compute ratio while producing bit-identical
//! solutions; on the uniform figure-1 smoke configuration they must be
//! no worse. A traced run additionally proves the `rebalance` events
//! actually fire (and say how much moved).

use ppm_apps::barnes_hut::{self, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::pagerank::{self, PrParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::{PpmConfig, TraceSink};
use ppm_simnet::{Counters, SimTime};

const NODES: u32 = 4;

fn adaptive(on: bool) -> PpmConfig {
    // Pinned explicitly (not left to the `PPM_ADAPTIVE` env default) so CI
    // matrix cells that override the environment still test both sides.
    PpmConfig::franklin(NODES).with_adaptive_balance(on)
}

/// Result bits, simulated makespan, and per-node counters of one run.
type Run = (Vec<u64>, SimTime, Vec<Counters>);

/// max/mean per-node compute (flops), in permille: 1000 = perfectly
/// balanced, 2000 = the busiest node does twice the mean.
fn imbalance_permille(counters: &[Counters]) -> u64 {
    let max = counters.iter().map(|c| c.flops).max().unwrap_or(0);
    let total: u64 = counters.iter().map(|c| c.flops).sum();
    max * counters.len() as u64 * 1000 / total.max(1)
}

fn check_agreement(report: &ppm_simnet::JobReport<Vec<u64>>) -> Vec<u64> {
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    first
}

fn skewed_pagerank(cfg: PpmConfig) -> Run {
    let p = PrParams::skewed(4096);
    let report = ppm_core::run(cfg, move |node| {
        let (ranks, _) = pagerank::ppm::rank(node, &p);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        ranks.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    });
    let bits = check_agreement(&report);
    (bits, report.makespan(), report.counters.clone())
}

fn clustered_barnes_hut(cfg: PpmConfig) -> Run {
    let mut p = BhParams::clustered(768);
    p.steps = 4; // enough phase boundaries for several rebalance windows
    let report = ppm_core::run(cfg, move |node| {
        let (bodies, _) = barnes_hut::ppm::simulate(node, &p);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bodies
            .iter()
            .flat_map(|b| [b.x, b.y, b.z, b.vx, b.vy, b.vz].map(f64::to_bits))
            .collect::<Vec<u64>>()
    });
    let bits = check_agreement(&report);
    (bits, report.makespan(), report.counters.clone())
}

fn fig1_smoke(cfg: PpmConfig) -> Run {
    let p = CgParams {
        problem: Stencil27::chimney(8),
        iters: 10,
        rows_per_vp: 64,
        collect_x: true,
        tol: None,
        spmv_chunk: 0,
    };
    let report = ppm_core::run(cfg, move |node| {
        let (out, _) = cg::ppm::solve(node, &p);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    });
    let bits = check_agreement(&report);
    (bits, report.makespan(), report.counters.clone())
}

#[test]
fn skewed_pagerank_adaptive_strictly_beats_static() {
    let (bits_on, t_on, c_on) = skewed_pagerank(adaptive(true));
    let (bits_off, t_off, c_off) = skewed_pagerank(adaptive(false));
    let (r_on, r_off) = (imbalance_permille(&c_on), imbalance_permille(&c_off));
    println!(
        "skewed pagerank  adaptive: makespan {t_on:?}, max/mean {r_on}‰\n\
         skewed pagerank    static: makespan {t_off:?}, max/mean {r_off}‰"
    );
    assert_eq!(bits_on, bits_off, "repartitioning changed the ranks");
    assert!(
        t_on < t_off,
        "adaptive makespan must strictly drop: on {t_on:?}, off {t_off:?}"
    );
    assert!(
        r_on < r_off,
        "max/mean compute ratio must strictly drop: on {r_on}‰, off {r_off}‰"
    );
}

#[test]
fn clustered_barnes_hut_adaptive_strictly_beats_static() {
    let (bits_on, t_on, c_on) = clustered_barnes_hut(adaptive(true));
    let (bits_off, t_off, c_off) = clustered_barnes_hut(adaptive(false));
    let (r_on, r_off) = (imbalance_permille(&c_on), imbalance_permille(&c_off));
    println!(
        "clustered BH  adaptive: makespan {t_on:?}, max/mean {r_on}‰\n\
         clustered BH    static: makespan {t_off:?}, max/mean {r_off}‰"
    );
    assert_eq!(bits_on, bits_off, "repartitioning changed the trajectories");
    assert!(
        t_on < t_off,
        "adaptive makespan must strictly drop: on {t_on:?}, off {t_off:?}"
    );
    assert!(
        r_on < r_off,
        "max/mean compute ratio must strictly drop: on {r_on}‰, off {r_off}‰"
    );
}

/// Uniform workload: the balancer must see the loads as balanced, never
/// migrate, and leave the run untouched down to the makespan and every
/// counter.
#[test]
fn uniform_fig1_smoke_is_no_worse_with_adaptive_on() {
    let (bits_on, t_on, c_on) = fig1_smoke(adaptive(true));
    let (bits_off, t_off, c_off) = fig1_smoke(adaptive(false));
    assert_eq!(bits_on, bits_off, "adaptive changed the CG solution");
    assert!(
        t_on <= t_off,
        "adaptive must not slow the uniform run: on {t_on:?}, off {t_off:?}"
    );
    assert_eq!(
        c_on, c_off,
        "a uniform run must not migrate (counters must match exactly)"
    );
}

/// Sparse K_MIGRATE exchange (DESIGN.md §17): on the skewed fixtures —
/// where rebalances demonstrably fire — the sparse sender-set protocol
/// must leave results and makespan bit-identical to the legacy all-to-all
/// while sending strictly fewer messages (no empty end-of-phase or
/// end-of-rebalance tokens). Bundle counts must not change at all: only
/// token messages disappear, never payload.
#[test]
fn sparse_exchange_cuts_messages_on_skewed_fixtures() {
    let msgs = |c: &[Counters]| c.iter().map(|c| c.msgs_sent).sum::<u64>();
    let bundles = |c: &[Counters]| c.iter().map(|c| c.bundles_sent).sum::<u64>();
    for (what, run) in [
        ("skewed pagerank", skewed_pagerank as fn(PpmConfig) -> Run),
        ("clustered BH", clustered_barnes_hut),
    ] {
        let (bits_s, t_s, c_s) = run(adaptive(true).with_sparse_tokens(true));
        let (bits_l, t_l, c_l) = run(adaptive(true).with_sparse_tokens(false));
        assert_eq!(bits_s, bits_l, "{what}: sparse exchange changed results");
        assert_eq!(t_s, t_l, "{what}: sparse exchange changed the makespan");
        let (m_s, m_l) = (msgs(&c_s), msgs(&c_l));
        println!("{what}: msgs_sent sparse {m_s} vs legacy {m_l}");
        assert!(
            m_s < m_l,
            "{what}: sparse must send strictly fewer messages \
             (sparse {m_s}, legacy {m_l})"
        );
        assert_eq!(
            bundles(&c_s),
            bundles(&c_l),
            "{what}: only tokens may disappear, never payload bundles"
        );
    }
}

/// Sum one `u64` payload field over a run's `rebalance` instants, after
/// asserting the instants exist on every node.
fn moved_totals(sink: &TraceSink, what: &str) -> (u64, u64) {
    let events: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "rebalance")
        .collect();
    assert!(!events.is_empty(), "{what}: no rebalance events");
    for tid in 0..NODES {
        assert!(
            events.iter().any(|e| e.tid == tid),
            "{what}: node {tid} never rebalanced"
        );
    }
    let sum = |key: &str| -> u64 {
        events
            .iter()
            .flat_map(|e| &e.args)
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                ppm_simnet::ArgValue::U64(n) => *n,
                _ => panic!("{key} must be a u64 payload"),
            })
            .sum()
    };
    (sum("moved_elems_out"), sum("moved_bytes"))
}

/// The decision actually fires: traced skewed runs carry `rebalance`
/// instants on every node whose payloads report how much moved (the
/// EXPERIMENTS.md `moved` column harvests these prints).
#[test]
fn skewed_runs_emit_rebalance_trace_events() {
    let p = PrParams::skewed(4096);
    let sink = TraceSink::new();
    ppm_core::run_traced(adaptive(true), &sink, "skewed pagerank", move |node| {
        pagerank::ppm::rank(node, &p).1
    });
    let (elems, bytes) = moved_totals(&sink, "skewed pagerank");
    println!("skewed pagerank moved: {elems} elems, {bytes} bytes");

    let mut p = BhParams::clustered(768);
    p.steps = 4;
    let sink = TraceSink::new();
    ppm_core::run_traced(adaptive(true), &sink, "clustered bh", move |node| {
        barnes_hut::ppm::simulate(node, &p).1
    });
    let (elems, bytes) = moved_totals(&sink, "clustered bh");
    println!("clustered BH moved: {elems} elems, {bytes} bytes");
}
