//! Tracing on a real application at the figure-1 smoke configuration:
//! the CG solver on the 8x8x32 chimney, 10 iterations, 4 Franklin nodes
//! (the config CI runs with `--trace`). Tracing must cost zero simulated
//! time (well under the 5% overhead gate), the exports must be valid
//! JSON, and the per-phase trace must reconcile with the phase traffic.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::{PpmConfig, TraceSink};
use ppm_simnet::validate_json;

fn fig1_smoke_params() -> CgParams {
    CgParams {
        problem: Stencil27::chimney(8),
        iters: 10,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    }
}

const NODES: u32 = 4;

#[test]
fn fig1_smoke_trace_overhead_is_zero_and_trace_reconciles() {
    let p = fig1_smoke_params();
    let base = ppm_core::run(PpmConfig::franklin(NODES), move |node| {
        cg::ppm::solve(node, &p).1
    });

    let sink = TraceSink::new();
    let traced = ppm_core::run_traced(
        PpmConfig::franklin(NODES),
        &sink,
        "fig1 smoke",
        move |node| cg::ppm::solve(node, &p).1,
    );

    // Overhead gate: the issue asks for < 5% on this config; tracing
    // charges no simulated time at all, so the makespans are equal.
    let (tb, tt) = (base.makespan(), traced.makespan());
    assert!(
        (tt - tb).as_ps() * 20 < tb.as_ps().max(1),
        "tracing overhead {:?} is >= 5% of {tb:?}",
        tt - tb
    );
    assert_eq!(tt, tb, "tracing must charge zero simulated time");
    assert_eq!(traced.counters, base.counters, "tracing touched counters");

    // One process, one track per node.
    assert_eq!(sink.jobs(), vec![("fig1 smoke".to_string(), NODES)]);
    let events = sink.events();
    for tid in 0..NODES {
        assert!(
            events
                .iter()
                .any(|e| e.tid == tid && e.name == "global_phase"),
            "node {tid} has no phase spans"
        );
    }

    // Per node: every wave is one bundle per destination, and each phase
    // summary's counter delta reconciles with the phase's traffic.
    for tid in 0..NODES {
        let mut wave_bundles = 0u64;
        let mut phases = 0u64;
        for e in events.iter().filter(|e| e.tid == tid) {
            match e.name {
                "wave" => {
                    assert_eq!(
                        e.arg_u64("bundles"),
                        e.arg_u64("dests"),
                        "node {tid}: one request bundle per (destination, wave)"
                    );
                    wave_bundles += e.arg_u64("bundles").unwrap();
                }
                "global_phase" => {
                    let req = e.arg_u64("req_bundles_out").unwrap();
                    let wr = e.arg_u64("write_bundles_out").unwrap();
                    assert_eq!(
                        req, wave_bundles,
                        "node {tid} phase {phases}: wave bundles disagree \
                         with the phase's request-bundle count"
                    );
                    // Refresh pushes ride barrier messages (tracked via
                    // the separate refresh_bundles_out arg) and so never
                    // show up in the bundle counter.
                    assert!(e.arg_u64("refresh_bundles_out").is_some());
                    assert_eq!(
                        e.arg_u64("d_bundles_sent").unwrap(),
                        req + wr,
                        "node {tid} phase {phases}: bundles_sent delta must \
                         equal request + write bundles"
                    );
                    wave_bundles = 0;
                    phases += 1;
                }
                _ => {}
            }
        }
        // 1 init phase + 3 per CG iteration.
        assert_eq!(phases, 31, "node {tid}: unexpected global phase count");
    }

    // Exports are std-validated JSON (the same check CI runs).
    validate_json(&sink.chrome_trace_json()).expect("chrome trace JSON");
    validate_json(&sink.metrics_json()).expect("metrics JSON");
}
