//! Cross-version validation of Barnes–Hut: the PPM and replicated-MPI
//! versions must reproduce the sequential trajectories bit-for-bit, and
//! the simulated times must show the Figure 3 character (PPM scales,
//! replicated MPI drowns in communication volume).

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_core::PpmConfig;
use ppm_simnet::{MachineConfig, SimTime};

fn params() -> BhParams {
    let mut p = BhParams::new(256);
    p.steps = 2;
    p
}

fn pos_bits(bodies: &[bh::Body]) -> Vec<(u64, u64, u64)> {
    bodies
        .iter()
        .map(|b| (b.x.to_bits(), b.y.to_bits(), b.z.to_bits()))
        .collect()
}

#[test]
fn ppm_matches_sequential_bitwise() {
    let reference = bh::seq::simulate(&params());
    for nodes in [1u32, 2, 3, 4] {
        let p = params();
        let report = ppm_core::run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
            bh::ppm::simulate(node, &p).0
        });
        for got in &report.results {
            assert_eq!(
                pos_bits(got),
                pos_bits(&reference),
                "nodes={nodes}: trajectories diverged"
            );
        }
    }
}

#[test]
fn mpi_matches_sequential_bitwise() {
    let reference = bh::seq::simulate(&params());
    for (nodes, cores) in [(1u32, 1u32), (1, 4), (2, 2), (3, 2)] {
        let p = params();
        let report = ppm_mps::run(MachineConfig::new(nodes, cores), move |comm| {
            bh::mpi::simulate(comm, &p).0
        });
        for got in &report.results {
            assert_eq!(pos_bits(got), pos_bits(&reference), "{nodes}x{cores}");
        }
    }
}

/// The clustered Plummer fixture: all three versions reproduce the same
/// trajectories bit-for-bit, including PPM runs where the adaptive
/// balancer migrates body partitions between steps.
#[test]
fn clustered_fixture_versions_agree_bitwise() {
    let mut p0 = BhParams::clustered(256);
    p0.steps = 2;
    let reference = bh::seq::simulate(&p0);
    for nodes in [1u32, 2, 3, 4] {
        for adaptive in [false, true] {
            let p = p0;
            let cfg = PpmConfig::new(MachineConfig::new(nodes, 2)).with_adaptive_balance(adaptive);
            let report = ppm_core::run(cfg, move |node| bh::ppm::simulate(node, &p).0);
            for got in &report.results {
                assert_eq!(
                    pos_bits(got),
                    pos_bits(&reference),
                    "nodes={nodes} adaptive={adaptive}: clustered trajectories diverged"
                );
            }
        }
    }
    let p = p0;
    let report = ppm_mps::run(MachineConfig::new(3, 2), move |comm| {
        bh::mpi::simulate(comm, &p).0
    });
    for got in &report.results {
        assert_eq!(pos_bits(got), pos_bits(&reference), "mpi clustered 3x2");
    }
}

#[test]
fn figure3_character_ppm_scales_replicated_mpi_does_not() {
    // Figure 3 discussion: the replicated method's allgather volume grows
    // with rank count; the PPM version's bundled fine-grained reads do
    // not. Compare how total time changes from 2 to 8 nodes.
    let mut p = BhParams::new(2048);
    p.steps = 1;
    let t_of = |nodes: u32| {
        let pp = p;
        let ppm_t = ppm_core::run(PpmConfig::franklin(nodes), move |node| {
            bh::ppm::simulate(node, &pp).1
        })
        .results
        .into_iter()
        .fold(SimTime::ZERO, SimTime::max);
        let mpi_t = ppm_mps::run(MachineConfig::franklin(nodes), move |comm| {
            bh::mpi::simulate(comm, &pp).1
        })
        .results
        .into_iter()
        .fold(SimTime::ZERO, SimTime::max);
        (ppm_t, mpi_t)
    };
    let (ppm2, mpi2) = t_of(2);
    let (ppm8, mpi8) = t_of(8);
    let ppm_speedup = ppm2.as_ns_f64() / ppm8.as_ns_f64();
    let mpi_speedup = mpi2.as_ns_f64() / mpi8.as_ns_f64();
    assert!(
        ppm_speedup > 1.5,
        "PPM should keep scaling 2->8 nodes (speedup {ppm_speedup:.2})"
    );
    assert!(
        ppm_speedup > mpi_speedup,
        "PPM must out-scale replicated MPI: {ppm_speedup:.2} vs {mpi_speedup:.2}"
    );
}

#[test]
fn ppm_bh_is_deterministic() {
    let p = params();
    let go = || {
        ppm_core::run(PpmConfig::new(MachineConfig::new(3, 2)), move |node| {
            let (bodies, t) = bh::ppm::simulate(node, &p);
            let hash = bodies
                .iter()
                .fold(0u64, |a, b| a.wrapping_add(b.x.to_bits()).rotate_left(7));
            (hash, t)
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan(), b.makespan());
}

/// The PPM Barnes–Hut simulation is a conforming phase program under the
/// conformance checker across its tree-build and force phases.
#[test]
fn ppm_version_is_phase_conformant() {
    for nodes in [1u32, 2] {
        let p = params();
        let report = ppm_core::run(
            PpmConfig::new(MachineConfig::new(nodes, 2)).with_checker(true),
            move |node| {
                bh::ppm::simulate(node, &p);
                node.take_violations()
            },
        );
        for v in &report.results {
            assert!(v.is_empty(), "nodes={nodes}: checker reported {v:?}");
        }
    }
}
