//! Host-parallel determinism soak (DESIGN.md §12): the intra-node VP
//! scheduler distributes VP polls over a pool of host worker threads, but
//! merges all VP effects in ascending rank order — so every observable of
//! a job (result bits, simulated makespan, counters, and the full trace
//! JSON) must be bit-identical at any thread count. This suite pins that
//! for all four applications under seeded fault schedules, and for CG
//! crash recovery.

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::matgen::{self, MatGenParams};
use ppm_apps::pagerank::{self, PrParams};
use ppm_core::{PpmConfig, TraceSink};
use ppm_simnet::{Counters, FaultConfig, MachineConfig, SimTime};

/// Every observable of one traced run: result bits, simulated makespan,
/// job-total counters, and the exported Chrome trace JSON.
struct Observables {
    bits: Vec<u64>,
    makespan: SimTime,
    counters: Counters,
    trace: String,
}

const HOST_THREADS: [usize; 3] = [1, 2, 8];
const FAULT_SEEDS: [u64; 3] = [5, 23, 71];

fn base_cfg() -> PpmConfig {
    PpmConfig::new(MachineConfig::new(3, 2))
}

fn run_app<F>(cfg: PpmConfig, label: &str, body: F) -> Observables
where
    F: Fn(&mut ppm_core::NodeCtx<'_>) -> Vec<u64> + Send + Sync,
{
    let sink = TraceSink::new();
    let report = ppm_core::run_traced(cfg, &sink, label, move |node| {
        let bits = body(node);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bits
    });
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    Observables {
        bits: first,
        makespan: report.makespan(),
        counters: report.total_counters(),
        trace: sink.chrome_trace_json(),
    }
}

/// Run the app at every thread count in `HOST_THREADS` for each config in
/// `cfgs`, asserting that thread count 1 (the reference sequential
/// schedule) and every pooled schedule agree on all observables.
///
/// The full trace JSON is compared only for fault-free configs: under the
/// reliability layer, ack counters and duplicate-suppression instants are
/// attributed at real-time envelope-arrival moments, so per-phase trace
/// deltas legitimately vary with host scheduling there. Results, makespan,
/// and job-total counters stay bit-identical regardless.
fn assert_thread_count_invariant(
    name: &str,
    cfgs: &[(String, PpmConfig)],
    run: &(dyn Fn(PpmConfig, &str) -> Observables + Sync),
) {
    for (desc, cfg) in cfgs {
        let compare_trace = !cfg.machine.faults.enabled();
        let base = run(cfg.with_host_threads(1), name);
        for threads in &HOST_THREADS[1..] {
            let got = run(cfg.with_host_threads(*threads), name);
            assert_eq!(
                got.bits, base.bits,
                "{name} [{desc}]: {threads} host threads changed the results"
            );
            assert_eq!(
                got.makespan, base.makespan,
                "{name} [{desc}]: {threads} host threads changed the makespan"
            );
            assert_eq!(
                got.counters, base.counters,
                "{name} [{desc}]: {threads} host threads changed the counters"
            );
            if compare_trace {
                assert_eq!(
                    got.trace, base.trace,
                    "{name} [{desc}]: {threads} host threads changed the trace JSON"
                );
            }
        }
    }
}

/// A clean config plus one seeded fault schedule per `FAULT_SEEDS` entry —
/// each cell with the read cache + wave pipelining (DESIGN.md §13) both on
/// (pinned explicitly, not via the env defaults) and both off, and each of
/// those with adaptive repartitioning (DESIGN.md §14) on and off — so
/// host-thread bit-identity holds on both sides of every knob, including
/// runs that migrate partitions mid-job.
fn soak_cfgs() -> Vec<(String, PpmConfig)> {
    let mut cfgs = Vec::new();
    for (kdesc, on) in [("opts on", true), ("opts off", false)] {
        for (adesc, adaptive) in [("adaptive", true), ("static", false)] {
            let knobbed = |c: PpmConfig| {
                c.with_read_cache(on)
                    .with_wave_pipelining(on)
                    .with_adaptive_balance(adaptive)
            };
            cfgs.push((format!("clean, {kdesc}, {adesc}"), knobbed(base_cfg())));
            for seed in FAULT_SEEDS {
                cfgs.push((
                    format!("faults seed {seed}, {kdesc}, {adesc}"),
                    knobbed(base_cfg().with_faults(FaultConfig::seeded(seed, 0.05, 0.03, 0.03))),
                ));
            }
        }
    }
    cfgs
}

#[test]
fn cg_is_bit_identical_across_host_thread_counts() {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    assert_thread_count_invariant("cg", &soak_cfgs(), &move |cfg, label| {
        run_app(cfg, label, move |node| {
            let (out, _) = cg::ppm::solve(node, &p);
            let mut bits = vec![out.rr.to_bits()];
            bits.extend(out.x.iter().map(|v| v.to_bits()));
            bits
        })
    });
}

#[test]
fn matgen_is_bit_identical_across_host_thread_counts() {
    let p = MatGenParams::new(4, 8);
    assert_thread_count_invariant("matgen", &soak_cfgs(), &move |cfg, label| {
        run_app(cfg, label, move |node| {
            let (m, _) = matgen::ppm::generate(node, &p);
            m.iter().map(|v| v.to_bits()).collect()
        })
    });
}

#[test]
fn pagerank_is_bit_identical_across_host_thread_counts() {
    // The skewed fixture, so the adaptive matrix cells really migrate.
    let p = PrParams::skewed(200);
    assert_thread_count_invariant("pagerank", &soak_cfgs(), &move |cfg, label| {
        run_app(cfg, label, move |node| {
            let (ranks, _) = pagerank::ppm::rank(node, &p);
            ranks.iter().map(|v| v.to_bits()).collect()
        })
    });
}

#[test]
fn barnes_hut_is_bit_identical_across_host_thread_counts() {
    // The clustered fixture, so the adaptive matrix cells really migrate.
    let mut p = BhParams::clustered(128);
    p.steps = 2;
    assert_thread_count_invariant("barnes_hut", &soak_cfgs(), &move |cfg, label| {
        run_app(cfg, label, move |node| {
            let (bodies, _) = bh::ppm::simulate(node, &p);
            bodies
                .iter()
                .flat_map(|b| {
                    [
                        b.x.to_bits(),
                        b.y.to_bits(),
                        b.z.to_bits(),
                        b.vx.to_bits(),
                        b.vy.to_bits(),
                        b.vz.to_bits(),
                    ]
                })
                .collect()
        })
    });
}

/// Phase-boundary crash recovery must itself be thread-count-independent:
/// the same crash schedule replays to the same recovered solution, redo
/// cost, and recovery count at every host thread count.
#[test]
fn cg_crash_recovery_is_host_thread_count_independent() {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    let run = move |cfg: PpmConfig, label: &str| {
        run_app(cfg, label, move |node| {
            let (out, _) = cg::ppm::solve(node, &p);
            let mut bits = vec![out.rr.to_bits()];
            bits.extend(out.x.iter().map(|v| v.to_bits()));
            bits
        })
    };
    let cfgs = vec![(
        "crash node 1 at phase 3".to_string(),
        base_cfg().with_faults(FaultConfig::NONE.with_crash(1, 3)),
    )];
    assert_thread_count_invariant("cg-crash", &cfgs, &run);
    // And the recovery really happened (at the pooled count too).
    let got = run(cfgs[0].1.with_host_threads(8), "cg-crash");
    assert_eq!(got.counters.crash_recoveries, 1);
}

/// A crash landing in the middle of an adaptively rebalancing run must
/// replay identically at every host thread count: the recovery line is
/// post-migration, so the restored partitions are the migrated ones.
#[test]
fn adaptive_crash_recovery_is_host_thread_count_independent() {
    let p = PrParams::skewed(200);
    let run = move |cfg: PpmConfig, label: &str| {
        run_app(cfg, label, move |node| {
            let (ranks, _) = pagerank::ppm::rank(node, &p);
            ranks.iter().map(|v| v.to_bits()).collect()
        })
    };
    // Crash right around the first rebalance window (the decision fires
    // once `MIN_WINDOW = 4` phases of loads are banked).
    let cfgs: Vec<(String, PpmConfig)> = [4u64, 5, 6]
        .into_iter()
        .map(|phase| {
            (
                format!("crash node 1 at phase {phase}, adaptive"),
                base_cfg()
                    .with_adaptive_balance(true)
                    .with_faults(FaultConfig::NONE.with_crash(1, phase)),
            )
        })
        .collect();
    assert_thread_count_invariant("pagerank-adaptive-crash", &cfgs, &run);
    let got = run(cfgs[0].1.with_host_threads(8), "pagerank-adaptive-crash");
    assert_eq!(got.counters.crash_recoveries, 1);
}
