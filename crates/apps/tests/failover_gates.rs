//! Acceptance gates for fail-stop failure tolerance (DESIGN.md §15):
//! every application must finish with bit-identical results after a node
//! dies permanently mid-run — with buddy replication on, at 1 and 8 host
//! threads — and the fault-free replication overhead on the figure-1
//! smoke configuration must stay under 5% simulated makespan. A traced
//! run additionally proves the `failover` instant fires on the adopting
//! buddy with the adopted footprint in its payload.

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::matgen::{self, MatGenParams};
use ppm_apps::pagerank::{self, PrParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::{PpmConfig, TraceSink};
use ppm_simnet::{ArgValue, Counters, FaultConfig, MachineConfig, SimTime};

/// Result bits, simulated makespan, and job-total counters of one run.
type Run = (Vec<u64>, SimTime, Counters);

fn base_cfg() -> PpmConfig {
    // Replication pinned explicitly (not left to the `PPM_REPLICATION` env
    // default) so CI matrix cells that override the environment still test
    // both sides: clean baselines need it off, death schedules switch it on.
    PpmConfig::new(MachineConfig::new(3, 2)).with_replication(false)
}

/// A permanent death of `node` at global phase `phase`, with the buddy
/// replication stream on so the job can survive it.
fn death_cfg(node: usize, phase: u64) -> PpmConfig {
    base_cfg()
        .with_replication(true)
        .with_faults(FaultConfig::NONE.with_permanent_crash(node, phase))
}

/// Run `body` as a PPM job, assert conformance and cross-node agreement,
/// and reduce the job to comparable bits.
fn run_app<F>(cfg: PpmConfig, body: F) -> Run
where
    F: Fn(&mut ppm_core::NodeCtx<'_>) -> Vec<u64> + Send + Sync,
{
    let report = ppm_core::run(cfg, move |node| {
        let bits = body(node);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bits
    });
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    (first, report.makespan(), report.total_counters())
}

fn run_cg(cfg: PpmConfig) -> Run {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    run_app(cfg, move |node| {
        let (out, _) = cg::ppm::solve(node, &p);
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    })
}

fn run_matgen(cfg: PpmConfig) -> Run {
    let p = MatGenParams::new(4, 8);
    run_app(cfg, move |node| {
        let (m, _) = matgen::ppm::generate(node, &p);
        m.iter().map(|v| v.to_bits()).collect()
    })
}

fn run_pagerank(cfg: PpmConfig) -> Run {
    let p = PrParams::new(200);
    run_app(cfg, move |node| {
        let (ranks, _) = pagerank::ppm::rank(node, &p);
        ranks.iter().map(|v| v.to_bits()).collect()
    })
}

fn run_barnes_hut(cfg: PpmConfig) -> Run {
    let mut p = BhParams::new(128);
    p.steps = 2;
    run_app(cfg, move |node| {
        let (bodies, _) = bh::ppm::simulate(node, &p);
        bodies
            .iter()
            .flat_map(|b| {
                [
                    b.x.to_bits(),
                    b.y.to_bits(),
                    b.z.to_bits(),
                    b.vx.to_bits(),
                    b.vy.to_bits(),
                    b.vz.to_bits(),
                ]
            })
            .collect()
    })
}

/// The tentpole gate: kill node 1 for good at `phase`, run at 1 and 8
/// host threads, and demand the bit-identical clean result each time.
fn survives_death(name: &str, phase: u64, run: &dyn Fn(PpmConfig) -> Run) {
    let (clean, clean_t, _) = run(base_cfg());
    for threads in [1usize, 8] {
        let (out, t, c) = run(death_cfg(1, phase).with_host_threads(threads));
        assert_eq!(
            out, clean,
            "{name}: results differ from fault-free after a permanent death \
             ({threads} host threads)"
        );
        assert_eq!(
            c.failovers, 1,
            "{name}: the death at phase {phase} never fired or was adopted \
             more than once"
        );
        assert_eq!(c.peers_suspected, 2, "{name}: both survivors suspect");
        assert_eq!(c.peers_confirmed_dead, 2, "{name}: both survivors confirm");
        assert!(c.replica_bytes > 0, "{name}: no replica stream flowed");
        assert!(
            t > clean_t,
            "{name}: detection + restore + redo must cost simulated time"
        );
    }
}

#[test]
fn cg_survives_a_permanent_death() {
    survives_death("cg", 3, &run_cg);
}

#[test]
fn matgen_survives_a_permanent_death() {
    survives_death("matgen", 2, &run_matgen);
}

#[test]
fn pagerank_survives_a_permanent_death() {
    survives_death("pagerank", 2, &run_pagerank);
}

#[test]
fn barnes_hut_survives_a_permanent_death() {
    survives_death("barnes_hut", 2, &run_barnes_hut);
}

/// Chaos row: a permanent death composed with a seeded random fault
/// schedule (drops, duplicates, delays) — CI sweeps `PPM_FAULT_SEED`.
#[test]
fn cg_survives_a_permanent_death_under_random_faults() {
    let seed: u64 = std::env::var("PPM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let (clean, _, _) = run_cg(base_cfg());
    let faults = FaultConfig::seeded(seed, 0.04, 0.02, 0.02).with_permanent_crash(2, 4);
    let cfg = base_cfg().with_replication(true).with_faults(faults);
    let (out, _, c) = run_cg(cfg);
    assert_eq!(out, clean, "seed {seed} + permanent death changed CG");
    assert_eq!(c.failovers, 1, "seed {seed}: the death never fired");
    assert_eq!(
        c.retries, c.faults_dropped,
        "seed {seed}: every drop retried"
    );
}

/// Edge case: the death lands in the adaptive repartitioner's first
/// migration window on the skewed fixture, so partitions are re-homed by
/// the balancer and by the failover in the same region of the run.
#[test]
fn pagerank_survives_a_death_mid_migration() {
    let p = PrParams::skewed(400);
    let run = |cfg: PpmConfig| {
        run_app(cfg, move |node| {
            let (ranks, _) = pagerank::ppm::rank(node, &p);
            ranks.iter().map(|v| v.to_bits()).collect()
        })
    };
    let (clean, _, _) = run(base_cfg().with_adaptive_balance(true));
    for phase in [4u64, 5, 6] {
        let cfg = base_cfg()
            .with_adaptive_balance(true)
            .with_replication(true)
            .with_faults(FaultConfig::NONE.with_permanent_crash(1, phase));
        let (out, _, c) = run(cfg);
        assert_eq!(
            out, clean,
            "death at phase {phase}: ranks must match the clean adaptive run"
        );
        assert_eq!(c.failovers, 1, "death at phase {phase} never fired");
    }
}

/// Edge case: two deaths. First the victim, then — one phase later — the
/// buddy that had just adopted it, forcing the replica stream to re-home.
#[test]
fn cg_survives_a_buddy_death() {
    let (clean, _, _) = run_cg(base_cfg());
    let faults = FaultConfig::NONE
        .with_permanent_crash(1, 3)
        .with_permanent_crash(2, 4);
    let (out, _, c) = run_cg(base_cfg().with_replication(true).with_faults(faults));
    assert_eq!(out, clean, "cascaded deaths changed the CG solution");
    assert_eq!(c.failovers, 2);
}

/// Edge case: both deaths at the same phase boundary; the sole survivor
/// confirms and adopts both at once.
#[test]
fn cg_survives_two_simultaneous_deaths() {
    let (clean, _, _) = run_cg(base_cfg());
    let faults = FaultConfig::NONE
        .with_permanent_crash(1, 3)
        .with_permanent_crash(2, 3);
    let (out, _, c) = run_cg(base_cfg().with_replication(true).with_faults(faults));
    assert_eq!(out, clean, "a double death changed the CG solution");
    assert_eq!(c.failovers, 2);
}

/// The failover is observable: a traced run carries exactly one
/// `failover` instant, on the adopting buddy, whose payload reports the
/// adopted footprint (the EXPERIMENTS.md failover table harvests these).
#[test]
fn permanent_death_emits_a_failover_trace_instant() {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    let sink = TraceSink::new();
    ppm_core::run_traced(death_cfg(1, 3), &sink, "cg failover", move |node| {
        cg::ppm::solve(node, &p).1
    });
    let events: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "failover")
        .collect();
    assert_eq!(events.len(), 1, "exactly one adoption for one death");
    let ev = &events[0];
    assert_eq!(ev.tid, 2, "node 2 is node 1's buddy");
    let arg = |key: &str| -> u64 {
        ev.args
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                ArgValue::U64(n) => *n,
                _ => panic!("{key} must be a u64 payload"),
            })
            .unwrap_or_else(|| panic!("failover instant lacks {key}"))
    };
    assert_eq!(arg("victim"), 1);
    assert_eq!(arg("phase"), 3);
    assert!(arg("adopted_elems") > 0, "the victim owned partitions");
    assert!(arg("adopted_bytes") > 0);
    assert!(arg("adopted_vps") > 0, "the victim ran VPs");
}

/// Replication overhead gate on the figure-1 smoke configuration (see
/// EXPERIMENTS.md): snapshot delta frames ride barrier messages that are
/// sent anyway, so a fault-free replicated run must cost < 5% simulated
/// makespan over the baseline.
#[test]
fn replication_overhead_on_fig1_smoke_is_under_5_percent() {
    let problem = Stencil27::chimney(8);
    let params = CgParams {
        problem,
        iters: 10,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    };
    let run = |cfg: PpmConfig| {
        let p = params;
        ppm_core::run(cfg, move |node| cg::ppm::solve(node, &p).1).makespan()
    };
    let base = run(PpmConfig::franklin(4));
    let repl = run(PpmConfig::franklin(4).with_replication(true));
    println!("fig1 smoke makespan: base {base:?}, replicated {repl:?}");
    assert!(repl >= base);
    let overhead = repl - base;
    assert!(
        overhead.as_ps() * 20 < base.as_ps(),
        "replication overhead {overhead:?} is >= 5% of {base:?}"
    );
}

/// With replication off and no faults, the new machinery must be
/// completely invisible: the reliability summary stays clean and the
/// fast path is byte-identical to the baseline, makespan included.
#[test]
fn replication_off_fast_path_is_untouched() {
    let (clean, clean_t, clean_c) = run_cg(base_cfg());
    let (out, t, c) = run_cg(base_cfg().with_replication(false));
    assert_eq!(out, clean);
    assert_eq!(t, clean_t, "the knob alone must not change the makespan");
    assert_eq!(c, clean_c, "the knob alone must not change any counter");
    assert!(clean_c.reliability_summary().is_clean());
    assert_eq!(c.replica_bytes, 0);
    assert_eq!(c.failovers, 0);
}
