//! Fault-soak: every application must produce bit-identical results under
//! seeded fault schedules (drops, duplicates, delays, and node crashes),
//! with zero phase-semantics violations, and equal seeds must give equal
//! runs (same retry counts, same simulated makespan).

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::matgen::{self, MatGenParams};
use ppm_apps::pagerank::{self, PrParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::PpmConfig;
use ppm_simnet::{Counters, FaultConfig, MachineConfig, SimTime};

/// Result bits, simulated makespan, and job-total counters of one run.
type Run = (Vec<u64>, SimTime, Counters);

fn base_cfg() -> PpmConfig {
    PpmConfig::new(MachineConfig::new(3, 2))
}

/// Run `body` as a PPM job, assert conformance and cross-node agreement,
/// and reduce the job to comparable bits.
fn run_app<F>(cfg: PpmConfig, body: F) -> Run
where
    F: Fn(&mut ppm_core::NodeCtx<'_>) -> Vec<u64> + Send + Sync,
{
    let report = ppm_core::run(cfg, move |node| {
        let bits = body(node);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bits
    });
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    (first, report.makespan(), report.total_counters())
}

fn run_cg(cfg: PpmConfig) -> Run {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    run_app(cfg, move |node| {
        let (out, _) = cg::ppm::solve(node, &p);
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    })
}

fn run_matgen(cfg: PpmConfig) -> Run {
    let p = MatGenParams::new(4, 8);
    run_app(cfg, move |node| {
        let (m, _) = matgen::ppm::generate(node, &p);
        m.iter().map(|v| v.to_bits()).collect()
    })
}

fn run_pagerank(cfg: PpmConfig) -> Run {
    let p = PrParams::new(200);
    run_app(cfg, move |node| {
        let (ranks, _) = pagerank::ppm::rank(node, &p);
        ranks.iter().map(|v| v.to_bits()).collect()
    })
}

fn run_barnes_hut(cfg: PpmConfig) -> Run {
    let mut p = BhParams::new(128);
    p.steps = 2;
    run_app(cfg, move |node| {
        let (bodies, _) = bh::ppm::simulate(node, &p);
        bodies
            .iter()
            .flat_map(|b| {
                [
                    b.x.to_bits(),
                    b.y.to_bits(),
                    b.z.to_bits(),
                    b.vx.to_bits(),
                    b.vy.to_bits(),
                    b.vz.to_bits(),
                ]
            })
            .collect()
    })
}

/// Clean run, then three seeded fault schedules: results must be
/// bit-identical to the clean run, faults must only cost time, and the
/// suite as a whole must actually exercise the retry machinery.
fn soak(name: &str, run: &dyn Fn(PpmConfig) -> Run) {
    let (clean, clean_t, clean_c) = run(base_cfg());
    assert!(
        clean_c.reliability_summary().is_clean(),
        "{name}: fault-free run must not touch the reliability layer: {:?}",
        clean_c.reliability_summary()
    );
    let mut injected = 0;
    for seed in [5u64, 23, 71] {
        let cfg = base_cfg().with_faults(FaultConfig::seeded(seed, 0.05, 0.03, 0.03));
        let (out, t, c) = run(cfg);
        assert_eq!(out, clean, "{name}: seed {seed} changed the results");
        assert!(t >= clean_t, "{name}: seed {seed} made the job faster");
        assert_eq!(c.retries, c.faults_dropped, "{name}: every drop is retried");
        injected += c.retries + c.dups_suppressed + c.faults_delayed;
    }
    assert!(injected > 0, "{name}: soak never injected a single fault");
}

#[test]
fn cg_survives_fault_soak() {
    soak("cg", &run_cg);
}

#[test]
fn matgen_survives_fault_soak() {
    soak("matgen", &run_matgen);
}

#[test]
fn pagerank_survives_fault_soak() {
    soak("pagerank", &run_pagerank);
}

#[test]
fn barnes_hut_survives_fault_soak() {
    soak("barnes_hut", &run_barnes_hut);
}

/// The read cache + wave pipelining (DESIGN.md §13) under the soak
/// matrix: every (schedule × knob) cell must produce the bit-identical
/// CG solution, and the optimizations must never cost simulated time.
#[test]
fn soak_matrix_is_bit_identical_across_knobs_and_opts_never_cost_time() {
    let on = |c: PpmConfig| c.with_read_cache(true).with_wave_pipelining(true);
    let off = |c: PpmConfig| c.with_read_cache(false).with_wave_pipelining(false);
    let (clean, _, _) = run_cg(on(base_cfg()));
    let schedules: Vec<(String, PpmConfig)> = std::iter::once(("clean".to_string(), base_cfg()))
        .chain([5u64, 23, 71].into_iter().map(|seed| {
            (
                format!("faults seed {seed}"),
                base_cfg().with_faults(FaultConfig::seeded(seed, 0.05, 0.03, 0.03)),
            )
        }))
        .collect();
    for (desc, cfg) in schedules {
        let (r_on, t_on, _) = run_cg(on(cfg));
        let (r_off, t_off, _) = run_cg(off(cfg));
        assert_eq!(r_on, clean, "{desc}: opts on changed the solution");
        assert_eq!(r_off, clean, "{desc}: opts off changed the solution");
        assert!(
            t_on <= t_off,
            "{desc}: opts on made the job slower ({t_on:?} > {t_off:?})"
        );
    }
}

/// Adaptive repartitioning (DESIGN.md §14) under the soak matrix: on the
/// skewed fixture — where the balancer genuinely migrates partitions —
/// every (schedule × adaptive knob) cell must produce the bit-identical
/// ranks. (The makespan *win* is gated in balance_gates.rs on the larger
/// fixture; at this soak size migration is exercised but not required to
/// pay off.)
#[test]
fn adaptive_soak_matrix_is_bit_identical_across_schedules() {
    let p = PrParams::skewed(400);
    let run = |cfg: PpmConfig| {
        run_app(cfg, move |node| {
            let (ranks, _) = pagerank::ppm::rank(node, &p);
            ranks.iter().map(|v| v.to_bits()).collect()
        })
    };
    let (clean, _, _) = run(base_cfg().with_adaptive_balance(true));
    let schedules: Vec<(String, PpmConfig)> = std::iter::once(("clean".to_string(), base_cfg()))
        .chain([5u64, 23, 71].into_iter().map(|seed| {
            (
                format!("faults seed {seed}"),
                base_cfg().with_faults(FaultConfig::seeded(seed, 0.05, 0.03, 0.03)),
            )
        }))
        .collect();
    for (desc, cfg) in schedules {
        let (r_on, t_on, _) = run(cfg.with_adaptive_balance(true));
        let (r_off, t_off, _) = run(cfg.with_adaptive_balance(false));
        assert_eq!(r_on, clean, "{desc}: adaptive changed the ranks");
        assert_eq!(r_off, clean, "{desc}: static disagrees with adaptive");
        if desc == "clean" {
            // Migration really engaged: the adaptive schedule is a
            // different schedule (moved partitions change the timeline
            // even though the solution bits cannot move).
            assert_ne!(
                t_on, t_off,
                "{desc}: adaptive run never migrated on the skewed fixture"
            );
        }
    }
}

/// A crash at the boundaries around the first migration window: recovery
/// restores the post-migration snapshot line, so the replayed run must
/// still land on the bit-identical adaptive solution.
#[test]
fn pagerank_recovers_from_a_crash_mid_migration() {
    let p = PrParams::skewed(400);
    let run = |cfg: PpmConfig| {
        run_app(cfg, move |node| {
            let (ranks, _) = pagerank::ppm::rank(node, &p);
            ranks.iter().map(|v| v.to_bits()).collect()
        })
    };
    let (clean, clean_t, _) = run(base_cfg().with_adaptive_balance(true));
    for phase in [4u64, 5, 6] {
        let cfg = base_cfg()
            .with_adaptive_balance(true)
            .with_faults(FaultConfig::NONE.with_crash(1, phase));
        let (out, t, c) = run(cfg);
        assert_eq!(
            out, clean,
            "crash at phase {phase}: recovered ranks must be bit-identical"
        );
        assert_eq!(c.crash_recoveries, 1, "crash at phase {phase}");
        assert!(
            t > clean_t,
            "crash at phase {phase}: reboot + redone compute must cost time"
        );
    }
}

#[test]
fn cg_survives_the_ci_seed() {
    // CI's fault-soak job sweeps PPM_FAULT_SEED over a small matrix; the
    // local fallback seed keeps the test meaningful in plain `cargo test`.
    let seed: u64 = std::env::var("PPM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let (clean, clean_t, _) = run_cg(base_cfg());
    let cfg = base_cfg().with_faults(FaultConfig::seeded(seed, 0.05, 0.03, 0.03));
    let (out, t, _) = run_cg(cfg);
    assert_eq!(out, clean, "seed {seed} changed the CG solution");
    assert!(t >= clean_t, "seed {seed} made the job faster");
}

#[test]
fn cg_same_seed_same_run() {
    let cfg = || base_cfg().with_faults(FaultConfig::seeded(23, 0.05, 0.03, 0.03));
    let (res_a, t_a, c_a) = run_cg(cfg());
    let (res_b, t_b, c_b) = run_cg(cfg());
    assert_eq!(res_a, res_b);
    assert_eq!(t_a, t_b, "same seed must give the same simulated makespan");
    assert_eq!(c_a, c_b, "same seed must give identical counters");
}

#[test]
fn cg_recovers_from_a_node_crash() {
    let (clean, clean_t, _) = run_cg(base_cfg());
    let cfg = base_cfg().with_faults(FaultConfig::NONE.with_crash(1, 3));
    let (out, t, c) = run_cg(cfg);
    assert_eq!(out, clean, "recovered CG solution must be bit-identical");
    assert_eq!(c.crash_recoveries, 1);
    assert!(
        t > clean_t,
        "reboot + redone compute must cost simulated time"
    );
}

#[test]
fn reliability_overhead_on_fig1_smoke_is_under_5_percent() {
    // Figure-1 smoke configuration (see EXPERIMENTS.md): 8x8x32 chimney,
    // 10 CG iterations, 4 Franklin nodes. Forcing the reliable transport
    // on without faults must cost less than 5% simulated makespan — in
    // fact exactly zero, because sequence numbers ride on envelope
    // metadata and cumulative acks are modeled as piggybacked.
    let problem = Stencil27::chimney(8);
    let params = CgParams {
        problem,
        iters: 10,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    };
    let run = |cfg: PpmConfig| {
        let p = params;
        ppm_core::run(cfg, move |node| cg::ppm::solve(node, &p).1).makespan()
    };
    let base = run(PpmConfig::franklin(4));
    let rel = run(PpmConfig::franklin(4).with_reliability(true));
    println!("fig1 smoke makespan: base {base:?}, reliable {rel:?}");
    assert!(rel >= base);
    let overhead = rel - base;
    assert!(
        overhead.as_ps() * 20 < base.as_ps(),
        "reliability overhead {overhead:?} is >= 5% of {base:?}"
    );
}

#[test]
fn cg_recovers_from_a_crash_under_random_faults() {
    let (clean, _, _) = run_cg(base_cfg());
    let faults = FaultConfig::seeded(9, 0.04, 0.02, 0.02).with_crash(2, 5);
    let (out, _, c) = run_cg(base_cfg().with_faults(faults));
    assert_eq!(out, clean);
    assert_eq!(c.crash_recoveries, 1);
    assert!(c.retries > 0, "random schedule should also drop something");
}
