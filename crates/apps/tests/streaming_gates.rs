//! Streamed-execution bit-identity gates (DESIGN.md §18): with a resident
//! tile budget set, partition tiles spill to (modeled) backing store and
//! refill on demand — but spills and refills are free in simulated time
//! and invisible to the merge order, so every observable of a job must be
//! bit-identical to the in-core run at every tile budget and host thread
//! count: result bits, simulated makespan, and all counters except the
//! `tile_spills`/`tile_refills` bookkeeping itself. This suite pins that
//! for CG across budgets × host threads, under a crash fault with spilled
//! tiles live, and for the `spmv_chunk` knob that bounds a VP's transient
//! matrix state.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_core::PpmConfig;
use ppm_simnet::{Counters, FaultConfig, MachineConfig, SimTime};

/// Observables of one run, with the streaming bookkeeping split out so the
/// rest of the counters can be compared exactly.
struct Observables {
    bits: Vec<u64>,
    makespan: SimTime,
    counters: Counters,
    tile_spills: u64,
    tile_refills: u64,
}

/// Tile budgets under test, in bytes. With `cube(8)` on 3 nodes each of
/// the four n-length f64 arrays holds ~171 local elements (~1.4 KiB), so
/// 256 B forces 4-element tiles (heavy thrash), 1 KiB ~16-element tiles,
/// and 8 KiB fits whole partitions untiled (budget on, nothing to spill).
/// 0 is the in-core reference.
const BUDGETS: [u64; 3] = [256, 1024, 8192];
const HOST_THREADS: [usize; 2] = [1, 8];

fn base_cfg() -> PpmConfig {
    PpmConfig::new(MachineConfig::new(3, 2))
}

fn cg_params() -> CgParams {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    p
}

fn run_cg(cfg: PpmConfig, params: CgParams) -> Observables {
    let budget = cfg.tile_budget;
    let report = ppm_core::run(cfg, move |node| {
        let (out, _) = cg::ppm::solve(node, &params);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        // The budget is a per-node bound on resident partition bytes;
        // the executor's evict-before-refill policy must never let the
        // tracked footprint past it (DESIGN.md §18).
        if budget > 0 {
            let peak = node.peak_bytes_resident();
            assert!(
                peak <= budget,
                "node {}: peak resident {peak} B exceeds the {budget} B budget",
                node.node_id()
            );
        }
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    });
    let first = report.results[0].clone();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r, &first, "node {i} disagrees with node 0");
    }
    let mut counters = report.total_counters();
    let (tile_spills, tile_refills) = (counters.tile_spills, counters.tile_refills);
    counters.tile_spills = 0;
    counters.tile_refills = 0;
    Observables {
        bits: first,
        makespan: report.makespan(),
        counters,
        tile_spills,
        tile_refills,
    }
}

/// Streamed runs must match the in-core reference on results, makespan,
/// and every non-streaming counter, at every budget × host thread count.
fn assert_streaming_invariant(desc: &str, mk_cfg: &dyn Fn() -> PpmConfig, params: CgParams) {
    let base = run_cg(mk_cfg().with_host_threads(1), params);
    assert_eq!(base.tile_refills, 0, "{desc}: in-core run refilled tiles");
    assert_eq!(base.tile_spills, 0, "{desc}: in-core run spilled tiles");
    for budget in BUDGETS {
        for threads in HOST_THREADS {
            let got = run_cg(
                mk_cfg().with_tile_budget(budget).with_host_threads(threads),
                params,
            );
            let tag = format!("{desc}: budget {budget} B, {threads} host threads");
            assert_eq!(got.bits, base.bits, "{tag}: results changed");
            assert_eq!(got.makespan, base.makespan, "{tag}: makespan changed");
            assert_eq!(got.counters, base.counters, "{tag}: counters changed");
            if budget < 8192 {
                // The tight budgets must actually stream (the 8 KiB one
                // fits every partition untiled — also a valid state).
                assert!(got.tile_refills > 0, "{tag}: no tiles ever refilled");
                assert!(got.tile_spills > 0, "{tag}: no tiles ever spilled");
            }
        }
    }
}

#[test]
fn cg_is_bit_identical_across_tile_budgets() {
    assert_streaming_invariant("clean", &base_cfg, cg_params());
}

#[test]
fn cg_with_runtime_opts_is_bit_identical_across_tile_budgets() {
    // Read cache + wave pipelining interact with the residency overlay
    // (refresh absorbs write through cold tiles; pipelined windows overlap
    // fault service), so the invariant is pinned on that side of the
    // knobs too.
    let mk = || base_cfg().with_read_cache(true).with_wave_pipelining(true);
    assert_streaming_invariant("opts on", &mk, cg_params());
}

/// A crash landing mid-job with spilled tiles live must restore and replay
/// exactly like the in-core crash run: recovery restores partition
/// contents, residency stays an overlay (spilled tiles stay spilled), and
/// the re-executed phases re-fault their tiles deterministically.
#[test]
fn crash_recovery_with_spilled_tiles_is_bit_identical() {
    let mk = || base_cfg().with_faults(FaultConfig::NONE.with_crash(1, 3));
    assert_streaming_invariant("crash node 1 at phase 3", &mk, cg_params());
    let got = run_cg(
        mk().with_tile_budget(BUDGETS[0]).with_host_threads(8),
        cg_params(),
    );
    assert_eq!(got.counters.crash_recoveries, 1, "recovery never happened");
}

/// `spmv_chunk` bounds a VP's transient CSR block and staged reads; the
/// per-row arithmetic order is unchanged, so the solution bits must match
/// the unchunked solver exactly (simulated time may differ — chunking
/// changes the wave structure — so only results are compared).
#[test]
fn spmv_chunking_preserves_results_bit_exactly() {
    let base = run_cg(base_cfg().with_host_threads(1), cg_params());
    for chunk in [1, 16, 64] {
        let p = cg_params().with_spmv_chunk(chunk);
        let got = run_cg(base_cfg().with_host_threads(1), p);
        assert_eq!(got.bits, base.bits, "spmv_chunk {chunk} changed results");
        // And chunked + streamed together still match the chunked in-core
        // run on every observable.
        let streamed = run_cg(
            base_cfg().with_tile_budget(BUDGETS[1]).with_host_threads(8),
            p,
        );
        assert_eq!(
            streamed.bits, got.bits,
            "chunk {chunk}: streaming changed results"
        );
        assert_eq!(
            streamed.makespan, got.makespan,
            "chunk {chunk}: streaming changed the makespan"
        );
        assert_eq!(
            streamed.counters, got.counters,
            "chunk {chunk}: streaming changed the counters"
        );
    }
}

/// The chunked row generator is exactly the monolithic block, chunk by
/// chunk — the lazy path the full-size fig1 run leans on.
#[test]
fn chunked_rows_match_monolithic_block() {
    let s = Stencil27::chimney(6);
    let full = s.csr_block(0..s.n());
    let mut rows_seen = 0;
    for (rg, blk) in s.row_chunks(0..s.n(), 100) {
        for (li, gi) in rg.clone().enumerate() {
            assert_eq!(blk.row(li), full.row(gi));
        }
        rows_seen += rg.len();
    }
    assert_eq!(rows_seen, s.n());
}
