//! Micro-benchmarks of the runtime machinery (host performance: how fast
//! the simulator + PPM runtime themselves execute — the figure binaries
//! report *simulated* time instead).
//!
//! Std-only harness (offline policy, see the workspace Cargo.toml): each
//! benchmark runs a warmup pass and a fixed number of timed iterations with
//! `std::time::Instant` and reports min/mean per-iteration wall time. The
//! non-default `criterion` cargo feature is a reserved marker for
//! environments with registry access that want the statistical harness
//! back; it refuses to build until the dependency is actually added.

#[cfg(feature = "criterion")]
compile_error!(
    "the `criterion` feature is a reserved marker: add `criterion` to \
     crates/bench/Cargo.toml [dev-dependencies] (requires crates.io access, \
     which the offline default set does not have) and restore the criterion \
     harness before enabling it"
);

use std::time::{Duration, Instant};

use ppm_apps::barnes_hut::morton;
use ppm_core::{AccumOp, PpmConfig};
use ppm_simnet::MachineConfig;

/// Benchmarks disable the conformance checker: they measure the runtime's
/// fast path, and `cargo bench` compiles without debug assertions anyway.
fn cfg(nodes: u32, cores: u32) -> PpmConfig {
    PpmConfig::new(MachineConfig::new(nodes, cores)).with_checker(false)
}

/// `--smoke` (used by CI) caps every benchmark at one timed iteration so
/// the harness exercises each workload without spending CI minutes on
/// statistics nobody reads there.
static SMOKE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let iters = if SMOKE.load(std::sync::atomic::Ordering::Relaxed) {
        1
    } else {
        iters
    };
    // Warmup.
    f();
    let mut best = Duration::MAX;
    let total_start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    let total = total_start.elapsed();
    println!(
        "{name:<40} {iters:>4} iters  min {best:>12.3?}  mean {:>12.3?}",
        total / iters
    );
}

fn phase_machinery() {
    bench("empty_global_phases_x32_2nodes", 10, || {
        ppm_core::run(cfg(2, 2), |node| {
            node.ppm_do(4, |vp| async move {
                for _ in 0..32 {
                    vp.global_phase(|_ph| async move {}).await;
                }
            });
        });
    });

    bench("node_phases_x128_1node", 10, || {
        ppm_core::run(cfg(1, 4), |node| {
            node.ppm_do(16, |vp| async move {
                for _ in 0..128 {
                    vp.node_phase(|_ph| async move {}).await;
                }
            });
        });
    });
}

fn shared_access() {
    bench("local_gets_64k", 10, || {
        ppm_core::run(cfg(1, 4), |node| {
            let a = node.alloc_global::<f64>(1 << 16);
            node.ppm_do(16, move |vp| async move {
                let i0 = vp.node_rank() * 4096;
                vp.global_phase(|ph| async move {
                    let mut acc = 0.0;
                    for i in 0..4096 {
                        acc += ph.get(&a, i0 + i).await;
                    }
                    std::hint::black_box(acc);
                })
                .await;
            });
        });
    });

    bench("remote_bulk_get_16k_2nodes", 10, || {
        ppm_core::run(cfg(2, 2), |node| {
            let a = node.alloc_global::<f64>(1 << 15);
            node.ppm_do(8, move |vp| async move {
                // Read the *other* node's half in bulk.
                let other = (1 - vp.node_id()) * (1 << 14);
                let i0 = other + vp.node_rank() * 2048;
                vp.global_phase(|ph| async move {
                    let v = ph.get_many(&a, i0..i0 + 2048).await;
                    std::hint::black_box(v.len());
                })
                .await;
            });
        });
    });

    bench("accumulate_scatter_16k", 10, || {
        ppm_core::run(cfg(2, 2), |node| {
            let a = node.alloc_global::<f64>(1024);
            node.ppm_do(8, move |vp| async move {
                let r = vp.global_rank();
                vp.global_phase(|ph| async move {
                    for i in 0..2048 {
                        ph.accumulate(&a, (i * 37 + r) % 1024, AccumOp::Add, 1.0);
                    }
                })
                .await;
            });
        });
    });
}

fn collectives() {
    for ranks in [4u32, 16] {
        bench(&format!("allreduce_x100_{ranks}ranks"), 10, || {
            ppm_mps::run(MachineConfig::new(ranks / 2, 2), |comm| {
                let mut acc = 0.0f64;
                for i in 0..100 {
                    acc = comm.allreduce(acc + i as f64, |x, y| x + y);
                }
                std::hint::black_box(acc);
            });
        });
    }
    bench("alltoallv_8ranks_1k_each", 10, || {
        ppm_mps::run(MachineConfig::new(4, 2), |comm| {
            let sends: Vec<Vec<f64>> = (0..comm.size()).map(|d| vec![d as f64; 1024]).collect();
            let r = comm.alltoallv(sends);
            std::hint::black_box(r.len());
        });
    });
}

fn utilities() {
    bench("sample_sort_32k_4nodes", 10, || {
        ppm_core::run(cfg(4, 2), |node| {
            let n = 1 << 15;
            let gsorted = node.alloc_global::<u64>(n);
            let r = node.local_range(&gsorted);
            node.with_local_mut(&gsorted, |s| {
                for (off, v) in s.iter_mut().enumerate() {
                    *v = ((r.start + off) as u64).wrapping_mul(2654435761) % 100_000;
                }
            });
            ppm_core::util::sort_global_u64(node, &gsorted);
        });
    });

    bench("morton_encode_decode_1m", 10, || {
        let mut acc = 0u64;
        for i in 0..1_000_000u32 {
            let k = morton::encode(i % 64, (i / 64) % 64, (i / 4096) % 64, 6);
            acc = acc.wrapping_add(k);
        }
        std::hint::black_box(acc);
    });
}

fn main() {
    // `cargo bench` passes harness flags (e.g. --bench); ignore everything
    // except our own --smoke switch.
    if std::env::args().any(|a| a == "--smoke") {
        SMOKE.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    phase_machinery();
    shared_access();
    collectives();
    utilities();
}
