//! Criterion micro-benchmarks of the runtime machinery (host performance:
//! how fast the simulator + PPM runtime themselves execute — the figure
//! binaries report *simulated* time instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ppm_apps::barnes_hut::morton;
use ppm_core::{AccumOp, PpmConfig};
use ppm_simnet::MachineConfig;

fn phase_machinery(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase_machinery");
    g.sample_size(10);

    g.bench_function("empty_global_phases_x32_2nodes", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(2, 2)), |node| {
                node.ppm_do(4, |vp| async move {
                    for _ in 0..32 {
                        vp.global_phase(|_ph| async move {}).await;
                    }
                });
            })
        })
    });

    g.bench_function("node_phases_x128_1node", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(1, 4)), |node| {
                node.ppm_do(16, |vp| async move {
                    for _ in 0..128 {
                        vp.node_phase(|_ph| async move {}).await;
                    }
                });
            })
        })
    });
    g.finish();
}

fn shared_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_access");
    g.sample_size(10);

    g.bench_function("local_gets_64k", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(1, 4)), |node| {
                let a = node.alloc_global::<f64>(1 << 16);
                node.ppm_do(16, move |vp| async move {
                    let i0 = vp.node_rank() * 4096;
                    vp.global_phase(|ph| async move {
                        let mut acc = 0.0;
                        for i in 0..4096 {
                            acc += ph.get(&a, i0 + i).await;
                        }
                        std::hint::black_box(acc);
                    })
                    .await;
                });
            })
        })
    });

    g.bench_function("remote_bulk_get_16k_2nodes", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(2, 2)), |node| {
                let a = node.alloc_global::<f64>(1 << 15);
                node.ppm_do(8, move |vp| async move {
                    // Read the *other* node's half in bulk.
                    let other = (1 - vp.node_id()) * (1 << 14);
                    let i0 = other + vp.node_rank() * 2048;
                    vp.global_phase(|ph| async move {
                        let v = ph.get_many(&a, i0..i0 + 2048).await;
                        std::hint::black_box(v.len());
                    })
                    .await;
                });
            })
        })
    });

    g.bench_function("accumulate_scatter_16k", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(2, 2)), |node| {
                let a = node.alloc_global::<f64>(1024);
                node.ppm_do(8, move |vp| async move {
                    let r = vp.global_rank();
                    vp.global_phase(|ph| async move {
                        for i in 0..2048 {
                            ph.accumulate(&a, (i * 37 + r) % 1024, AccumOp::Add, 1.0);
                        }
                    })
                    .await;
                });
            })
        })
    });
    g.finish();
}

fn collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("mps_collectives");
    g.sample_size(10);
    for ranks in [4u32, 16] {
        g.bench_with_input(
            BenchmarkId::new("allreduce_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    ppm_mps::run(MachineConfig::new(ranks / 2, 2), |comm| {
                        let mut acc = 0.0f64;
                        for i in 0..100 {
                            acc = comm.allreduce(acc + i as f64, |x, y| x + y);
                        }
                        std::hint::black_box(acc);
                    })
                })
            },
        );
    }
    g.bench_function("alltoallv_8ranks_1k_each", |b| {
        b.iter(|| {
            ppm_mps::run(MachineConfig::new(4, 2), |comm| {
                let sends: Vec<Vec<f64>> = (0..comm.size()).map(|d| vec![d as f64; 1024]).collect();
                let r = comm.alltoallv(sends);
                std::hint::black_box(r.len());
            })
        })
    });
    g.finish();
}

fn utilities(c: &mut Criterion) {
    let mut g = c.benchmark_group("utilities");
    g.sample_size(10);
    g.bench_function("sample_sort_32k_4nodes", |b| {
        b.iter(|| {
            ppm_core::run(PpmConfig::new(MachineConfig::new(4, 2)), |node| {
                let n = 1 << 15;
                let gsorted = node.alloc_global::<u64>(n);
                let r = node.local_range(&gsorted);
                node.with_local_mut(&gsorted, |s| {
                    for (off, v) in s.iter_mut().enumerate() {
                        *v = ((r.start + off) as u64).wrapping_mul(2654435761) % 100_000;
                    }
                });
                ppm_core::util::sort_global_u64(node, &gsorted);
            })
        })
    });

    g.bench_function("morton_encode_decode_1m", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000_000u32 {
                let k = morton::encode(i % 64, (i / 64) % 64, (i / 4096) % 64, 6);
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, phase_machinery, shared_access, collectives, utilities);
criterion_main!(benches);
