//! Failure-tolerance evaluation (DESIGN.md §15): replication overhead and
//! failover penalty on the figure-1 CG smoke configuration.
//!
//! For each node count, three runs of the same seeded job:
//!
//! * **base** — replication off, no faults (the fast path);
//! * **repl** — buddy replication on, no faults (pure streaming overhead);
//! * **death** — replication on, node 1 dies permanently at the given
//!   phase; survivors detect, confirm, and adopt, and the job finishes
//!   with the bit-identical solution (asserted).
//!
//! The counter columns are the §15 observability set: adoptions
//! (`failovers`), suspicion/confirmation totals, and replica stream
//! volume. EXPERIMENTS.md's failure-tolerance table is this output.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig_failover [-- --nodes 2,4,8 --g 8 --phase 3]
//! ```
//!
//! `--trace <path>` (or `PPM_TRACE=<path>`) records every *death* run as
//! one process of a Chrome trace-event file — the `failover` instant,
//! the `failover_restore` span, and the replica traffic are all visible
//! in Perfetto.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, mb, ms, pct, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::FaultConfig;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[2, 4, 8]);
    let g = args.usize("--g", 8);
    let phase = args.usize("--phase", 3) as u64;
    let params = CgParams {
        problem: Stencil27::chimney(g),
        iters: 10,
        rows_per_vp: 64,
        collect_x: true,
        tol: None,
        spmv_chunk: 0,
    };

    println!(
        "# Failure tolerance — CG {}x{}x{} ({} rows), 10 iterations; node 1 dies at phase {phase}\n",
        params.problem.gx,
        params.problem.gy,
        params.problem.gz,
        params.problem.n(),
    );
    header(&[
        "nodes",
        "base ms",
        "repl ms",
        "overhead",
        "death ms",
        "penalty",
        "failovers",
        "suspected",
        "confirmed",
        "replica MB",
    ]);
    for &n in &nodes {
        let p = params;
        let trace_ref = &trace;
        let run = |cfg: PpmConfig, label: Option<String>| {
            let body = move |node: &mut ppm_core::NodeCtx<'_>| {
                let (out, t) = cg::ppm::solve(node, &p);
                let mut bits = vec![out.rr.to_bits()];
                bits.extend(out.x.iter().map(|v| v.to_bits()));
                (bits, t)
            };
            let report = match (trace_ref, label) {
                (Some((sink, _)), Some(label)) => ppm_core::run_traced(cfg, sink, &label, body),
                _ => ppm_core::run(cfg, body),
            };
            let t = report
                .results
                .iter()
                .map(|(_, t)| *t)
                .fold(ppm_simnet::SimTime::ZERO, ppm_simnet::SimTime::max);
            (report.results[0].0.clone(), t, report.total_counters())
        };
        let base = PpmConfig::franklin(n);
        let (bits, t_base, _) = run(base, None);
        let (bits_repl, t_repl, _) = run(base.with_replication(true), None);
        let (bits_dead, t_dead, c) = run(
            base.with_replication(true)
                .with_faults(FaultConfig::NONE.with_permanent_crash(1, phase)),
            Some(format!("death n={n}")),
        );
        assert_eq!(bits_repl, bits, "replication changed the solution");
        assert_eq!(bits_dead, bits, "failover changed the solution");
        row(&[
            n.to_string(),
            ms(t_base),
            ms(t_repl),
            pct((t_repl - t_base).as_ps(), t_base.as_ps()),
            ms(t_dead),
            pct((t_dead - t_base).as_ps(), t_base.as_ps()),
            c.failovers.to_string(),
            c.peers_suspected.to_string(),
            c.peers_confirmed_dead.to_string(),
            mb(c.replica_bytes),
        ]);
    }
    println!("\n(simulated time; all three runs produce the bit-identical CG solution — asserted)");
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
