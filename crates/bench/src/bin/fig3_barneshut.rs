//! Figure 3: application performance of the Barnes–Hut simulation.
//!
//! Paper-reported shape (§4.5): the tree accesses are data-driven and
//! cannot be prepared in advance, so the practical MPI method replicates
//! the tree ("each node needs to receive copies of the trees from all
//! other nodes" — O(N·P) volume) and stops scaling, while "the PPM program
//! scales well as the number of nodes increases" thanks to the runtime's
//! message bundling of fine-grained tree reads.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig3_barneshut [-- --nodes 1,2,4,8 --n 4096 --steps 2]
//! ```
//!
//! `--trace <path>` / `PPM_TRACE=<path>` records the PPM runs as a Chrome
//! trace-event file plus a `<path>.metrics.json` per-phase report.

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_bench::{header, max_time, mb, ms, pct, ratio, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[1, 2, 4, 8, 16, 32, 64]);
    let n = args.usize("--n", 8192);
    let mut params = BhParams::new(n);
    params.steps = args.usize("--steps", 2);

    println!(
        "# Figure 3 — Barnes–Hut, {} bodies, depth {}, θ={}, {} steps\n",
        n, params.max_depth, params.theta, params.steps
    );
    header(&[
        "nodes",
        "cores",
        "PPM ms",
        "MPI(replicated) ms",
        "PPM/MPI",
        "PPM MB",
        "MPI MB",
        "hit%",
        "dedup",
        "pwakes",
    ]);
    for &nn in &nodes {
        let p = params;
        let ppm_report = match &trace {
            Some((sink, _)) => ppm_core::run_traced(
                PpmConfig::franklin(nn),
                sink,
                &format!("barnes_hut n={nn}"),
                move |node| bh::ppm::simulate(node, &p).1,
            ),
            None => ppm_core::run(PpmConfig::franklin(nn), move |node| {
                bh::ppm::simulate(node, &p).1
            }),
        };
        let mpi_report = ppm_mps::run(MachineConfig::franklin(nn), move |comm| {
            bh::mpi::simulate(comm, &p).1
        });
        let (tp, tm) = (max_time(&ppm_report), max_time(&mpi_report));
        let (cp, cm) = (ppm_report.total_counters(), mpi_report.total_counters());
        row(&[
            nn.to_string(),
            (4 * nn).to_string(),
            ms(tp),
            ms(tm),
            ratio(tp, tm),
            mb(cp.bytes_sent),
            mb(cm.bytes_sent),
            pct(cp.cache_hits, cp.cache_hits + cp.cache_misses),
            cp.dedup_reads.to_string(),
            cp.partial_wakes.to_string(),
        ]);
    }
    println!(
        "\n(simulated time; deterministic — see DESIGN.md §5 for the cost model; MB = 1e6 bytes)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
