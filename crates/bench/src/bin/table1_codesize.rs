//! Table 1: application code size (number of lines), PPM vs MPI.
//!
//! The paper's Table 1 reports how much smaller the PPM programs are
//! because "both communication and synchronization are implicit in PPM"
//! while the MPI programs carry explicit bundling/unbundling and
//! synchronization code (§4.6). We count the *actual* source files of this
//! repository's implementations with the same rule for both sides (total
//! physical lines, and lines excluding blanks/comments), next to the
//! paper's numbers.

use ppm_bench::{header, line_counts, row};

struct App {
    name: &'static str,
    ppm_src: &'static str,
    mpi_src: Option<&'static str>,
    paper_ppm: usize,
    paper_mpi: Option<usize>,
}

fn main() {
    let apps = [
        App {
            name: "Conjugate Gradient",
            ppm_src: include_str!("../../../apps/src/cg/ppm.rs"),
            mpi_src: Some(include_str!("../../../apps/src/cg/mpi.rs")),
            paper_ppm: 161,
            paper_mpi: Some(733),
        },
        App {
            name: "Matrix Generation",
            ppm_src: include_str!("../../../apps/src/matgen/ppm.rs"),
            mpi_src: Some(include_str!("../../../apps/src/matgen/mpi.rs")),
            paper_ppm: 424,
            paper_mpi: Some(744),
        },
        App {
            name: "Barnes Hut",
            ppm_src: include_str!("../../../apps/src/barnes_hut/ppm.rs"),
            mpi_src: Some(include_str!("../../../apps/src/barnes_hut/mpi.rs")),
            paper_ppm: 499,
            // The paper could not produce an efficient hand-written MPI
            // version ("N/A"); we include the replicated-tree method it
            // cites for comparison.
            paper_mpi: None,
        },
    ];

    println!("# Table 1 — code size (number of lines)\n");
    header(&[
        "Application",
        "PPM lines (code)",
        "MPI lines (code)",
        "ratio",
        "paper PPM",
        "paper MPI",
    ]);
    for app in &apps {
        let (ppm_total, ppm_code) = line_counts(app.ppm_src);
        let (mpi_cell, ratio) = match app.mpi_src {
            Some(src) => {
                let (t, c) = line_counts(src);
                (
                    format!("{t} ({c})"),
                    format!("{:.2}", t as f64 / ppm_total as f64),
                )
            }
            None => ("N/A".into(), "—".into()),
        };
        row(&[
            app.name.to_string(),
            format!("{ppm_total} ({ppm_code})"),
            mpi_cell,
            ratio,
            app.paper_ppm.to_string(),
            app.paper_mpi
                .map(|v| v.to_string())
                .unwrap_or_else(|| "N/A".into()),
        ]);
    }
    println!(
        "\nNote: the paper counts C lines; we count the Rust sources of the same \
         programs (doc comments excluded in the parenthesized figure). The claim \
         under test is the *ratio*: the MPI version of each application is \
         substantially larger because its communication machinery is explicit. \
         For Barnes–Hut the paper reports no viable MPI implementation; ours is \
         the replicated-tree method the paper cites, whose simplicity comes at \
         the cost of O(N·P) communication (see fig3)."
    );
}
