//! Figure 2: application performance of the sparse matrix generation
//! (multiscale collocation method).
//!
//! Paper-reported shape (§4.5): "The PPM program consistently performs
//! better than the MPI implementation … and scales better as the number of
//! nodes increases" — the ratio column should stay below 1 across the
//! sweep.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig2_matgen [-- --nodes 1,2,4 --levels 6 --n0 64]
//! ```
//!
//! `--trace <path>` / `PPM_TRACE=<path>` records the PPM runs as a Chrome
//! trace-event file plus a `<path>.metrics.json` per-phase report.

use ppm_apps::matgen::{self, MatGenParams};
use ppm_bench::{header, max_time, mb, ms, pct, ratio, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[1, 2, 4, 8, 16, 32, 64]);
    let levels = args.usize("--levels", 7);
    let n0 = args.usize("--n0", 64);
    let mut params = MatGenParams::new(levels, n0);
    params.quad_flops = args.usize("--quad-flops", 2000) as u64;

    println!(
        "# Figure 2 — matrix generation, {} levels, n0={} ({} rows, {} nnz)\n",
        levels,
        n0,
        params.n(),
        params.nnz()
    );
    header(&[
        "nodes", "cores", "PPM ms", "MPI ms", "PPM/MPI", "PPM msgs", "MPI msgs", "PPM MB",
        "MPI MB", "hit%", "dedup", "pwakes",
    ]);
    for &n in &nodes {
        let p = params;
        let ppm_report = match &trace {
            Some((sink, _)) => {
                ppm_core::run_traced(PpmConfig::franklin(n), sink, &format!("matgen n={n}"), {
                    move |node| matgen::ppm::generate(node, &p).1
                })
            }
            None => ppm_core::run(PpmConfig::franklin(n), move |node| {
                matgen::ppm::generate(node, &p).1
            }),
        };
        let mpi_report = ppm_mps::run(MachineConfig::franklin(n), move |comm| {
            matgen::mpi::generate(comm, &p).1
        });
        let (tp, tm) = (max_time(&ppm_report), max_time(&mpi_report));
        let (cp, cm) = (ppm_report.total_counters(), mpi_report.total_counters());
        row(&[
            n.to_string(),
            (4 * n).to_string(),
            ms(tp),
            ms(tm),
            ratio(tp, tm),
            cp.msgs_sent.to_string(),
            cm.msgs_sent.to_string(),
            mb(cp.bytes_sent),
            mb(cm.bytes_sent),
            pct(cp.cache_hits, cp.cache_hits + cp.cache_misses),
            cp.dedup_reads.to_string(),
            cp.partial_wakes.to_string(),
        ]);
    }
    println!(
        "\n(simulated time; deterministic — see DESIGN.md §5 for the cost model; MB = 1e6 bytes)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
