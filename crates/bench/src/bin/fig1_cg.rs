//! Figure 1: application performance of the CG solver.
//!
//! Sweeps the node count (4 cores per node, the paper's Franklin shape)
//! and prints the simulated runtime of the PPM program and the tuned MPI
//! baseline for the same fixed number of CG iterations on a 27-point 3-D
//! diffusion "chimney" system.
//!
//! Paper-reported shape (§4.5): PPM starts "much slower than the MPI
//! version when there is only one node … but catches up quickly as the
//! number of nodes increases" — the PPM/MPI ratio column should start
//! well above 1 and fall toward (or below) 1.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig1_cg [-- --nodes 1,2,4,8 --g 16 --iters 20]
//! ```
//!
//! `--trace <path>` (or `PPM_TRACE=<path>`) records every PPM run in the
//! sweep as one process of a Chrome trace-event file (Perfetto-loadable),
//! plus a `<path>.metrics.json` per-phase breakdown.
//!
//! ## Full-size mode
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig1_cg -- --full [--g 256 --iters 3 --budget 1m]
//! ```
//!
//! `--full` runs the paper's actual Figure 1 problem size — a 256³ cube,
//! 16.7M rows, ~450M nonzeros — on 64 nodes with the streamed-tile
//! runtime (DESIGN.md §18): each node's partitions are far larger than
//! the resident-tile budget (`--budget`, or `PPM_TILE_BUDGET`; default
//! 1 MiB/node), so the runtime continuously spills and refills partition
//! tiles while `spmv_chunk` bounds the transient matrix state a VP holds.
//! Before the big run, a 64³ slice of the same configuration is solved
//! both streamed and in-core and the solution bits are compared — the
//! cross-check that the full-size answer is the in-core answer.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, max_time, mb, ms, pct, ratio, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

/// Parse a byte size with an optional `k`/`m`/`g` suffix.
fn parse_bytes(s: &str) -> u64 {
    let t = s.trim().to_ascii_lowercase();
    let (num, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(n) => (
            n,
            match t.as_bytes()[t.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (t.as_str(), 1),
    };
    num.trim().parse::<u64>().expect("byte size") * mult
}

/// Peak host RSS (`VmHWM` from `/proc/self/status`), in bytes — the
/// honest "what did this cost the machine" column next to the modeled
/// `bytes_resident` peak. 0 where procfs is unavailable.
fn vm_hwm_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .map(|kib| kib * 1024)
        .unwrap_or(0)
}

/// The paper's full-size Figure 1 point under the streamed-tile runtime.
fn run_full(args: &Args) {
    let g = args.usize("--g", 256);
    let iters = args.usize("--iters", 3);
    let nodes = args.usize("--nodes-full", 64) as u32;
    let problem = Stencil27::cube(g);
    let base = PpmConfig::franklin(nodes);
    let budget = match args.value("--budget") {
        Some(v) => parse_bytes(&v),
        // Env (PPM_TILE_BUDGET) already landed in the config; default to
        // 1 MiB/node if neither source set one.
        None if base.tile_budget > 0 => base.tile_budget,
        None => 1 << 20,
    };
    let params = CgParams {
        problem,
        iters,
        rows_per_vp: args.usize("--rows-per-vp", 16384),
        collect_x: false,
        tol: None,
        spmv_chunk: args.usize("--spmv-chunk", 256),
    };
    let elems_per_node = problem.n().div_ceil(nodes as usize);
    // x, r, p, ap — the four n-length f64 vectors a node owns a slice of.
    let in_core = 4 * elems_per_node as u64 * 8;
    println!(
        "# Figure 1 (full size) — CG, {g}\u{b3} cube: {} rows, ~{}M nnz, {} iterations, {nodes} nodes",
        problem.n(),
        problem.n() * 27 / 1_000_000,
        iters
    );
    println!(
        "# tile budget {budget} B/node vs {in_core} B/node in-core vector footprint ({}x over budget)\n",
        in_core / budget.max(1)
    );

    // Cross-check at a size where the in-core run is cheap: the same
    // node count, knobs, and per-node budget on a 64³ slice must produce
    // bit-identical solution vectors streamed and in-core.
    {
        let mut small = params;
        small.problem = Stencil27::cube(64);
        small.rows_per_vp = args.usize("--rows-per-vp", 16384) / 16;
        small.collect_x = true;
        // The slice's partitions are small enough to fit untiled under the
        // full-size budget, so the cross-check scales its budget to the
        // slice footprint (1/32 of the per-node vectors) — the point is
        // that streaming happens, at any budget.
        let small_budget = small.problem.n().div_ceil(nodes as usize) as u64 * 8 * 4 / 32;
        let solve =
            move |cfg: PpmConfig| ppm_core::run(cfg, move |node| cg::ppm::solve(node, &small).0);
        let streamed = solve(base.with_tile_budget(small_budget));
        let incore = solve(base.with_tile_budget(0));
        let (s0, i0) = (&streamed.results[0], &incore.results[0]);
        assert_eq!(s0.rr.to_bits(), i0.rr.to_bits(), "cross-check: rr differs");
        assert!(
            s0.x.iter()
                .zip(&i0.x)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "cross-check: solution vectors differ"
        );
        let refills = streamed.total_counters().tile_refills;
        assert!(refills > 0, "cross-check run never streamed");
        println!(
            "cross-check ok: 64\u{b3} slice bit-identical streamed vs in-core ({refills} refills)\n"
        );
    }

    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let wall = std::time::Instant::now();
    let p = params;
    let body = move |node: &mut ppm_core::NodeCtx<'_>| {
        let (_, t) = cg::ppm::solve(node, &p);
        (t, node.peak_bytes_resident())
    };
    let cfg = base.with_tile_budget(budget);
    let report = match &trace {
        Some((sink, _)) => ppm_core::run_traced(cfg, sink, "cg full", body),
        None => ppm_core::run(cfg, body),
    };
    let wall = wall.elapsed();
    let makespan = report
        .results
        .iter()
        .map(|&(t, _)| t)
        .fold(ppm_simnet::SimTime::ZERO, ppm_simnet::SimTime::max);
    let peak = report.results.iter().map(|&(_, p)| p).max().unwrap_or(0);
    assert!(
        peak <= budget,
        "peak resident {peak} B exceeded the {budget} B budget"
    );
    let c = report.total_counters();
    header(&[
        "budget B/node",
        "in-core B/node",
        "peak resident B/node",
        "tile refills",
        "sim ms",
        "wall s",
        "host VmHWM MB",
    ]);
    row(&[
        budget.to_string(),
        in_core.to_string(),
        peak.to_string(),
        c.tile_refills.to_string(),
        ms(makespan),
        format!("{:.1}", wall.as_secs_f64()),
        mb(vm_hwm_bytes()),
    ]);
    println!(
        "\n(peak resident is the modeled per-node maximum; VmHWM is the host process high-water mark — \
         the simulator itself holds every partition in host memory)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("--full") {
        run_full(&args);
        return;
    }
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[1, 2, 4, 8, 16, 32, 64]);
    let g = args.usize("--g", 20);
    let iters = args.usize("--iters", 25);
    let problem = Stencil27::chimney(g);
    let params = CgParams {
        problem,
        iters,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    };

    println!(
        "# Figure 1 — CG solver, {}x{}x{} grid ({} rows, ~{}k nnz), {} iterations\n",
        problem.gx,
        problem.gy,
        problem.gz,
        problem.n(),
        problem.n() * 27 / 1000,
        iters
    );
    header(&[
        "nodes",
        "cores",
        "PPM ms",
        "PPM-hier ms",
        "MPI ms",
        "PPM/MPI",
        "PPM msgs",
        "MPI msgs",
        "PPM MB",
        "MPI MB",
        "hit%",
        "dedup",
        "pwakes",
    ]);
    for &n in &nodes {
        let p = params;
        let ppm_report = match &trace {
            Some((sink, _)) => {
                ppm_core::run_traced(PpmConfig::franklin(n), sink, &format!("cg n={n}"), {
                    move |node| cg::ppm::solve(node, &p).1
                })
            }
            None => ppm_core::run(PpmConfig::franklin(n), move |node| {
                cg::ppm::solve(node, &p).1
            }),
        };
        let hier_report = ppm_core::run(PpmConfig::franklin(n), move |node| {
            cg::ppm_hier::solve(node, &p).1
        });
        let mpi_report = ppm_mps::run(MachineConfig::franklin(n), move |comm| {
            cg::mpi::solve(comm, &p).1
        });
        let (tp, th, tm) = (
            max_time(&ppm_report),
            max_time(&hier_report),
            max_time(&mpi_report),
        );
        let (cp, cm) = (ppm_report.total_counters(), mpi_report.total_counters());
        row(&[
            n.to_string(),
            (4 * n).to_string(),
            ms(tp),
            ms(th),
            ms(tm),
            ratio(tp, tm),
            cp.msgs_sent.to_string(),
            cm.msgs_sent.to_string(),
            mb(cp.bytes_sent),
            mb(cm.bytes_sent),
            pct(cp.cache_hits, cp.cache_hits + cp.cache_misses),
            cp.dedup_reads.to_string(),
            cp.partial_wakes.to_string(),
        ]);
    }
    println!(
        "\n(simulated time; deterministic — see DESIGN.md §5 for the cost model; MB = 1e6 bytes)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
