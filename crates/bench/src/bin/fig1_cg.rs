//! Figure 1: application performance of the CG solver.
//!
//! Sweeps the node count (4 cores per node, the paper's Franklin shape)
//! and prints the simulated runtime of the PPM program and the tuned MPI
//! baseline for the same fixed number of CG iterations on a 27-point 3-D
//! diffusion "chimney" system.
//!
//! Paper-reported shape (§4.5): PPM starts "much slower than the MPI
//! version when there is only one node … but catches up quickly as the
//! number of nodes increases" — the PPM/MPI ratio column should start
//! well above 1 and fall toward (or below) 1.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin fig1_cg [-- --nodes 1,2,4,8 --g 16 --iters 20]
//! ```
//!
//! `--trace <path>` (or `PPM_TRACE=<path>`) records every PPM run in the
//! sweep as one process of a Chrome trace-event file (Perfetto-loadable),
//! plus a `<path>.metrics.json` per-phase breakdown.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, max_time, mb, ms, pct, ratio, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::MachineConfig;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[1, 2, 4, 8, 16, 32, 64]);
    let g = args.usize("--g", 20);
    let iters = args.usize("--iters", 25);
    let problem = Stencil27::chimney(g);
    let params = CgParams {
        problem,
        iters,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
    };

    println!(
        "# Figure 1 — CG solver, {}x{}x{} grid ({} rows, ~{}k nnz), {} iterations\n",
        problem.gx,
        problem.gy,
        problem.gz,
        problem.n(),
        problem.n() * 27 / 1000,
        iters
    );
    header(&[
        "nodes",
        "cores",
        "PPM ms",
        "PPM-hier ms",
        "MPI ms",
        "PPM/MPI",
        "PPM msgs",
        "MPI msgs",
        "PPM MB",
        "MPI MB",
        "hit%",
        "dedup",
        "pwakes",
    ]);
    for &n in &nodes {
        let p = params;
        let ppm_report = match &trace {
            Some((sink, _)) => {
                ppm_core::run_traced(PpmConfig::franklin(n), sink, &format!("cg n={n}"), {
                    move |node| cg::ppm::solve(node, &p).1
                })
            }
            None => ppm_core::run(PpmConfig::franklin(n), move |node| {
                cg::ppm::solve(node, &p).1
            }),
        };
        let hier_report = ppm_core::run(PpmConfig::franklin(n), move |node| {
            cg::ppm_hier::solve(node, &p).1
        });
        let mpi_report = ppm_mps::run(MachineConfig::franklin(n), move |comm| {
            cg::mpi::solve(comm, &p).1
        });
        let (tp, th, tm) = (
            max_time(&ppm_report),
            max_time(&hier_report),
            max_time(&mpi_report),
        );
        let (cp, cm) = (ppm_report.total_counters(), mpi_report.total_counters());
        row(&[
            n.to_string(),
            (4 * n).to_string(),
            ms(tp),
            ms(th),
            ms(tm),
            ratio(tp, tm),
            cp.msgs_sent.to_string(),
            cm.msgs_sent.to_string(),
            mb(cp.bytes_sent),
            mb(cm.bytes_sent),
            pct(cp.cache_hits, cp.cache_hits + cp.cache_misses),
            cp.dedup_reads.to_string(),
            cp.partial_wakes.to_string(),
        ]);
    }
    println!(
        "\n(simulated time; deterministic — see DESIGN.md §5 for the cost model; MB = 1e6 bytes)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
