//! Ablations of the PPM runtime's §3.3 design claims.
//!
//! * **bundling** — "the PPM runtime library is capable of bundling up
//!   fine-grained remote shared data accesses into coarse-grained packages
//!   in order to reduce overall communication overhead": switching it off
//!   charges every remote element as its own message.
//! * **overlap** — "scheduling communication needs and computation tasks
//!   to enable (automatic) overlap of computation and communication":
//!   switching it off serializes gap time after compute.
//! * **VP granularity** — the `PPM_do(K)` degree-of-parallelism knob:
//!   fewer, fatter VPs give the scheduler less slack.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin ablations [-- --nodes 8 --g 16]
//! ```

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, max_time, ms, row, Args};
use ppm_core::PpmConfig;
use ppm_simnet::SimTime;

fn main() {
    let args = Args::parse();
    let nodes = args.usize("--nodes", 8) as u32;
    let g = args.usize("--g", 16);

    let cg_params = CgParams {
        problem: Stencil27::chimney(g),
        iters: 20,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
    };
    let mut bh_params = BhParams::new(args.usize("--n", 4096));
    bh_params.steps = 1;

    let cg_time = |cfg: PpmConfig, p: CgParams| -> SimTime {
        max_time(&ppm_core::run(cfg, move |node| cg::ppm::solve(node, &p).1))
    };
    let bh_time = |cfg: PpmConfig, p: BhParams| -> SimTime {
        max_time(&ppm_core::run(cfg, move |node| {
            bh::ppm::simulate(node, &p).1
        }))
    };

    println!("# Runtime ablations on {nodes} nodes (4 cores each)\n");
    header(&["configuration", "CG ms", "Barnes–Hut ms"]);

    let base = PpmConfig::franklin(nodes);
    let t_cg = cg_time(base, cg_params);
    let t_bh = bh_time(base, bh_params);
    row(&[
        "full runtime (bundling + overlap)".into(),
        ms(t_cg),
        ms(t_bh),
    ]);

    let no_bundle = base.without_bundling();
    row(&[
        "no bundling (per-element messages)".into(),
        ms(cg_time(no_bundle, cg_params)),
        ms(bh_time(no_bundle, bh_params)),
    ]);

    let no_overlap = base.without_overlap();
    row(&[
        "no comm/compute overlap".into(),
        ms(cg_time(no_overlap, cg_params)),
        ms(bh_time(no_overlap, bh_params)),
    ]);

    let hier = cg_params;
    row(&[
        "hierarchical CG (x, r, A·p node-shared, §3.3 layering)".into(),
        ms(max_time(&ppm_core::run(base, move |node| {
            cg::ppm_hier::solve(node, &hier).1
        }))),
        "—".into(),
    ]);

    let mut fat = cg_params;
    fat.rows_per_vp = 4096;
    let mut fat_bh = bh_params;
    fat_bh.bodies_per_vp = 4096;
    row(&[
        "coarse VPs (degree of parallelism ÷64)".into(),
        ms(cg_time(base, fat)),
        ms(bh_time(base, fat_bh)),
    ]);

    println!("\n(the first row should be the fastest on every column)");
}
