//! Ablations of the PPM runtime's §3.3 design claims.
//!
//! * **bundling** — "the PPM runtime library is capable of bundling up
//!   fine-grained remote shared data accesses into coarse-grained packages
//!   in order to reduce overall communication overhead": switching it off
//!   charges every remote element as its own message.
//! * **overlap** — "scheduling communication needs and computation tasks
//!   to enable (automatic) overlap of computation and communication":
//!   switching it off serializes gap time after compute.
//! * **VP granularity** — the `PPM_do(K)` degree-of-parallelism knob:
//!   fewer, fatter VPs give the scheduler less slack.
//! * **read cache / wave pipelining** — the phase-coherent remote-read
//!   cache with owner refresh-push, and wake-on-arrival wave pipelining
//!   (DESIGN.md §13). `--ablate-cache` / `--ablate-pipeline` restrict the
//!   sweep to the full runtime plus just that ablation (the CI artifact
//!   job runs these; EXPERIMENTS.md records the deltas).
//! * **adaptive repartitioning** — trace-guided weighted repartitioning at
//!   phase boundaries (DESIGN.md §14). `--ablate-balance` prints the
//!   skewed fixtures (power-law PageRank, clustered-Plummer Barnes–Hut)
//!   with the balancer on vs off; the solutions are bit-identical either
//!   way, only placement and time move.
//! * **sparse token exchange** — the sparse sender-set protocol that
//!   retired the O(N²) empty end-of-phase tokens (DESIGN.md §17).
//!   `--ablate-tokens` prints sparse vs legacy all-to-all: makespans are
//!   bit-identical by construction, so the column that moves is the
//!   message count.
//! * **streamed tiles** — the resident-tile budget that spills cold
//!   partition tiles to backing store (DESIGN.md §18). `--ablate-streaming`
//!   prints in-core vs streamed under a tight budget: spills and refills
//!   are free in simulated time and invisible to the merge order, so the
//!   makespan columns must be bit-identical and only the refill counters
//!   move.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin ablations [-- --nodes 8 --g 16]
//! cargo run --release -p ppm-bench --bin ablations -- --ablate-cache
//! cargo run --release -p ppm-bench --bin ablations -- --ablate-balance
//! cargo run --release -p ppm-bench --bin ablations -- --ablate-tokens
//! cargo run --release -p ppm-bench --bin ablations -- --ablate-streaming
//! ```
//!
//! `--trace <path>` / `PPM_TRACE=<path>` records every ablation run as one
//! process of a Chrome trace-event file — compare the wave counts and comm
//! spans across configurations in Perfetto.

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::pagerank::{self, PrParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, max_time, ms, row, write_trace, Args, TraceSink};
use ppm_core::PpmConfig;
use ppm_simnet::SimTime;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.usize("--nodes", 8) as u32;
    let g = args.usize("--g", 16);

    let cg_params = CgParams {
        problem: Stencil27::chimney(g),
        iters: 20,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    };
    let mut bh_params = BhParams::new(args.usize("--n", 4096));
    bh_params.steps = 1;

    let trace_ref = &trace;
    let cg_time = move |label: &str, cfg: PpmConfig, p: CgParams| -> SimTime {
        let body = move |node: &mut ppm_core::NodeCtx<'_>| cg::ppm::solve(node, &p).1;
        max_time(&match trace_ref {
            Some((sink, _)) => ppm_core::run_traced(cfg, sink, &format!("cg {label}"), body),
            None => ppm_core::run(cfg, body),
        })
    };
    let bh_time = move |label: &str, cfg: PpmConfig, p: BhParams| -> SimTime {
        let body = move |node: &mut ppm_core::NodeCtx<'_>| bh::ppm::simulate(node, &p).1;
        max_time(&match trace_ref {
            Some((sink, _)) => ppm_core::run_traced(cfg, sink, &format!("bh {label}"), body),
            None => ppm_core::run(cfg, body),
        })
    };

    // `--ablate-cache` / `--ablate-pipeline` narrow the sweep to the full
    // runtime plus the selected knob(s); with neither flag, print
    // everything.
    let ablate_cache = args.flag("--ablate-cache");
    let ablate_pipeline = args.flag("--ablate-pipeline");
    let ablate_balance = args.flag("--ablate-balance");
    let ablate_tokens = args.flag("--ablate-tokens");
    let ablate_streaming = args.flag("--ablate-streaming");
    let all =
        !(ablate_cache || ablate_pipeline || ablate_balance || ablate_tokens || ablate_streaming);

    println!("# Runtime ablations on {nodes} nodes (4 cores each)\n");
    header(&["configuration", "CG ms", "Barnes–Hut ms"]);

    let base = PpmConfig::franklin(nodes);
    let t_cg = cg_time("full", base, cg_params);
    let t_bh = bh_time("full", base, bh_params);
    row(&[
        "full runtime (bundling + overlap + cache + pipelining)".into(),
        ms(t_cg),
        ms(t_bh),
    ]);

    if all {
        let no_bundle = base.without_bundling();
        row(&[
            "no bundling (per-element messages)".into(),
            ms(cg_time("no-bundling", no_bundle, cg_params)),
            ms(bh_time("no-bundling", no_bundle, bh_params)),
        ]);

        let no_overlap = base.without_overlap();
        row(&[
            "no comm/compute overlap".into(),
            ms(cg_time("no-overlap", no_overlap, cg_params)),
            ms(bh_time("no-overlap", no_overlap, bh_params)),
        ]);
    }

    if all || ablate_cache {
        let no_cache = base.with_read_cache(false);
        row(&[
            "no read cache (every remote read reaches the wire)".into(),
            ms(cg_time("no-cache", no_cache, cg_params)),
            ms(bh_time("no-cache", no_cache, bh_params)),
        ]);
    }

    if all || ablate_pipeline {
        let no_pipe = base.with_wave_pipelining(false);
        row(&[
            "no wave pipelining (all-responses wave barrier)".into(),
            ms(cg_time("no-pipelining", no_pipe, cg_params)),
            ms(bh_time("no-pipelining", no_pipe, bh_params)),
        ]);
    }

    if ablate_cache && ablate_pipeline {
        let neither = base.with_read_cache(false).with_wave_pipelining(false);
        row(&[
            "no cache, no pipelining (pre-§13 runtime)".into(),
            ms(cg_time("no-cache-no-pipelining", neither, cg_params)),
            ms(bh_time("no-cache-no-pipelining", neither, bh_params)),
        ]);
    }

    if all {
        let hier = cg_params;
        row(&[
            "hierarchical CG (x, r, A·p node-shared, §3.3 layering)".into(),
            ms(max_time(&ppm_core::run(base, move |node| {
                cg::ppm_hier::solve(node, &hier).1
            }))),
            "—".into(),
        ]);

        let mut fat = cg_params;
        fat.rows_per_vp = 4096;
        let mut fat_bh = bh_params;
        fat_bh.bodies_per_vp = 4096;
        row(&[
            "coarse VPs (degree of parallelism ÷64)".into(),
            ms(cg_time("coarse-vps", base, fat)),
            ms(bh_time("coarse-vps", base, fat_bh)),
        ]);
    }

    if all || ablate_balance {
        // Skewed fixtures, where the static block layout leaves the
        // low-rank nodes with most of the work. The balancer needs a few
        // phases of load history before it fires, so the Barnes–Hut run
        // takes several steps.
        let pr = PrParams::skewed(4096);
        let mut cb = BhParams::clustered(args.usize("--n", 4096) / 2);
        cb.steps = 4;
        let pr_time = move |label: &str, cfg: PpmConfig| -> SimTime {
            let body = move |node: &mut ppm_core::NodeCtx<'_>| pagerank::ppm::rank(node, &pr).1;
            max_time(&match trace_ref {
                Some((sink, _)) => {
                    ppm_core::run_traced(cfg, sink, &format!("pagerank {label}"), body)
                }
                None => ppm_core::run(cfg, body),
            })
        };
        println!("\n# Adaptive repartitioning on skewed fixtures (DESIGN.md \u{a7}14)\n");
        header(&[
            "configuration",
            "skewed PageRank ms",
            "clustered B\u{2013}H ms",
        ]);
        for (desc, on) in [
            ("adaptive repartitioning", true),
            ("static block layout", false),
        ] {
            let cfg = base.with_adaptive_balance(on);
            let tag = if on { "adaptive" } else { "static" };
            row(&[
                desc.into(),
                ms(pr_time(tag, cfg)),
                ms(bh_time(tag, cfg, cb)),
            ]);
        }
    }

    if all || ablate_tokens {
        // Sparse vs legacy token exchange: simulated time is bit-identical
        // by construction (tokens were always free in modeled time), so
        // the message count is the honest column — the legacy all-to-all
        // pays N²−N empty tokens per global phase.
        println!("\n# Sparse end-of-phase token exchange (DESIGN.md \u{a7}17)\n");
        header(&[
            "configuration",
            "CG ms",
            "CG msgs",
            "B\u{2013}H ms",
            "B\u{2013}H msgs",
        ]);
        let mut rows: Vec<(SimTime, u64, SimTime, u64)> = Vec::new();
        for (desc, on) in [
            ("sparse sender sets", true),
            ("legacy all-to-all tokens", false),
        ] {
            let cfg = base.with_sparse_tokens(on);
            let p = cg_params;
            let cg_report = ppm_core::run(cfg, move |node| cg::ppm::solve(node, &p).1);
            let p = bh_params;
            let bh_report = ppm_core::run(cfg, move |node| bh::ppm::simulate(node, &p).1);
            let entry = (
                max_time(&cg_report),
                cg_report.total_counters().msgs_sent,
                max_time(&bh_report),
                bh_report.total_counters().msgs_sent,
            );
            row(&[
                desc.into(),
                ms(entry.0),
                entry.1.to_string(),
                ms(entry.2),
                entry.3.to_string(),
            ]);
            rows.push(entry);
        }
        assert_eq!(
            rows[0].0, rows[1].0,
            "sparse exchange moved the CG makespan"
        );
        assert_eq!(
            rows[0].2, rows[1].2,
            "sparse exchange moved the Barnes\u{2013}Hut makespan"
        );
        assert!(
            rows[0].1 < rows[1].1 && rows[0].3 < rows[1].3,
            "sparse exchange must cut the message count"
        );
    }

    if all || ablate_streaming {
        // In-core vs streamed under a tight tile budget: at g=16 on 8
        // nodes each CG vector holds 2048 local elements (16 KiB), so a
        // 4 KiB budget forces real spill/refill traffic. Simulated time
        // must not move — streaming is free in modeled time and invisible
        // to the deterministic merge order — so the honest column is the
        // refill count.
        let budget = args.usize("--budget", 4096) as u64;
        println!("\n# Streamed partition tiles (DESIGN.md \u{a7}18, {budget} B/node budget)\n");
        header(&[
            "configuration",
            "CG ms",
            "CG refills",
            "B\u{2013}H ms",
            "B\u{2013}H refills",
        ]);
        let mut rows: Vec<(SimTime, u64, SimTime, u64)> = Vec::new();
        for (desc, b) in [("in-core (no budget)", 0u64), ("streamed tiles", budget)] {
            let cfg = base.with_tile_budget(b);
            let p = cg_params;
            let cg_report = ppm_core::run(cfg, move |node| cg::ppm::solve(node, &p).1);
            let p = bh_params;
            let bh_report = ppm_core::run(cfg, move |node| bh::ppm::simulate(node, &p).1);
            let entry = (
                max_time(&cg_report),
                cg_report.total_counters().tile_refills,
                max_time(&bh_report),
                bh_report.total_counters().tile_refills,
            );
            row(&[
                desc.into(),
                ms(entry.0),
                entry.1.to_string(),
                ms(entry.2),
                entry.3.to_string(),
            ]);
            rows.push(entry);
        }
        assert_eq!(rows[0].0, rows[1].0, "streaming moved the CG makespan");
        assert_eq!(
            rows[0].2, rows[1].2,
            "streaming moved the Barnes\u{2013}Hut makespan"
        );
        assert!(
            rows[0].1 == 0 && rows[0].3 == 0,
            "in-core run must not refill tiles"
        );
        assert!(
            rows[1].1 > 0 && rows[1].3 > 0,
            "the streamed run must actually spill and refill"
        );
    }

    println!("\n(the first row should be the fastest on every column)");
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
