//! Host-parallelism benchmark: wall-clock (NOT simulated) runtime of the
//! fig1/fig3 smoke problems as the intra-node VP worker pool widens
//! (DESIGN.md §12).
//!
//! Every other binary in this crate reports *simulated* time, which is
//! bit-identical at any `host_threads` setting — that is the §12
//! determinism contract. This one times the simulator itself with
//! `std::time::Instant` to show the contract is not paid for with host
//! serialization: on a multi-core host the pooled scheduler should beat
//! `--threads 1` by ≥1.5× at 4 workers on the fig1 smoke.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin hostperf [-- --threads 1,2,4,8 --reps 3 --app all]
//! ```
//!
//! `--app fig1|fig3|all` picks the workload; `--reps` runs each cell that
//! many times and keeps the fastest (wall-clock is noisy, simulated
//! results are checked identical across every rep and thread count).

use std::time::Instant;

use ppm_apps::barnes_hut::{self as bh, BhParams};
use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, row, Args};
use ppm_core::PpmConfig;
use ppm_simnet::SimTime;

/// Wall-clock best-of-`reps` for one (workload, thread-count) cell, plus
/// the simulated makespan so the caller can pin determinism.
fn time_cell<F>(reps: usize, run: F) -> (f64, SimTime)
where
    F: Fn() -> SimTime,
{
    let mut best = f64::INFINITY;
    let mut makespan = SimTime::ZERO;
    for rep in 0..reps {
        let t0 = Instant::now();
        let m = run();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if rep == 0 {
            makespan = m;
        } else {
            assert_eq!(m, makespan, "simulated makespan changed between reps");
        }
        best = best.min(wall);
    }
    (best, makespan)
}

fn sweep(name: &str, threads: &[usize], reps: usize, run: &dyn Fn(usize) -> SimTime) {
    let mut base_wall = None;
    let mut base_makespan = None;
    for &t in threads {
        let (wall, makespan) = time_cell(reps, || run(t));
        match base_makespan {
            None => base_makespan = Some(makespan),
            Some(m) => assert_eq!(
                makespan, m,
                "{name}: {t} host threads changed the simulated makespan — \
                 determinism contract broken (see DESIGN.md §12)"
            ),
        }
        let base = *base_wall.get_or_insert(wall);
        row(&[
            name.to_string(),
            t.to_string(),
            format!("{wall:.1}"),
            format!("{:.2}", base / wall),
            format!("{:.3}", makespan.as_ms_f64()),
        ]);
    }
}

fn main() {
    let args = Args::parse();
    let threads: Vec<usize> = match args.value("--threads") {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("--threads wants integers"))
            .collect(),
        None => vec![1, 2, 4, 8],
    };
    let reps = args.usize("--reps", 3);
    let app = args.value("--app").unwrap_or_else(|| "all".to_string());
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("# Host-parallel VP scheduler — wall-clock sweep ({host} host cores)\n");
    if host < 4 {
        println!(
            "> note: this host exposes {host} core(s); worker pools wider than \
             that time-slice and cannot show real speedup.\n"
        );
    }
    header(&[
        "workload",
        "host threads",
        "wall ms",
        "speedup",
        "simulated ms",
    ]);

    if app == "fig1" || app == "all" {
        // The fig1 smoke: CG on the 27-point chimney, 4 Franklin nodes.
        let g = args.usize("--g", 8);
        let iters = args.usize("--iters", 10);
        let params = CgParams {
            problem: Stencil27::chimney(g),
            iters,
            rows_per_vp: 64,
            collect_x: false,
            tol: None,
            spmv_chunk: 0,
        };
        sweep("fig1 cg smoke", &threads, reps, &move |t| {
            let p = params;
            let report = ppm_core::run(PpmConfig::franklin(4).with_host_threads(t), move |node| {
                cg::ppm::solve(node, &p).1
            });
            report.makespan()
        });
    }

    if app == "fig3" || app == "all" {
        // The fig3 smoke: Barnes–Hut, data-driven tree reads.
        let n = args.usize("--n", 1024);
        let mut params = BhParams::new(n);
        params.steps = args.usize("--steps", 2);
        sweep("fig3 barnes-hut smoke", &threads, reps, &move |t| {
            let p = params;
            let report = ppm_core::run(PpmConfig::franklin(4).with_host_threads(t), move |node| {
                bh::ppm::simulate(node, &p).1
            });
            report.makespan()
        });
    }

    println!(
        "\n(wall ms = fastest of {reps} reps, std::time::Instant; \
         \"simulated ms\" is asserted identical across all cells of a \
         workload — DESIGN.md §12)"
    );
}
