//! Where does a PPM program's simulated time go?
//!
//! Runs the CG solver and prints node 0's per-phase trace aggregated by
//! position in the iteration (SpMV / update / direction phases), showing
//! compute vs service vs communication and the wave counts — the
//! observability view of the §3.3 runtime behaviour.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin phase_breakdown [-- --nodes 8 --g 16]
//! ```
//!
//! `--trace <path>` / `PPM_TRACE=<path>` additionally records the full
//! per-node, per-phase trace (Chrome trace-event JSON + metrics report) —
//! the same data as this table, but for every node and without grouping.

use ppm_apps::cg::{self, CgParams};
use ppm_apps::stencil27::Stencil27;
use ppm_bench::{header, mb, ms, row, write_trace, Args, TraceSink};
use ppm_core::{PhaseKind, PhaseRecord, PpmConfig};
use ppm_simnet::SimTime;

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.usize("--nodes", 8) as u32;
    let g = args.usize("--g", 16);
    let iters = args.usize("--iters", 20);
    let params = CgParams {
        problem: Stencil27::chimney(g),
        iters,
        rows_per_vp: 64,
        collect_x: false,
        tol: None,
        spmv_chunk: 0,
    };

    let body = move |node: &mut ppm_core::NodeCtx<'_>| {
        cg::ppm::solve(node, &params);
        node.take_phase_log()
    };
    let report = match &trace {
        Some((sink, _)) => ppm_core::run_traced(PpmConfig::franklin(nodes), sink, "cg", body),
        None => ppm_core::run(PpmConfig::franklin(nodes), body),
    };
    let log: &Vec<PhaseRecord> = &report.results[0];

    println!(
        "# CG phase breakdown, node 0 of {nodes} ({} global phases: 1 init + {iters}×3)\n",
        log.len()
    );
    header(&[
        "phase group",
        "count",
        "compute ms",
        "service ms",
        "comm ms",
        "waves",
        "MB out",
    ]);

    let group = |name: &str, records: Vec<&PhaseRecord>| {
        let count = records.len();
        let sum = |f: &dyn Fn(&PhaseRecord) -> SimTime| {
            records
                .iter()
                .map(|r| f(r))
                .fold(SimTime::ZERO, |a, b| a + b)
        };
        let waves: u64 = records.iter().map(|r| r.waves).sum();
        let bytes: u64 = records.iter().map(|r| r.bytes_out).sum();
        row(&[
            name.to_string(),
            count.to_string(),
            ms(sum(&|r| r.compute)),
            ms(sum(&|r| r.service)),
            ms(sum(&|r| r.comm)),
            waves.to_string(),
            mb(bytes),
        ]);
    };

    assert!(log.iter().all(|r| r.kind == PhaseKind::Global));
    group("init (r = p = b)", log.iter().take(1).collect());
    group("A: ap = A·p, p·ap", log.iter().skip(1).step_by(3).collect());
    group(
        "B: x, r updates, r·r",
        log.iter().skip(2).step_by(3).collect(),
    );
    group("C: p = r + βp", log.iter().skip(3).step_by(3).collect());

    let total: SimTime = log
        .iter()
        .map(|r| r.compute + r.service + r.comm)
        .fold(SimTime::ZERO, |a, b| a + b);
    println!("\nnode-0 total across phases: {total} (MB = 1e6 bytes)");
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
