//! Large-N scaling smoke (DESIGN.md §16): the 1024-node workload from
//! `core/tests/large_n.rs` as a standalone, traceable benchmark.
//!
//! Every node owns one element of a global ring; each phase every node
//! reads its predecessor's element (1 dissemination hop, so refresh
//! pushes arm and fire), rank 0 accumulates the value into a shared sum
//! and rewrites the node's own element. One seeded node dies permanently
//! mid-run with buddy replication on, so a single job exercises the
//! clock barrier at 10 dissemination rounds, the loads sidecar, refresh
//! pushes, suspicion flood, death confirmation, and failover — all past
//! the old 64/128-node fixed-width sidecar walls.
//!
//! For each node count the job runs once per `--threads` entry; the
//! simulated results, makespan, and counters are asserted identical
//! across thread counts (DESIGN.md §12), and the wall-clock column shows
//! what the determinism contract costs at scale.
//!
//! ```text
//! cargo run --release -p ppm-bench --bin large_n \
//!     [-- --nodes 256,1024 --threads 1,8 --vps 8 --rounds 4 --trace out.json]
//! ```
//!
//! `--trace <path>` (or `PPM_TRACE=<path>`) records the *first* run of
//! each node count as one process of a Chrome trace-event file; CI's
//! `large-n` job uploads it as an artifact.

use std::time::Instant;

use ppm_bench::{header, pct, row, write_trace, Args, TraceSink};
use ppm_core::{AccumOp, PpmConfig};
use ppm_simnet::{Counters, FaultConfig, MachineConfig, SimTime};

/// One run of the ring workload; returns (canonical result bits,
/// makespan, summed counters).
#[allow(clippy::too_many_arguments)]
fn ring_job(
    nodes: u32,
    vps: usize,
    rounds: u64,
    threads: usize,
    victim: usize,
    death_phase: u64,
    trace: Option<(&TraceSink, &str)>,
) -> (Vec<u64>, SimTime, Counters) {
    let cfg = PpmConfig::new(MachineConfig::new(nodes, 4))
        .with_read_cache(true)
        .with_replication(true)
        .with_host_threads(threads)
        .with_faults(FaultConfig::NONE.with_permanent_crash(victim, death_phase));
    let n = nodes as usize;
    let body = move |node: &mut ppm_core::NodeCtx<'_>| {
        let a = node.alloc_global::<u64>(n);
        let acc = node.alloc_global::<u64>(1);
        let me = node.node_id();
        node.with_local_mut(&a, |s| s[0] = me as u64 + 1);
        node.ppm_do(vps, move |vp| async move {
            let r = vp.node_rank();
            for round in 0..rounds {
                vp.global_phase(|ph| async move {
                    let peer = (me + n - 1) % n;
                    let v = ph.get(&a, peer).await;
                    if r == 0 {
                        ph.accumulate(&acc, 0, AccumOp::Add, v);
                        ph.put(&a, me, me as u64 + 1 + round);
                    }
                })
                .await;
            }
        });
        let mut bits = node.gather_global(&a);
        bits.push(node.gather_global(&acc)[0]);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bits
    };
    let report = match trace {
        Some((sink, label)) => ppm_core::run_traced(cfg, sink, label, body),
        None => ppm_core::run(cfg, body),
    };
    let first = report.results[0].clone();
    for (i, bits) in report.results.iter().enumerate() {
        assert_eq!(bits, &first, "node {i} disagrees on the final state");
    }
    (first, report.makespan(), report.total_counters())
}

fn main() {
    let args = Args::parse();
    let trace = args.trace_path().map(|p| (TraceSink::new(), p));
    let nodes = args.nodes(&[256, 1024]);
    let threads: Vec<usize> = match args.value("--threads") {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("--threads wants integers"))
            .collect(),
        None => vec![1, 8],
    };
    let vps = args.usize("--vps", 8);
    let rounds = args.usize("--rounds", 4) as u64;

    println!(
        "# Large-N smoke — predecessor-read ring, {vps} VPs/node, \
         {rounds} phases; one mid-run permanent death\n"
    );
    header(&[
        "nodes",
        "host threads",
        "wall s",
        "simulated ms",
        "msgs/phase",
        "failovers",
        "confirmed dead",
        "cache hit rate",
    ]);

    for &nn in &nodes {
        let n = nn as usize;
        // Kill a node in the upper half so the death bit sits past the
        // old u128 sidecar range whenever the run is big enough.
        let victim = n - n / 4 - 1;
        let death_phase = 1;
        let mut base: Option<(Vec<u64>, SimTime, Counters)> = None;
        for (i, &t) in threads.iter().enumerate() {
            let label = format!("large_n_{nn}");
            let tr = match (&trace, i) {
                (Some((sink, _)), 0) => Some((sink, label.as_str())),
                _ => None,
            };
            let t0 = Instant::now();
            let (bits, makespan, c) = ring_job(nn, vps, rounds, t, victim, death_phase, tr);
            let wall = t0.elapsed().as_secs_f64();
            match &base {
                None => {
                    assert_eq!(c.failovers, 1, "{nn} nodes: seeded death never fired");
                    assert_eq!(
                        c.peers_confirmed_dead,
                        nn as u64 - 1,
                        "{nn} nodes: not every survivor confirmed the death"
                    );
                    base = Some((bits, makespan, c));
                }
                Some((b_bits, b_t, b_c)) => {
                    assert_eq!(&bits, b_bits, "{nn} nodes: results diverged at {t} threads");
                    assert_eq!(
                        makespan, *b_t,
                        "{nn} nodes: makespan diverged at {t} threads"
                    );
                    assert_eq!(&c, b_c, "{nn} nodes: counters diverged at {t} threads");
                }
            }
            row(&[
                nn.to_string(),
                t.to_string(),
                format!("{wall:.1}"),
                format!("{:.3}", makespan.as_ms_f64()),
                (c.msgs_sent / rounds).to_string(),
                c.failovers.to_string(),
                c.peers_confirmed_dead.to_string(),
                pct(c.cache_hits, c.cache_hits + c.cache_misses),
            ]);
        }
    }

    println!(
        "\n(simulated ms, failovers, confirmed dead, and hit rate are \
         asserted bit-identical across all thread counts — DESIGN.md §12; \
         msgs/phase is total msgs_sent over the job divided by the phase \
         count — the sparse exchange keeps it O(writers + N), where the \
         legacy all-to-all added N²−N empty tokens per phase, DESIGN.md §17)"
    );
    if let Some((sink, path)) = &trace {
        write_trace(sink, path);
    }
}
