//! # ppm-bench — the evaluation harness
//!
//! One binary per artifact of the paper's evaluation section:
//!
//! | Binary | Artifact | Regenerates |
//! |---|---|---|
//! | `fig1_cg` | Figure 1 | CG solver runtime vs node count, PPM vs MPI |
//! | `fig2_matgen` | Figure 2 | matrix generation runtime vs node count |
//! | `fig3_barneshut` | Figure 3 | Barnes–Hut runtime vs node count |
//! | `table1_codesize` | Table 1 | application code size, PPM vs MPI |
//! | `ablations` | §3.3 design claims | bundling / overlap knobs |
//!
//! All binaries print markdown tables to stdout and accept
//! `--nodes 1,2,4,…` plus a size flag. Times are *simulated* (the
//! substrate is the deterministic cluster model, see DESIGN.md), so runs
//! are exactly reproducible.

pub use ppm_simnet::TraceSink;
use ppm_simnet::{JobReport, SimTime};

/// Latest simulated completion instant across a job's endpoints, from a
/// per-endpoint time result.
pub fn max_time(report: &JobReport<SimTime>) -> SimTime {
    report
        .results
        .iter()
        .copied()
        .fold(SimTime::ZERO, SimTime::max)
}

/// Parse `--key v` or `--key=v` style arguments.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// Value of `--name v` / `--name=v`, if present.
    pub fn value(&self, name: &str) -> Option<String> {
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(rest) = a.strip_prefix(name) {
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.to_string());
                }
                if rest.is_empty() {
                    return self.raw.get(i + 1).cloned();
                }
            }
        }
        None
    }

    /// Comma-separated list of node counts (default the paper-style sweep).
    pub fn nodes(&self, default: &[u32]) -> Vec<u32> {
        match self.value("--nodes") {
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().expect("--nodes wants integers"))
                .collect(),
            None => default.to_vec(),
        }
    }

    /// An integer option.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .map(|v| v.parse().expect("integer option"))
            .unwrap_or(default)
    }

    /// Trace output path: `--trace <path>`, falling back to the
    /// `PPM_TRACE` environment variable. `None` disables tracing.
    pub fn trace_path(&self) -> Option<String> {
        self.value("--trace")
            .or_else(|| std::env::var("PPM_TRACE").ok())
    }
}

/// Format a simulated time in milliseconds with fixed precision.
pub fn ms(t: SimTime) -> String {
    format!("{:.3}", t.as_ms_f64())
}

/// Ratio column (`num/den`) for the figure tables. Smoke-sized problems
/// can drive the baseline to `SimTime::ZERO`, where a bare float divide
/// prints `NaN`/`inf`; print `n/a` instead of a non-number.
pub fn ratio(num: SimTime, den: SimTime) -> String {
    let r = num.as_ns_f64() / den.as_ns_f64();
    if r.is_finite() {
        format!("{r:.2}")
    } else {
        "n/a".to_string()
    }
}

/// Byte column in megabytes. One convention everywhere: MB = 1e6 bytes
/// (decimal, matching the figure labels), not 2^20.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Percentage-share column (`part` out of `whole`) for counter-derived
/// table columns, e.g. the read-cache hit rate. Single-node runs have no
/// remote reads at all, so a zero denominator prints `n/a`, not `NaN`.
pub fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", part as f64 / whole as f64 * 100.0)
    }
}

/// Flush a trace sink to `path` (Chrome trace-event JSON, plus the
/// `<path>.metrics.json` per-phase report) and tell the user on stderr so
/// the note never lands inside the stdout markdown tables.
pub fn write_trace(sink: &TraceSink, path: &str) {
    sink.write_files(path).expect("writing trace files");
    eprintln!("trace written to {path} (+ {path}.metrics.json)");
}

/// Print a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown table header (with separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Count the lines of a source file the way the paper's Table 1 does:
/// every physical line (the paper reports raw line counts); also return
/// the count excluding blank and comment-only lines for a fairer view.
pub fn line_counts(src: &str) -> (usize, usize) {
    let total = src.lines().count();
    let code = src
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count();
    (total, code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counting() {
        let src = "// doc\n\nfn f() {\n    body(); // trailing comment counts as code\n}\n";
        let (total, code) = line_counts(src);
        assert_eq!(total, 5);
        assert_eq!(code, 3);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(SimTime::from_us(1500)), "1.500");
    }

    #[test]
    fn ratio_prints_na_on_zero_denominator() {
        // Regression: smoke-sized baselines round to zero simulated time;
        // the old inline divide printed "NaN" / "inf" in the tables.
        assert_eq!(ratio(SimTime::from_us(3), SimTime::ZERO), "n/a");
        assert_eq!(ratio(SimTime::ZERO, SimTime::ZERO), "n/a");
        assert_eq!(ratio(SimTime::from_us(3), SimTime::from_us(2)), "1.50");
    }

    #[test]
    fn pct_prints_na_on_zero_denominator() {
        assert_eq!(pct(3, 0), "n/a");
        assert_eq!(pct(0, 8), "0%");
        assert_eq!(pct(3, 4), "75%");
    }

    #[test]
    fn mb_is_decimal_megabytes() {
        assert_eq!(mb(2_500_000), "2.50");
        assert_eq!(mb(0), "0.00");
    }
}
