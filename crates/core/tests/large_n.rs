//! Large-node-count regression gates: the runtime used to hit silent
//! walls at 64 nodes (refresh-push masks were `u64`) and 128 nodes
//! (death-detection sidecars were `u128`). The sidecars are growable
//! [`ppm_core::NodeSet`]s now, and these tests pin the behavior well past
//! both old caps:
//!
//! - refresh pushes arm and fire at 65+ nodes,
//! - a 256-node job with a seeded permanent death is bit-identical
//!   across host-thread counts (CI's gating `large-n` matrix column),
//! - a 1024-node smoke exercises the clock barrier, loads sidecar,
//!   refresh pushes, death confirmation, and failover in one run —
//!   bit-identical at 1 and 8 host threads (CI's non-gating perf job
//!   runs the traced bench-bin variant, `bench/src/bin/large_n.rs`).

use ppm_core::{run, AccumOp, PpmConfig};
use ppm_simnet::{Counters, FaultConfig, MachineConfig, SimTime};

/// Past the old `u64` mask wall: at 65 nodes a twice-served element that
/// the owner rewrites still earns a refresh push, so the reader's next
/// read is a cache hit on the pushed (post-rewrite) value. Before the
/// sidecar masks became growable this entire path was gated `nodes <= 64`
/// and the third read went back to the wire.
#[test]
fn refresh_push_arms_beyond_64_nodes() {
    let nodes = 65u32;
    let report = run(
        PpmConfig::new(MachineConfig::new(nodes, 1)).with_read_cache(true),
        move |node| {
            // One element per node; node 0 owns element 0.
            let a = node.alloc_global::<u64>(nodes as usize);
            node.with_local_mut(&a, |s| s[0] = 0);
            let me = node.node_id();
            node.ppm_do(1, move |vp| async move {
                for round in 0..3u64 {
                    vp.global_phase(|ph| async move {
                        if me == 1 {
                            // Round 0: miss (serve #1). Round 1: miss — the
                            // round-0 rewrite invalidated the cache — and
                            // serve #2 arms the element. Round 2: HIT on
                            // the value the owner pushed with round 1's
                            // barrier.
                            let v = ph.get(&a, 0).await;
                            assert_eq!(v, round * 10, "reader saw a stale value");
                        }
                        if me == 0 {
                            ph.put(&a, 0, (round + 1) * 10);
                        }
                    })
                    .await;
                }
            });
            node.ep_counters()
        },
    );
    let reader = &report.results[1];
    assert_eq!(
        reader.cache_misses, 2,
        "rounds 0 and 1 must go to the wire (invalidation between them)"
    );
    assert_eq!(
        reader.cache_hits, 1,
        "round 2 must be served from the pushed refresh — the 65-node \
         gate is back if this read misses"
    );
}

/// One comparable run of the large-N workload: every node reads its
/// cyclic successor's element (remote, repeatedly — so refresh pushes
/// arm), accumulates into a shared counter, and node `victim` dies
/// permanently mid-run with replication on. Reduces to (result bits,
/// makespan, job counters).
fn large_n_job(
    nodes: u32,
    vps: usize,
    host_threads: usize,
    victim: usize,
    death_phase: u64,
) -> (Vec<u64>, SimTime, Counters) {
    let cfg = PpmConfig::new(MachineConfig::new(nodes, 4))
        .with_read_cache(true)
        .with_replication(true)
        .with_host_threads(host_threads)
        .with_faults(FaultConfig::NONE.with_permanent_crash(victim, death_phase));
    let n = nodes as usize;
    let report = run(cfg, move |node| {
        let a = node.alloc_global::<u64>(n);
        let acc = node.alloc_global::<u64>(1);
        let me = node.node_id();
        node.with_local_mut(&a, |s| s[0] = me as u64 + 1);
        node.ppm_do(vps, move |vp| async move {
            let r = vp.node_rank();
            for round in 0..4u64 {
                vp.global_phase(|ph| async move {
                    // Read the predecessor's element: this reader is exactly
                    // 1 dissemination hop downstream of the owner, so a
                    // repeat serve arms a push that passes the 2-hop gate.
                    let peer = (me + n - 1) % n;
                    let v = ph.get(&a, peer).await;
                    if r == 0 {
                        ph.accumulate(&acc, 0, AccumOp::Add, v);
                        // Owners rewrite their element every round, so the
                        // armed entries keep firing refreshes.
                        ph.put(&a, me, me as u64 + 1 + round);
                    }
                })
                .await;
            }
        });
        let bits = node.gather_global(&a);
        let total = node.gather_global(&acc)[0];
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        (bits, total)
    });
    let (first_bits, first_total) = report.results[0].clone();
    for (i, (bits, total)) in report.results.iter().enumerate() {
        assert_eq!(bits, &first_bits, "node {i} disagrees on the array");
        assert_eq!(*total, first_total, "node {i} disagrees on the sum");
    }
    let mut out = first_bits;
    out.push(first_total);
    (out, report.makespan(), report.total_counters())
}

/// Past the old `u128` death-detection wall: a 256-node job with a
/// permanent death of node 200 (bit 200 — unrepresentable in the old
/// sidecars) survives, confirms the death on every live node, and is
/// bit-identical (results, makespan, every counter) at 1 and 8 host
/// threads. CI's bit-identity matrix runs this as its 256-node column.
#[test]
fn bit_identity_at_256_nodes_with_death() {
    let (base, base_t, base_c) = large_n_job(256, 2, 1, 200, 2);
    assert_eq!(base_c.failovers, 1, "the death at phase 2 never fired");
    assert_eq!(
        base_c.peers_confirmed_dead, 255,
        "every survivor must confirm the dead node"
    );
    assert!(base_c.cache_hits > 0, "refresh pushes never landed");
    let (got, t, c) = large_n_job(256, 2, 8, 200, 2);
    assert_eq!(got, base, "results diverged across host-thread counts");
    assert_eq!(t, base_t, "makespan diverged across host-thread counts");
    assert_eq!(c, base_c, "counters diverged across host-thread counts");
}

/// One run of the read-heavy workload for the message-scaling gates:
/// every node reads its predecessor's element every phase, but only the
/// first `writers` ranks ever write. With the sparse exchange on, a
/// phase's K_WRITE traffic is exactly the non-empty bundles; with it off
/// (legacy all-to-all) every phase adds N²−N empty-token messages.
fn read_heavy_job(
    nodes: u32,
    host_threads: usize,
    writers: usize,
    victim: usize,
    death_phase: u64,
    sparse: bool,
) -> (Vec<u64>, SimTime, Counters) {
    let cfg = PpmConfig::new(MachineConfig::new(nodes, 4))
        .with_read_cache(true)
        .with_replication(true)
        .with_sparse_tokens(sparse)
        .with_host_threads(host_threads)
        .with_faults(FaultConfig::NONE.with_permanent_crash(victim, death_phase));
    let n = nodes as usize;
    let report = run(cfg, move |node| {
        let a = node.alloc_global::<u64>(n);
        let me = node.node_id();
        node.with_local_mut(&a, |s| s[0] = me as u64 + 1);
        node.ppm_do(2, move |vp| async move {
            let r = vp.node_rank();
            for round in 0..4u64 {
                vp.global_phase(|ph| async move {
                    let peer = (me + n - 1) % n;
                    let v = ph.get(&a, peer).await;
                    if r == 0 && me < writers {
                        ph.put(&a, me, v + round);
                    }
                })
                .await;
            }
        });
        let bits = node.gather_global(&a);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        bits
    });
    let first = report.results[0].clone();
    for (i, bits) in report.results.iter().enumerate() {
        assert_eq!(bits, &first, "node {i} disagrees on the array");
    }
    (first, report.makespan(), report.total_counters())
}

/// Message-scaling gate (DESIGN.md §17): on a 256-node read-heavy
/// workload — 8 writers, everyone reads — total message count must scale
/// with writers + O(N) per phase, not N². The legacy all-to-all sends
/// 65,280 empty tokens per phase (261k over the run); the sparse run must
/// come in well under one legacy *phase*. The run also carries a rank-200
/// death, and results, makespan, and every counter must stay bit-identical
/// across 1 and 8 host threads.
#[test]
fn sparse_exchange_message_scaling_at_256_nodes() {
    let nodes = 256u32;
    let (base, base_t, base_c) = read_heavy_job(nodes, 1, 8, 200, 2, true);
    assert_eq!(base_c.failovers, 1, "the death at phase 2 never fired");
    assert_eq!(base_c.peers_confirmed_dead, 255);
    // Each phase: ≤2N request/response messages, ≤`writers` write bundles,
    // plus O(N) prologue/epilogue collective traffic and piggybacked acks.
    // The legacy protocol's empty tokens alone are 65,280 per phase; gate
    // at a quarter of ONE such phase so any O(N²) term trips immediately.
    let n2_per_phase = (nodes as u64) * (nodes as u64 - 1);
    assert!(
        base_c.msgs_sent < n2_per_phase / 4,
        "msgs_sent = {} — the O(N²) token exchange is back (legacy sends \
         {n2_per_phase} empty tokens per phase)",
        base_c.msgs_sent
    );
    let (got, t, c) = read_heavy_job(nodes, 8, 8, 200, 2, true);
    assert_eq!(got, base, "results diverged across host-thread counts");
    assert_eq!(t, base_t, "makespan diverged across host-thread counts");
    assert_eq!(c, base_c, "counters diverged across host-thread counts");
}

/// The sparse protocol is a pure message-count optimization: against the
/// legacy all-to-all (`with_sparse_tokens(false)`) on the identical
/// 64-node read-heavy job, results and makespan are bit-identical while
/// per-phase messages drop from N²-dominated to writers + O(N).
#[test]
fn sparse_exchange_matches_legacy_bit_for_bit() {
    let nodes = 64u32;
    let (s_bits, s_t, s_c) = read_heavy_job(nodes, 2, 4, 48, 2, true);
    let (l_bits, l_t, l_c) = read_heavy_job(nodes, 2, 4, 48, 2, false);
    assert_eq!(s_bits, l_bits, "sparse protocol changed the results");
    assert_eq!(s_t, l_t, "sparse protocol changed the makespan");
    // 4 phases × 64×63 empty-token all-to-all dominates the legacy count.
    assert!(
        l_c.msgs_sent > s_c.msgs_sent + 3 * (nodes as u64) * (nodes as u64 - 1),
        "legacy sent {} msgs vs sparse {} — the all-to-all ablation no \
         longer shows the quadratic term",
        l_c.msgs_sent,
        s_c.msgs_sent
    );
    assert_eq!(s_c.failovers, l_c.failovers);
    assert_eq!(
        s_c.bundles_sent, l_c.bundles_sent,
        "bundle counts must match"
    );
}

/// The 1024-node smoke (ignored by default — wall-clock heavy; CI's
/// `large-n` job runs it explicitly): clock barrier at 10 dissemination
/// rounds, loads sidecar asserted complete, refresh pushes active, death
/// of node 900 confirmed by 1023 survivors, failover adopted — all
/// bit-identical at 1 and 8 host threads.
#[test]
#[ignore = "wall-clock heavy; run explicitly (CI large-n job)"]
fn smoke_1024_nodes_bit_identical() {
    let (base, base_t, base_c) = large_n_job(1024, 8, 1, 900, 1);
    assert_eq!(base_c.failovers, 1, "the death at phase 1 never fired");
    assert_eq!(base_c.peers_confirmed_dead, 1023);
    assert!(base_c.cache_hits > 0, "refresh pushes never landed");
    let (got, t, c) = large_n_job(1024, 8, 8, 900, 1);
    assert_eq!(got, base, "results diverged across host-thread counts");
    assert_eq!(t, base_t, "makespan diverged across host-thread counts");
    assert_eq!(c, base_c, "counters diverged across host-thread counts");
}
