//! Tests of the dynamic phase-semantics conformance checker: seeded
//! violations must be flagged with precise diagnostics, and conforming
//! programs (including the paper's §5 binary-search example) must report
//! zero violations.

use ppm_core::{run, AccumOp, PhaseViolation, PpmConfig, Space};
use ppm_simnet::MachineConfig;

fn cfg(nodes: u32, cores: u32) -> PpmConfig {
    PpmConfig::new(MachineConfig::new(nodes, cores)).with_checker(true)
}

/// Two VPs `put` the same global element in one phase: exactly one
/// write-write conflict, attributed to the two lowest-ranked writers.
#[test]
fn unguarded_write_write_conflict_is_flagged() {
    let report = run(cfg(2, 2), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(3, move |vp| async move {
            let r = vp.global_rank() as i64;
            vp.global_phase(|ph| async move {
                ph.put(&a, 5, r); // every VP targets element 5
            })
            .await;
        });
        node.take_violations()
    });
    for (node_id, violations) in report.results.into_iter().enumerate() {
        // Element 5 lives on one node, but write buffers are recorded where
        // the writing VP runs, so each node's checker sees its own VPs'
        // puts; with 3 VPs per node every node reports one conflict.
        assert_eq!(violations.len(), 1, "node {node_id}: {violations:?}");
        match &violations[0] {
            PhaseViolation::WriteWriteConflict {
                space,
                index,
                first_vp,
                second_vp,
                ..
            } => {
                assert_eq!(*space, Space::Global);
                assert_eq!(*index, 5);
                assert!(first_vp < second_vp);
            }
            other => panic!("expected WriteWriteConflict, got {other:?}"),
        }
        // The rendering tells the user what to do about it.
        let msg = violations[0].to_string();
        assert!(msg.contains("write-write conflict"), "{msg}");
        assert!(msg.contains("accumulate"), "{msg}");
    }
}

/// The same pattern with `accumulate` is the model's sanctioned combining
/// write: zero violations.
#[test]
fn accumulate_to_one_element_is_clean() {
    let report = run(cfg(2, 2), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(4, move |vp| async move {
            let r = vp.global_rank() as i64;
            vp.global_phase(|ph| async move {
                ph.accumulate(&a, 5, AccumOp::Add, r);
            })
            .await;
        });
        let violations = node.take_violations();
        (node.gather_global(&a)[5], violations)
    });
    let total: i64 = (0..8).sum(); // 8 VPs, ranks 0..8
    for (got, violations) in report.results {
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(got, total);
    }
}

/// Different VPs putting *different* elements never conflict, and a plain
/// re-put by the same VP is legal (program order wins).
#[test]
fn disjoint_and_same_vp_puts_are_clean() {
    let report = run(cfg(1, 2), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(4, move |vp| async move {
            let r = vp.global_rank();
            vp.global_phase(|ph| async move {
                ph.put(&a, r, 1);
                ph.put(&a, r, 2); // same VP overwrites its own put: fine
            })
            .await;
        });
        let violations = node.take_violations();
        (node.gather_global(&a), violations)
    });
    for (vals, violations) in report.results {
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(&vals[..4], &[2, 2, 2, 2]);
    }
}

/// Idempotent concurrent puts — every VP writes the *same* value (the
/// Barnes–Hut "clear the shared tree cell" pattern) — are
/// value-deterministic and must not be flagged.
#[test]
fn idempotent_identical_puts_are_clean() {
    let report = run(cfg(2, 2), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(3, move |vp| async move {
            vp.global_phase(|ph| async move {
                ph.put(&a, 5, 42); // every VP, same value
            })
            .await;
        });
        let violations = node.take_violations();
        (node.gather_global(&a)[5], violations)
    });
    for (got, violations) in report.results {
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(got, 42);
    }
}

/// A VP that reads a global element after putting it in the same phase
/// gets the snapshot value back — the checker flags the hazard.
#[test]
fn read_own_write_hazard_is_flagged() {
    let report = run(cfg(1, 1), |node| {
        let a = node.alloc_global::<i64>(4);
        node.ppm_do(2, move |vp| async move {
            let r = vp.global_rank();
            vp.global_phase(|ph| async move {
                if r == 0 {
                    ph.put(&a, 2, 99);
                    let snap = ph.get(&a, 2).await;
                    assert_eq!(snap, 0, "read must see the phase-start snapshot");
                } else {
                    // Reading an element *another* VP wrote is legal
                    // snapshot semantics, not a hazard.
                    let _ = ph.get(&a, 2).await;
                }
            })
            .await;
        });
        node.take_violations()
    });
    let violations = &report.results[0];
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        matches!(
            violations[0],
            PhaseViolation::ReadOwnWrite {
                space: Space::Global,
                index: 2,
                vp: 0,
                ..
            }
        ),
        "{violations:?}"
    );
    let msg = violations[0].to_string();
    assert!(msg.contains("read-own-write"), "{msg}");
    assert!(msg.contains("snapshot"), "{msg}");
}

/// A read served from the phase-coherent read cache (DESIGN.md §13) is
/// still a read: buffering a put to the element and then getting it must
/// flag the read-own-write hazard even though no message is sent.
#[test]
fn cached_reads_still_flag_read_own_write() {
    let report = run(cfg(2, 1).with_read_cache(true), |node| {
        let a = node.alloc_global::<i64>(16); // node 1 owns 8..16
        node.ppm_do(1, move |vp| async move {
            let id = vp.node_id();
            // Phase 1: populate the cache.
            vp.global_phase(|ph| async move {
                if id == 0 {
                    let _ = ph.get(&a, 8).await;
                }
            })
            .await;
            // Phase 2: put-then-get the cached element on node 0.
            vp.global_phase(|ph| async move {
                if id == 0 {
                    ph.put(&a, 8, 99);
                    let snap = ph.get(&a, 8).await;
                    assert_eq!(snap, 0, "cache hit is still the phase-start snapshot");
                }
            })
            .await;
        });
        (node.take_violations(), node.ep_counters())
    });
    let (violations, counters) = &report.results[0];
    assert!(
        counters.cache_hits >= 1,
        "the hazardous read must have been served from the cache"
    );
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        matches!(
            violations[0],
            PhaseViolation::ReadOwnWrite {
                space: Space::Global,
                index: 8,
                vp: 0,
                ..
            }
        ),
        "{violations:?}"
    );
}

/// Snapshot semantics with the cache: a cached element being rewritten by
/// its owner in the same phase must still read as the phase-start value
/// (not the in-flight write) with zero violations — and the next phase
/// must see the new value, because the write invalidates the stale entry.
#[test]
fn cached_reads_see_phase_start_values() {
    let report = run(cfg(2, 1).with_read_cache(true), |node| {
        let a = node.alloc_global::<i64>(16);
        node.ppm_do(1, move |vp| async move {
            let id = vp.node_id();
            // Phase 1: the reader caches a[8] (initial 0).
            vp.global_phase(|ph| async move {
                if id == 0 {
                    assert_eq!(ph.get(&a, 8).await, 0);
                }
            })
            .await;
            // Phase 2: the owner rewrites it; the reader's cached read is
            // legally the phase-start value, not the in-flight write.
            vp.global_phase(|ph| async move {
                if id == 0 {
                    assert_eq!(ph.get(&a, 8).await, 0, "phase-start value");
                } else {
                    ph.put(&a, 8, 55);
                }
            })
            .await;
            // Phase 3: the write is visible (the stale entry was dropped).
            vp.global_phase(|ph| async move {
                if id == 0 {
                    assert_eq!(ph.get(&a, 8).await, 55);
                }
            })
            .await;
        });
        node.take_violations()
    });
    for v in &report.results {
        assert!(v.is_empty(), "{v:?}");
    }
}

/// Node-shared arrays get the same checking as global ones.
#[test]
fn node_array_conflicts_are_flagged_per_space() {
    let report = run(cfg(1, 2), |node| {
        let b = node.alloc_node::<u64>(4);
        node.ppm_do(2, move |vp| async move {
            let r = vp.node_rank() as u64;
            vp.node_phase(|ph| async move {
                ph.put_node(&b, 1, 7 + r); // both VPs, different values
            })
            .await;
        });
        node.take_violations()
    });
    let violations = &report.results[0];
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        matches!(
            violations[0],
            PhaseViolation::WriteWriteConflict {
                space: Space::Node,
                index: 1,
                first_vp: 0,
                second_vp: 1,
                ..
            }
        ),
        "{violations:?}"
    );
}

/// Violations are reported per phase: a conflict in phase 1 does not leak
/// into a clean phase 2, and each drain empties the queue.
#[test]
fn violations_reset_between_phases_and_drains() {
    let report = run(cfg(1, 2), |node| {
        let a = node.alloc_global::<i64>(4);
        node.ppm_do(2, move |vp| async move {
            let r = vp.global_rank();
            vp.global_phase(|ph| async move {
                ph.put(&a, 0, r as i64); // conflict
            })
            .await;
            vp.global_phase(|ph| async move {
                ph.put(&a, r, 1); // disjoint: clean
            })
            .await;
        });
        let first = node.take_violations();
        let second = node.take_violations();
        (first, second)
    });
    let (first, second) = &report.results[0];
    assert_eq!(first.len(), 1, "{first:?}");
    assert!(second.is_empty(), "drain must empty the queue: {second:?}");
}

/// The checker is observation only: results are identical with it on and
/// off.
#[test]
fn checker_does_not_perturb_results() {
    let job = |check: bool| {
        run(
            PpmConfig::new(MachineConfig::new(2, 2)).with_checker(check),
            |node| {
                let a = node.alloc_global::<i64>(32);
                node.ppm_do(4, move |vp| async move {
                    let r = vp.global_rank();
                    let k = vp.global_vp_count();
                    vp.global_phase(|ph| async move {
                        let mut j = r;
                        while j < 32 {
                            ph.put(&a, j, (j * 3) as i64);
                            j += k;
                        }
                    })
                    .await;
                    vp.global_phase(|ph| async move {
                        let v = ph.get(&a, (r * 5) % 32).await;
                        ph.accumulate(&a, 0, AccumOp::Add, v);
                    })
                    .await;
                });
                node.gather_global(&a)
            },
        )
    };
    let on = job(true);
    let off = job(false);
    assert_eq!(on.results, off.results);
    assert_eq!(on.makespan(), off.makespan());
}

/// The paper's §5 example — every VP binary-searches a sorted global array
/// inside one global phase — is a conforming program: zero violations.
#[test]
fn binary_search_example_is_conformant() {
    let n = 64;
    let k = 16;
    let report = run(cfg(2, 4), move |node| {
        let a = node.alloc_global::<f64>(n);
        let b = node.alloc_node::<f64>(k);
        let rank_in_a = node.alloc_node::<u64>(k);
        let lo = node.local_range(&a).start;
        node.with_local_mut(&a, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = (lo + off) as f64 * 2.0;
            }
        });
        node.with_node_mut(&b, |s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = i as f64 * 7.3;
            }
        });
        node.ppm_do(k, move |vp| async move {
            let me = vp.node_rank();
            vp.global_phase(|ph| async move {
                let key = ph.get_node(&b, me);
                let (mut left, mut right) = (0usize, n);
                while left < right {
                    let mid = (left + right) / 2;
                    if ph.get(&a, mid).await < key {
                        left = mid + 1;
                    } else {
                        right = mid;
                    }
                }
                ph.put_node(&rank_in_a, me, right as u64);
            })
            .await;
        });
        let violations = node.take_violations();
        (node.with_node(&rank_in_a, |s| s.to_vec()), violations)
    });
    for (ranks, violations) in &report.results {
        assert!(violations.is_empty(), "checker: {violations:?}");
        for (i, &r) in ranks.iter().enumerate() {
            let key = i as f64 * 7.3;
            let expect = (0..n).position(|j| j as f64 * 2.0 >= key).unwrap_or(n);
            assert_eq!(r as usize, expect);
        }
    }
}

/// Structural violations abort with the `PhaseViolation` rendering.
#[test]
#[should_panic(expected = "phases cannot be nested")]
fn nested_phase_aborts_with_violation_message() {
    run(cfg(1, 1), |node| {
        node.ppm_do(1, |vp| async move {
            let v = vp.clone();
            vp.global_phase(|_ph| async move {
                v.node_phase(|_p2| async move {}).await;
            })
            .await;
        });
    });
}

#[test]
#[should_panic(expected = "VPs disagree on the current phase kind")]
fn phase_kind_mismatch_aborts_with_violation_message() {
    run(cfg(1, 2), |node| {
        node.ppm_do(2, |vp| async move {
            if vp.node_rank() == 0 {
                vp.global_phase(|_ph| async move {}).await;
            } else {
                vp.node_phase(|_ph| async move {}).await;
            }
        });
    });
}
