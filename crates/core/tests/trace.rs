//! Integration tests for the per-phase tracing layer: the trace must be a
//! faithful, deterministic record of the §5 binary-search example — one
//! request bundle per (destination, wave), per-phase counter deltas that
//! reconcile with the phase traffic — and tracing must never perturb the
//! simulation (bit-identical results, makespan, and counters).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use ppm_core::{run, run_traced, NodeCtx, PpmConfig, TraceSink};
use ppm_simnet::{validate_json, EventKind, MachineConfig, TraceEvent};

const N: usize = 64;
const K: usize = 16;

/// The paper's §5 binary search (see `ppm_core` crate docs): one VP per
/// element of `B`, each running a loop of dependent remote reads against
/// the phase-start snapshot of the sorted global array `A`.
fn binary_search(node: &mut NodeCtx<'_>) -> Vec<u64> {
    let a = node.alloc_global::<f64>(N);
    let b = node.alloc_node::<f64>(K);
    let rank_in_a = node.alloc_node::<u64>(K);
    let lo = node.local_range(&a).start;
    node.with_local_mut(&a, |s| {
        for (off, v) in s.iter_mut().enumerate() {
            *v = (lo + off) as f64 * 2.0;
        }
    });
    node.with_node_mut(&b, |s| {
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as f64 * 7.3;
        }
    });
    node.ppm_do(K, move |vp| async move {
        let me = vp.node_rank();
        vp.global_phase(|ph| async move {
            let key = ph.get_node(&b, me);
            let (mut left, mut right) = (0usize, N);
            while left < right {
                let mid = (left + right) / 2;
                if ph.get(&a, mid).await < key {
                    left = mid + 1;
                } else {
                    right = mid;
                }
            }
            ph.put_node(&rank_in_a, me, right as u64);
        })
        .await;
    });
    node.with_node(&rank_in_a, |s| s.to_vec())
}

fn cfg() -> PpmConfig {
    PpmConfig::franklin(2)
}

#[test]
fn tracing_does_not_perturb_results_makespan_or_counters() {
    let plain = run(cfg(), binary_search);
    let sink = TraceSink::new();
    let traced = run_traced(cfg(), &sink, "bsearch", binary_search);

    assert!(!sink.is_empty(), "traced run recorded no events");
    assert_eq!(traced.results, plain.results, "tracing changed results");
    assert_eq!(
        traced.makespan(),
        plain.makespan(),
        "tracing changed the simulated makespan"
    );
    assert_eq!(
        traced.counters, plain.counters,
        "tracing changed per-node counters"
    );
    assert_eq!(traced.total_counters(), plain.total_counters());
}

#[test]
fn trace_is_deterministic_across_runs() {
    let record = || {
        let sink = TraceSink::new();
        run_traced(cfg(), &sink, "bsearch", binary_search);
        sink.chrome_trace_json()
    };
    assert_eq!(record(), record(), "same job must give the same trace");
}

/// Walk one node's events in emission order, checking each communication
/// wave against the phase summary that closes it. Returns the number of
/// phase summaries seen.
fn check_node_track(events: &[&TraceEvent]) -> usize {
    let mut wave_bundles = 0u64;
    let mut phases = 0usize;
    let mut next_phase = 0u64;
    for ev in events {
        match ev.name {
            "wave" => {
                let dests = ev.arg_u64("dests").expect("wave dests");
                let bundles = ev.arg_u64("bundles").expect("wave bundles");
                assert_eq!(
                    bundles, dests,
                    "§3.3 bundling: exactly one request bundle per \
                     (destination, wave)"
                );
                wave_bundles += bundles;
            }
            "global_phase" => {
                assert!(matches!(ev.kind, EventKind::Span { .. }));
                assert_eq!(ev.arg_u64("phase"), Some(next_phase));
                next_phase += 1;
                phases += 1;
                let req = ev.arg_u64("req_bundles_out").expect("req_bundles_out");
                let wr = ev.arg_u64("write_bundles_out").expect("write_bundles_out");
                let d_bundles = ev.arg_u64("d_bundles_sent").expect("d_bundles_sent");
                assert_eq!(
                    req, wave_bundles,
                    "phase request bundles must equal the sum of its wave \
                     events' bundle counts"
                );
                assert_eq!(
                    d_bundles,
                    req + wr,
                    "per-phase bundles_sent delta must reconcile with the \
                     phase traffic"
                );
                wave_bundles = 0;
            }
            _ => {}
        }
    }
    phases
}

#[test]
fn binary_search_trace_has_per_node_tracks_waves_and_counter_deltas() {
    let sink = TraceSink::new();
    run_traced(cfg(), &sink, "bsearch", binary_search);
    let events = sink.events();

    for tid in [0u32, 1] {
        let track: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.pid == 0 && e.tid == tid)
            .collect();
        assert!(!track.is_empty(), "node {tid} recorded nothing");
        let phases = check_node_track(&track);
        assert_eq!(phases, 1, "node {tid}: the example runs one global phase");
        assert!(
            track.iter().any(|e| e.name == "wave"),
            "node {tid}: dependent gets must produce communication waves"
        );
        // The searched element count shrinks by half per wave: the dependent
        // gets need ~log2(N) waves, not one per get.
        let waves = track.iter().filter(|e| e.name == "wave").count();
        assert!(
            waves <= N.ilog2() as usize + 2,
            "node {tid}: {waves} waves for a log2({N}) search"
        );
    }

    // Exactly one traced job, with a track per node.
    assert_eq!(sink.jobs(), vec![("bsearch".to_string(), 2)]);
    assert!(events.iter().all(|e| e.pid == 0 && e.tid < 2));
}

/// Regression (DESIGN.md §11): `wave` instants used to all stamp at the
/// phase-start instant. They must now advance strictly with the wave index
/// — phase start plus the cumulative wave completion cost — while the
/// phase span itself still starts where the phase opened (the stamps are
/// tracing-only and never feed charged time, which
/// `tracing_does_not_perturb_results_makespan_or_counters` pins).
#[test]
fn wave_instants_advance_within_a_phase() {
    let sink = TraceSink::new();
    run_traced(cfg(), &sink, "bsearch", binary_search);
    let events = sink.events();

    for tid in [0u32, 1] {
        let mut wave_ts = Vec::new();
        let mut checked_any = false;
        for ev in events.iter().filter(|e| e.pid == 0 && e.tid == tid) {
            match ev.name {
                "wave" => wave_ts.push(ev.ts),
                "global_phase" => {
                    assert!(
                        !wave_ts.is_empty(),
                        "node {tid}: dependent gets must trace waves"
                    );
                    for (i, &ts) in wave_ts.iter().enumerate() {
                        assert!(
                            ts > ev.ts,
                            "node {tid} wave {i}: instant {ts:?} must lie \
                             strictly after the phase start {:?}",
                            ev.ts
                        );
                    }
                    for (i, pair) in wave_ts.windows(2).enumerate() {
                        assert!(
                            pair[0] < pair[1],
                            "node {tid}: wave {i} at {:?} not before wave {} \
                             at {:?}",
                            pair[0],
                            i + 1,
                            pair[1]
                        );
                    }
                    wave_ts.clear();
                    checked_any = true;
                }
                _ => {}
            }
        }
        assert!(checked_any, "node {tid}: no phase summary seen");
    }
}

#[test]
fn chrome_and_metrics_exports_are_valid_json() {
    let sink = TraceSink::new();
    run_traced(cfg(), &sink, "bsearch", binary_search);

    let chrome = sink.chrome_trace_json();
    validate_json(&chrome).expect("chrome trace JSON is well-formed");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("node 0") && chrome.contains("node 1"));
    assert!(chrome.contains("bsearch"), "process is named after the job");

    let metrics = sink.metrics_json();
    validate_json(&metrics).expect("metrics JSON is well-formed");
    assert!(metrics.contains("\"kind\":\"global\""));
    assert!(metrics.contains("\"makespan_ps\""));
}

#[test]
fn watchdog_stall_dump_is_recorded_in_the_trace() {
    // Node 1 skips the collective, so node 0 blocks in a receive that can
    // never complete. The watchdog panic must still leave a `recv_stall`
    // event carrying the protocol-state dump on the shared sink.
    let machine = MachineConfig::new(2, 1).with_recv_stall(Duration::from_millis(200));
    let cfg = PpmConfig::new(machine).with_reliability(true);
    let sink = TraceSink::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_traced(cfg, &sink, "stall", |node| {
            if node.node_id() == 0 {
                node.allreduce_nodes(1u64, |a, b| a + b);
            }
        });
    }));
    assert!(outcome.is_err(), "the stalled run must panic");

    let events = sink.events();
    let stall = events
        .iter()
        .find(|e| e.name == "recv_stall")
        .expect("watchdog must record a recv_stall event before panicking");
    assert_eq!(stall.tid, 0, "node 0 is the one that stalled");
    let dump = stall.arg_str("dump").expect("recv_stall carries the dump");
    assert!(
        dump.contains("protocol state"),
        "dump should be the protocol-state report, got: {dump}"
    );
}
