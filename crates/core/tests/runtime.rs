//! Behavioural tests of the PPM runtime semantics, exercised through the
//! public API across a range of machine shapes.

use ppm_core::{run, AccumOp, PpmConfig};
use ppm_simnet::MachineConfig;

fn cfg(nodes: u32, cores: u32) -> PpmConfig {
    PpmConfig::new(MachineConfig::new(nodes, cores))
}

/// Shapes exercised by most tests: single node, multi-node, odd counts.
fn shapes() -> Vec<PpmConfig> {
    vec![
        cfg(1, 1),
        cfg(1, 4),
        cfg(2, 2),
        cfg(3, 1),
        cfg(4, 4),
        cfg(5, 3),
    ]
}

#[test]
fn reads_see_phase_start_snapshot() {
    // Every VP increments-by-put its own element while reading its
    // neighbour's: all reads must observe the *initial* values even though
    // writes are issued in the same phase.
    for c in shapes() {
        let n = 24;
        let report = run(c, move |node| {
            let a = node.alloc_global::<u64>(n);
            let r = node.local_range(&a);
            node.with_local_mut(&a, |s| {
                for (off, v) in s.iter_mut().enumerate() {
                    *v = (r.start + off) as u64 * 10;
                }
            });
            let k = if node.node_id() == 0 { n } else { 0 };
            node.ppm_do(k.max(1).min(n), move |vp| async move {
                if vp.node_id() != 0 {
                    // Other nodes still participate in the global phase.
                    vp.global_phase(|_ph| async move {}).await;
                    return;
                }
                let i = vp.node_rank();
                vp.global_phase(|ph| async move {
                    let neighbour = ph.get(&a, (i + 1) % n).await;
                    assert_eq!(
                        neighbour,
                        (((i + 1) % n) as u64) * 10,
                        "read must see the phase-start value"
                    );
                    ph.put(&a, i, neighbour + 1);
                })
                .await;
            });
            node.gather_global(&a)
        });
        for got in report.results {
            let expect: Vec<u64> = (0..n).map(|i| (((i + 1) % n) as u64) * 10 + 1).collect();
            assert_eq!(got, expect);
        }
    }
}

#[test]
fn writes_visible_in_next_phase() {
    for c in shapes() {
        let n = 16;
        let report = run(c, move |node| {
            let a = node.alloc_global::<u64>(n);
            let nodes = node.num_nodes();
            // Spread VPs over nodes: each VP owns index == its global rank.
            let k = n / nodes + usize::from(node.node_id() < n % nodes);
            node.ppm_do(k, move |vp| async move {
                let i = vp.global_rank();
                vp.global_phase(|ph| async move {
                    ph.put(&a, i, (i * i) as u64);
                })
                .await;
                vp.global_phase(|ph| async move {
                    let v = ph.get(&a, (i + 1) % n).await;
                    let j = (i + 1) % n;
                    assert_eq!(v, (j * j) as u64, "phase-2 read sees phase-1 writes");
                })
                .await;
            });
        });
        assert_eq!(report.results.len(), c.nodes());
    }
}

#[test]
fn put_conflicts_resolve_to_highest_rank_writer() {
    for c in shapes() {
        let report = run(c, move |node| {
            let a = node.alloc_global::<u64>(1);
            let k = 5;
            node.ppm_do(k, move |vp| async move {
                let me = vp.global_rank() as u64;
                vp.global_phase(|ph| async move {
                    ph.put(&a, 0, 1000 + me);
                })
                .await;
            });
            node.gather_global(&a)[0]
        });
        let total_vps = 5 * c.nodes() as u64;
        for got in report.results {
            assert_eq!(got, 1000 + total_vps - 1, "last (highest-rank) writer wins");
        }
    }
}

#[test]
fn later_put_by_same_vp_wins() {
    let report = run(cfg(2, 2), move |node| {
        let a = node.alloc_global::<u64>(4);
        node.ppm_do(1, move |vp| async move {
            vp.global_phase(|ph| async move {
                ph.put(&a, 2, 1);
                ph.put(&a, 2, 7);
            })
            .await;
        });
        node.gather_global(&a)[2]
    });
    assert!(report.results.iter().all(|&v| v == 7));
}

#[test]
fn accumulate_sums_across_all_vps() {
    for c in shapes() {
        let k = 7usize;
        let report = run(c, move |node| {
            let acc = node.alloc_global::<u64>(2);
            node.ppm_do(k, move |vp| async move {
                let me = vp.global_rank() as u64;
                vp.global_phase(|ph| async move {
                    ph.accumulate(&acc, 0, AccumOp::Add, me + 1);
                    ph.accumulate(&acc, 1, AccumOp::Max, me);
                })
                .await;
            });
            node.gather_global(&acc)
        });
        let total = k as u64 * c.nodes() as u64;
        for got in report.results {
            assert_eq!(got[0], total * (total + 1) / 2, "global sum");
            assert_eq!(got[1], total - 1, "global max");
        }
    }
}

#[test]
fn accumulate_float_sum_is_deterministic() {
    let go = || {
        run(cfg(3, 2), move |node| {
            let acc = node.alloc_global::<f64>(1);
            node.ppm_do(50, move |vp| async move {
                let me = vp.global_rank() as f64;
                vp.global_phase(|ph| async move {
                    ph.accumulate(&acc, 0, AccumOp::Add, 0.1 * (me + 1.0));
                })
                .await;
            });
            node.gather_global(&acc)[0].to_bits()
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results, "bit-identical accumulation");
    assert_eq!(a.makespan(), b.makespan(), "bit-identical clocks");
}

#[test]
fn node_phase_publishes_node_shared_only_locally() {
    let report = run(cfg(3, 4), move |node| {
        let buf = node.alloc_node::<u64>(8);
        let me = node.node_id() as u64;
        node.ppm_do(8, move |vp| async move {
            let i = vp.node_rank();
            vp.node_phase(|ph| async move {
                ph.put_node(&buf, i, me * 100 + i as u64);
            })
            .await;
            vp.node_phase(|ph| async move {
                // Every VP sees the whole node's writes from phase 1.
                let v = ph.get_node(&buf, (i + 3) % 8);
                assert_eq!(v, me * 100 + ((i + 3) % 8) as u64);
            })
            .await;
        });
        node.with_node(&buf, |s| s.to_vec())
    });
    for (n, got) in report.results.into_iter().enumerate() {
        let expect: Vec<u64> = (0..8).map(|i| n as u64 * 100 + i).collect();
        assert_eq!(got, expect, "node {n} instance is independent");
    }
}

#[test]
fn node_phases_do_not_touch_the_network() {
    let report = run(cfg(4, 4), move |node| {
        let buf = node.alloc_node::<u64>(16);
        node.ppm_do(16, move |vp| async move {
            let i = vp.node_rank();
            for round in 0..5u64 {
                vp.node_phase(|ph| async move {
                    let prev = ph.get_node(&buf, i);
                    ph.put_node(&buf, i, prev + round);
                })
                .await;
            }
        });
        node.with_node(&buf, |s| s.iter().sum::<u64>())
    });
    // 16 elements × (0+1+2+3+4)
    assert!(report.results.iter().all(|&s| s == 160));
    let totals = report.total_counters();
    // Only the ppm_do prologue allgather communicates; node phases add 0.
    assert_eq!(totals.remote_gets, 0);
    assert_eq!(totals.remote_puts, 0);
    assert_eq!(totals.waves, 0);
}

#[test]
fn dependent_reads_take_multiple_waves() {
    // A pointer-chase across nodes: VP follows a linked list stored in a
    // global array, one hop per wave, all within one phase.
    let c = cfg(4, 1);
    let n = 32;
    let report = run(c, move |node| {
        let next = node.alloc_global::<u64>(n);
        let r = node.local_range(&next);
        node.with_local_mut(&next, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                // A stride permutation that hops between nodes.
                *v = ((r.start + off) as u64 * 13 + 5) % n as u64;
            }
        });
        let k = usize::from(node.node_id() == 0);
        node.ppm_do(k.max(1), move |vp| async move {
            if vp.node_id() != 0 || vp.node_rank() > 0 {
                vp.global_phase(|_ph| async move {}).await;
                return;
            }
            vp.global_phase(|ph| async move {
                let mut cur = 0u64;
                let mut path = Vec::new();
                for _ in 0..10 {
                    cur = ph.get(&next, cur as usize).await;
                    path.push(cur);
                }
                // Sequential reference of the same chase.
                let expect_fn = |i: u64| (i * 13 + 5) % n as u64;
                let mut e = 0u64;
                for &p in &path {
                    e = expect_fn(e);
                    assert_eq!(p, e);
                }
            })
            .await;
        });
        node.ep_counters()
    });
    let waves: u64 = report.results.iter().map(|c| c.waves).sum();
    assert!(
        waves >= 5,
        "a 10-hop remote chase needs many waves, got {waves}"
    );
}

#[test]
fn bundling_one_request_message_per_destination_per_wave() {
    // One phase in which node 0's 64 VPs each read one element from node 1:
    // with bundling the runtime must send exactly ONE request message.
    let c = cfg(2, 4);
    let report = run(c, move |node| {
        let a = node.alloc_global::<u64>(128); // node 1 owns 64..128
        let k = if node.node_id() == 0 { 64 } else { 1 };
        node.ppm_do(k, move |vp| async move {
            let i = vp.node_rank();
            let v = vp.clone();
            vp.global_phase(|ph| async move {
                if v.node_id() == 0 {
                    let _ = ph.get(&a, 64 + i).await;
                }
            })
            .await;
        });
        node.ep_counters()
    });
    let c0 = &report.results[0];
    assert_eq!(c0.remote_gets, 64, "64 fine-grained reads issued");
    assert_eq!(c0.bundles_sent, 1, "bundled into one request message");
    assert_eq!(c0.waves, 1);
}

#[test]
fn determinism_across_runs_and_schedules() {
    let go = || {
        run(cfg(3, 4), move |node| {
            let a = node.alloc_global::<f64>(60);
            let r = node.local_range(&a);
            node.with_local_mut(&a, |s| {
                for (off, v) in s.iter_mut().enumerate() {
                    *v = (r.start + off) as f64;
                }
            });
            node.ppm_do(20, move |vp| async move {
                let g = vp.global_rank();
                for _round in 0..3 {
                    let v2 = vp.clone();
                    vp.global_phase(|ph| async move {
                        let v = ph.get(&a, (g * 7 + 3) % 60).await;
                        ph.accumulate(&a, g % 60, AccumOp::Add, v * 0.5);
                        v2.charge_flops(10);
                    })
                    .await;
                }
            });
            (
                node.gather_global(&a)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect::<Vec<_>>(),
                node.now(),
            )
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn vp_ranks_and_system_variables() {
    let c = cfg(3, 2);
    let report = run(c, move |node| {
        let ranks = node.alloc_global::<u64>(30);
        let k = 10;
        node.ppm_do(k, move |vp| async move {
            assert_eq!(vp.node_vp_count(), 10);
            assert_eq!(vp.global_vp_count(), 30);
            assert_eq!(vp.num_nodes(), 3);
            assert_eq!(vp.cores_per_node(), 2);
            assert_eq!(vp.global_rank(), vp.node_id() * 10 + vp.node_rank());
            let g = vp.global_rank();
            vp.global_phase(|ph| async move {
                ph.put(&ranks, g, g as u64 + 1);
            })
            .await;
        });
        node.gather_global(&ranks)
    });
    let expect: Vec<u64> = (1..=30).collect();
    for got in report.results {
        assert_eq!(got, expect);
    }
}

#[test]
fn different_vp_counts_per_node() {
    let c = cfg(4, 2);
    let report = run(c, move |node| {
        let acc = node.alloc_global::<u64>(1);
        let k = node.node_id() + 1; // 1, 2, 3, 4 VPs
        node.ppm_do(k, move |vp| async move {
            vp.global_phase(|ph| async move {
                ph.accumulate(&acc, 0, AccumOp::Add, 1);
            })
            .await;
        });
        node.gather_global(&acc)[0]
    });
    assert!(report.results.iter().all(|&v| v == 10));
}

#[test]
fn multiple_ppm_dos_compose() {
    let report = run(cfg(2, 2), move |node| {
        let a = node.alloc_global::<u64>(8);
        for round in 0..3u64 {
            node.ppm_do(4, move |vp| async move {
                let g = vp.global_rank();
                vp.global_phase(|ph| async move {
                    let prev = ph.get(&a, g).await;
                    ph.put(&a, g, prev + round + 1);
                })
                .await;
            });
        }
        node.gather_global(&a)
    });
    for got in report.results {
        assert_eq!(got, vec![6, 6, 6, 6, 6, 6, 6, 6]);
    }
}

#[test]
fn phase_body_can_return_values() {
    let report = run(cfg(2, 1), move |node| {
        let a = node.alloc_global::<u64>(4);
        node.with_local_mut(&a, |s| s.fill(5));
        let result = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let r2 = result.clone();
        node.ppm_do(1, move |vp| {
            let r = r2.clone();
            async move {
                let sum = vp
                    .global_phase(|ph| async move {
                        let x = ph.get(&a, 0).await;
                        let y = ph.get(&a, 3).await;
                        x + y
                    })
                    .await;
                r.store(sum, std::sync::atomic::Ordering::Relaxed);
            }
        });
        result.load(std::sync::atomic::Ordering::Relaxed)
    });
    assert!(report.results.iter().all(|&v| v == 10));
}

#[test]
fn simulated_time_grows_with_communication() {
    // Same computation; reading remote data must cost more simulated time
    // than reading local data.
    let local_time = run(cfg(2, 1), move |node| {
        let a = node.alloc_global::<u64>(64);
        node.ppm_do(8, move |vp| async move {
            let base = vp.node_id() * 32; // own partition
            vp.global_phase(|ph| async move {
                for j in 0..4 {
                    let _ = ph.get(&a, base + j).await;
                }
            })
            .await;
        });
    })
    .makespan();
    let remote_time = run(cfg(2, 1), move |node| {
        let a = node.alloc_global::<u64>(64);
        node.ppm_do(8, move |vp| async move {
            let base = (1 - vp.node_id()) * 32; // the other node's partition
            vp.global_phase(|ph| async move {
                for j in 0..4 {
                    let _ = ph.get(&a, base + j).await;
                }
            })
            .await;
        });
    })
    .makespan();
    assert!(
        remote_time > local_time,
        "remote {remote_time} must exceed local {local_time}"
    );
}

#[test]
fn clock_breakdown_sums_to_now() {
    let report = run(cfg(3, 2), move |node| {
        let a = node.alloc_global::<f64>(30);
        node.ppm_do(10, move |vp| async move {
            let g = vp.global_rank();
            vp.charge_flops(100);
            vp.global_phase(|ph| async move {
                let v = ph.get(&a, (g + 7) % 30).await;
                ph.put(&a, g, v + 1.0);
            })
            .await;
        });
    });
    for clock in &report.clocks {
        assert_eq!(clock.compute() + clock.comm() + clock.wait(), clock.now());
        assert!(clock.now() > ppm_simnet::SimTime::ZERO);
    }
}

#[test]
fn get_many_edge_cases() {
    let report = run(cfg(3, 2), move |node| {
        let a = node.alloc_global::<u64>(30);
        let r = node.local_range(&a);
        node.with_local_mut(&a, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = ((r.start + off) * 3) as u64;
            }
        });
        node.ppm_do(2, move |vp| async move {
            vp.global_phase(|ph| async move {
                // Empty batch resolves immediately.
                let none = ph.get_many(&a, std::iter::empty()).await;
                assert!(none.is_empty());
                // Duplicates, repeats, mixed local/remote, reversed order.
                let idxs = [29usize, 0, 7, 7, 29, 15, 0];
                let got = ph.get_many(&a, idxs.iter().copied()).await;
                let expect: Vec<u64> = idxs.iter().map(|&i| (i * 3) as u64).collect();
                assert_eq!(got, expect, "values arrive in request order");
            })
            .await;
        });
        node.ep_counters()
    });
    // Each node's wave must carry deduplicated entries only.
    for c in &report.results {
        assert!(c.waves <= 2, "one wave per phase at most, got {}", c.waves);
    }
}

#[test]
fn get_many_matches_sequential_gets() {
    let report = run(cfg(2, 1), move |node| {
        let a = node.alloc_global::<f64>(64);
        let r = node.local_range(&a);
        node.with_local_mut(&a, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = (r.start + off) as f64 * 0.5;
            }
        });
        node.ppm_do(4, move |vp| async move {
            let g = vp.global_rank();
            vp.global_phase(|ph| async move {
                let idxs: Vec<usize> = (0..10).map(|j| (g * 13 + j * 7) % 64).collect();
                let bulk = ph.get_many(&a, idxs.iter().copied()).await;
                for (k, &i) in idxs.iter().enumerate() {
                    let single = ph.get(&a, i).await;
                    assert_eq!(bulk[k].to_bits(), single.to_bits());
                }
            })
            .await;
        });
    });
    assert_eq!(report.results.len(), 2);
}

#[test]
#[should_panic(expected = "at least one VP per node")]
fn collective_do_with_zero_vps_panics() {
    run(cfg(1, 1), move |node| {
        node.ppm_do(0, move |vp| async move {
            vp.global_phase(|_ph| async move {}).await;
        });
    });
}

#[test]
fn phase_log_records_every_phase() {
    // Read caching off: this test pins the phase log's per-phase wave
    // accounting, so every phase must actually go to the wire (with the
    // cache on, steady-state phases legitimately run zero waves — covered
    // by the read-cache tests below).
    let report = run(cfg(2, 2).with_read_cache(false), move |node| {
        let a = node.alloc_global::<u64>(16);
        node.ppm_do(4, move |vp| async move {
            let g = vp.global_rank();
            // An element in the middle of the *other* node's block.
            let remote = if vp.node_id() == 0 { 8 } else { 0 } + vp.node_rank();
            for _ in 0..3 {
                vp.global_phase(|ph| async move {
                    let v = ph.get(&a, remote).await;
                    ph.put(&a, g, v + 1);
                })
                .await;
                vp.node_phase(|_ph| async move {}).await;
            }
        });
        node.take_phase_log()
    });
    for log in &report.results {
        assert_eq!(log.len(), 6, "3 global + 3 node phases");
        let globals: Vec<_> = log
            .iter()
            .filter(|r| r.kind == ppm_core::PhaseKind::Global)
            .collect();
        let nodes_: Vec<_> = log
            .iter()
            .filter(|r| r.kind == ppm_core::PhaseKind::Node)
            .collect();
        assert_eq!(globals.len(), 3);
        assert_eq!(nodes_.len(), 3);
        for g in globals {
            assert!(g.waves >= 1, "each global phase has remote reads");
            assert!(g.bytes_out > 0);
            assert!(g.compute > ppm_simnet::SimTime::ZERO);
        }
        for n in nodes_ {
            assert_eq!(n.bytes_out, 0, "node phases are network-free");
        }
    }
    // Draining empties the log.
    let report2 = run(cfg(1, 1), move |node| {
        node.ppm_do(1, |vp| async move {
            vp.node_phase(|_| async move {}).await;
        });
        let first = node.take_phase_log().len();
        let second = node.take_phase_log().len();
        (first, second)
    });
    assert_eq!(report2.results[0], (1, 0));
}

#[test]
fn read_cache_serves_repeat_fetches_across_waves() {
    // Cross-wave dedup within one phase: VP 1 fetches elements 8 and 12 in
    // the first wave; VP 0's dependent second read of 12 must then be a
    // cache hit (no second wave) with the cache on, and a second wave with
    // it off. Values are identical either way.
    for cache in [true, false] {
        let report = run(cfg(2, 1).with_read_cache(cache), move |node| {
            let a = node.alloc_global::<u64>(16); // node 1 owns 8..16
            if node.node_id() == 1 {
                node.with_local_mut(&a, |s| {
                    s[0] = 12; // a[8]: pointer to a[12]
                    s[4] = 7; // a[12]
                });
            }
            let k = if node.node_id() == 0 { 2 } else { 1 };
            node.ppm_do(k, move |vp| async move {
                let id = vp.node_id();
                let r = vp.node_rank();
                vp.global_phase(|ph| async move {
                    if id != 0 {
                        return;
                    }
                    if r == 0 {
                        let next = ph.get(&a, 8).await;
                        assert_eq!(next, 12);
                        let v = ph.get(&a, next as usize).await;
                        assert_eq!(v, 7);
                    } else {
                        let got = ph.get_many(&a, [8usize, 12]).await;
                        assert_eq!(got, vec![12, 7]);
                    }
                })
                .await;
            });
            node.ep_counters()
        });
        let c0 = &report.results[0];
        assert_eq!(c0.dedup_reads, 1, "element 8 deduplicated within wave 1");
        if cache {
            assert_eq!(c0.waves, 1, "the dependent read is served locally");
            assert_eq!(c0.cache_hits, 1);
            assert_eq!(c0.cache_misses, 3);
        } else {
            assert_eq!(c0.waves, 2, "cache off: the repeat read re-fetches");
            assert_eq!(c0.cache_hits, 0);
            assert_eq!(c0.cache_misses, 4);
        }
    }
}

#[test]
fn unwritten_remote_elements_are_fetched_at_most_once() {
    // Phase-end invalidation is per array and only when the array took
    // writes: a never-written element is fetched in the first phase and
    // served locally in every later phase — zero waves in steady state.
    for cache in [true, false] {
        let report = run(cfg(2, 1).with_read_cache(cache), move |node| {
            let a = node.alloc_global::<u64>(16);
            if node.node_id() == 1 {
                node.with_local_mut(&a, |s| s[0] = 42);
            }
            node.ppm_do(1, move |vp| async move {
                let id = vp.node_id();
                for _ in 0..3 {
                    vp.global_phase(|ph| async move {
                        if id == 0 {
                            assert_eq!(ph.get(&a, 8).await, 42);
                        }
                    })
                    .await;
                }
            });
            (node.ep_counters(), node.take_phase_log())
        });
        let (c0, log0) = &report.results[0];
        let waves: Vec<u64> = log0.iter().map(|p| p.waves).collect();
        if cache {
            assert_eq!(waves, vec![1, 0, 0], "repeat fetches are eliminated");
            assert_eq!(c0.cache_hits, 2);
            assert_eq!(c0.cache_misses, 1);
        } else {
            assert_eq!(waves, vec![1, 1, 1]);
            assert_eq!(c0.cache_hits, 0);
            assert_eq!(c0.cache_misses, 3);
        }
    }
}

#[test]
fn refresh_push_keeps_rewritten_elements_coherent() {
    // The owner rewrites an element every phase while a remote VP reads it
    // every phase: every read must see the phase-start snapshot. After the
    // second serve the owner arms the element and pushes the post-apply
    // value with its barrier messages, so the reader's steady-state phases
    // run zero waves — with no loss of coherence.
    const PHASES: u64 = 6;
    for cache in [true, false] {
        let report = run(cfg(2, 1).with_read_cache(cache), move |node| {
            let a = node.alloc_global::<u64>(16);
            node.ppm_do(1, move |vp| async move {
                let id = vp.node_id();
                for p in 0..PHASES {
                    vp.global_phase(|ph| async move {
                        if id == 0 {
                            // Phase-start value: the owner's write from the
                            // previous phase (0 initially).
                            assert_eq!(ph.get(&a, 8).await, p * 100);
                        } else {
                            ph.put(&a, 8, (p + 1) * 100);
                        }
                    })
                    .await;
                }
            });
            (node.ep_counters(), node.take_phase_log())
        });
        let (c0, log0) = &report.results[0];
        let waves: Vec<u64> = log0.iter().map(|r| r.waves).collect();
        if cache {
            assert_eq!(
                waves,
                vec![1, 1, 0, 0, 0, 0],
                "armed after the second serve; refresh-pushed thereafter"
            );
            assert_eq!(c0.cache_hits, 4);
        } else {
            assert_eq!(waves, vec![1; PHASES as usize]);
            assert_eq!(c0.cache_hits, 0);
        }
    }
}

#[test]
fn ppm_do_local_runs_asynchronously_per_node() {
    // Paper §3.3 asynchronous mode: each node runs a *different* number of
    // local `ppm_do`s with node phases, no cross-node coordination — then
    // everyone meets again in a collective do.
    let report = run(cfg(4, 2), move |node| {
        let buf = node.alloc_node::<u64>(4);
        let rounds = node.node_id() + 1; // 1..=4 asynchronous task batches
        for _ in 0..rounds {
            node.ppm_do_local(4, move |vp| async move {
                let i = vp.node_rank();
                vp.node_phase(|ph| async move {
                    let prev = ph.get_node(&buf, i);
                    ph.put_node(&buf, i, prev + 1);
                })
                .await;
            });
        }
        // Re-synchronize and combine across nodes collectively.
        let local_sum: u64 = node.with_node(&buf, |s| s.iter().sum());
        node.allreduce_nodes(local_sum, |a, b| a + b)
    });
    // Node n contributed 4·(n+1); total = 4·(1+2+3+4) = 40.
    assert!(report.results.iter().all(|&v| v == 40));
}

#[test]
#[should_panic(expected = "global phases are not allowed inside ppm_do_local")]
fn global_phase_inside_local_do_panics() {
    run(cfg(1, 1), move |node| {
        node.ppm_do_local(1, move |vp| async move {
            vp.global_phase(|_ph| async move {}).await;
        });
    });
}

#[test]
#[should_panic(expected = "phases cannot be nested")]
fn nested_phases_panic() {
    run(cfg(1, 1), move |node| {
        node.ppm_do(1, move |vp| async move {
            let v = vp.clone();
            vp.global_phase(|_ph| async move {
                v.node_phase(|_p2| async move {}).await;
            })
            .await;
        });
    });
}

#[test]
#[should_panic(expected = "remote shared read inside a node phase")]
fn remote_read_in_node_phase_panics() {
    run(cfg(2, 1), move |node| {
        let a = node.alloc_global::<u64>(8); // node 1 owns 4..8
        node.ppm_do(1, move |vp| async move {
            let me = vp.node_id();
            vp.node_phase(|ph| async move {
                if me == 0 {
                    let _ = ph.get(&a, 7).await; // remote!
                }
            })
            .await;
        });
    });
}

#[test]
#[should_panic(expected = "only allowed inside a global phase")]
fn global_write_in_node_phase_panics() {
    run(cfg(1, 1), move |node| {
        let a = node.alloc_global::<u64>(4);
        node.ppm_do(1, move |vp| async move {
            vp.node_phase(|ph| async move {
                ph.put(&a, 0, 1);
            })
            .await;
        });
    });
}

#[test]
#[should_panic(expected = "put and accumulate mixed")]
fn mixed_put_accumulate_panics_through_public_api() {
    run(cfg(1, 1), move |node| {
        let a = node.alloc_global::<u64>(4);
        node.ppm_do(2, move |vp| async move {
            let r = vp.node_rank();
            vp.global_phase(|ph| async move {
                if r == 0 {
                    ph.put(&a, 1, 5);
                } else {
                    ph.accumulate(&a, 1, AccumOp::Add, 5);
                }
            })
            .await;
        });
    });
}

#[test]
fn cyclic_layout_spreads_ownership() {
    let report = run(cfg(4, 1), move |node| {
        let a = node.alloc_global_with::<u64>(16, ppm_core::Layout::Cyclic);
        // Element i lives on node i % 4; initialize via direct local access.
        node.with_local_mut(&a, |s| {
            for v in s.iter_mut() {
                *v = 1;
            }
        });
        node.ppm_do(4, move |vp| async move {
            let g = vp.global_rank();
            vp.global_phase(|ph| async move {
                let v = ph.get(&a, g).await; // g % 4 == node for first 4 VPs? exercise mixed
                ph.accumulate(&a, (g * 5) % 16, AccumOp::Add, v);
            })
            .await;
        });
        node.gather_global(&a).iter().sum::<u64>()
    });
    // (g*5)%16 is a permutation, so every element receives exactly one
    // accumulate contribution of value 1 — and accumulate *replaces* the
    // element with the combined contributions (phase-start value excluded).
    assert!(
        report.results.iter().all(|&s| s == 16),
        "{:?}",
        report.results
    );
}
