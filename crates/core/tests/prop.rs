//! Property-based tests of the PPM runtime (in-repo `testkit` harness).
//!
//! The centerpiece is a model-based test: arbitrary programs of shared
//! reads/puts/accumulates from arbitrary VPs on arbitrary machine shapes
//! are checked against a tiny sequential interpreter of the paper's phase
//! semantics.

use ppm_core::testkit::{forall, Gen, Shrink};
use ppm_core::{prop_assert, prop_assert_eq};
use ppm_core::{run, AccumOp, Dist, Layout, PpmConfig};
use ppm_simnet::MachineConfig;

/// One shared-variable operation a VP performs inside the phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Read `idx`; the value must equal the phase-start state.
    Get(usize),
    /// Write `val` to `idx`.
    Put(usize, i64),
    /// Accumulate `val` into `idx`.
    Accum(usize, i64),
}

// Ops shrink by simplifying the value; the index stays (dropping whole ops
// is the vector's job).
impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            Op::Get(_) => Vec::new(),
            Op::Put(i, v) => v.shrink().into_iter().map(|v| Op::Put(i, v)).collect(),
            Op::Accum(i, v) => v.shrink().into_iter().map(|v| Op::Accum(i, v)).collect(),
        }
    }
}

#[derive(Debug, Clone)]
struct Program {
    nodes: u32,
    cores: u32,
    len: usize,
    /// Per node, per VP: the op list. Generation segregates put and
    /// accumulate targets per element, so kinds never mix.
    vps: Vec<Vec<Vec<Op>>>,
}

impl Shrink for Program {
    fn shrink(&self) -> Vec<Self> {
        let mut c = Vec::new();
        // Fewer ops: shrink the op lists (possibly to empty), keeping the
        // node/VP structure valid.
        for (n, node) in self.vps.iter().enumerate() {
            for (v, ops) in node.iter().enumerate() {
                for smaller in ops.shrink() {
                    let mut p = self.clone();
                    p.vps[n][v] = smaller;
                    c.push(p);
                }
            }
        }
        // Fewer VPs on a node (keep >= 1 per node: ppm_do requires it).
        for (n, node) in self.vps.iter().enumerate() {
            if node.len() > 1 {
                let mut p = self.clone();
                p.vps[n].pop();
                c.push(p);
            }
        }
        // Fewer nodes.
        if self.nodes > 1 {
            let mut p = self.clone();
            p.nodes -= 1;
            p.vps.pop();
            c.push(p);
        }
        c
    }
}

fn gen_program(g: &mut Gen) -> Program {
    let nodes = g.u32_in(1..4);
    let cores = g.u32_in(1..3);
    let len = g.usize_in(1..24);
    let accum_elem: Vec<bool> = (0..len).map(|_| g.bool()).collect();
    let vps: Vec<Vec<Vec<Op>>> = (0..nodes)
        .map(|_| {
            let nvps = g.usize_in(1..4);
            (0..nvps)
                .map(|_| {
                    g.vec(0..12, |g| {
                        let idx = g.usize_in(0..len);
                        let val = g.i64_in(-50..50);
                        match g.u32_in(0..3) {
                            0 => Op::Get(idx),
                            _ if accum_elem[idx] => Op::Accum(idx, val),
                            _ => Op::Put(idx, val),
                        }
                    })
                })
                .collect()
        })
        .collect();
    Program {
        nodes,
        cores,
        len,
        vps,
    }
}

/// Shrink candidates can desynchronize `nodes` and `vps.len()` or leave a
/// node with zero VPs; treat those as out-of-contract (vacuously passing).
fn valid(p: &Program) -> bool {
    p.nodes >= 1
        && p.cores >= 1
        && p.len >= 1
        && p.vps.len() == p.nodes as usize
        && p.vps.iter().all(|n| !n.is_empty())
        && p.vps.iter().flatten().flatten().all(|op| match *op {
            Op::Get(i) | Op::Put(i, _) | Op::Accum(i, _) => i < p.len,
        })
}

/// Sequential interpreter of the paper's phase semantics.
fn interpret(p: &Program, initial: &[i64]) -> Vec<i64> {
    #[derive(Clone, Copy)]
    enum Pending {
        None,
        Put { key: (u64, u64), val: i64 },
        Accum(i64),
    }
    let mut pending = vec![Pending::None; p.len];
    let mut global_rank = 0u64;
    for node in &p.vps {
        for vp in node {
            let mut seq = 0u64;
            for op in vp {
                match *op {
                    Op::Get(_) => {}
                    Op::Put(idx, val) => {
                        let key = (global_rank, seq);
                        seq += 1;
                        pending[idx] = match pending[idx] {
                            Pending::Put { key: k, .. } if k > key => pending[idx],
                            Pending::Accum(_) => unreachable!("generation segregates kinds"),
                            _ => Pending::Put { key, val },
                        };
                    }
                    Op::Accum(idx, val) => {
                        pending[idx] = match pending[idx] {
                            Pending::Accum(acc) => Pending::Accum(acc + val),
                            Pending::None => Pending::Accum(val),
                            Pending::Put { .. } => unreachable!("generation segregates kinds"),
                        };
                    }
                }
            }
            global_rank += 1;
        }
    }
    initial
        .iter()
        .enumerate()
        .map(|(i, &v)| match pending[i] {
            Pending::None => v,
            Pending::Put { val, .. } => val,
            Pending::Accum(acc) => acc,
        })
        .collect()
}

/// Arbitrary one-phase programs match the sequential interpreter, and
/// every in-phase read observes the phase-start snapshot.
#[test]
fn phase_semantics_match_model() {
    forall("phase_semantics_match_model", 24, gen_program, |prog| {
        if !valid(prog) {
            return Ok(());
        }
        let initial: Vec<i64> = (0..prog.len as i64).map(|i| i * 7 - 3).collect();
        let expected = interpret(prog, &initial);

        let prog2 = prog.clone();
        let init2 = initial.clone();
        // The model-based oracle already asserts on conflicting writes by
        // design (generated programs may put the same element from many
        // VPs), so the conformance checker is off here — conformance.rs
        // covers it.
        let report = run(
            PpmConfig::new(MachineConfig::new(prog.nodes, prog.cores)).with_checker(false),
            move |node| {
                let a = node.alloc_global::<i64>(prog2.len);
                let r = node.local_range(&a);
                node.with_local_mut(&a, |s| s.copy_from_slice(&init2[r.clone()]));
                let my_vps = std::sync::Arc::new(prog2.vps[node.node_id()].clone());
                let init = std::sync::Arc::new(init2.clone());
                node.ppm_do(my_vps.len(), move |vp| {
                    let ops = my_vps[vp.node_rank()].clone();
                    let init = init.clone();
                    async move {
                        vp.global_phase(|ph| async move {
                            for op in ops {
                                match op {
                                    Op::Get(idx) => {
                                        let v = ph.get(&a, idx).await;
                                        assert_eq!(v, init[idx], "snapshot read");
                                    }
                                    Op::Put(idx, val) => ph.put(&a, idx, val),
                                    Op::Accum(idx, val) => {
                                        ph.accumulate(&a, idx, AccumOp::Add, val)
                                    }
                                }
                            }
                        })
                        .await;
                    }
                });
                node.gather_global(&a)
            },
        );
        for got in report.results {
            prop_assert_eq!(got, expected);
        }
        Ok(())
    });
}

/// Block and cyclic distributions are bijections for any shape.
#[test]
fn distributions_are_bijections() {
    forall(
        "distributions_are_bijections",
        64,
        |g| (g.usize_in(0..200), g.usize_in(1..16), g.bool()),
        |&(len, nodes, cyclic)| {
            if nodes == 0 {
                return Ok(());
            }
            let d = if cyclic {
                Dist::cyclic(len, nodes)
            } else {
                Dist::block(len, nodes)
            };
            let mut counts = vec![0usize; nodes];
            for i in 0..len {
                let n = d.owner(i);
                let off = d.local_offset(i);
                prop_assert!(n < nodes);
                prop_assert!(off < d.local_len(n));
                prop_assert_eq!(d.global_index(n, off), i);
                counts[n] += 1;
            }
            for (n, &c) in counts.iter().enumerate() {
                prop_assert_eq!(c, d.local_len(n));
            }
            Ok(())
        },
    );
}

/// `Layout::Weighted` is a bijection for arbitrary prefix-summed bounds:
/// owner/offset round-trip through `global_index`, and the per-node
/// ranges tile `0..len` with no gaps or overlaps — including zero-length
/// spans and `len < nodes` shapes (generated deltas may all be zero).
#[test]
fn weighted_distributions_are_bijections() {
    forall(
        "weighted_distributions_are_bijections",
        64,
        |g| g.vec(1..10, |g| g.usize_in(0..12)),
        |deltas| {
            if deltas.is_empty() {
                return Ok(());
            }
            let nodes = deltas.len();
            let mut bounds = vec![0usize];
            for &d in deltas {
                bounds.push(bounds.last().unwrap() + d);
            }
            let len = *bounds.last().unwrap();
            let d = Dist::weighted(len, nodes, std::sync::Arc::new(bounds));
            let mut counts = vec![0usize; nodes];
            for i in 0..len {
                let n = d.owner(i);
                let off = d.local_offset(i);
                prop_assert!(n < nodes);
                prop_assert!(off < d.local_len(n));
                prop_assert_eq!(d.global_index(n, off), i);
                counts[n] += 1;
            }
            // The owned ranges tile the array exactly, zero-length nodes
            // included.
            let mut cursor = 0usize;
            for (n, &count) in counts.iter().enumerate() {
                let r = d.owned_range(n);
                prop_assert_eq!(r.start, cursor);
                prop_assert_eq!(r.len(), d.local_len(n));
                prop_assert_eq!(count, d.local_len(n));
                cursor = r.end;
            }
            prop_assert_eq!(cursor, len);
            Ok(())
        },
    );
}

/// `Dist::weighted_shares` is total for arbitrary weight vectors (zeros,
/// spikes, `len < nodes`) and degenerates to exactly the `Block`
/// boundaries under uniform — including all-zero — weights, so switching
/// the balancer on cannot perturb an already balanced layout.
#[test]
fn weighted_shares_cover_and_degenerate_to_block() {
    forall(
        "weighted_shares_cover_and_degenerate_to_block",
        64,
        |g| {
            (
                g.usize_in(0..60),
                g.vec(1..10, |g| g.u64_in(0..100)),
                g.u64_in(0..100),
            )
        },
        |(len, weights, w)| {
            if weights.is_empty() {
                return Ok(());
            }
            let (len, nodes) = (*len, weights.len());
            let d = Dist::weighted_shares(len, nodes, weights);
            let b = d.bounds();
            prop_assert_eq!(b.len(), nodes + 1);
            prop_assert_eq!(b[0], 0);
            prop_assert_eq!(b[nodes], len);
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]));
            // A node with positive weight gets a nonempty span whenever
            // elements remain to its left (greedy ceiling shares).
            let total: usize = (0..nodes).map(|n| d.local_len(n)).sum();
            prop_assert_eq!(total, len);
            // Uniform weights (any constant, zero included) reproduce the
            // Block boundaries bit-for-bit.
            let uniform = Dist::weighted_shares(len, nodes, &vec![*w; nodes]);
            prop_assert_eq!(uniform.bounds(), Dist::block(len, nodes).bounds());
            Ok(())
        },
    );
}

/// The distributed sample sort agrees with std sort for arbitrary data
/// and shapes.
#[test]
fn sample_sort_matches_std() {
    forall(
        "sample_sort_matches_std",
        24,
        |g| (g.vec(0..120, |g| g.u64_in(0..1000)), g.u32_in(1..5)),
        |(vals, nodes)| {
            if *nodes == 0 {
                return Ok(());
            }
            let n = vals.len();
            let mut expected = vals.clone();
            expected.sort_unstable();
            let vals = vals.clone();
            let report = run(PpmConfig::new(MachineConfig::new(*nodes, 2)), move |node| {
                let g = node.alloc_global::<u64>(n);
                let r = node.local_range(&g);
                let vals = vals.clone();
                node.with_local_mut(&g, |s| s.copy_from_slice(&vals[r.clone()]));
                ppm_core::util::sort_global_u64(node, &g);
                let sorted = node.gather_global(&g);
                (sorted, node.take_violations())
            });
            for (got, violations) in report.results {
                prop_assert_eq!(got, expected);
                prop_assert!(violations.is_empty(), format!("{violations:?}"));
            }
            Ok(())
        },
    );
}

/// Wire emission is a function of the buffered write SET, never of the
/// order a VP buffered the writes in: shuffling each VP's put order over
/// its (disjoint) target elements leaves results AND the simulated
/// makespan bit-identical. Guards the flat write-log drain (sorted by
/// index at phase end) against regressing into an insertion-ordered — or
/// hash-ordered — emission path.
#[test]
fn emission_is_insertion_order_independent() {
    forall(
        "emission_is_insertion_order_independent",
        16,
        |g| (g.u32_in(2..5), g.usize_in(8..40), g.u64()),
        |&(nodes, len, perm_seed)| {
            let run_with = |shuffled: bool| {
                run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
                    let a = node.alloc_global::<i64>(len);
                    node.ppm_do(4, move |vp| async move {
                        let g = vp.global_rank();
                        let k = vp.global_vp_count();
                        vp.global_phase(|ph| async move {
                            // Disjoint targets per VP; the shuffled run
                            // buffers the same writes in a different order.
                            let mut idxs: Vec<usize> = (0..len).filter(|i| i % k == g).collect();
                            if shuffled {
                                let mut gen = Gen::new(perm_seed ^ g as u64);
                                for i in (1..idxs.len()).rev() {
                                    let j = gen.usize_in(0..i + 1);
                                    idxs.swap(i, j);
                                }
                            }
                            for i in idxs {
                                ph.put(&a, i, (i * 3 + 1) as i64);
                            }
                        })
                        .await;
                    });
                    let violations = node.take_violations();
                    assert!(violations.is_empty(), "checker: {violations:?}");
                    node.gather_global(&a)
                })
            };
            let base = run_with(false);
            let shuf = run_with(true);
            prop_assert_eq!(&base.results, &shuf.results);
            prop_assert_eq!(base.makespan(), shuf.makespan());
            Ok(())
        },
    );
}

/// Layout choice never changes results, only data placement.
#[test]
fn layout_is_transparent() {
    forall(
        "layout_is_transparent",
        24,
        |g| (g.vec(1..40, |g| g.i64_in(-100..100)), g.u32_in(1..4)),
        |(vals, nodes)| {
            if *nodes == 0 || vals.is_empty() {
                return Ok(());
            }
            let n = vals.len();
            let nodes = *nodes;
            let sum_of = |layout: Layout| {
                let vals = vals.clone();
                run(PpmConfig::new(MachineConfig::new(nodes, 1)), move |node| {
                    let a = node.alloc_global_with::<i64>(n, layout.clone());
                    let acc = node.alloc_global::<i64>(1);
                    let dist = node.dist_of(&a);
                    let me = node.node_id();
                    let vals = vals.clone();
                    node.with_local_mut(&a, |s| {
                        for (off, v) in s.iter_mut().enumerate() {
                            *v = vals[dist.global_index(me, off)];
                        }
                    });
                    node.ppm_do(n.min(8), move |vp| async move {
                        let k = vp.global_vp_count();
                        let i = vp.global_rank();
                        vp.global_phase(|ph| async move {
                            let mut part = 0i64;
                            let mut j = i;
                            while j < n {
                                part += ph.get(&a, j).await;
                                j += k;
                            }
                            ph.accumulate(&acc, 0, AccumOp::Add, part);
                        })
                        .await;
                    });
                    let violations = node.take_violations();
                    assert!(violations.is_empty(), "checker: {violations:?}");
                    node.gather_global(&acc)[0]
                })
                .results[0]
            };
            let expected: i64 = vals.iter().sum();
            prop_assert_eq!(sum_of(Layout::Block), expected);
            prop_assert_eq!(sum_of(Layout::Cyclic), expected);
            Ok(())
        },
    );
}
