//! Property-based tests of the PPM runtime.
//!
//! The centerpiece is a model-based test: arbitrary programs of shared
//! reads/puts/accumulates from arbitrary VPs on arbitrary machine shapes
//! are checked against a tiny sequential interpreter of the paper's phase
//! semantics.

use proptest::prelude::*;

use ppm_core::{run, AccumOp, Dist, Layout, PpmConfig};
use ppm_simnet::MachineConfig;

/// One shared-variable operation a VP performs inside the phase.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Read `idx`; the value must equal the phase-start state.
    Get(usize),
    /// Write `val` to `idx`.
    Put(usize, i64),
    /// Accumulate `val` into `idx`.
    Accum(usize, i64),
}

#[derive(Debug, Clone)]
struct Program {
    nodes: u32,
    cores: u32,
    len: usize,
    /// Per node, per VP: the op list. Generation segregates put and
    /// accumulate targets per element, so kinds never mix.
    vps: Vec<Vec<Vec<Op>>>,
}

fn op_strategy(len: usize, accum_elem: Vec<bool>) -> impl Strategy<Value = Op> {
    (0..len, -50i64..50, 0..3u8).prop_map(move |(idx, val, kind)| match kind {
        0 => Op::Get(idx),
        _ => {
            if accum_elem[idx] {
                Op::Accum(idx, val)
            } else {
                Op::Put(idx, val)
            }
        }
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (1..4u32, 1..3u32, 1..24usize)
        .prop_flat_map(|(nodes, cores, len)| {
            let accum = proptest::collection::vec(any::<bool>(), len);
            (Just(nodes), Just(cores), Just(len), accum)
        })
        .prop_flat_map(|(nodes, cores, len, accum_elem)| {
            let ops = proptest::collection::vec(op_strategy(len, accum_elem.clone()), 0..12);
            let vp = proptest::collection::vec(ops, 1..4);
            let per_node = proptest::collection::vec(vp, nodes as usize);
            (
                Just(nodes),
                Just(cores),
                Just(len),
                Just(accum_elem),
                per_node,
            )
        })
        .prop_map(|(nodes, cores, len, _accum_elem, vps)| Program {
            nodes,
            cores,
            len,
            vps,
        })
}

/// Sequential interpreter of the paper's phase semantics.
fn interpret(p: &Program, initial: &[i64]) -> Vec<i64> {
    #[derive(Clone, Copy)]
    enum Pending {
        None,
        Put { key: (u64, u64), val: i64 },
        Accum(i64),
    }
    let mut pending = vec![Pending::None; p.len];
    let mut global_rank = 0u64;
    for node in &p.vps {
        for vp in node {
            let mut seq = 0u64;
            for op in vp {
                match *op {
                    Op::Get(_) => {}
                    Op::Put(idx, val) => {
                        let key = (global_rank, seq);
                        seq += 1;
                        pending[idx] = match pending[idx] {
                            Pending::Put { key: k, .. } if k > key => pending[idx],
                            Pending::Accum(_) => unreachable!("generation segregates kinds"),
                            _ => Pending::Put { key, val },
                        };
                    }
                    Op::Accum(idx, val) => {
                        pending[idx] = match pending[idx] {
                            Pending::Accum(acc) => Pending::Accum(acc + val),
                            Pending::None => Pending::Accum(val),
                            Pending::Put { .. } => unreachable!("generation segregates kinds"),
                        };
                    }
                }
            }
            global_rank += 1;
        }
    }
    initial
        .iter()
        .enumerate()
        .map(|(i, &v)| match pending[i] {
            Pending::None => v,
            Pending::Put { val, .. } => val,
            Pending::Accum(acc) => acc,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary one-phase programs match the sequential interpreter, and
    /// every in-phase read observes the phase-start snapshot.
    #[test]
    fn phase_semantics_match_model(prog in program_strategy()) {
        let initial: Vec<i64> = (0..prog.len as i64).map(|i| i * 7 - 3).collect();
        let expected = interpret(&prog, &initial);

        let prog2 = prog.clone();
        let init2 = initial.clone();
        let report = run(
            PpmConfig::new(MachineConfig::new(prog.nodes, prog.cores)),
            move |node| {
                let a = node.alloc_global::<i64>(prog2.len);
                let r = node.local_range(&a);
                node.with_local_mut(&a, |s| s.copy_from_slice(&init2[r.clone()]));
                let my_vps = std::rc::Rc::new(prog2.vps[node.node_id()].clone());
                let init = std::rc::Rc::new(init2.clone());
                node.ppm_do(my_vps.len(), move |vp| {
                    let ops = my_vps[vp.node_rank()].clone();
                    let init = init.clone();
                    async move {
                        vp.global_phase(|ph| async move {
                            for op in ops {
                                match op {
                                    Op::Get(idx) => {
                                        let v = ph.get(&a, idx).await;
                                        assert_eq!(v, init[idx], "snapshot read");
                                    }
                                    Op::Put(idx, val) => ph.put(&a, idx, val),
                                    Op::Accum(idx, val) => {
                                        ph.accumulate(&a, idx, AccumOp::Add, val)
                                    }
                                }
                            }
                        })
                        .await;
                    }
                });
                node.gather_global(&a)
            },
        );
        for got in report.results {
            prop_assert_eq!(&got, &expected);
        }
    }

    /// Block and cyclic distributions are bijections for any shape.
    #[test]
    fn distributions_are_bijections(len in 0..200usize, nodes in 1..16usize, cyclic in any::<bool>()) {
        let d = if cyclic { Dist::cyclic(len, nodes) } else { Dist::block(len, nodes) };
        let mut counts = vec![0usize; nodes];
        for i in 0..len {
            let n = d.owner(i);
            let off = d.local_offset(i);
            prop_assert!(n < nodes);
            prop_assert!(off < d.local_len(n));
            prop_assert_eq!(d.global_index(n, off), i);
            counts[n] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, d.local_len(n));
        }
    }

    /// The distributed sample sort agrees with std sort for arbitrary data
    /// and shapes.
    #[test]
    fn sample_sort_matches_std(
        vals in proptest::collection::vec(0u64..1000, 0..120),
        nodes in 1..5u32,
    ) {
        let n = vals.len();
        let mut expected = vals.clone();
        expected.sort_unstable();
        let report = run(PpmConfig::new(MachineConfig::new(nodes, 2)), move |node| {
            let g = node.alloc_global::<u64>(n);
            let r = node.local_range(&g);
            let vals = vals.clone();
            node.with_local_mut(&g, |s| s.copy_from_slice(&vals[r.clone()]));
            ppm_core::util::sort_global_u64(node, &g);
            node.gather_global(&g)
        });
        for got in report.results {
            prop_assert_eq!(&got, &expected);
        }
    }

    /// Layout choice never changes results, only data placement.
    #[test]
    fn layout_is_transparent(
        vals in proptest::collection::vec(-100i64..100, 1..40),
        nodes in 1..4u32,
    ) {
        let n = vals.len();
        let sum_of = |layout: Layout| {
            let vals = vals.clone();
            run(PpmConfig::new(MachineConfig::new(nodes, 1)), move |node| {
                let a = node.alloc_global_with::<i64>(n, layout);
                let acc = node.alloc_global::<i64>(1);
                let dist = node.dist_of(&a);
                let me = node.node_id();
                let vals = vals.clone();
                node.with_local_mut(&a, |s| {
                    for (off, v) in s.iter_mut().enumerate() {
                        *v = vals[dist.global_index(me, off)];
                    }
                });
                node.ppm_do(n.min(8), move |vp| async move {
                    let k = vp.global_vp_count();
                    let i = vp.global_rank();
                    vp.global_phase(|ph| async move {
                        let mut part = 0i64;
                        let mut j = i;
                        while j < n {
                            part += ph.get(&a, j).await;
                            j += k;
                        }
                        ph.accumulate(&acc, 0, AccumOp::Add, part);
                    })
                    .await;
                });
                node.gather_global(&acc)[0]
            })
            .results[0]
        };
        let expected: i64 = vals.iter().sum();
        prop_assert_eq!(sum_of(Layout::Block), expected);
        prop_assert_eq!(sum_of(Layout::Cyclic), expected);
    }
}
