//! Integration tests for the reliable-transport sublayer and fault
//! injection: with faults disabled the runtime is byte-for-byte the fast
//! path; with any seeded fault schedule the application results are
//! bit-identical to the fault-free run; equal seeds give equal runs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use ppm_core::{msgs, run, PpmConfig, RecoveryError};
use ppm_simnet::{Counters, FaultAction, FaultConfig, MachineConfig, SimTime, TargetedFault};

const N: usize = 48;
const PHASES: u64 = 4;
const VPS_PER_NODE: usize = 4;

/// Rotate a global array left by one element per global phase.
///
/// Every VP handles the indices congruent to its global rank; each phase
/// it reads `a[(i + 1) % N]` (phase-start snapshot) and writes `a[i]`, so
/// after `PHASES` phases `a[i] == (i + PHASES) % N`. The strided
/// assignment generates remote reads and remote write bundles on every
/// link each phase — exactly the traffic the reliability layer protects.
fn ring_shift(cfg: PpmConfig) -> (Vec<Vec<u64>>, SimTime, Vec<Counters>, Counters) {
    let report = run(cfg, |node| {
        let a = node.alloc_global::<u64>(N);
        let lo = node.local_range(&a).start;
        node.with_local_mut(&a, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = (lo + off) as u64;
            }
        });
        node.ppm_do(VPS_PER_NODE, move |vp| async move {
            let rank = vp.global_rank();
            let total = vp.global_vp_count();
            for _ in 0..PHASES {
                vp.global_phase(|ph| async move {
                    let mut i = rank;
                    while i < N {
                        let next = ph.get(&a, (i + 1) % N).await;
                        ph.put(&a, i, next);
                        i += total;
                    }
                })
                .await;
            }
        });
        let violations = node.take_violations();
        assert!(violations.is_empty(), "conformance: {violations:?}");
        node.gather_global(&a)
    });
    let makespan = report.makespan();
    let totals = report.total_counters();
    (report.results, makespan, report.counters, totals)
}

fn base_cfg() -> PpmConfig {
    // Replication pinned explicitly (not left to the `PPM_REPLICATION` env
    // default) so CI matrix cells that override the environment still test
    // both sides: the fast-path/cleanliness assertions below require it
    // off, and the failover tests switch it on per schedule.
    PpmConfig::new(MachineConfig::new(3, 2)).with_replication(false)
}

fn check_results(results: &[Vec<u64>]) {
    let expect: Vec<u64> = (0..N).map(|i| ((i as u64) + PHASES) % N as u64).collect();
    for (node, r) in results.iter().enumerate() {
        assert_eq!(r, &expect, "node {node} sees a wrong final array");
    }
}

#[test]
fn fault_free_fast_path_has_no_reliability_traffic() {
    let (results, _, _, totals) = ring_shift(base_cfg());
    check_results(&results);
    assert!(
        totals.reliability_summary().is_clean(),
        "reliability counters must be zero when the layer is off: {:?}",
        totals.reliability_summary()
    );
}

#[test]
fn reliability_without_faults_is_invisible_and_cheap() {
    let (base_res, base_t, _, base_c) = ring_shift(base_cfg());
    let (rel_res, rel_t, _, rel_c) = ring_shift(base_cfg().with_reliability(true));

    check_results(&rel_res);
    assert_eq!(rel_res, base_res, "reliability changed application results");
    assert_eq!(rel_c.retries, 0, "no faults, so nothing to retransmit");
    assert_eq!(rel_c.dups_suppressed, 0);
    assert_eq!(rel_c.crash_recoveries, 0);
    assert!(rel_c.acks_sent > 0, "cumulative acks should flow");
    assert!(
        rel_c.msgs_sent > base_c.msgs_sent,
        "acks are extra messages on the wire"
    );

    // Overhead requirement (< 5% of makespan) is met exactly: sequence
    // numbers ride on envelope metadata and cumulative acks are modeled
    // as piggybacked, so a fault-free reliable run costs zero extra
    // simulated time.
    assert!(rel_t >= base_t);
    let overhead = rel_t - base_t;
    assert!(
        overhead.as_ps() * 20 < base_t.as_ps(),
        "reliability overhead {overhead:?} is >= 5% of {base_t:?}"
    );
    assert_eq!(rel_t, base_t, "piggybacked control plane costs no time");
}

#[test]
fn seeded_faults_never_change_results() {
    let (base_res, base_t, _, _) = ring_shift(base_cfg());
    let mut retries = 0;
    let mut dups = 0;
    let mut delays = 0;
    for seed in [3u64, 17, 99] {
        let cfg = base_cfg().with_faults(FaultConfig::seeded(seed, 0.08, 0.05, 0.05));
        let (res, t, _, c) = ring_shift(cfg);
        assert_eq!(res, base_res, "seed {seed} changed application results");
        assert!(
            t >= base_t,
            "seed {seed}: faults cannot make the job faster"
        );
        retries += c.retries;
        dups += c.dups_suppressed;
        delays += c.faults_delayed;
        assert_eq!(c.retries, c.faults_dropped);
    }
    assert!(retries > 0, "soak injected no drops across three seeds");
    assert!(dups > 0, "soak injected no duplicates across three seeds");
    assert!(delays > 0, "soak injected no delays across three seeds");
}

#[test]
fn same_seed_is_the_same_run() {
    let cfg = || base_cfg().with_faults(FaultConfig::seeded(42, 0.1, 0.05, 0.05));
    let (res_a, t_a, per_node_a, tot_a) = ring_shift(cfg());
    let (res_b, t_b, per_node_b, tot_b) = ring_shift(cfg());
    assert_eq!(res_a, res_b);
    assert_eq!(t_a, t_b, "same seed must give the same makespan");
    assert_eq!(
        per_node_a, per_node_b,
        "same seed must give identical per-node counters"
    );
    assert_eq!(tot_a, tot_b);
    assert!(
        tot_a.retries > 0,
        "this seed should actually drop something"
    );
}

#[test]
fn targeted_drop_is_retransmitted() {
    let (base_res, _, _, _) = ring_shift(base_cfg());
    let faults = FaultConfig::NONE.with_targeted(TargetedFault {
        src: 1,
        dst: 0,
        kind: msgs::K_WRITE,
        nth: 1,
        action: FaultAction::Drop,
    });
    let (res, _, _, c) = ring_shift(base_cfg().with_faults(faults));
    assert_eq!(res, base_res);
    assert_eq!(c.faults_dropped, 1, "exactly the targeted write bundle");
    assert_eq!(c.retries, 1);
}

#[test]
fn crash_recovers_at_phase_boundary() {
    let (base_res, base_t, _, _) = ring_shift(base_cfg());
    let cfg = base_cfg().with_faults(FaultConfig::NONE.with_crash(1, 2));
    let (res, t, per_node, totals) = ring_shift(cfg);
    assert_eq!(res, base_res, "recovered run must match the clean run");
    assert_eq!(totals.crash_recoveries, 1);
    assert_eq!(
        per_node[1].crash_recoveries, 1,
        "node 1 is the one that died"
    );
    assert!(
        t > base_t,
        "reboot + redone compute must cost simulated time"
    );
}

#[test]
fn crash_composes_with_random_faults() {
    let (base_res, _, _, _) = ring_shift(base_cfg());
    let faults = FaultConfig::seeded(7, 0.06, 0.04, 0.04).with_crash(2, 1);
    let (res, _, _, c) = ring_shift(base_cfg().with_faults(faults));
    assert_eq!(res, base_res);
    assert_eq!(c.crash_recoveries, 1);
    assert!(c.retries > 0);
}

// ---------------------------------------------------------------------
// Permanent (fail-stop) deaths — DESIGN.md §15. `base_cfg()` is 3 nodes,
// so a single victim leaves two survivors and the buddy ring is cyclic
// successor order: 0 → 1 → 2 → 0.
// ---------------------------------------------------------------------

#[test]
fn replication_without_faults_is_invisible() {
    let (base_res, base_t, _, base_c) = ring_shift(base_cfg());
    let (res, t, per_node, totals) = ring_shift(base_cfg().with_replication(true));
    assert_eq!(res, base_res, "replication changed application results");
    assert!(
        totals.replica_bytes > 0,
        "every super-step must stream a snapshot frame to the buddy"
    );
    for (node, c) in per_node.iter().enumerate() {
        assert!(
            c.replica_bytes > 0,
            "node {node} never streamed a replica frame"
        );
    }
    assert_eq!(totals.peers_suspected, 0);
    assert_eq!(totals.peers_confirmed_dead, 0);
    assert_eq!(totals.failovers, 0);
    assert_eq!(totals.retries, 0);
    // Replica frames ride barrier messages that are sent anyway; only
    // their bytes are charged. The fault-free overhead gate is < 5%.
    assert!(t >= base_t);
    let overhead = t - base_t;
    assert!(
        overhead.as_ps() * 20 < base_t.as_ps(),
        "replication overhead {overhead:?} is >= 5% of {base_t:?}"
    );
    assert!(
        totals.bytes_sent > base_c.bytes_sent,
        "replica frames must show up in the byte totals"
    );
}

#[test]
fn permanent_death_is_survived_bit_identically() {
    let (base_res, base_t, _, _) = ring_shift(base_cfg());
    let cfg = base_cfg()
        .with_replication(true)
        .with_faults(FaultConfig::NONE.with_permanent_crash(1, 2));
    let (res, t, per_node, totals) = ring_shift(cfg);
    assert_eq!(
        res, base_res,
        "the job must finish bit-identically after node 1 dies for good"
    );
    assert!(
        t > base_t,
        "suspicion timeout + restore + redone compute must cost simulated time"
    );
    // Both survivors suspect and confirm the one victim.
    assert_eq!(totals.peers_suspected, 2);
    assert_eq!(totals.peers_confirmed_dead, 2);
    // Exactly one adoption, by the victim's cyclic successor.
    assert_eq!(totals.failovers, 1);
    assert_eq!(per_node[2].failovers, 1, "node 2 is node 1's buddy");
    assert_eq!(per_node[0].failovers, 0);
    assert!(
        totals.replica_bytes > 0,
        "failover needs the replica stream"
    );
    // A fail-stop death is not a transient crash-reboot and injects no
    // message faults.
    assert_eq!(totals.crash_recoveries, 0);
    assert_eq!(totals.retries, 0);
}

#[test]
fn permanent_death_is_deterministic_across_host_threads() {
    let cfg = || {
        base_cfg()
            .with_replication(true)
            .with_faults(FaultConfig::NONE.with_permanent_crash(1, 2))
    };
    let (res_a, t_a, per_a, tot_a) = ring_shift(cfg().with_host_threads(1));
    let (res_b, t_b, per_b, tot_b) = ring_shift(cfg().with_host_threads(8));
    assert_eq!(res_a, res_b, "failover must not depend on host threads");
    assert_eq!(
        t_a, t_b,
        "failover makespan must not depend on host threads"
    );
    assert_eq!(per_a, per_b);
    assert_eq!(tot_a, tot_b);
    assert_eq!(tot_a.failovers, 1, "the death actually happened");
}

#[test]
fn permanent_death_composes_with_random_faults() {
    let (base_res, _, _, _) = ring_shift(base_cfg());
    let faults = FaultConfig::seeded(11, 0.06, 0.04, 0.04).with_permanent_crash(2, 1);
    let cfg = base_cfg().with_replication(true).with_faults(faults);
    let (res, _, _, c) = ring_shift(cfg);
    assert_eq!(res, base_res, "drops/dups/delays + a death changed results");
    assert_eq!(c.failovers, 1);
    assert_eq!(c.retries, c.faults_dropped);
    assert!(c.retries > 0, "the seed should actually drop something");
}

/// Node 1 dies at phase 1 (node 2 adopts it), then node 2 — the buddy
/// holding node 1's replica — dies at phase 2. The replica stream
/// re-homes (fresh base frames after every confirmation) and node 0
/// adopts node 2, skipping the dead rank in the cyclic successor walk.
#[test]
fn buddy_death_rehomes_the_replica_stream() {
    let (base_res, base_t, _, _) = ring_shift(base_cfg());
    let faults = FaultConfig::NONE
        .with_permanent_crash(1, 1)
        .with_permanent_crash(2, 2);
    let cfg = base_cfg().with_replication(true).with_faults(faults);
    let (res, t, per_node, totals) = ring_shift(cfg);
    assert_eq!(res, base_res, "cascaded deaths changed application results");
    assert!(t > base_t);
    assert_eq!(totals.failovers, 2);
    assert_eq!(per_node[2].failovers, 1, "node 2 adopted node 1 first");
    assert_eq!(
        per_node[0].failovers, 1,
        "node 0 adopts node 2, skipping dead node 1's slot in the ring"
    );
    // Two survivors confirmed victim 1; victims 2's death is confirmed by
    // the remaining two ranks (node 0 and node 1's hosted persona).
    assert_eq!(totals.peers_suspected, 4);
    assert_eq!(totals.peers_confirmed_dead, 4);
}

/// Nodes 1 and 2 die at the same phase boundary; node 0 — the only
/// survivor — confirms both at once and adopts both partitions.
#[test]
fn two_simultaneous_deaths_are_survived() {
    let (base_res, base_t, _, _) = ring_shift(base_cfg());
    let faults = FaultConfig::NONE
        .with_permanent_crash(1, 2)
        .with_permanent_crash(2, 2);
    let cfg = base_cfg().with_replication(true).with_faults(faults);
    let (res, t, per_node, totals) = ring_shift(cfg);
    assert_eq!(res, base_res, "a double death changed application results");
    assert!(t > base_t);
    assert_eq!(totals.failovers, 2);
    assert_eq!(
        per_node[0].failovers, 2,
        "the sole survivor adopts both victims"
    );
    // Each rank suspects every victim other than itself: node 0 suspects
    // two, each victim suspects the other — four suspicions in total.
    assert_eq!(totals.peers_suspected, 4);
    assert_eq!(totals.peers_confirmed_dead, 4);
}

/// With replication off a permanent death is unsurvivable: the job must
/// fail fast with a structured [`RecoveryError`] naming the dead node and
/// the super-step — never an `expect`/`unwrap` string and never a stall
/// that runs into the watchdog.
#[test]
fn unreplicated_death_raises_a_structured_error() {
    let cfg = base_cfg().with_faults(FaultConfig::NONE.with_permanent_crash(1, 2));
    let payload = catch_unwind(AssertUnwindSafe(|| ring_shift(cfg)))
        .expect_err("an unreplicated permanent death must fail the job");
    let err = payload
        .downcast_ref::<RecoveryError>()
        .expect("the panic payload must be a structured RecoveryError");
    assert_eq!(err.node, 1, "the error names the dead node");
    assert_eq!(err.phase, 2, "the error names the super-step of death");
    assert!(
        err.reason.contains("replication"),
        "the error should point at the replication knob: {}",
        err.reason
    );
    assert!(
        err.to_string().contains("node 1"),
        "Display carries the node id: {err}"
    );
}

#[test]
#[should_panic(expected = "confirmed dead: none")]
fn watchdog_dump_reports_the_dead_peer_set() {
    // Same stall shape as `stall_watchdog_dumps_protocol_state`, but the
    // expectation pins the failure-detector section of the dump: a stall
    // with NO confirmed-dead peer must say so (a stall on a peer that IS
    // confirmed dead can no longer happen — survivors either host the
    // dead rank's persona or abort at the confirmation boundary).
    let machine = MachineConfig::new(2, 1).with_recv_stall(Duration::from_millis(200));
    let cfg = PpmConfig::new(machine).with_reliability(true);
    run(cfg, |node| {
        if node.node_id() == 0 {
            node.allreduce_nodes(1u64, |a, b| a + b);
        }
    });
}

#[test]
#[should_panic(expected = "protocol state")]
fn stall_watchdog_dumps_protocol_state() {
    // Node 1 skips the collective, so node 0 blocks in a receive that can
    // never complete; the watchdog must fire with a protocol-state dump
    // instead of hanging the test suite.
    let machine = MachineConfig::new(2, 1).with_recv_stall(Duration::from_millis(200));
    let cfg = PpmConfig::new(machine).with_reliability(true);
    run(cfg, |node| {
        if node.node_id() == 0 {
            node.allreduce_nodes(1u64, |a, b| a + b);
        }
    });
}
