//! Determinism regression tests: the simulated cluster plus the
//! single-threaded node runtime make every PPM job a pure function of
//! (config, seed). Running the same job twice must give byte-identical
//! results AND an identical simulated makespan — any divergence means
//! nondeterminism crept into the scheduler, the message layer, or the
//! write-combining paths.

use ppm_core::{run, AccumOp, PpmConfig};
use ppm_simnet::MachineConfig;

/// A deliberately gnarly job: seeded pseudo-random data, dependent remote
/// reads, accumulates into shared counters, a distributed sort, and
/// node-level collectives — every runtime subsystem in one program.
fn job(seed: u64) -> (Vec<(Vec<u64>, i64, u64)>, ppm_simnet::SimTime) {
    let report = run(PpmConfig::new(MachineConfig::new(3, 2)), move |node| {
        let n = 48;
        let data = node.alloc_global::<u64>(n);
        let acc = node.alloc_global::<i64>(4);
        let r = node.local_range(&data);
        node.with_local_mut(&data, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                let x = (r.start + off) as u64;
                *v = ppm_core::testkit::Gen::new(seed ^ x).u64() % 1000;
            }
        });
        node.ppm_do(4, move |vp| async move {
            let g = vp.global_rank();
            let k = vp.global_vp_count();
            // Phase 1: chase reads around the ring, accumulate a digest.
            vp.global_phase(|ph| async move {
                let mut idx = g % n;
                let mut digest = 0i64;
                for _ in 0..6 {
                    let v = ph.get(&data, idx).await;
                    digest = digest.wrapping_add(v as i64);
                    idx = (idx + v as usize + 1) % n;
                }
                ph.accumulate(&acc, g % 4, AccumOp::Add, digest);
            })
            .await;
            // Phase 2: strided rewrite (disjoint per VP).
            vp.global_phase(|ph| async move {
                let mut j = g;
                while j < n {
                    let v = ph.get(&data, j).await;
                    ph.put(&data, j, v / 2 + 1);
                    j += k;
                }
            })
            .await;
        });
        ppm_core::util::sort_global_u64(node, &data);
        let sorted = node.gather_global(&data);
        let digest: i64 = node.gather_global(&acc).iter().sum();
        let sum = node.allreduce_nodes(sorted.iter().sum::<u64>(), |a, b| a + b);
        let violations = node.take_violations();
        assert!(violations.is_empty(), "checker: {violations:?}");
        (sorted, digest, sum)
    });
    let makespan = report.makespan();
    (report.results, makespan)
}

#[test]
fn same_seed_is_byte_identical() {
    for seed in [0u64, 42, 0xDEAD_BEEF] {
        let (res1, t1) = job(seed);
        let (res2, t2) = job(seed);
        assert_eq!(res1, res2, "results diverged for seed {seed}");
        assert_eq!(t1, t2, "simulated makespan diverged for seed {seed}");
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the job collapsing to a constant (which would make the
    // identity test vacuous).
    let (res1, _) = job(1);
    let (res2, _) = job(2);
    assert_ne!(res1, res2);
}

/// The makespan itself is a meaningful regression surface: identical runs
/// must agree on the full per-node clock breakdown, not just the maximum.
#[test]
fn clock_breakdowns_are_reproducible() {
    let go = || {
        run(PpmConfig::franklin(2), |node| {
            let a = node.alloc_global::<f64>(64);
            node.ppm_do(8, move |vp| async move {
                let g = vp.global_rank();
                vp.global_phase(|ph| async move {
                    let v = ph.get(&a, (g * 13) % 64).await;
                    ph.accumulate(&a, 0, AccumOp::Add, v + g as f64);
                })
                .await;
            });
        })
    };
    let (a, b) = (go(), go());
    assert_eq!(a.clocks.len(), b.clocks.len());
    for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
        assert_eq!(ca.now(), cb.now());
        assert_eq!(ca.compute(), cb.compute());
        assert_eq!(ca.comm(), cb.comm());
        assert_eq!(ca.wait(), cb.wait());
    }
}
