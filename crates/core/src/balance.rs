//! Trace-guided adaptive repartitioning: the decision function
//! (DESIGN.md §14).
//!
//! At each global phase boundary the clock barrier's free loads sidecar
//! leaves every node holding the identical per-node load vector (compute +
//! service picoseconds, accumulated over the hysteresis window). This
//! module turns that vector plus an array's current partition bounds into
//! new bounds — or `None` to leave the layout alone.
//!
//! Everything here is exact integer arithmetic on replicated inputs, so
//! every node computes the same answer with no agreement round, and the
//! answer cannot depend on host thread count, fault seed, or message
//! timing. That is the whole determinism story of the balancer: decide
//! from replicated counters, migrate synchronously at the boundary.
//!
//! ## The model behind the cut
//!
//! Treat the observed load of node `n` as uniformly spread over the
//! elements of its *current* span (a piecewise-constant density). The new
//! cut `x_k` is the smallest index where the cumulative density reaches
//! `k/nodes` of the total — i.e. the exact equal-load partition under the
//! observed densities. Within segment `n` (span `s_n = cur[n+1]-cur[n]`,
//! load `l_n`, prefix load `P_n`), the cut solves
//!
//! ```text
//! P_n·nodes·s_n + l_n·(x−cur[n])·nodes ≥ k·total·s_n
//! ```
//!
//! with a ceiling division — all in `u128`, so nothing rounds and nothing
//! overflows (loads ≤ 2⁶⁴, spans ≤ 2⁶⁴ are never multiplied together more
//! than twice with a small node count).

/// Global phases that must accumulate into the load window before the
/// balancer evaluates it (and then resets it). Keeps one noisy phase from
/// thrashing the layout.
pub(crate) const MIN_WINDOW: u64 = 4;

/// Hysteresis gate: rebalance only when `max/mean > 9/8` — i.e. the most
/// loaded node is more than 12.5% above the average. Integer form:
/// `max·nodes·8 > total·9`.
pub(crate) fn imbalanced(loads: &[u64]) -> bool {
    let total: u128 = loads.iter().map(|&l| l as u128).sum();
    let max = loads.iter().copied().max().unwrap_or(0) as u128;
    max * loads.len() as u128 * 8 > total * 9
}

/// Compute new partition bounds for an array currently cut at `cur`
/// (`nodes+1` monotone entries from 0 to len, every span non-empty) from
/// the replicated per-node load vector. Returns `None` when the layout
/// should not change: fewer than two nodes, too few elements to give every
/// node one, zero or balanced load, a degenerate current layout, or a cut
/// that lands exactly where it already is.
///
/// The result is always a valid partition (monotone, 0..len) that gives
/// every node at least one element — so a `ppm_do`'s fixed VP count per
/// node always has work to index, and `owner()` stays total.
pub(crate) fn rebalance_bounds(cur: &[usize], loads: &[u64]) -> Option<Vec<usize>> {
    let nodes = cur.len().checked_sub(1)?;
    let len = cur[nodes];
    if nodes < 2 || loads.len() != nodes || len < nodes {
        return None;
    }
    // A balanced array starts on block bounds and this function preserves
    // ≥1 element per node, so empty spans mean someone rebound the layout
    // behind our back — refuse rather than divide by a zero span.
    if (0..nodes).any(|n| cur[n + 1] <= cur[n]) {
        return None;
    }
    if !imbalanced(loads) {
        return None;
    }
    let total: u128 = loads.iter().map(|&l| l as u128).sum();
    if total == 0 {
        return None;
    }
    let nn = nodes as u128;
    let mut prefix = vec![0u128; nodes + 1];
    for n in 0..nodes {
        prefix[n + 1] = prefix[n] + loads[n] as u128;
    }
    let mut out = vec![0usize; nodes + 1];
    out[nodes] = len;
    for k in 1..nodes {
        // Scaled target: cut where cumulative·nodes first reaches k·total.
        let target = k as u128 * total;
        let mut n = 0;
        while n < nodes && prefix[n + 1] * nn < target {
            n += 1;
        }
        debug_assert!(n < nodes, "target beyond total load");
        // The loop invariant gives prefix[n]·nodes < target ≤
        // prefix[n+1]·nodes, so segment n carries load (l_n > 0).
        let span = (cur[n + 1] - cur[n]) as u128;
        let l_n = loads[n] as u128;
        let num = target * span - prefix[n] * span * nn;
        let den = l_n * nn;
        let step = num.div_ceil(den);
        let x = cur[n] + usize::try_from(step).expect("cut step exceeds span");
        // Clamp to one element per node on both sides. `len ≥ nodes`
        // guarantees lo ≤ hi by induction on out[k-1]'s own clamp.
        let lo = out[k - 1] + 1;
        let hi = len - (nodes - k);
        out[k] = x.clamp(lo, hi);
    }
    if out == cur {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_loads_leave_layout_alone() {
        assert_eq!(rebalance_bounds(&[0, 50, 100], &[100, 100]), None);
        // 9/8 hysteresis: 110 vs 90 is max/mean = 1.1 < 1.125.
        assert_eq!(rebalance_bounds(&[0, 50, 100], &[110, 90]), None);
        assert!(!imbalanced(&[110, 90]));
        assert!(imbalanced(&[130, 70]));
    }

    #[test]
    fn skewed_loads_shift_the_cut_toward_the_loaded_node() {
        // Node 0 carries 3× node 1's load: its span shrinks.
        let nb = rebalance_bounds(&[0, 50, 100], &[300, 100]).expect("imbalanced");
        // Exact: density 6/elem then 2/elem; cut at cumulative 200 → 34
        // (ceil of 200/6).
        assert_eq!(nb, vec![0, 34, 100]);
    }

    #[test]
    fn result_is_a_valid_partition_with_min_one_element() {
        for loads in [
            vec![1_000_000u64, 1, 1, 1],
            vec![1, 1_000_000, 1, 1],
            vec![7, 900, 3, 90],
            vec![u64::MAX / 4, 1, u64::MAX / 4, 1],
        ] {
            for len in [4usize, 5, 17, 1000] {
                let cur = crate::dist::Dist::block(len, 4).bounds();
                if let Some(nb) = rebalance_bounds(&cur, &loads) {
                    assert_eq!(nb.len(), 5);
                    assert_eq!(nb[0], 0);
                    assert_eq!(nb[4], len);
                    for k in 0..4 {
                        assert!(nb[k] < nb[k + 1], "empty span: {nb:?} loads={loads:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_refuse() {
        // Too few elements for one per node.
        assert_eq!(rebalance_bounds(&[0, 1, 1, 2], &[9, 0, 1]), None);
        // Single node.
        assert_eq!(rebalance_bounds(&[0, 10], &[5]), None);
        // Zero total load.
        assert_eq!(rebalance_bounds(&[0, 5, 10], &[0, 0]), None);
        // Load vector of the wrong arity.
        assert_eq!(rebalance_bounds(&[0, 5, 10], &[1, 2, 3]), None);
        // Zero-length array.
        assert_eq!(rebalance_bounds(&[0, 0, 0], &[5, 1]), None);
    }

    #[test]
    fn clamped_cut_equal_to_current_returns_none() {
        // Two elements, two nodes: the one-element-per-node clamp pins the
        // only legal cut at 1, which is where it already is — the balancer
        // must signal "no change" rather than a zero-element migration.
        assert!(imbalanced(&[1000, 1]));
        assert_eq!(rebalance_bounds(&[0, 1, 2], &[1000, 1]), None);
    }

    #[test]
    fn cut_lands_at_the_exact_equal_load_point() {
        // Density 10/elem then 1/elem over [0,80,100): total 820, target
        // 410 → 41 elements of segment 0.
        assert_eq!(
            rebalance_bounds(&[0, 80, 100], &[800, 20]),
            Some(vec![0, 41, 100])
        );
    }
}
