//! Structured runtime errors for the failure-recovery paths (DESIGN.md §15).
//!
//! The PPM runtime's normal error discipline is fail-fast panics with
//! protocol dumps — fine for runtime bugs, wrong for *modeled machine
//! failures* a caller may want to observe programmatically. Recovery-path
//! failures therefore raise a [`RecoveryError`] via
//! [`std::panic::panic_any`]: the typed payload survives the cluster
//! driver's panic propagation (`resume_unwind`), so tests and harnesses can
//! `catch_unwind` the job and `downcast_ref::<RecoveryError>()` to learn
//! *which node* failed at *which phase* and why, instead of string-matching
//! a panic message.

use std::fmt;

/// A node-level recovery failure: the runtime could not (or, without
/// replication, cannot by design) continue past a fault. Carries the id of
/// the node whose state is the problem and the global phase sequence at
/// which recovery was attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError {
    /// Node whose death or snapshot made recovery impossible (not
    /// necessarily the node that raised the error: on an unreplicated
    /// permanent death every survivor raises an identical error naming
    /// the dead node).
    pub node: usize,
    /// `global_seq` of the super-step at which recovery was attempted.
    pub phase: u64,
    /// Human-readable cause (missing snapshot, shape mismatch,
    /// unreplicated permanent death, …).
    pub reason: String,
}

impl RecoveryError {
    /// Raise this error as a typed panic payload (see module docs).
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery failed for node {} at global phase {}: {}",
            self.node, self.phase, self.reason
        )
    }
}

impl std::error::Error for RecoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_node_phase_and_reason() {
        let e = RecoveryError {
            node: 2,
            phase: 17,
            reason: "snapshot shape does not match the partition".into(),
        };
        let s = e.to_string();
        assert!(s.contains("node 2"), "{s}");
        assert!(s.contains("phase 17"), "{s}");
        assert!(s.contains("shape does not match"), "{s}");
    }

    #[test]
    fn raise_payload_downcasts_back() {
        let err = std::panic::catch_unwind(|| {
            RecoveryError {
                node: 1,
                phase: 3,
                reason: "test".into(),
            }
            .raise()
        })
        .expect_err("raise must panic");
        let e = err
            .downcast_ref::<RecoveryError>()
            .expect("typed payload survives the unwind");
        assert_eq!((e.node, e.phase), (1, 3));
    }
}
