//! The per-node SPMD context.
//!
//! PPM is an SPMD model (paper §3.2): one copy of the program runs on every
//! node, and [`NodeCtx`] is that copy's handle to the runtime — system
//! variables, shared-variable allocation, direct access to locally-owned
//! data (initialization and result extraction), node-level collectives, and
//! [`NodeCtx::ppm_do`], the `PPM_do(K) func(...)` construct.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::rc::Rc;

use ppm_simnet::{EndpointCtx, Message, SimTime};

use crate::config::PpmConfig;
use crate::dist::{Dist, Layout};
use crate::elem::Elem;
use crate::msgs::{self, RespBundle, RespPart};
use crate::shared::{GlobalShared, NodeShared};
use crate::state::{GArray, Inner, NArray};
use crate::vp::Vp;

/// Per-node handle passed to the SPMD closure of [`crate::run`].
pub struct NodeCtx<'a> {
    pub(crate) ep: &'a mut EndpointCtx,
    pub(crate) inner: Rc<RefCell<Inner>>,
    /// Received-but-not-yet-wanted runtime messages.
    pub(crate) stash: VecDeque<Message>,
    /// Node-collective sequence number.
    pub(crate) coll_seq: u64,
    cfg: PpmConfig,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(ep: &'a mut EndpointCtx, cfg: PpmConfig) -> Self {
        let node = ep.id();
        NodeCtx {
            ep,
            inner: Rc::new(RefCell::new(Inner::new(cfg, node))),
            stash: VecDeque::new(),
            coll_seq: 0,
            cfg,
        }
    }

    /// `PPM_node_id`: this node's id.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.ep.id()
    }

    /// `PPM_node_count`: number of nodes in the cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// `PPM_cores_per_node`: cores on each node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cfg.cores_per_node()
    }

    /// Runtime configuration.
    #[inline]
    pub fn config(&self) -> PpmConfig {
        self.cfg
    }

    /// Current simulated time on this node.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ep.clock.now()
    }

    /// Charge node-level (single-core) computation.
    pub fn charge_flops(&mut self, n: u64) {
        self.ep.counters.flops += n;
        self.ep
            .clock
            .advance_compute(self.cfg.machine.core.flops(n));
    }

    /// Event counters accumulated on this node so far (endpoint counters
    /// merged with any not-yet-folded runtime counters).
    pub fn ep_counters(&self) -> ppm_simnet::Counters {
        self.ep.counters.merge(&self.inner.borrow().counters)
    }

    /// Drain the per-phase trace accumulated so far: one record per
    /// completed phase, in execution order (observability; see
    /// [`crate::PhaseRecord`]).
    pub fn take_phase_log(&mut self) -> Vec<crate::state::PhaseRecord> {
        std::mem::take(&mut self.inner.borrow_mut().phase_log)
    }

    /// Drain the conformance violations the phase-semantics checker has
    /// reported on this node so far (see [`crate::PhaseViolation`]).
    /// Violations are flushed at each phase's end barrier, in deterministic
    /// order; the list is always empty when the checker is disabled
    /// ([`PpmConfig::with_checker`]).
    pub fn take_violations(&mut self) -> Vec<crate::check::PhaseViolation> {
        std::mem::take(&mut self.inner.borrow_mut().violations)
    }

    /// Charge node-level memory operations.
    pub fn charge_mem_ops(&mut self, n: u64) {
        self.ep.counters.mem_ops += n;
        self.ep
            .clock
            .advance_compute(self.cfg.machine.core.mem_ops(n));
    }

    // -- allocation ---------------------------------------------------------

    /// Declare a global shared array of `len` elements, block-distributed
    /// over the nodes (`PPM_global_shared T a[len]`). Collective: every
    /// node must allocate the same arrays in the same order.
    pub fn alloc_global<T: Elem>(&mut self, len: usize) -> GlobalShared<T> {
        self.alloc_global_with(len, Layout::Block)
    }

    /// Declare a global shared array with an explicit distribution layout.
    pub fn alloc_global_with<T: Elem>(&mut self, len: usize, layout: Layout) -> GlobalShared<T> {
        let mut inner = self.inner.borrow_mut();
        let dist = match layout {
            Layout::Block => Dist::block(len, self.cfg.nodes()),
            Layout::Cyclic => Dist::cyclic(len, self.cfg.nodes()),
        };
        let id = inner.garrays.len() as u32;
        inner
            .garrays
            .push(Box::new(GArray::<T>::new(dist, self.node_id())));
        GlobalShared::new(id, len)
    }

    /// Declare a node-shared array of `len` elements
    /// (`PPM_node_shared T a[len]`): one instance per node.
    pub fn alloc_node<T: Elem>(&mut self, len: usize) -> NodeShared<T> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.narrays.len() as u32;
        inner.narrays.push(Box::new(NArray::<T>::new(len)));
        NodeShared::new(id, len)
    }

    // -- direct (node-level) data access ------------------------------------

    /// Global index range owned by this node (block layout).
    pub fn local_range<T: Elem>(&self, g: &GlobalShared<T>) -> std::ops::Range<usize> {
        let inner = self.inner.borrow();
        let ga = garray_ref::<T>(&inner, g.id);
        ga.dist.block_range(self.node_id())
    }

    /// Distribution of a global array.
    pub fn dist_of<T: Elem>(&self, g: &GlobalShared<T>) -> Dist {
        let inner = self.inner.borrow();
        garray_ref::<T>(&inner, g.id).dist
    }

    /// Read this node's partition of a global array.
    pub fn with_local<T: Elem, R>(&self, g: &GlobalShared<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&garray_ref::<T>(&inner, g.id).local)
    }

    /// Mutate this node's partition of a global array directly
    /// (initialization / result extraction, outside any `ppm_do`).
    pub fn with_local_mut<T: Elem, R>(
        &mut self,
        g: &GlobalShared<T>,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> R {
        let mut inner = self.inner.borrow_mut();
        f(&mut garray_mut::<T>(&mut inner, g.id).local)
    }

    /// Read this node's instance of a node-shared array.
    pub fn with_node<T: Elem, R>(&self, n: &NodeShared<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&narray_ref::<T>(&inner, n.id).data)
    }

    /// Mutate this node's instance of a node-shared array directly.
    pub fn with_node_mut<T: Elem, R>(
        &mut self,
        n: &NodeShared<T>,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> R {
        let mut inner = self.inner.borrow_mut();
        f(&mut narray_mut::<T>(&mut inner, n.id).data)
    }

    // -- ppm_do --------------------------------------------------------------

    /// `PPM_do(K) func(...)`: start `k` virtual processors running the PPM
    /// function `f`, each with a unique rank in `0..k`, and block until all
    /// complete. Collective across nodes (`k` and `f` may differ per node).
    /// VPs are multiplexed over the node's cores; phases inside `f`
    /// synchronize per the model (§3.1–3.2).
    pub fn ppm_do<Fut>(&mut self, k: usize, f: impl Fn(Vp) -> Fut)
    where
        Fut: Future<Output = ()> + 'static,
    {
        crate::exec::run_do(self, k, crate::state::DoMode::Collective, f);
    }

    /// Asynchronous variant of [`Self::ppm_do`] (paper §3.3: "a PPM
    /// program can make different nodes work on completely different tasks
    /// asynchronously"): starts `k` VPs on *this node only*, with no
    /// cross-node coordination. Only node phases (and node-shared
    /// variables, plus this node's partitions of global arrays) may be
    /// used inside; a global phase panics.
    pub fn ppm_do_local<Fut>(&mut self, k: usize, f: impl Fn(Vp) -> Fut)
    where
        Fut: Future<Output = ()> + 'static,
    {
        crate::exec::run_do(self, k, crate::state::DoMode::Local, f);
    }

    // -- message pump ---------------------------------------------------------

    /// Blocking receive of the first runtime message satisfying `want`,
    /// servicing incoming read requests and stashing everything else.
    pub(crate) fn pump_recv(&mut self, want: impl Fn(&Message) -> bool) -> Message {
        if let Some(pos) = self.stash.iter().position(&want) {
            return self.stash.remove(pos).expect("valid position");
        }
        loop {
            let msg = self.ep.net.recv();
            let (kind, _) = msgs::untag(msg.tag);
            if kind == msgs::K_READ_REQ {
                self.service_read_req(msg);
                continue;
            }
            if want(&msg) {
                return msg;
            }
            self.stash.push_back(msg);
        }
    }

    /// Serve a bundle of read requests against this node's partitions.
    pub(crate) fn service_read_req(&mut self, msg: Message) {
        let src = msg.src;
        let req_bytes = msg.bytes;
        let bundle: msgs::ReqBundle = msg.take();
        let mut inner = self.inner.borrow_mut();
        // Protocol check: a request can only target the phase whose
        // snapshot our arrays currently hold (see exec.rs determinism
        // notes) — i.e. the phase we have completed exactly `phase`
        // exchanges for.
        debug_assert_eq!(
            bundle.phase,
            inner.phase.global_seq,
            "read request for phase {} arrived while node {} holds phase {}",
            bundle.phase,
            self.ep.id(),
            inner.phase.global_seq
        );
        let n_entries = bundle.entries.len() as u64;
        inner.traffic.req_bundles_in += 1;
        inner.traffic.req_entries_in += n_entries;
        inner.traffic.req_bytes_in += req_bytes as u64;
        inner.counters.msgs_recv += 1;
        inner.counters.bytes_recv += req_bytes as u64;

        // Group by array, preserving request order within each array.
        let mut order: Vec<u32> = Vec::new();
        let mut grouped: std::collections::HashMap<u32, (Vec<u64>, Vec<u64>)> =
            std::collections::HashMap::new();
        for e in &bundle.entries {
            let g = grouped.entry(e.array).or_insert_with(|| {
                order.push(e.array);
                (Vec::new(), Vec::new())
            });
            g.0.push(e.idx);
            g.1.push(e.slot);
        }

        let mut parts = Vec::with_capacity(order.len());
        let mut bytes = self.cfg.bundle_header_bytes;
        for array in order {
            let (idxs, slots) = grouped.remove(&array).expect("grouped above");
            let (values, vbytes) = inner.garrays[array as usize].serve(&idxs);
            bytes += vbytes;
            parts.push(RespPart {
                array,
                slots,
                values,
            });
        }
        inner.service_time += self.cfg.service_overhead.scale(n_entries);
        inner.traffic.resp_bundles_out += 1;
        inner.traffic.resp_bytes_out += bytes as u64;
        inner.counters.msgs_sent += 1;
        inner.counters.bytes_sent += bytes as u64;
        drop(inner);

        let now = self.ep.clock.now();
        self.ep.net.send(Message::new(
            self.node_id(),
            src,
            msgs::tag(msgs::K_READ_RESP, 0),
            now,
            bytes,
            RespBundle { parts },
        ));
    }
}

// Helpers to view typed arrays through the trait objects.
fn garray_ref<T: Elem>(inner: &Inner, id: u32) -> &GArray<T> {
    inner.garrays[id as usize]
        .as_any_ref()
        .downcast_ref::<GArray<T>>()
        .expect("global array handle type mismatch")
}

fn garray_mut<T: Elem>(inner: &mut Inner, id: u32) -> &mut GArray<T> {
    inner.garrays[id as usize]
        .as_any()
        .downcast_mut::<GArray<T>>()
        .expect("global array handle type mismatch")
}

fn narray_ref<T: Elem>(inner: &Inner, id: u32) -> &NArray<T> {
    inner.narrays[id as usize]
        .as_any_ref()
        .downcast_ref::<NArray<T>>()
        .expect("node array handle type mismatch")
}

fn narray_mut<T: Elem>(inner: &mut Inner, id: u32) -> &mut NArray<T> {
    inner.narrays[id as usize]
        .as_any()
        .downcast_mut::<NArray<T>>()
        .expect("node array handle type mismatch")
}

/// Keep `Any` imported for downcast bounds used above.
#[allow(unused)]
fn _assert_any(_: &dyn Any) {}
