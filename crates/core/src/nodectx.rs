//! The per-node SPMD context.
//!
//! PPM is an SPMD model (paper §3.2): one copy of the program runs on every
//! node, and [`NodeCtx`] is that copy's handle to the runtime — system
//! variables, shared-variable allocation, direct access to locally-owned
//! data (initialization and result extraction), node-level collectives, and
//! [`NodeCtx::ppm_do`], the `PPM_do(K) func(...)` construct.

use std::collections::VecDeque;
use std::future::Future;

use ppm_simnet::{ArgValue, EndpointCtx, Message, RelMeta, SimTime};

use crate::config::PpmConfig;
use crate::dist::{Dist, Layout};
use crate::elem::Elem;
use crate::error::RecoveryError;
use crate::msgs::{self, RespBundle, RespPart};
use crate::reliable::Reliability;
use crate::shared::{GlobalShared, NodeShared};
use crate::state::{
    garray_mut, garray_ref, narray_mut, narray_ref, GArray, Inner, NArray, SharedInner, Snapshots,
};
use crate::vp::Vp;

/// Per-node handle passed to the SPMD closure of [`crate::run`].
pub struct NodeCtx<'a> {
    pub(crate) ep: &'a mut EndpointCtx,
    pub(crate) inner: SharedInner,
    /// Received-but-not-yet-wanted runtime messages.
    pub(crate) stash: VecDeque<Message>,
    /// Node-collective sequence number.
    pub(crate) coll_seq: u64,
    /// Reliable-transport state machine; `None` keeps the fast paths
    /// untouched (see `reliable.rs`).
    pub(crate) rel: Option<Box<Reliability>>,
    cfg: PpmConfig,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(ep: &'a mut EndpointCtx, cfg: PpmConfig) -> Self {
        let node = ep.id();
        NodeCtx {
            ep,
            inner: SharedInner::new(Inner::new(cfg, node)),
            stash: VecDeque::new(),
            coll_seq: 0,
            rel: cfg
                .reliability_enabled()
                .then(|| Box::new(Reliability::new(node, &cfg))),
            cfg,
        }
    }

    /// `PPM_node_id`: this node's id.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.ep.id()
    }

    /// `PPM_node_count`: number of nodes in the cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// `PPM_cores_per_node`: cores on each node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cfg.cores_per_node()
    }

    /// Runtime configuration.
    #[inline]
    pub fn config(&self) -> PpmConfig {
        self.cfg
    }

    /// Current simulated time on this node.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ep.clock.now()
    }

    /// Charge node-level (single-core) computation.
    pub fn charge_flops(&mut self, n: u64) {
        self.ep.counters.flops += n;
        self.ep
            .clock
            .advance_compute(self.cfg.machine.core.flops(n));
    }

    /// Event counters accumulated on this node so far (endpoint counters
    /// merged with any not-yet-folded runtime counters).
    pub fn ep_counters(&self) -> ppm_simnet::Counters {
        self.ep.counters.merge(&self.inner.borrow().counters)
    }

    /// High-water mark of resident shared-array bytes on this node under
    /// the pseudo-streaming tile budget (DESIGN.md §18). Zero when
    /// streaming is off ([`PpmConfig::with_tile_budget`] unset): residency
    /// is only tracked under a budget.
    pub fn peak_bytes_resident(&self) -> u64 {
        self.inner.borrow().tile_budget.peak_bytes_resident()
    }

    /// Bytes of shared-array state currently resident under the
    /// pseudo-streaming tile budget; zero when streaming is off.
    pub fn bytes_resident(&self) -> u64 {
        self.inner.borrow().tile_budget.bytes_resident()
    }

    /// Drain the per-phase trace accumulated so far: one record per
    /// completed phase, in execution order (observability; see
    /// [`crate::PhaseRecord`]).
    pub fn take_phase_log(&mut self) -> Vec<crate::state::PhaseRecord> {
        std::mem::take(&mut self.inner.borrow_mut().phase_log)
    }

    /// Drain the conformance violations the phase-semantics checker has
    /// reported on this node so far (see [`crate::PhaseViolation`]).
    /// Violations are flushed at each phase's end barrier, in deterministic
    /// order; the list is always empty when the checker is disabled
    /// ([`PpmConfig::with_checker`]).
    pub fn take_violations(&mut self) -> Vec<crate::check::PhaseViolation> {
        std::mem::take(&mut self.inner.borrow_mut().violations)
    }

    /// Charge node-level memory operations.
    pub fn charge_mem_ops(&mut self, n: u64) {
        self.ep.counters.mem_ops += n;
        self.ep
            .clock
            .advance_compute(self.cfg.machine.core.mem_ops(n));
    }

    // -- allocation ---------------------------------------------------------

    /// Declare a global shared array of `len` elements, block-distributed
    /// over the nodes (`PPM_global_shared T a[len]`). Collective: every
    /// node must allocate the same arrays in the same order.
    pub fn alloc_global<T: Elem>(&mut self, len: usize) -> GlobalShared<T> {
        self.alloc_global_with(len, Layout::Block)
    }

    /// Declare a global shared array with an explicit distribution layout.
    pub fn alloc_global_with<T: Elem>(&mut self, len: usize, layout: Layout) -> GlobalShared<T> {
        let nodes = self.cfg.nodes();
        let dist = match layout {
            Layout::Block => Dist::block(len, nodes),
            Layout::Cyclic => Dist::cyclic(len, nodes),
            Layout::Weighted(bounds) => Dist::weighted(len, nodes, bounds),
        };
        self.alloc_global_dist(dist)
    }

    /// Declare a global shared array opted into trace-guided adaptive
    /// repartitioning ([`PpmConfig::adaptive_balance`], DESIGN.md §14). It
    /// starts on exactly the block boundaries (so with the knob off, or
    /// until the first rebalance, behavior is identical to
    /// [`Self::alloc_global`] bit for bit), but carries a weighted layout
    /// the runtime may recut at global phase boundaries. Collective, like
    /// all allocation.
    pub fn alloc_global_balanced<T: Elem>(&mut self, len: usize) -> GlobalShared<T> {
        let nodes = self.cfg.nodes();
        let block = Dist::block(len, nodes);
        let dist = Dist::weighted(len, nodes, std::sync::Arc::new(block.bounds()));
        let g = self.alloc_global_dist::<T>(dist);
        self.inner.borrow_mut().balanced.push(g.id);
        g
    }

    fn alloc_global_dist<T: Elem>(&mut self, dist: Dist) -> GlobalShared<T> {
        let len = dist.len;
        let node = self.node_id();
        let local_len = dist.local_len(node);
        let mut inner = self.inner.borrow_mut();
        let id = u32::try_from(inner.garrays.len()).expect("too many global shared arrays");
        inner.garrays.push(Box::new(GArray::<T>::new(dist, node)));
        // Pseudo-streaming registration (DESIGN.md §18): under a tile
        // budget, large partitions are tiled and start fully cold.
        inner
            .tile_budget
            .register(id, std::mem::size_of::<T>(), local_len);
        GlobalShared::new(id, len)
    }

    /// Declare a node-shared array of `len` elements
    /// (`PPM_node_shared T a[len]`): one instance per node.
    pub fn alloc_node<T: Elem>(&mut self, len: usize) -> NodeShared<T> {
        let mut inner = self.inner.borrow_mut();
        let id = u32::try_from(inner.narrays.len()).expect("too many node shared arrays");
        inner.narrays.push(Box::new(NArray::<T>::new(len)));
        NodeShared::new(id, len)
    }

    // -- direct (node-level) data access ------------------------------------

    /// Global index range owned by this node (any contiguous layout —
    /// block, or the weighted layout of a balanced array; panics for
    /// cyclic). For balanced arrays the range can change at global phase
    /// boundaries — query it when needed rather than hoisting it across
    /// phases.
    pub fn local_range<T: Elem>(&self, g: &GlobalShared<T>) -> std::ops::Range<usize> {
        let inner = self.inner.borrow();
        let ga = garray_ref::<T>(&inner, g.id);
        ga.dist.owned_range(self.node_id())
    }

    /// Distribution of a global array (a snapshot: balanced arrays may be
    /// recut at global phase boundaries).
    pub fn dist_of<T: Elem>(&self, g: &GlobalShared<T>) -> Dist {
        let inner = self.inner.borrow();
        garray_ref::<T>(&inner, g.id).dist.clone()
    }

    /// Read this node's partition of a global array.
    pub fn with_local<T: Elem, R>(&self, g: &GlobalShared<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&garray_ref::<T>(&inner, g.id).local)
    }

    /// Mutate this node's partition of a global array directly
    /// (initialization / result extraction, outside any `ppm_do`).
    pub fn with_local_mut<T: Elem, R>(
        &mut self,
        g: &GlobalShared<T>,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> R {
        let mut inner = self.inner.borrow_mut();
        f(&mut garray_mut::<T>(&mut inner, g.id).local)
    }

    /// Read this node's instance of a node-shared array.
    pub fn with_node<T: Elem, R>(&self, n: &NodeShared<T>, f: impl FnOnce(&[T]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&narray_ref::<T>(&inner, n.id).data)
    }

    /// Mutate this node's instance of a node-shared array directly.
    pub fn with_node_mut<T: Elem, R>(
        &mut self,
        n: &NodeShared<T>,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> R {
        let mut inner = self.inner.borrow_mut();
        f(&mut narray_mut::<T>(&mut inner, n.id).data)
    }

    // -- ppm_do --------------------------------------------------------------

    /// `PPM_do(K) func(...)`: start `k` virtual processors running the PPM
    /// function `f`, each with a unique rank in `0..k`, and block until all
    /// complete. Collective across nodes (`k` and `f` may differ per node).
    /// VPs are multiplexed over the node's cores; phases inside `f`
    /// synchronize per the model (§3.1–3.2).
    pub fn ppm_do<Fut>(&mut self, k: usize, f: impl Fn(Vp) -> Fut)
    where
        Fut: Future<Output = ()> + Send + 'static,
    {
        crate::exec::run_do(self, k, crate::state::DoMode::Collective, f);
    }

    /// Asynchronous variant of [`Self::ppm_do`] (paper §3.3: "a PPM
    /// program can make different nodes work on completely different tasks
    /// asynchronously"): starts `k` VPs on *this node only*, with no
    /// cross-node coordination. Only node phases (and node-shared
    /// variables, plus this node's partitions of global arrays) may be
    /// used inside; a global phase panics.
    pub fn ppm_do_local<Fut>(&mut self, k: usize, f: impl Fn(Vp) -> Fut)
    where
        Fut: Future<Output = ()> + Send + 'static,
    {
        crate::exec::run_do(self, k, crate::state::DoMode::Local, f);
    }

    // -- message transport ----------------------------------------------------

    /// Central send for all runtime messages. With reliability off this is
    /// exactly a raw [`Endpoint::try_send`](ppm_simnet::Endpoint::try_send);
    /// with it on, the message becomes a sequence-numbered envelope, the
    /// fault plan is consulted, and retransmission/duplicate/delay costs
    /// are accounted (see `reliable.rs` for where each cost lands).
    pub(crate) fn send_msg(&mut self, mut msg: Message, kind: u64) {
        debug_assert_eq!(msgs::untag(msg.tag).0, kind, "tag/kind mismatch");
        if let Some(rel) = self.rel.as_deref_mut() {
            let out = rel.on_send(msg.dst, kind);
            let mut inner = self.inner.borrow_mut();
            inner.counters.retries += out.meta.lost_attempts as u64;
            inner.counters.faults_dropped += out.meta.lost_attempts as u64;
            inner.counters.faults_duplicated += out.meta.duplicates as u64;
            if out.wire_delay > SimTime::ZERO {
                inner.counters.faults_delayed += 1;
            }
            inner.traffic.rel_extra_msgs += (out.meta.lost_attempts + out.meta.duplicates) as u64;
            // Barrier/collective receivers honor `ts`, so their delay
            // travels on the wire; data-plane delay is charged from the
            // phase's traffic totals at `charge_phase_time`.
            if matches!(kind, msgs::K_BARRIER | msgs::K_COLL) {
                msg.ts += out.total_delay();
            } else {
                inner.traffic.rel_delay += out.total_delay();
            }
            drop(inner);
            if out.meta.lost_attempts > 0 {
                // A lost attempt is observed (and re-sent) by the sender;
                // record it on the sender's track.
                self.ep.tracer.instant(
                    "retransmit",
                    "reliability",
                    self.ep.clock.now(),
                    vec![
                        ("dst", ArgValue::U64(msg.dst as u64)),
                        ("attempts", ArgValue::U64(out.meta.lost_attempts as u64)),
                        ("backoff_ps", ArgValue::U64(out.backoff.as_ps())),
                    ],
                );
            }
            msg = msg.with_rel(out.meta);
        }
        if let Err(m) = self.ep.net.try_send(msg) {
            let (kind, meta) = msgs::untag(m.tag);
            panic!(
                "node {} hung up (panicked?); in-flight {} message \
                 (meta {meta:#x}) src={} dst={} bytes={}",
                m.dst,
                msgs::kind_name(kind),
                m.src,
                m.dst,
                m.bytes
            );
        }
    }

    /// Raw blocking receive with the stall watchdog's protocol-state dump
    /// attached.
    ///
    /// Fail-fast guard (DESIGN.md §15): with replication off, a peer
    /// confirmed permanently dead can never send again — its traffic is
    /// black-holed — so blocking here could only end in the stall
    /// watchdog. Raise the structured [`RecoveryError`] immediately
    /// instead; the watchdog never fires for a confirmed-dead peer.
    fn recv_raw(&mut self) -> Message {
        if !self.cfg.replication {
            let dead = self.inner.try_borrow().and_then(|i| i.dead_bits.first());
            if let Some(victim) = dead {
                let phase = self.inner.try_borrow().map_or(0, |i| i.phase.global_seq);
                RecoveryError {
                    node: victim,
                    phase,
                    reason: "peer confirmed permanently dead with replication \
                             disabled; a blocking receive cannot complete"
                        .into(),
                }
                .raise();
            }
        }
        let node = self.ep.id();
        let inner = &self.inner;
        let stash = &self.stash;
        let rel = self.rel.as_deref();
        let tracer = &self.ep.tracer;
        let now = self.ep.clock.now();
        self.ep.net.recv_with_diag(|| {
            let dump = protocol_dump(node, inner, stash, rel);
            // Publish the dump to the trace stream before the watchdog
            // panic unwinds this endpoint: the shared sink outlives the
            // thread, so a wedged run still leaves a readable trace.
            tracer.instant(
                "recv_stall",
                "runtime",
                now,
                vec![("dump", ArgValue::Str(dump.clone()))],
            );
            dump
        })
    }

    /// Reliability bookkeeping for a received envelope: duplicate
    /// suppression and, when one falls due, the cumulative ack back to the
    /// sender.
    fn account_envelope(&mut self, src: usize, meta: RelMeta) {
        let Some(rel) = self.rel.as_deref_mut() else {
            return;
        };
        let out = rel.on_recv(src, meta);
        if out.dups_suppressed > 0 {
            self.ep.tracer.instant(
                "dup_suppressed",
                "reliability",
                self.ep.clock.now(),
                vec![
                    ("src", ArgValue::U64(src as u64)),
                    ("count", ArgValue::U64(out.dups_suppressed as u64)),
                ],
            );
        }
        let mut inner = self.inner.borrow_mut();
        inner.counters.dups_suppressed += u64::from(out.dups_suppressed);
        let Some(upto) = out.ack_due else {
            return;
        };
        // Acks are modeled as piggybacked: they appear in the counters but
        // cost no simulated time (see `Traffic::rel_extra_msgs` for why
        // charging them here would break clock determinism).
        inner.counters.acks_sent += 1;
        inner.counters.msgs_sent += 1;
        inner.counters.bytes_sent += self.cfg.ack_bytes as u64;
        drop(inner);
        // Acks travel outside the fault plan: a lost cumulative ack is
        // harmless (the next one covers it), so faulting acks would add
        // schedule noise without new protocol behavior. Delivery is
        // best-effort for the same reason — near job end the peer may have
        // returned already (its last envelopes to us can fall due for an
        // ack after it exits), and an ack to a finished sender means
        // nothing. The counters above are charged either way, so totals
        // stay deterministic no matter how the shutdown races.
        let me = self.node_id();
        let now = self.ep.clock.now();
        let _ = self.ep.net.try_send(Message::new(
            me,
            src,
            msgs::tag(msgs::K_ACK, upto),
            now,
            self.cfg.ack_bytes,
            (),
        ));
    }

    /// Blocking receive of the first runtime message satisfying `want`,
    /// servicing incoming read requests (and reliability-layer traffic)
    /// and stashing everything else.
    pub(crate) fn pump_recv(&mut self, want: impl Fn(&Message) -> bool) -> Message {
        if let Some(pos) = self.stash.iter().position(&want) {
            return self.stash.remove(pos).expect("valid position");
        }
        loop {
            let msg = self.recv_raw();
            let (kind, meta) = msgs::untag(msg.tag);
            if kind == msgs::K_ACK {
                // Ack receipt only advances the sender-side watermark — no
                // counters or clock — so job totals stay deterministic
                // even when trailing acks are never consumed.
                if let Some(rel) = self.rel.as_deref_mut() {
                    rel.on_ack(msg.src, meta);
                }
                continue;
            }
            if let Some(relmeta) = msg.rel {
                self.account_envelope(msg.src, relmeta);
            }
            if kind == msgs::K_READ_REQ {
                self.service_read_req(msg);
                continue;
            }
            if want(&msg) {
                return msg;
            }
            self.stash.push_back(msg);
        }
    }

    // -- crash-recovery snapshots ---------------------------------------------

    /// Whether super-step snapshots are being maintained (a crash or
    /// permanent-death fault is configured, or buddy replication is on —
    /// the snapshot doubles as the replica's source of truth).
    pub(crate) fn snapshots_enabled(&self) -> bool {
        self.cfg.replication
            || self
                .rel
                .as_deref()
                .is_some_and(Reliability::snapshots_enabled)
    }

    /// Capture the super-step snapshot of every shared array.
    ///
    /// The snapshot store is maintained copy-on-write, so refreshing it
    /// costs only the bytes actually written since the previous capture —
    /// the same dirty set the replica delta frames ship (DESIGN.md §15).
    /// `dirty: Some(n)` charges `n` bytes of copying (capped at the full
    /// size); `dirty: None` — the first capture, or a construct-entry
    /// refresh after untracked direct mutation — charges the full copy.
    pub(crate) fn take_snapshot(&mut self, dirty: Option<u64>) {
        let core = self.cfg.machine.core;
        let mut inner = self.inner.borrow_mut();
        let had_snapshot = inner.snapshots.is_some();
        let phase = inner.phase.global_seq;
        let mut bytes = 0u64;
        let garrays: Vec<_> = inner
            .garrays
            .iter()
            .map(|g| {
                let (p, b) = g.snapshot_local();
                bytes += b;
                p
            })
            .collect();
        let narrays: Vec<_> = inner
            .narrays
            .iter()
            .map(|n| {
                let (p, b) = n.snapshot_local();
                bytes += b;
                p
            })
            .collect();
        inner.snapshots = Some(Snapshots {
            phase,
            garrays,
            narrays,
            bytes,
        });
        let charged = match dirty {
            Some(d) if had_snapshot => d.min(bytes),
            _ => bytes,
        };
        // Streaming cache-line copies, not random-access element ops: one
        // charged memory operation per 64-byte line.
        inner.service_time += core.mem_ops(charged / 64);
    }

    /// Serve a bundle of read requests against this node's partitions.
    pub(crate) fn service_read_req(&mut self, msg: Message) {
        let src = msg.src;
        let req_bytes = msg.bytes;
        let bundle: msgs::ReqBundle = msg.take();
        let mut inner = self.inner.borrow_mut();
        // Protocol check: a request can only target the phase whose
        // snapshot our arrays currently hold (see exec.rs determinism
        // notes) — i.e. the phase we have completed exactly `phase`
        // exchanges for.
        debug_assert_eq!(
            bundle.phase,
            inner.phase.global_seq,
            "read request for phase {} arrived while node {} holds phase {}",
            bundle.phase,
            self.ep.id(),
            inner.phase.global_seq
        );
        let n_entries = bundle.entries.len() as u64;
        inner.traffic.req_bundles_in += 1;
        inner.traffic.req_entries_in += n_entries;
        inner.traffic.req_bytes_in += req_bytes as u64;
        // Counters go to the deferred bucket: WHEN a peer's request reaches
        // us (during a wave, our clock barrier, or a prologue collective)
        // is a real-time accident, and crediting `counters` here would leak
        // that accident into the per-phase trace deltas. The bucket folds
        // in at the serviced phase's end (see `Inner::deferred_service_ctrs`).
        inner.deferred_service_ctrs.msgs_recv += 1;
        inner.deferred_service_ctrs.bytes_recv += req_bytes as u64;

        // Refresh-push bookkeeping (DESIGN.md §13): remember who asked for
        // what, so a later rewrite of a repeatedly-served element can push
        // the new value to its readers. Folded into `serve_hist` at the
        // phase end (arrival order here is a real-time accident; the fold
        // sorts first). Masks are growable [`crate::NodeSet`]s, so every
        // node count participates.
        if self.cfg.read_cache {
            inner
                .deferred_serves
                .extend(bundle.entries.iter().map(|e| (src, e.array, e.idx)));
        }

        // Group by array, preserving request order within each array.
        // Dense, indexed by array id: nothing on this path may iterate a
        // hash map, or its order would show through on the wire.
        let mut order: Vec<u32> = Vec::new();
        let mut grouped: Vec<(Vec<u64>, Vec<u64>)> =
            vec![(Vec::new(), Vec::new()); inner.garrays.len()];
        for e in &bundle.entries {
            let g = &mut grouped[e.array as usize];
            if g.0.is_empty() {
                order.push(e.array);
            }
            g.0.push(e.idx);
            g.1.push(e.slot);
        }

        let mut parts = Vec::with_capacity(order.len());
        let mut bytes = self.cfg.bundle_header_bytes;
        for array in order {
            let (idxs, slots) = std::mem::take(&mut grouped[array as usize]);
            let (values, vbytes) = inner.garrays[array as usize].serve(&idxs);
            bytes += vbytes;
            parts.push(RespPart {
                array,
                slots,
                values,
            });
        }
        inner.service_time += self.cfg.service_overhead.scale(n_entries);
        inner.traffic.resp_bundles_out += 1;
        inner.traffic.resp_bytes_out += bytes as u64;
        inner.deferred_service_ctrs.msgs_sent += 1;
        inner.deferred_service_ctrs.bytes_sent += bytes as u64;
        drop(inner);

        let now = self.ep.clock.now();
        let me = self.node_id();
        self.send_msg(
            Message::new(
                me,
                src,
                msgs::tag(msgs::K_READ_RESP, 0),
                now,
                bytes,
                RespBundle { parts },
            ),
            msgs::K_READ_RESP,
        );
    }
}

impl Drop for NodeCtx<'_> {
    /// Fold any counters still sitting in the runtime state into the
    /// endpoint (e.g. reliability counters from collectives run after the
    /// last `ppm_do`), so `JobReport::counters` is complete.
    fn drop(&mut self) {
        if let Some(mut inner) = self.inner.try_borrow_mut() {
            // Any still-parked service counters drain here so job totals
            // are complete (see `Inner::deferred_service_ctrs`).
            let deferred = std::mem::take(&mut inner.deferred_service_ctrs);
            let c = std::mem::take(&mut inner.counters).merge(&deferred);
            drop(inner);
            self.ep.counters = self.ep.counters.merge(&c);
        }
    }
}

/// Render the node's protocol state for the stall watchdog: phase
/// bookkeeping, parked reads, stashed messages, and (when reliability is
/// on) per-link envelope/ack state — everything needed to see *why* a run
/// wedged instead of a bare timeout.
fn protocol_dump(
    node: usize,
    inner: &SharedInner,
    stash: &VecDeque<Message>,
    rel: Option<&Reliability>,
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("node {node} protocol state:\n");
    match inner.try_borrow() {
        Some(i) => {
            let p = &i.phase;
            let _ = writeln!(
                out,
                "  phase: open={:?} entered={} arrived={} epoch={} \
                 global_seq={} node_seq={}",
                p.open, p.entered, p.arrived, p.epoch, p.global_seq, p.node_seq
            );
            let _ = writeln!(
                out,
                "  vps: live={} | parked reads outstanding={} | queued req dests={}",
                i.live_vps,
                i.outstanding_reads,
                i.reqs.iter().filter(|v| !v.is_empty()).count()
            );
            if i.dead_bits.is_empty() {
                let _ = writeln!(out, "  confirmed dead: none");
            } else {
                let _ = writeln!(out, "  confirmed dead: {:?}", i.dead_bits);
            }
            if let Some((ph, bytes, base)) = i.replica_in {
                let _ = writeln!(
                    out,
                    "  buddy replica held: snapshot phase {ph} ({bytes} bytes, base={base})"
                );
            }
        }
        None => {
            let _ = writeln!(out, "  <runtime state borrowed at stall time>");
        }
    }
    if stash.is_empty() {
        let _ = writeln!(out, "  stash: empty");
    } else {
        let _ = writeln!(out, "  stash ({} messages):", stash.len());
        for m in stash.iter().take(8) {
            let (kind, meta) = msgs::untag(m.tag);
            let _ = writeln!(
                out,
                "    {} from node {} (meta {meta:#x}, {} bytes)",
                msgs::kind_name(kind),
                m.src,
                m.bytes
            );
        }
        if stash.len() > 8 {
            let _ = writeln!(out, "    … and {} more", stash.len() - 8);
        }
    }
    if let Some(r) = rel {
        out.push_str(&r.dump());
    }
    out
}
