//! Node-level collective utilities (paper §3.1 item 6: "utility functions
//! … such as reduction, parallel prefix etc.").
//!
//! These run *between* `ppm_do` constructs, directly among the node
//! runtimes, and are what the PPM runtime library itself uses (e.g.
//! `ppm_do` learns every node's VP count through
//! [`NodeCtx::allgather_nodes`]). They are collectives: every node must
//! call them in the same order. Algorithms mirror the MPI-like substrate
//! (dissemination barrier, binomial trees, recursive-doubling exscan,
//! pairwise all-to-all), but endpoints here are *nodes*, so traffic pays no
//! NIC-sharing penalty.

use std::any::Any;

use ppm_simnet::{Message, WireSize};

use crate::msgs::{self};
use crate::nodectx::NodeCtx;

impl NodeCtx<'_> {
    fn next_coll(&mut self) -> u64 {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        seq
    }

    fn coll_tag(seq: u64, step: u32) -> u64 {
        msgs::tag(msgs::K_COLL, (seq << 8) | step as u64)
    }

    /// Send one collective message to `dst`, charging node-level costs.
    fn send_coll<T: Any + Send + WireSize>(&mut self, dst: usize, tag: u64, value: T) {
        let bytes = value.wire_size();
        let net = self.config().machine.net;
        self.ep.clock.advance_comm(net.send_cpu(bytes, false));
        let ts = self.ep.clock.now() + net.wire_time(bytes, false, 1);
        self.ep.counters.msgs_sent += 1;
        self.ep.counters.bytes_sent += bytes as u64;
        let me = self.node_id();
        // Routed through the reliable transport (fault delay lands on
        // `ts`, which recv_coll waits for).
        self.send_msg(Message::new(me, dst, tag, ts, bytes, value), msgs::K_COLL);
    }

    /// Receive the collective message `tag` from `src`, servicing runtime
    /// traffic meanwhile.
    fn recv_coll<T: Any + Send>(&mut self, src: usize, tag: u64) -> T {
        let msg = self.pump_recv(|m| m.tag == tag && m.src == src);
        let net = self.config().machine.net;
        self.ep.clock.wait_until(msg.ts);
        self.ep.clock.advance_comm(net.recv_cpu(msg.bytes, false));
        self.ep.counters.msgs_recv += 1;
        self.ep.counters.bytes_recv += msg.bytes as u64;
        msg.take()
    }

    /// Dissemination barrier across nodes.
    pub fn barrier_nodes(&mut self) {
        let seq = self.next_coll();
        let p = self.num_nodes();
        let me = self.node_id();
        let mut d = 1usize;
        let mut step = 0u32;
        while d < p {
            let tag = Self::coll_tag(seq, step);
            self.send_coll((me + d) % p, tag, ());
            let () = self.recv_coll((me + p - d) % p, tag);
            d <<= 1;
            step += 1;
        }
        self.ep.counters.barriers += 1;
    }

    /// Broadcast from node `root` via a binomial tree.
    pub fn bcast_nodes<T: Any + Send + Clone + WireSize>(
        &mut self,
        root: usize,
        value: Option<T>,
    ) -> T {
        let seq = self.next_coll();
        let p = self.num_nodes();
        let me = self.node_id();
        let rel = (me + p - root) % p;

        let mut have = if rel == 0 {
            Some(value.expect("bcast_nodes root must supply a value"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src = (rel - mask + root) % p;
                have = Some(self.recv_coll(src, Self::coll_tag(seq, 0)));
                break;
            }
            mask <<= 1;
        }
        let v = have.expect("bcast tree covers every node");
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst = (rel + mask + root) % p;
                self.send_coll(dst, Self::coll_tag(seq, 0), v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Reduce onto node 0 then broadcast: every node gets the combined
    /// value. `op` must be associative; the combine tree is fixed, so
    /// results are deterministic.
    pub fn allreduce_nodes<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Any + Send + Clone + WireSize,
        F: Fn(T, T) -> T,
    {
        let seq = self.next_coll();
        let p = self.num_nodes();
        let me = self.node_id();

        let mut acc = value;
        let mut mask = 1usize;
        let mut sent = false;
        while mask < p {
            if me & mask == 0 {
                let peer = me | mask;
                if peer < p {
                    let other: T = self.recv_coll(peer, Self::coll_tag(seq, 0));
                    acc = op(acc, other);
                }
            } else {
                let dst = me & !mask;
                self.send_coll(dst, Self::coll_tag(seq, 0), acc.clone());
                sent = true;
                break;
            }
            mask <<= 1;
        }
        let root_val = if sent { None } else { Some(acc) };
        self.bcast_nodes(0, root_val)
    }

    /// Exclusive prefix combine over node ids (`None` on node 0).
    /// Recursive doubling; `op` must be associative and commutative.
    pub fn exscan_nodes<T, F>(&mut self, value: T, op: F) -> Option<T>
    where
        T: Any + Send + Clone + WireSize,
        F: Fn(T, T) -> T,
    {
        let seq = self.next_coll();
        let p = self.num_nodes();
        let me = self.node_id();

        let mut partial = value;
        let mut below: Option<T> = None;
        let mut d = 1usize;
        let mut step = 0u32;
        while d < p {
            let tag = Self::coll_tag(seq, step);
            if me + d < p {
                self.send_coll(me + d, tag, partial.clone());
            }
            if me >= d {
                let v: T = self.recv_coll(me - d, tag);
                below = Some(match below {
                    None => v.clone(),
                    Some(b) => op(v.clone(), b),
                });
                partial = op(v, partial);
            }
            d <<= 1;
            step += 1;
        }
        below
    }

    /// Every node contributes one value; every node gets all of them,
    /// ordered by node id.
    pub fn allgather_nodes<T: Any + Send + Clone + WireSize>(&mut self, value: T) -> Vec<T> {
        let vs = self.allgatherv_nodes(vec![value]);
        vs.into_iter().map(|mut v| v.remove(0)).collect()
    }

    /// Variable-size allgather: every node gets each node's item list,
    /// indexed by node id.
    pub fn allgatherv_nodes<T: Any + Send + Clone + WireSize>(
        &mut self,
        items: Vec<T>,
    ) -> Vec<Vec<T>> {
        let seq = self.next_coll();
        let p = self.num_nodes();
        let me = self.node_id();

        // Binomial gather of (node, items) pairs onto node 0 …
        let mut acc: Vec<(u64, Vec<T>)> = vec![(me as u64, items)];
        let mut mask = 1usize;
        let mut have_root = true;
        while mask < p {
            if me & mask == 0 {
                let peer = me | mask;
                if peer < p {
                    let mut other: Vec<(u64, Vec<T>)> =
                        self.recv_coll(peer, Self::coll_tag(seq, 0));
                    acc.append(&mut other);
                }
            } else {
                self.send_coll(me & !mask, Self::coll_tag(seq, 0), acc);
                acc = Vec::new();
                have_root = false;
                break;
            }
            mask <<= 1;
        }
        // … then broadcast the assembled table.
        let table = if have_root {
            acc.sort_by_key(|(n, _)| *n);
            Some(acc.into_iter().map(|(_, v)| v).collect::<Vec<Vec<T>>>())
        } else {
            None
        };
        self.bcast_nodes(0, table)
    }

    /// Variable-size all-to-all among nodes: `sends[d]` goes to node `d`;
    /// slot `s` of the result holds what node `s` sent here. Pairwise
    /// exchange.
    pub fn alltoallv_nodes<T: Any + Send + WireSize>(
        &mut self,
        mut sends: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.num_nodes();
        assert_eq!(sends.len(), p, "alltoallv_nodes needs one list per node");
        let seq = self.next_coll();
        let me = self.node_id();

        let mut recvs: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        recvs[me] = std::mem::take(&mut sends[me]);
        for s in 1..p {
            let dst = (me + s) % p;
            let src = (me + p - s) % p;
            let tag = Self::coll_tag(seq, s as u32);
            let out = std::mem::take(&mut sends[dst]);
            self.send_coll(dst, tag, out);
            recvs[src] = self.recv_coll(src, tag);
        }
        recvs
    }

    /// Assemble a full copy of a global shared array on every node
    /// (verification / result-extraction helper, not a model construct).
    pub fn gather_global<T: crate::elem::Elem>(
        &mut self,
        g: &crate::shared::GlobalShared<T>,
    ) -> Vec<T> {
        let dist = self.dist_of(g);
        let local: Vec<T> = self.with_local(g, |s| s.to_vec());
        let parts = self.allgatherv_nodes(local);
        let mut out = vec![T::default(); g.len()];
        for (node, part) in parts.into_iter().enumerate() {
            for (off, v) in part.into_iter().enumerate() {
                out[dist.global_index(node, off)] = v;
            }
        }
        out
    }
}
