//! Element types storable in PPM shared variables.

use ppm_simnet::WireSize;

/// A value that can live in a PPM shared array.
///
/// Elements are plain copyable data: they cross node boundaries inside read
/// responses and write bundles, and arrays are allocated zero-initialized
/// (via `Default`), matching the paper's C-style shared arrays. `Sync` is
/// required because array partitions are read concurrently by the
/// host-parallel VP scheduler (see `exec.rs`). [`ByteHash`] feeds the
/// conformance checker's value fingerprints.
pub trait Elem:
    Copy + Send + Sync + Default + WireSize + ByteHash + std::fmt::Debug + 'static
{
}

impl<T> Elem for T where
    T: Copy + Send + Sync + Default + WireSize + ByteHash + std::fmt::Debug + 'static
{
}

/// Streaming FNV-1a accumulator for element fingerprints.
///
/// The conformance checker distinguishes conflicting from idempotent
/// concurrent writes by fingerprint (`Elem` has no `PartialEq` bound). The
/// fingerprint used to hash the `Debug` rendering, which allocated a format
/// string per recorded write *and* collapsed values with identical
/// renderings — every `f64` NaN payload prints `NaN`, so distinct-NaN
/// conflicts went unseen. Hashing the value's identity bytes fixes both.
#[derive(Debug, Clone, Copy)]
pub struct ByteHasher {
    state: u64,
}

impl ByteHasher {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh accumulator at the FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        ByteHasher {
            state: Self::FNV_OFFSET,
        }
    }

    /// Absorb `bytes` into the running hash.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// The accumulated hash.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ByteHasher {
    fn default() -> Self {
        ByteHasher::new()
    }
}

/// Byte-level identity hash of an element value.
///
/// Implementations must feed a byte sequence that distinguishes any two
/// values a program could tell apart: floats hash their IEEE bit patterns
/// (`to_bits`), so distinct NaN payloads and `0.0` vs `-0.0` fingerprint
/// differently; integers hash their little-endian bytes. Composite
/// elements hash their fields in order. Do **not** hash raw struct memory —
/// padding bytes are undefined; hash field by field (see the app element
/// types for examples).
pub trait ByteHash {
    /// Feed this value's identity bytes to the hasher.
    fn hash_bytes(&self, h: &mut ByteHasher);
}

macro_rules! int_byte_hash {
    ($($t:ty),* $(,)?) => {
        $(impl ByteHash for $t {
            #[inline]
            fn hash_bytes(&self, h: &mut ByteHasher) {
                h.write(&self.to_le_bytes());
            }
        })*
    };
}

int_byte_hash!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128, usize, isize);

impl ByteHash for f32 {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        h.write(&self.to_bits().to_le_bytes());
    }
}

impl ByteHash for f64 {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        h.write(&self.to_bits().to_le_bytes());
    }
}

impl ByteHash for bool {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        h.write(&[*self as u8]);
    }
}

impl ByteHash for () {
    #[inline]
    fn hash_bytes(&self, _h: &mut ByteHasher) {}
}

impl ByteHash for char {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        h.write(&(*self as u32).to_le_bytes());
    }
}

macro_rules! tuple_byte_hash {
    ($($name:ident)+) => {
        impl<$($name: ByteHash),+> ByteHash for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn hash_bytes(&self, h: &mut ByteHasher) {
                let ($($name,)+) = self;
                $($name.hash_bytes(h);)+
            }
        }
    };
}

tuple_byte_hash!(A);
tuple_byte_hash!(A B);
tuple_byte_hash!(A B C);
tuple_byte_hash!(A B C D);

impl<T: ByteHash, const N: usize> ByteHash for [T; N] {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        for v in self {
            v.hash_bytes(h);
        }
    }
}

impl<T: ByteHash> ByteHash for Option<T> {
    #[inline]
    fn hash_bytes(&self, h: &mut ByteHasher) {
        match self {
            // Tag byte keeps None distinct from Some(default).
            None => h.write(&[0]),
            Some(v) => {
                h.write(&[1]);
                v.hash_bytes(h);
            }
        }
    }
}

/// Combining operators for `accumulate` writes.
///
/// Accumulating writes from many VPs to the same element are merged by the
/// runtime at the owner, so e.g. a global sum costs one bundle entry per
/// node. All operators are associative and commutative; the runtime
/// nevertheless applies them in a canonical deterministic order (ascending
/// contributing-VP rank; see `state.rs`) so floating-point results are
/// bit-reproducible, whatever the data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumOp {
    /// Addition.
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Elements that support combining writes.
pub trait AccumElem: Elem + PartialOrd + std::ops::Add<Output = Self> {
    /// Apply `op` to combine two values.
    #[inline]
    fn combine(op: AccumOp, a: Self, b: Self) -> Self {
        match op {
            AccumOp::Add => a + b,
            AccumOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            AccumOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        }
    }
}

impl AccumElem for f64 {}
impl AccumElem for f32 {}
impl AccumElem for u64 {}
impl AccumElem for i64 {}
impl AccumElem for u32 {}
impl AccumElem for i32 {}
impl AccumElem for usize {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_ops() {
        assert_eq!(f64::combine(AccumOp::Add, 1.5, 2.0), 3.5);
        assert_eq!(u64::combine(AccumOp::Min, 7, 3), 3);
        assert_eq!(i64::combine(AccumOp::Max, -2, -9), -2);
        assert_eq!(
            f64::combine(AccumOp::Min, f64::NAN, 1.0).to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn tuples_are_elems() {
        fn takes_elem<T: Elem>(_: T) {}
        takes_elem((1.0f64, 2u64));
        takes_elem([0.0f64; 4]);
    }

    fn fp<T: ByteHash>(v: &T) -> u64 {
        let mut h = ByteHasher::new();
        v.hash_bytes(&mut h);
        h.finish()
    }

    #[test]
    fn byte_hash_distinguishes_bit_patterns() {
        assert_eq!(fp(&1.5f64), fp(&1.5f64));
        assert_ne!(fp(&1.5f64), fp(&2.5f64));
        assert_ne!(fp(&0.0f64), fp(&-0.0f64), "signed zeros differ in bits");
        assert_ne!(fp(&(1u64, 2u64)), fp(&(2u64, 1u64)));
        assert_ne!(fp(&[1.0f64, 0.0]), fp(&[0.0f64, 1.0]));
        assert_ne!(fp(&Some(0u64)), fp(&None::<u64>));
    }

    /// The collision class the Debug-rendering fingerprint had: every f64
    /// NaN renders as "NaN", so distinct payloads hashed identically and
    /// the write-write conflict checker could miss a real conflict.
    #[test]
    fn byte_hash_distinguishes_nan_payloads() {
        let quiet = f64::NAN;
        let payload = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(quiet.is_nan() && payload.is_nan());
        assert_eq!(format!("{quiet:?}"), format!("{payload:?}"));
        assert_ne!(fp(&quiet), fp(&payload));
        assert_ne!(fp(&f32::NAN), fp(&f32::from_bits(f32::NAN.to_bits() ^ 1)));
    }
}
