//! Element types storable in PPM shared variables.

use ppm_simnet::WireSize;

/// A value that can live in a PPM shared array.
///
/// Elements are plain copyable data: they cross node boundaries inside read
/// responses and write bundles, and arrays are allocated zero-initialized
/// (via `Default`), matching the paper's C-style shared arrays. `Sync` is
/// required because array partitions are read concurrently by the
/// host-parallel VP scheduler (see `exec.rs`).
pub trait Elem: Copy + Send + Sync + Default + WireSize + std::fmt::Debug + 'static {}

impl<T> Elem for T where T: Copy + Send + Sync + Default + WireSize + std::fmt::Debug + 'static {}

/// Combining operators for `accumulate` writes.
///
/// Accumulating writes from many VPs to the same element are merged by the
/// runtime at the owner, so e.g. a global sum costs one bundle entry per
/// node. All operators are associative and commutative; the runtime
/// nevertheless applies them in a canonical deterministic order (ascending
/// contributing-VP rank; see `state.rs`) so floating-point results are
/// bit-reproducible, whatever the data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumOp {
    /// Addition.
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Elements that support combining writes.
pub trait AccumElem: Elem + PartialOrd + std::ops::Add<Output = Self> {
    /// Apply `op` to combine two values.
    #[inline]
    fn combine(op: AccumOp, a: Self, b: Self) -> Self {
        match op {
            AccumOp::Add => a + b,
            AccumOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            AccumOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        }
    }
}

impl AccumElem for f64 {}
impl AccumElem for f32 {}
impl AccumElem for u64 {}
impl AccumElem for i64 {}
impl AccumElem for u32 {}
impl AccumElem for i32 {}
impl AccumElem for usize {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_ops() {
        assert_eq!(f64::combine(AccumOp::Add, 1.5, 2.0), 3.5);
        assert_eq!(u64::combine(AccumOp::Min, 7, 3), 3);
        assert_eq!(i64::combine(AccumOp::Max, -2, -9), -2);
        assert_eq!(
            f64::combine(AccumOp::Min, f64::NAN, 1.0).to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn tuples_are_elems() {
        fn takes_elem<T: Elem>(_: T) {}
        takes_elem((1.0f64, 2u64));
        takes_elem([0.0f64; 4]);
    }
}
