//! Dependency-free property-test harness (std-only policy: no `proptest`).
//!
//! The workspace's property suites need three things from a harness:
//! *seeded case generation* (hermetic: the same binary always tests the
//! same cases), *readable failures* (the failing input printed with the
//! seed that reproduces it), and *shrink-on-failure* (a greedy walk toward
//! a minimal failing input). This module provides exactly those, in ~200
//! lines of std.
//!
//! ## Usage
//!
//! ```
//! use ppm_core::testkit::{forall, Gen};
//!
//! #[derive(Debug, Clone)]
//! struct Case { xs: Vec<u64> }
//!
//! impl ppm_core::testkit::Shrink for Case {
//!     fn shrink(&self) -> Vec<Self> {
//!         self.xs.shrink().into_iter().map(|xs| Case { xs }).collect()
//!     }
//! }
//!
//! forall("sum_is_monotone", 32, |g: &mut Gen| Case {
//!     xs: g.vec(0..20, |g| g.u64_in(0..1000)),
//! }, |c| {
//!     let s: u64 = c.xs.iter().sum();
//!     if s >= c.xs.iter().copied().max().unwrap_or(0) {
//!         Ok(())
//!     } else {
//!         Err(format!("sum {s} below max"))
//!     }
//! });
//! ```
//!
//! A failing property panics with the minimal (shrunken) input, the
//! original input, the case number, and the seed. Set `TESTKIT_SEED` /
//! `TESTKIT_CASES` to replay a particular seed or widen the sweep; the
//! default seed is a fixed constant so CI is deterministic.
//!
//! Shrinking is type-driven through [`Shrink`]: integers step toward zero,
//! vectors drop chunks and elements then shrink elements, tuples shrink one
//! component at a time. A shrink candidate may fall outside the range the
//! generator drew from — properties must treat out-of-contract inputs as
//! vacuously passing (return `Ok(())`), which simply stops the shrink walk
//! in that direction.

use std::fmt::Debug;
use std::ops::Range;

/// Result of one property evaluation.
pub type PropResult = Result<(), String>;

/// Default number of cases per property (override with `TESTKIT_CASES`).
pub const DEFAULT_CASES: u32 = 32;
/// Default base seed (override with `TESTKIT_SEED`).
pub const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded generator handed to case builders.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator with an explicit seed (equal seeds, equal streams).
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(1);
        splitmix64(self.state)
    }

    /// Uniform in `[range.start, range.end)`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = range.end - range.start;
        range.start + (((self.u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform usize in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform u32 in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform i64 in `[range.start, range.end)`.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = (range.end - range.start) as u64;
        range.start + (((self.u64() as u128 * span as u128) >> 64) as i64)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[range.start, range.end)`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.f64_unit()
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = if len.start == len.end {
            len.start
        } else {
            self.usize_in(len)
        };
        (0..n).map(|_| f(self)).collect()
    }
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

/// Types that can propose smaller versions of themselves. Candidates should
/// be strictly "simpler" by some well-founded measure, or shrinking may
/// loop; the harness also caps total shrink steps as a backstop.
pub trait Shrink: Sized {
    /// Candidate replacements, simplest first. Default: no candidates.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut c = Vec::new();
                if v > 0 {
                    c.push(0);
                    if v / 2 > 0 {
                        c.push(v / 2);
                    }
                    c.push(v - 1);
                }
                c.dedup();
                c
            }
        }
    )*};
}
shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut c = Vec::new();
                if v != 0 {
                    c.push(0);
                    if v / 2 != 0 {
                        c.push(v / 2);
                    }
                    c.push(v - v.signum());
                }
                c.dedup();
                c
            }
        }
    )*};
}
shrink_signed!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// Floats don't shrink (candidate generation around NaN/subnormals buys
// little for these suites).
impl Shrink for f64 {}
impl Shrink for f32 {}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut c: Vec<Vec<T>> = Vec::new();
        let n = self.len();
        if n == 0 {
            return c;
        }
        c.push(Vec::new());
        if n > 1 {
            c.push(self[..n / 2].to_vec());
            c.push(self[n / 2..].to_vec());
        }
        // Drop single elements (bounded so huge vectors stay cheap).
        for i in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(i);
            c.push(v);
        }
        // Shrink single elements in place (first candidate only).
        for i in 0..n.min(8) {
            if let Some(smaller) = self[i].shrink().into_iter().next() {
                let mut v = self.clone();
                v[i] = smaller;
                c.push(v);
            }
        }
        c
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut c = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        c.push(t);
                    }
                )+
                c
            }
        }
    )*};
}
shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Maximum shrink candidates evaluated per failure (backstop against
/// pathological `Shrink` impls).
const MAX_SHRINK_STEPS: usize = 2000;

/// Check `prop` on `cases` generated inputs; panics on the first failure
/// with a shrunken minimal input and the reproducing seed.
///
/// `cases` is a default; `TESTKIT_CASES` overrides it, and `TESTKIT_SEED`
/// overrides the base seed ([`DEFAULT_SEED`]).
pub fn forall<T, G, P>(name: &str, cases: u32, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> PropResult,
{
    let seed = env_u64("TESTKIT_SEED").unwrap_or(DEFAULT_SEED);
    let cases = env_u64("TESTKIT_CASES").map(|c| c as u32).unwrap_or(cases);
    for case in 0..cases {
        let mut g = Gen::new(seed ^ splitmix64(case as u64 + 1));
        let input = gen(&mut g);
        if let Err(err) = prop(&input) {
            let (minimal, min_err, steps) = shrink_failure(&input, err, &prop);
            panic!(
                "property `{name}` failed (case {case}/{cases}, seed {seed:#x})\n\
                 minimal input (after {steps} shrink steps): {minimal:#?}\n\
                 error: {min_err}\n\
                 original input: {input:#?}\n\
                 replay with TESTKIT_SEED={seed}"
            );
        }
    }
}

/// Greedy shrink: repeatedly move to the first failing candidate.
fn shrink_failure<T, P>(input: &T, err: String, prop: &P) -> (T, String, usize)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> PropResult,
{
    let mut cur = input.clone();
    let mut cur_err = err;
    let mut budget = MAX_SHRINK_STEPS;
    let mut steps = 0;
    'outer: while budget > 0 {
        for cand in cur.shrink() {
            budget -= 1;
            // A candidate that *panics* (rather than returning Err) would
            // abort the whole shrink; properties should return Err for
            // violations and Ok for out-of-contract inputs.
            if let Err(e) = prop(&cand) {
                cur = cand;
                cur_err = e;
                steps += 1;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    (cur, cur_err, steps)
}

/// Convenience assertion macro for property bodies: like `assert_eq!` but
/// returns a [`PropResult`] error instead of panicking, so shrinking works.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Like `assert!` but returns a [`PropResult`] error instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $msg:expr)?) => {{
        if !$cond {
            #[allow(unused_mut, unused_assignments)]
            let mut detail = String::new();
            $(detail = format!(": {}", $msg);)?
            return Err(format!(
                "assertion failed: `{}`{} ({}:{})",
                stringify!($cond),
                detail,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            let mut g = Gen::new(12345);
            (
                g.u64(),
                g.usize_in(3..17),
                g.i64_in(-50..50),
                g.vec(0..10, |g| g.bool()),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(7);
        for _ in 0..2000 {
            assert!((3..17).contains(&g.usize_in(3..17)));
            assert!((-50..50).contains(&g.i64_in(-50..50)));
            let f = g.f64_in(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn passing_property_completes() {
        forall("tautology", 16, |g| g.u64_in(0..100), |_| Ok(()));
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        let seen = std::cell::RefCell::new(None::<Vec<u64>>);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            forall(
                "has_big_element",
                32,
                |g| g.vec(0..20, |g| g.u64_in(0..1000)),
                |v: &Vec<u64>| {
                    if v.iter().any(|&x| x >= 500) {
                        *seen.borrow_mut() = Some(v.clone());
                        Err("contains an element >= 500".into())
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        assert!(result.is_err(), "property must fail");
        // Greedy shrinking lands on the canonical minimal witness.
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input"), "panic message: {msg}");
        assert!(msg.contains("500"), "panic message: {msg}");
    }

    #[test]
    fn shrink_candidates_are_smaller() {
        assert!(10u64.shrink().contains(&0));
        assert!((-10i64).shrink().contains(&0));
        assert!(0u64.shrink().is_empty());
        let v = vec![4u64, 9, 2];
        assert!(v.shrink().iter().all(|c| c.len() < v.len() || c != &v));
    }

    #[test]
    fn prop_macros_return_errors() {
        fn p(x: u64) -> PropResult {
            prop_assert!(x < 10, "too big");
            prop_assert_eq!(x % 2, 0);
            Ok(())
        }
        assert!(p(2).is_ok());
        assert!(p(3).is_err());
        assert!(p(11).is_err());
    }
}
