//! PPM runtime configuration.

use ppm_simnet::{FaultConfig, MachineConfig, SimTime};

/// Runtime knobs layered on top of the machine description.
///
/// The overheads here are the paper's "runtime library overhead" (§4.5):
/// every shared-variable access goes through the PPM runtime and pays a
/// translation/handler cost, which dominates at small node counts and fades
/// as communication grows — the mechanism behind Figure 1's crossover.
/// `overlap` and `bundling` correspond to the §3.3 optimizations
/// ("automatic overlap of computation and communication", "bundling up
/// fine-grained remote shared data accesses"); the ablation benches switch
/// them off.
#[derive(Debug, Clone, Copy)]
pub struct PpmConfig {
    /// Machine shape and base cost model.
    pub machine: MachineConfig,
    /// Requester-side cost per global-shared element access.
    pub sv_overhead: SimTime,
    /// Cost per node-shared element access (physical shared memory path).
    pub node_sv_overhead: SimTime,
    /// Owner-side cost per remote element served (read) or applied (write).
    pub service_overhead: SimTime,
    /// Cost of a node-level phase barrier (cores synchronizing in shared
    /// memory).
    pub node_barrier: SimTime,
    /// Modeled wire bytes per read-request entry (array id + index + slot,
    /// delta-compressed).
    pub req_entry_bytes: usize,
    /// Modeled wire bytes of bundle framing.
    pub bundle_header_bytes: usize,
    /// Overlap communication gap time with computation (§3.3). On by
    /// default.
    pub overlap: bool,
    /// Bundle fine-grained remote accesses into one message per
    /// (destination, wave) (§3.3). On by default; switching it off charges
    /// every element as its own message, the "naive runtime" ablation.
    pub bundling: bool,
    /// Run the dynamic phase-semantics conformance checker
    /// ([`crate::PhaseViolation`]): record every shared access per phase and
    /// report write-write conflicts, read-own-write hazards, and phase
    /// structure errors at each barrier. On by default in debug builds —
    /// i.e. under `cargo test` — and off in release builds; override with
    /// [`Self::with_checker`].
    pub checker: bool,
    /// Force the reliable-transport sublayer on even without faults
    /// (overhead measurement). Reliability is always on when
    /// `machine.faults` is enabled; see [`Self::reliability_enabled`].
    pub reliable: bool,
    /// Reliability: initial retransmission timeout (simulated time).
    pub rto: SimTime,
    /// Reliability: cap of the exponential retransmission backoff.
    pub rto_max: SimTime,
    /// Reliability: receivers send one cumulative ack per this many
    /// envelopes on a link.
    pub ack_every: u64,
    /// Modeled wire bytes of a cumulative ack message.
    pub ack_bytes: usize,
    /// Crash recovery: modeled reboot time charged when a node recovers
    /// from a seeded crash at a phase boundary.
    pub crash_reboot: SimTime,
    /// Host worker threads polling VPs inside each simulated node. `0`
    /// (the default) resolves at `ppm_do` time: the `PPM_HOST_THREADS`
    /// environment variable if set, else
    /// `min(host parallelism, cores_per_node)`. Results are bit-identical
    /// at any value — the scheduler merges VP effects in ascending rank
    /// order (see DESIGN.md §12).
    pub host_threads: usize,
    /// Phase-coherent remote-read cache (DESIGN.md §13): remote values
    /// from response bundles and owner-pushed refreshes are kept per node
    /// and consulted before queueing any remote read; invalidated at phase
    /// end for every array that took writes. On by default; `PPM_READ_CACHE=0`
    /// disables it for ablations.
    pub read_cache: bool,
    /// Wake-on-arrival wave pipelining (DESIGN.md §13): VPs whose remote
    /// reads are fully satisfied resume (ascending rank) while slower
    /// destinations of the same wave are still in flight, and the compute
    /// merged during that window hides response latency. On by default;
    /// `PPM_WAVE_PIPELINE=0` disables it for ablations.
    pub wave_pipelining: bool,
    /// Trace-guided adaptive repartitioning (DESIGN.md §14): at each global
    /// phase boundary the runtime may recut the weighted partitions of
    /// arrays allocated with [`crate::NodeCtx::alloc_global_balanced`],
    /// migrating elements toward less-loaded nodes. The decision is a pure
    /// function of replicated simulated-time load counters, so results stay
    /// bit-identical across host thread counts and fault seeds. Off by
    /// default; `PPM_ADAPTIVE=1` (or [`Self::with_adaptive_balance`])
    /// enables it.
    pub adaptive_balance: bool,
    /// Buddy snapshot replication for fail-stop tolerance (DESIGN.md §15):
    /// every node streams its super-step snapshot to a buddy (rank+1 mod
    /// N) as delta frames piggybacked on end-of-phase write bundles, so a
    /// permanently dead node's partitions can fail over to the buddy and
    /// the job finish bit-identical. Off by default (the fault-free fast
    /// path stays byte-identical); `PPM_REPLICATION=1` (or
    /// [`Self::with_replication`]) enables it.
    pub replication: bool,
    /// Sparse end-of-phase token exchange (DESIGN.md §17): before the
    /// write exchange every node allgathers its write-destination set on
    /// an O(log N) dissemination round, then ships only non-empty
    /// [`K_WRITE`]/[`K_MIGRATE`] bundles and blocks on exactly the senders
    /// that announced one — retiring the O(N²) empty-token all-to-all.
    /// Results, makespans, and traces are bit-identical to the legacy
    /// protocol; only the message counters shrink. On by default;
    /// `PPM_SPARSE_TOKENS=0` (or [`Self::with_sparse_tokens`]) restores
    /// the all-to-all for ablations.
    ///
    /// [`K_WRITE`]: crate::msgs::K_WRITE
    /// [`K_MIGRATE`]: crate::msgs::K_MIGRATE
    pub sparse_tokens: bool,
    /// Failure detector: simulated time a survivor spends retransmitting
    /// into a dead peer's silence before suspecting it (charged once per
    /// detected death; the suspicion is confirmed on the next clock
    /// barrier).
    pub suspect_timeout: SimTime,
    /// Pseudo-streaming tile budget in bytes per node (DESIGN.md §18):
    /// `0` (the default) keeps every partition fully resident; a non-zero
    /// budget splits each global-array partition into fixed-size tiles and
    /// bounds how many stay resident at once, spilling cold tiles to the
    /// modeled backing store and refilling them on first touch. Results,
    /// counters, and makespans are bit-identical at every budget — only
    /// the `bytes_resident` peak and the `tile_spills`/`tile_refills`
    /// counters move. `PPM_TILE_BUDGET` accepts a byte count with an
    /// optional `k`/`m`/`g` suffix.
    pub tile_budget: u64,
}

impl PpmConfig {
    /// Default runtime constants on a given machine (see DESIGN.md §6).
    pub fn new(machine: MachineConfig) -> Self {
        PpmConfig {
            machine,
            sv_overhead: SimTime::from_ns(7),
            node_sv_overhead: SimTime::from_ns_f64(2.5),
            service_overhead: SimTime::from_ns(5),
            node_barrier: SimTime::from_ns(400),
            req_entry_bytes: 12,
            bundle_header_bytes: 16,
            overlap: true,
            bundling: true,
            checker: cfg!(debug_assertions),
            reliable: false,
            rto: SimTime::from_us(25),
            rto_max: SimTime::from_us(200),
            ack_every: 4,
            ack_bytes: 12,
            crash_reboot: SimTime::from_ms(1),
            host_threads: 0,
            read_cache: env_flag("PPM_READ_CACHE", true),
            wave_pipelining: env_flag("PPM_WAVE_PIPELINE", true),
            adaptive_balance: env_flag("PPM_ADAPTIVE", false),
            replication: env_flag("PPM_REPLICATION", false),
            sparse_tokens: env_flag("PPM_SPARSE_TOKENS", true),
            suspect_timeout: SimTime::from_us(400),
            tile_budget: env_bytes("PPM_TILE_BUDGET", 0),
        }
    }

    /// The paper's platform shape: `nodes` quad-core nodes.
    pub fn franklin(nodes: u32) -> Self {
        PpmConfig::new(MachineConfig::franklin(nodes))
    }

    /// Disable communication/computation overlap (ablation).
    pub fn without_overlap(mut self) -> Self {
        self.overlap = false;
        self
    }

    /// Disable request bundling (ablation).
    pub fn without_bundling(mut self) -> Self {
        self.bundling = false;
        self
    }

    /// Enable or disable the phase-semantics conformance checker.
    pub fn with_checker(mut self, on: bool) -> Self {
        self.checker = on;
        self
    }

    /// Force the reliable-transport sublayer on or off regardless of the
    /// fault configuration (overhead measurement / ablation). Faults still
    /// require reliability: enabling faults overrides `false` here.
    pub fn with_reliability(mut self, on: bool) -> Self {
        self.reliable = on;
        self
    }

    /// Inject seeded faults (convenience: sets `machine.faults`, which
    /// also switches the reliable transport on).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.machine.faults = faults;
        self
    }

    /// Enable or disable the phase-coherent remote-read cache (ablation;
    /// overrides the `PPM_READ_CACHE` environment default).
    pub fn with_read_cache(mut self, on: bool) -> Self {
        self.read_cache = on;
        self
    }

    /// Enable or disable wake-on-arrival wave pipelining (ablation;
    /// overrides the `PPM_WAVE_PIPELINE` environment default).
    pub fn with_wave_pipelining(mut self, on: bool) -> Self {
        self.wave_pipelining = on;
        self
    }

    /// Enable or disable trace-guided adaptive repartitioning (overrides
    /// the `PPM_ADAPTIVE` environment default, which is off).
    pub fn with_adaptive_balance(mut self, on: bool) -> Self {
        self.adaptive_balance = on;
        self
    }

    /// Enable or disable buddy snapshot replication for fail-stop
    /// tolerance (overrides the `PPM_REPLICATION` environment default,
    /// which is off).
    pub fn with_replication(mut self, on: bool) -> Self {
        self.replication = on;
        self
    }

    /// Enable or disable the sparse end-of-phase token exchange (ablation;
    /// overrides the `PPM_SPARSE_TOKENS` environment default, which is on).
    pub fn with_sparse_tokens(mut self, on: bool) -> Self {
        self.sparse_tokens = on;
        self
    }

    /// Set the pseudo-streaming tile budget in bytes per node (`0` = off:
    /// partitions stay fully resident). Overrides the `PPM_TILE_BUDGET`
    /// environment default. Bit-identical at every value (DESIGN.md §18).
    pub fn with_tile_budget(mut self, bytes: u64) -> Self {
        self.tile_budget = bytes;
        self
    }

    /// Pin the number of host worker threads used to poll VPs (`0` =
    /// auto: `PPM_HOST_THREADS`, else `min(host cores, cores_per_node)`).
    /// Deterministic at any value; this knob exists so tests can compare
    /// thread counts without racing on the process environment.
    pub fn with_host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Whether the reliable-transport sublayer is active: explicitly
    /// requested, or required because the machine injects faults.
    #[inline]
    pub fn reliability_enabled(&self) -> bool {
        self.reliable || self.machine.faults.enabled()
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.machine.nodes as usize
    }

    /// Cores per node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.machine.cores_per_node as usize
    }
}

/// `VAR=0|false|off` → false, `VAR=<anything else>` → true, unset →
/// `default`. Read once at config construction so a run's behavior is
/// fixed by its `PpmConfig` value.
fn env_flag(var: &str, default: bool) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.as_str(), "0" | "false" | "off"),
        Err(_) => default,
    }
}

/// Byte count with an optional `k`/`m`/`g` (or `K`/`M`/`G`) suffix —
/// powers of 1024. Unset or unparsable → `default`. Read once at config
/// construction like [`env_flag`].
fn env_bytes(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(v) => parse_bytes(&v).unwrap_or(default),
        Err(_) => default,
    }
}

fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    num.trim().parse::<u64>().ok().map(|n| n << shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_optimizations() {
        let c = PpmConfig::franklin(4);
        assert!(c.overlap);
        assert!(c.bundling);
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.cores_per_node(), 4);
    }

    #[test]
    fn ablation_builders() {
        let c = PpmConfig::franklin(2).without_overlap().without_bundling();
        assert!(!c.overlap);
        assert!(!c.bundling);
    }

    #[test]
    fn cache_and_pipelining_default_on_and_toggle() {
        // Builder toggles are absolute: they win over any env default.
        let c = PpmConfig::franklin(2)
            .with_read_cache(true)
            .with_wave_pipelining(true);
        assert!(c.read_cache);
        assert!(c.wave_pipelining);
        let off = c.with_read_cache(false).with_wave_pipelining(false);
        assert!(!off.read_cache);
        assert!(!off.wave_pipelining);
        assert!(off.with_read_cache(true).read_cache);
        assert!(off.with_wave_pipelining(true).wave_pipelining);
    }

    #[test]
    fn adaptive_balance_defaults_off_and_toggles() {
        let c = PpmConfig::franklin(2);
        assert!(!c.adaptive_balance, "adaptive repartitioning is opt-in");
        assert!(c.with_adaptive_balance(true).adaptive_balance);
        assert!(
            !c.with_adaptive_balance(true)
                .with_adaptive_balance(false)
                .adaptive_balance
        );
    }

    #[test]
    fn replication_defaults_off_and_toggles() {
        let c = PpmConfig::franklin(2);
        assert!(!c.replication, "snapshot replication is opt-in");
        assert!(c.with_replication(true).replication);
        assert!(!c.with_replication(true).with_replication(false).replication);
        assert!(c.suspect_timeout > SimTime::ZERO);
    }

    #[test]
    fn sparse_tokens_default_on_and_toggles() {
        let c = PpmConfig::franklin(2);
        assert!(c.sparse_tokens, "sparse token exchange is default-on");
        assert!(!c.with_sparse_tokens(false).sparse_tokens);
        assert!(
            c.with_sparse_tokens(false)
                .with_sparse_tokens(true)
                .sparse_tokens
        );
    }

    #[test]
    fn tile_budget_defaults_off_and_toggles() {
        let c = PpmConfig::franklin(2);
        assert_eq!(c.tile_budget, 0, "streaming is opt-in");
        assert_eq!(c.with_tile_budget(1 << 20).tile_budget, 1 << 20);
        assert_eq!(
            c.with_tile_budget(1 << 20).with_tile_budget(0).tile_budget,
            0
        );
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("3M"), Some(3 << 20));
        assert_eq!(parse_bytes(" 2g "), Some(2 << 30));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(env_bytes("PPM_SURELY_UNSET_BYTES_XYZ", 7), 7);
    }

    #[test]
    fn env_flag_parses_common_spellings() {
        // Exercise the parser directly (setting process env in tests races
        // with parallel test threads).
        assert!(env_flag("PPM_SURELY_UNSET_FLAG_XYZ", true));
        assert!(!env_flag("PPM_SURELY_UNSET_FLAG_XYZ", false));
    }

    #[test]
    fn reliability_off_by_default_and_implied_by_faults() {
        let c = PpmConfig::franklin(2);
        assert!(!c.reliability_enabled());
        assert!(c.with_reliability(true).reliability_enabled());
        let f = c.with_faults(FaultConfig::seeded(7, 0.1, 0.0, 0.0));
        assert!(f.reliability_enabled(), "faults imply reliability");
        assert!(f.machine.faults.enabled());
    }

    #[test]
    fn checker_defaults_on_in_tests_and_toggles() {
        let c = PpmConfig::franklin(2);
        assert_eq!(c.checker, cfg!(debug_assertions));
        assert!(c.with_checker(true).checker);
        assert!(!c.with_checker(true).with_checker(false).checker);
    }
}
