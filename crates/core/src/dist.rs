//! Data distribution of global shared arrays over nodes.
//!
//! The paper's runtime performs "automatic data distribution and locality
//! management" (§3). The default (and the one all apps use) is a block
//! distribution; a cyclic distribution is provided for load-spreading
//! irregular tables.

/// How a global array's elements map to owner nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Contiguous blocks of `ceil(len/nodes)` elements per node.
    Block,
    /// Element `i` lives on node `i % nodes`.
    Cyclic,
}

/// A concrete distribution: layout + array length + node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dist {
    /// Distribution layout.
    pub layout: Layout,
    /// Global array length.
    pub len: usize,
    /// Number of owner nodes.
    pub nodes: usize,
}

impl Dist {
    /// Block distribution of `len` elements over `nodes` nodes.
    pub fn block(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Block,
            len,
            nodes,
        }
    }

    /// Cyclic distribution of `len` elements over `nodes` nodes.
    pub fn cyclic(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Cyclic,
            len,
            nodes,
        }
    }

    /// Elements per block for the block layout.
    #[inline]
    fn block_size(&self) -> usize {
        self.len.div_ceil(self.nodes).max(1)
    }

    /// Node owning global index `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match self.layout {
            Layout::Block => (i / self.block_size()).min(self.nodes - 1),
            Layout::Cyclic => i % self.nodes,
        }
    }

    /// Offset of global index `i` within its owner's local storage.
    #[inline]
    pub fn local_offset(&self, i: usize) -> usize {
        match self.layout {
            Layout::Block => i - self.owner(i) * self.block_size(),
            Layout::Cyclic => i / self.nodes,
        }
    }

    /// Number of elements stored on `node`.
    pub fn local_len(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes);
        match self.layout {
            Layout::Block => {
                let bs = self.block_size();
                // `node * bs` can exceed `usize::MAX` for near-`usize::MAX`
                // lengths on high nodes; saturating keeps the partition math
                // total (any saturated product is >= len, so the sub clamps
                // to 0 either way).
                self.len.saturating_sub(node.saturating_mul(bs)).min(bs)
            }
            Layout::Cyclic => {
                let full = self.len / self.nodes;
                full + usize::from(node < self.len % self.nodes)
            }
        }
    }

    /// Global index of local offset `off` on `node`.
    ///
    /// Panics (rather than wrapping) if the product/sum overflows `usize`:
    /// a wrapped index would silently alias another element.
    #[inline]
    pub fn global_index(&self, node: usize, off: usize) -> usize {
        debug_assert!(off < self.local_len(node));
        match self.layout {
            Layout::Block => node
                .checked_mul(self.block_size())
                .and_then(|base| base.checked_add(off))
                .expect("global index overflows usize (block layout)"),
            Layout::Cyclic => off
                .checked_mul(self.nodes)
                .and_then(|base| base.checked_add(node))
                .expect("global index overflows usize (cyclic layout)"),
        }
    }

    /// For the block layout: the contiguous global range owned by `node`.
    pub fn block_range(&self, node: usize) -> std::ops::Range<usize> {
        assert_eq!(self.layout, Layout::Block, "block_range needs Block layout");
        let bs = self.block_size();
        // Saturating products: `(node + 1) * bs` overflows for lengths near
        // `usize::MAX`; both bounds clamp to `len`, giving the correct
        // (possibly empty) tail range instead of a wrapped one.
        let start = node.saturating_mul(bs).min(self.len);
        let end = node.saturating_add(1).saturating_mul(bs).min(self.len);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every distribution must be a bijection between global indices and
    /// (node, offset) pairs, with offsets dense per node.
    fn check_bijection(d: Dist) {
        let mut per_node = vec![0usize; d.nodes];
        for i in 0..d.len {
            let n = d.owner(i);
            let off = d.local_offset(i);
            assert!(n < d.nodes);
            assert!(off < d.local_len(n), "i={i} n={n} off={off}");
            assert_eq!(d.global_index(n, off), i);
            per_node[n] += 1;
        }
        for (n, &c) in per_node.iter().enumerate() {
            assert_eq!(c, d.local_len(n), "node {n}");
        }
        assert_eq!(per_node.iter().sum::<usize>(), d.len);
    }

    #[test]
    fn block_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::block(len, nodes));
        }
    }

    #[test]
    fn cyclic_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::cyclic(len, nodes));
        }
    }

    #[test]
    fn block_ranges_partition() {
        let d = Dist::block(10, 4);
        assert_eq!(d.block_range(0), 0..3);
        assert_eq!(d.block_range(1), 3..6);
        assert_eq!(d.block_range(2), 6..9);
        assert_eq!(d.block_range(3), 9..10);
    }

    #[test]
    fn block_owner_is_monotone() {
        let d = Dist::block(17, 5);
        let owners: Vec<usize> = (0..17).map(|i| d.owner(i)).collect();
        for w in owners.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cyclic_spreads_adjacent_indices() {
        let d = Dist::cyclic(8, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.local_offset(5), 1);
    }

    /// Regression: partition math at near-`usize::MAX` lengths used to
    /// overflow in `block_range` (`(node + 1) * bs`) and `local_len`
    /// (`node * bs`). No storage is allocated — `Dist` is pure index math.
    #[test]
    fn block_partition_math_survives_huge_lengths() {
        let d = Dist::block(usize::MAX, 3);
        let bs = usize::MAX.div_ceil(3);
        assert_eq!(d.block_range(0), 0..bs);
        assert_eq!(d.block_range(1), bs..2 * bs);
        // Last block: `end` saturates/clamps to len instead of wrapping.
        assert_eq!(d.block_range(2), 2 * bs..usize::MAX);
        assert_eq!(d.local_len(2), usize::MAX - 2 * bs);
        assert_eq!(d.owner(usize::MAX - 1), 2);
        assert_eq!(d.local_offset(usize::MAX - 1), usize::MAX - 1 - 2 * bs);
        assert_eq!(d.global_index(2, usize::MAX - 1 - 2 * bs), usize::MAX - 1);
    }

    /// Regression: a huge single-node block distribution must report the
    /// whole range without overflow, and out-of-range nodes clamp empty.
    #[test]
    fn block_range_clamps_instead_of_wrapping() {
        let d = Dist::block(usize::MAX, 1);
        assert_eq!(d.block_range(0), 0..usize::MAX);
        assert_eq!(d.local_len(0), usize::MAX);
        // A node index beyond the data yields an empty tail, not a wrap.
        let d2 = Dist::block(10, 4);
        assert_eq!(d2.block_range(3), 9..10);
        assert!(d2.local_len(3) == 1);
    }

    /// Regression: cyclic index math at near-`usize::MAX` lengths stays
    /// exact at the top of the range (valid inputs never overflow; the
    /// checked arithmetic in `global_index` guards invalid release-mode
    /// inputs from wrapping into an aliased index).
    #[test]
    fn cyclic_partition_math_survives_huge_lengths() {
        let d = Dist::cyclic(usize::MAX, 4);
        let last = usize::MAX - 1;
        let n = d.owner(last);
        let off = d.local_offset(last);
        assert_eq!(n, last % 4);
        assert_eq!(off, last / 4);
        assert!(off < d.local_len(n));
        assert_eq!(d.global_index(n, off), last);
    }

    #[test]
    fn single_node_owns_everything() {
        let d = Dist::block(100, 1);
        for i in (0..100).step_by(13) {
            assert_eq!(d.owner(i), 0);
            assert_eq!(d.local_offset(i), i);
        }
        assert_eq!(d.local_len(0), 100);
    }
}
