//! Data distribution of global shared arrays over nodes.
//!
//! The paper's runtime performs "automatic data distribution and locality
//! management" (§3). The default (and the one all apps start from) is a
//! block distribution; a cyclic distribution is provided for load-spreading
//! irregular tables; a weighted distribution (contiguous spans with explicit
//! prefix-summed boundaries) carries the layouts computed by the adaptive
//! repartitioner in [`crate::balance`].
//!
//! # Partition invariant
//!
//! Every distribution is a *total partition* of `0..len`:
//!
//! * each global index `i < len` has exactly one owner node and one dense
//!   local offset (`global_index(owner(i), local_offset(i)) == i`);
//! * node-local ranges never overlap and together cover `0..len` with no
//!   gaps;
//! * when `len < nodes` (or a weighted span is empty), the surplus nodes own
//!   **empty** ranges — by construction the empty ranges of a contiguous
//!   layout sit at positions where `owned_range(n)` is an empty
//!   `start..start` range, and `local_len(n) == 0` reports them explicitly.
//!   For `Layout::Block` the empties are always the *trailing* nodes.
//! * `owner(i)` requires `i < len`; a zero-length array has no valid index
//!   and therefore no owner queries (all other per-node queries remain
//!   total and report empty ranges).
//!
//! Tests below pin each clause, including the `len == 0` and `len < nodes`
//! edge cases.

use std::sync::Arc;

/// How a global array's elements map to owner nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// Contiguous blocks of `ceil(len/nodes)` elements per node.
    Block,
    /// Element `i` lives on node `i % nodes`.
    Cyclic,
    /// Contiguous spans with explicit prefix-summed boundaries: node `n`
    /// owns `bounds[n]..bounds[n + 1]`. The bounds vector has `nodes + 1`
    /// monotone non-decreasing entries with `bounds[0] == 0` and
    /// `bounds[nodes] == len`; equal adjacent entries give that node an
    /// empty span. Shared via `Arc` so cloning a distribution (handles are
    /// cloned on every ownership query path) never copies the vector.
    Weighted(Arc<Vec<usize>>),
}

/// A concrete distribution: layout + array length + node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dist {
    /// Distribution layout.
    pub layout: Layout,
    /// Global array length.
    pub len: usize,
    /// Number of owner nodes.
    pub nodes: usize,
}

impl Dist {
    /// Block distribution of `len` elements over `nodes` nodes.
    pub fn block(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Block,
            len,
            nodes,
        }
    }

    /// Cyclic distribution of `len` elements over `nodes` nodes.
    pub fn cyclic(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Cyclic,
            len,
            nodes,
        }
    }

    /// Weighted distribution from explicit prefix-summed boundaries.
    /// Validates the partition invariant: `nodes + 1` monotone entries from
    /// `0` to `len`.
    pub fn weighted(len: usize, nodes: usize, bounds: Arc<Vec<usize>>) -> Self {
        assert!(nodes >= 1);
        assert_eq!(
            bounds.len(),
            nodes + 1,
            "bounds must have nodes + 1 entries"
        );
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert_eq!(bounds[nodes], len, "bounds must end at len");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be monotone non-decreasing"
        );
        Dist {
            layout: Layout::Weighted(bounds),
            len,
            nodes,
        }
    }

    /// Weighted distribution apportioning `len` elements in proportion to
    /// per-node `weights`, by sequential greedy-ceiling shares: node `n`
    /// takes `min(remaining, ceil(len * w[n] / Σw))`. Pure integer math
    /// (u128 products), so the result is a deterministic function of the
    /// inputs. Under uniform weights this degenerates to exactly the
    /// [`Layout::Block`] boundaries (each node takes `ceil(len/nodes)`
    /// until the array runs out). An all-zero weight vector is treated as
    /// uniform.
    pub fn weighted_shares(len: usize, nodes: usize, weights: &[u64]) -> Self {
        assert!(nodes >= 1);
        assert_eq!(weights.len(), nodes, "one weight per node");
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        let mut bounds = Vec::with_capacity(nodes + 1);
        bounds.push(0usize);
        let mut start = 0usize;
        for &w in weights {
            let remaining = len - start;
            let share = if total == 0 {
                len.div_ceil(nodes)
            } else {
                // ceil(len * w / total) without overflow: len, share fit
                // usize; the product fits u128.
                let num = len as u128 * w as u128;
                num.div_ceil(total) as usize
            };
            start += share.min(remaining);
            bounds.push(start);
        }
        // Greedy ceiling always covers: Σ ceil(len * w_n / Σw) >= len.
        debug_assert_eq!(start, len, "greedy ceiling shares must cover the array");
        bounds[nodes] = len;
        Dist::weighted(len, nodes, Arc::new(bounds))
    }

    /// Whether each node's elements form one contiguous global range
    /// (true for `Block` and `Weighted`, false for `Cyclic`).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        !matches!(self.layout, Layout::Cyclic)
    }

    /// Elements per block for the block layout.
    #[inline]
    fn block_size(&self) -> usize {
        self.len.div_ceil(self.nodes).max(1)
    }

    /// Node owning global index `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match &self.layout {
            // `min` clamps the ceil-block tail: when `len < nodes` the
            // trailing nodes own empty ranges (see module invariant), so no
            // in-bounds index may map past the last node.
            Layout::Block => (i / self.block_size()).min(self.nodes - 1),
            Layout::Cyclic => i % self.nodes,
            // Number of boundary entries <= i, minus the leading 0 entry.
            // Empty spans (equal adjacent bounds) are skipped by `<=`:
            // the owner is always the unique node with bounds[n] <= i <
            // bounds[n + 1].
            Layout::Weighted(b) => b.partition_point(|&x| x <= i) - 1,
        }
    }

    /// Offset of global index `i` within its owner's local storage.
    #[inline]
    pub fn local_offset(&self, i: usize) -> usize {
        match &self.layout {
            Layout::Block => i - self.owner(i) * self.block_size(),
            Layout::Cyclic => i / self.nodes,
            Layout::Weighted(b) => i - b[self.owner(i)],
        }
    }

    /// Number of elements stored on `node`.
    pub fn local_len(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes);
        match &self.layout {
            Layout::Block => {
                let bs = self.block_size();
                // `node * bs` can exceed `usize::MAX` for near-`usize::MAX`
                // lengths on high nodes; saturating keeps the partition math
                // total (any saturated product is >= len, so the sub clamps
                // to 0 either way).
                self.len.saturating_sub(node.saturating_mul(bs)).min(bs)
            }
            Layout::Cyclic => {
                let full = self.len / self.nodes;
                full + usize::from(node < self.len % self.nodes)
            }
            Layout::Weighted(b) => b[node + 1] - b[node],
        }
    }

    /// Global index of local offset `off` on `node`.
    ///
    /// Panics (rather than wrapping) if the product/sum overflows `usize`:
    /// a wrapped index would silently alias another element.
    #[inline]
    pub fn global_index(&self, node: usize, off: usize) -> usize {
        debug_assert!(off < self.local_len(node));
        match &self.layout {
            Layout::Block => node
                .checked_mul(self.block_size())
                .and_then(|base| base.checked_add(off))
                .expect("global index overflows usize (block layout)"),
            Layout::Cyclic => off
                .checked_mul(self.nodes)
                .and_then(|base| base.checked_add(node))
                .expect("global index overflows usize (cyclic layout)"),
            Layout::Weighted(b) => b[node] + off,
        }
    }

    /// For the block layout: the contiguous global range owned by `node`.
    pub fn block_range(&self, node: usize) -> std::ops::Range<usize> {
        assert_eq!(self.layout, Layout::Block, "block_range needs Block layout");
        let bs = self.block_size();
        // Saturating products: `(node + 1) * bs` overflows for lengths near
        // `usize::MAX`; both bounds clamp to `len`, giving the correct
        // (possibly empty) tail range instead of a wrapped one.
        let start = node.saturating_mul(bs).min(self.len);
        let end = node.saturating_add(1).saturating_mul(bs).min(self.len);
        start..end
    }

    /// The contiguous global range owned by `node`, for any contiguous
    /// layout (`Block` or `Weighted`). Panics for `Cyclic`, whose per-node
    /// elements are strided, not a range.
    pub fn owned_range(&self, node: usize) -> std::ops::Range<usize> {
        match &self.layout {
            Layout::Block => self.block_range(node),
            Layout::Weighted(b) => b[node]..b[node + 1],
            Layout::Cyclic => panic!("owned_range needs a contiguous layout"),
        }
    }

    /// Tile-aware iteration over `node`'s owned range (any contiguous
    /// layout): successive subranges of at most `chunk_elems` elements,
    /// aligned to multiples of `chunk_elems` from the range start so the
    /// subranges coincide with the pseudo-streaming tiles of the local
    /// partition (tiles are keyed by local offset; for a contiguous layout
    /// local offset = global index − range start). With `chunk_elems == 0`
    /// the whole range comes back as one chunk — callers can pass a
    /// disabled chunking knob straight through. Pure index math, zero
    /// modeled cost.
    pub fn owned_chunks(
        &self,
        node: usize,
        chunk_elems: usize,
    ) -> impl Iterator<Item = std::ops::Range<usize>> {
        let range = self.owned_range(node);
        let chunk = if chunk_elems == 0 {
            range.len().max(1)
        } else {
            chunk_elems
        };
        let (start, end) = (range.start, range.end);
        (0..range.len().div_ceil(chunk))
            .map(move |k| (start + k * chunk)..(start + (k + 1) * chunk).min(end))
    }

    /// The prefix-summed per-node boundaries of a contiguous layout
    /// (`bounds[n]..bounds[n + 1]` is node `n`'s range). Panics for
    /// `Cyclic`.
    pub fn bounds(&self) -> Vec<usize> {
        match &self.layout {
            Layout::Block => (0..=self.nodes)
                .map(|n| n.saturating_mul(self.block_size()).min(self.len))
                .collect(),
            Layout::Weighted(b) => b.as_ref().clone(),
            Layout::Cyclic => panic!("bounds needs a contiguous layout"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every distribution must be a bijection between global indices and
    /// (node, offset) pairs, with offsets dense per node.
    fn check_bijection(d: Dist) {
        let mut per_node = vec![0usize; d.nodes];
        for i in 0..d.len {
            let n = d.owner(i);
            let off = d.local_offset(i);
            assert!(n < d.nodes);
            assert!(off < d.local_len(n), "i={i} n={n} off={off}");
            assert_eq!(d.global_index(n, off), i);
            per_node[n] += 1;
        }
        for (n, &c) in per_node.iter().enumerate() {
            assert_eq!(c, d.local_len(n), "node {n}");
        }
        assert_eq!(per_node.iter().sum::<usize>(), d.len);
    }

    #[test]
    fn block_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::block(len, nodes));
        }
    }

    #[test]
    fn cyclic_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::cyclic(len, nodes));
        }
    }

    #[test]
    fn weighted_bijection_various_shapes() {
        for bounds in [
            vec![0usize, 3, 6, 9, 10],
            vec![0, 0, 5, 5, 10],
            vec![0, 10, 10, 10, 10],
            vec![0, 1, 2, 3, 10],
            vec![0, 0, 0, 0, 0],
        ] {
            let nodes = bounds.len() - 1;
            let len = *bounds.last().unwrap();
            check_bijection(Dist::weighted(len, nodes, Arc::new(bounds)));
        }
    }

    #[test]
    fn block_ranges_partition() {
        let d = Dist::block(10, 4);
        assert_eq!(d.block_range(0), 0..3);
        assert_eq!(d.block_range(1), 3..6);
        assert_eq!(d.block_range(2), 6..9);
        assert_eq!(d.block_range(3), 9..10);
    }

    #[test]
    fn block_owner_is_monotone() {
        let d = Dist::block(17, 5);
        let owners: Vec<usize> = (0..17).map(|i| d.owner(i)).collect();
        for w in owners.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cyclic_spreads_adjacent_indices() {
        let d = Dist::cyclic(8, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.local_offset(5), 1);
    }

    /// Regression: partition math at near-`usize::MAX` lengths used to
    /// overflow in `block_range` (`(node + 1) * bs`) and `local_len`
    /// (`node * bs`). No storage is allocated — `Dist` is pure index math.
    #[test]
    fn block_partition_math_survives_huge_lengths() {
        let d = Dist::block(usize::MAX, 3);
        let bs = usize::MAX.div_ceil(3);
        assert_eq!(d.block_range(0), 0..bs);
        assert_eq!(d.block_range(1), bs..2 * bs);
        // Last block: `end` saturates/clamps to len instead of wrapping.
        assert_eq!(d.block_range(2), 2 * bs..usize::MAX);
        assert_eq!(d.local_len(2), usize::MAX - 2 * bs);
        assert_eq!(d.owner(usize::MAX - 1), 2);
        assert_eq!(d.local_offset(usize::MAX - 1), usize::MAX - 1 - 2 * bs);
        assert_eq!(d.global_index(2, usize::MAX - 1 - 2 * bs), usize::MAX - 1);
    }

    /// Regression: a huge single-node block distribution must report the
    /// whole range without overflow, and out-of-range nodes clamp empty.
    #[test]
    fn block_range_clamps_instead_of_wrapping() {
        let d = Dist::block(usize::MAX, 1);
        assert_eq!(d.block_range(0), 0..usize::MAX);
        assert_eq!(d.local_len(0), usize::MAX);
        // A node index beyond the data yields an empty tail, not a wrap.
        let d2 = Dist::block(10, 4);
        assert_eq!(d2.block_range(3), 9..10);
        assert!(d2.local_len(3) == 1);
    }

    /// Regression: cyclic index math at near-`usize::MAX` lengths stays
    /// exact at the top of the range (valid inputs never overflow; the
    /// checked arithmetic in `global_index` guards invalid release-mode
    /// inputs from wrapping into an aliased index).
    #[test]
    fn cyclic_partition_math_survives_huge_lengths() {
        let d = Dist::cyclic(usize::MAX, 4);
        let last = usize::MAX - 1;
        let n = d.owner(last);
        let off = d.local_offset(last);
        assert_eq!(n, last % 4);
        assert_eq!(off, last / 4);
        assert!(off < d.local_len(n));
        assert_eq!(d.global_index(n, off), last);
    }

    #[test]
    fn single_node_owns_everything() {
        let d = Dist::block(100, 1);
        for i in (0..100).step_by(13) {
            assert_eq!(d.owner(i), 0);
            assert_eq!(d.local_offset(i), i);
        }
        assert_eq!(d.local_len(0), 100);
    }

    /// The module-level partition invariant, stated and pinned: with
    /// `len < nodes` the *trailing* block nodes are explicitly empty
    /// (`local_len == 0`, empty `owned_range`), never aliased, and
    /// `owner()` still maps every in-bounds index to a node with a
    /// non-empty range.
    #[test]
    fn short_arrays_leave_trailing_block_nodes_empty() {
        let d = Dist::block(3, 8);
        for i in 0..3 {
            assert_eq!(d.owner(i), i, "block_size clamps to 1 when len < nodes");
            assert_eq!(d.local_offset(i), 0);
        }
        for n in 0..8 {
            let expect = usize::from(n < 3);
            assert_eq!(d.local_len(n), expect, "node {n}");
            assert_eq!(d.owned_range(n).len(), expect, "node {n}");
            if n >= 3 {
                assert!(
                    d.owned_range(n).is_empty(),
                    "trailing node {n} owns nothing"
                );
            }
        }
        check_bijection(d);
    }

    /// A zero-length array has no valid index; every per-node query still
    /// answers (empty) rather than panicking, for every layout.
    #[test]
    fn zero_length_arrays_are_fully_empty() {
        for d in [
            Dist::block(0, 4),
            Dist::cyclic(0, 4),
            Dist::weighted(0, 4, Arc::new(vec![0; 5])),
        ] {
            for n in 0..4 {
                assert_eq!(d.local_len(n), 0);
                if d.is_contiguous() {
                    assert!(d.owned_range(n).is_empty());
                }
            }
            check_bijection(d);
        }
    }

    /// `owned_range` and `bounds` agree between Block and the weighted
    /// layout constructed from Block's own boundaries.
    #[test]
    fn weighted_from_block_bounds_matches_block() {
        for (len, nodes) in [(10, 4), (17, 5), (3, 8), (0, 2), (100, 1)] {
            let b = Dist::block(len, nodes);
            let w = Dist::weighted(len, nodes, Arc::new(b.bounds()));
            for n in 0..nodes {
                assert_eq!(w.owned_range(n), b.block_range(n));
                assert_eq!(w.local_len(n), b.local_len(n));
            }
            for i in 0..len {
                assert_eq!(w.owner(i), b.owner(i));
                assert_eq!(w.local_offset(i), b.local_offset(i));
            }
        }
    }

    /// Uniform weights degenerate to exactly the Block boundaries.
    #[test]
    fn uniform_weighted_shares_degenerate_to_block() {
        for (len, nodes) in [(10, 4), (17, 5), (3, 8), (64, 4), (0, 3)] {
            let w = Dist::weighted_shares(len, nodes, &vec![7; nodes]);
            let z = Dist::weighted_shares(len, nodes, &vec![0; nodes]);
            let b = Dist::block(len, nodes);
            assert_eq!(w.bounds(), b.bounds(), "len={len} nodes={nodes}");
            assert_eq!(z.bounds(), b.bounds(), "all-zero weights act uniform");
        }
    }

    /// `owned_chunks` tiles the owned range exactly: chunks partition the
    /// range in order, each at most `chunk` long and aligned to multiples
    /// of `chunk` from the range start; 0 means "one chunk".
    #[test]
    fn owned_chunks_partition_the_owned_range() {
        let d = Dist::block(100, 4); // node 1 owns 25..50
        let chunks: Vec<_> = d.owned_chunks(1, 8).collect();
        assert_eq!(chunks, vec![25..33, 33..41, 41..49, 49..50]);
        assert_eq!(d.owned_chunks(1, 0).collect::<Vec<_>>(), vec![25..50]);
        assert_eq!(
            d.owned_chunks(1, 1000).collect::<Vec<_>>(),
            vec![25..50],
            "oversized chunk degenerates to the whole range"
        );
        // Empty ranges yield no chunks.
        let short = Dist::block(3, 8);
        assert_eq!(short.owned_chunks(7, 4).count(), 0);
    }

    #[test]
    fn weighted_shares_follow_weights() {
        let d = Dist::weighted_shares(100, 4, &[1, 1, 1, 97]);
        // Greedy ceiling: each of the light nodes takes ceil(100/100) = 1.
        assert_eq!(d.bounds(), vec![0, 1, 2, 3, 100]);
        check_bijection(d);
        // A zero-weight node between loaded ones gets an empty span.
        let d = Dist::weighted_shares(10, 3, &[1, 0, 1]);
        assert_eq!(d.local_len(1), 0);
        check_bijection(d);
    }
}
