//! Data distribution of global shared arrays over nodes.
//!
//! The paper's runtime performs "automatic data distribution and locality
//! management" (§3). The default (and the one all apps use) is a block
//! distribution; a cyclic distribution is provided for load-spreading
//! irregular tables.

/// How a global array's elements map to owner nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Contiguous blocks of `ceil(len/nodes)` elements per node.
    Block,
    /// Element `i` lives on node `i % nodes`.
    Cyclic,
}

/// A concrete distribution: layout + array length + node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dist {
    /// Distribution layout.
    pub layout: Layout,
    /// Global array length.
    pub len: usize,
    /// Number of owner nodes.
    pub nodes: usize,
}

impl Dist {
    /// Block distribution of `len` elements over `nodes` nodes.
    pub fn block(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Block,
            len,
            nodes,
        }
    }

    /// Cyclic distribution of `len` elements over `nodes` nodes.
    pub fn cyclic(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1);
        Dist {
            layout: Layout::Cyclic,
            len,
            nodes,
        }
    }

    /// Elements per block for the block layout.
    #[inline]
    fn block_size(&self) -> usize {
        self.len.div_ceil(self.nodes).max(1)
    }

    /// Node owning global index `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match self.layout {
            Layout::Block => (i / self.block_size()).min(self.nodes - 1),
            Layout::Cyclic => i % self.nodes,
        }
    }

    /// Offset of global index `i` within its owner's local storage.
    #[inline]
    pub fn local_offset(&self, i: usize) -> usize {
        match self.layout {
            Layout::Block => i - self.owner(i) * self.block_size(),
            Layout::Cyclic => i / self.nodes,
        }
    }

    /// Number of elements stored on `node`.
    pub fn local_len(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes);
        match self.layout {
            Layout::Block => {
                let bs = self.block_size();
                self.len.saturating_sub(node * bs).min(bs)
            }
            Layout::Cyclic => {
                let full = self.len / self.nodes;
                full + usize::from(node < self.len % self.nodes)
            }
        }
    }

    /// Global index of local offset `off` on `node`.
    #[inline]
    pub fn global_index(&self, node: usize, off: usize) -> usize {
        debug_assert!(off < self.local_len(node));
        match self.layout {
            Layout::Block => node * self.block_size() + off,
            Layout::Cyclic => off * self.nodes + node,
        }
    }

    /// For the block layout: the contiguous global range owned by `node`.
    pub fn block_range(&self, node: usize) -> std::ops::Range<usize> {
        assert_eq!(self.layout, Layout::Block, "block_range needs Block layout");
        let bs = self.block_size();
        let start = (node * bs).min(self.len);
        let end = ((node + 1) * bs).min(self.len);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every distribution must be a bijection between global indices and
    /// (node, offset) pairs, with offsets dense per node.
    fn check_bijection(d: Dist) {
        let mut per_node = vec![0usize; d.nodes];
        for i in 0..d.len {
            let n = d.owner(i);
            let off = d.local_offset(i);
            assert!(n < d.nodes);
            assert!(off < d.local_len(n), "i={i} n={n} off={off}");
            assert_eq!(d.global_index(n, off), i);
            per_node[n] += 1;
        }
        for (n, &c) in per_node.iter().enumerate() {
            assert_eq!(c, d.local_len(n), "node {n}");
        }
        assert_eq!(per_node.iter().sum::<usize>(), d.len);
    }

    #[test]
    fn block_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::block(len, nodes));
        }
    }

    #[test]
    fn cyclic_bijection_various_shapes() {
        for (len, nodes) in [(10, 3), (12, 4), (1, 5), (100, 7), (5, 8), (0, 2)] {
            check_bijection(Dist::cyclic(len, nodes));
        }
    }

    #[test]
    fn block_ranges_partition() {
        let d = Dist::block(10, 4);
        assert_eq!(d.block_range(0), 0..3);
        assert_eq!(d.block_range(1), 3..6);
        assert_eq!(d.block_range(2), 6..9);
        assert_eq!(d.block_range(3), 9..10);
    }

    #[test]
    fn block_owner_is_monotone() {
        let d = Dist::block(17, 5);
        let owners: Vec<usize> = (0..17).map(|i| d.owner(i)).collect();
        for w in owners.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cyclic_spreads_adjacent_indices() {
        let d = Dist::cyclic(8, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.local_offset(5), 1);
    }

    #[test]
    fn single_node_owns_everything() {
        let d = Dist::block(100, 1);
        for i in (0..100).step_by(13) {
            assert_eq!(d.owner(i), 0);
            assert_eq!(d.local_offset(i), i);
        }
        assert_eq!(d.local_len(0), 100);
    }
}
