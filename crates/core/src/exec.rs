//! The VP executor: `ppm_do` scheduling, communication waves, and phase
//! exchanges.
//!
//! This plays the role of the paper's source-to-source compiler plus
//! runtime scheduler (§3.4): virtual processors are cooperative futures
//! multiplexed over the node's cores ("converted into loops"), remote reads
//! park VPs and are *bundled* into one request message per destination per
//! wave, and phase ends run the BSP-style exchange that publishes buffered
//! writes and synchronizes clocks.
//!
//! ## Determinism
//!
//! Scheduling is deterministic regardless of host thread timing or worker
//! count: each poll round's runnable set is fixed up front, VPs record
//! every effect into their private [`VpScratch`](crate::state::VpScratch),
//! and the driver merges scratches into [`Inner`](crate::state::Inner) in
//! ascending rank order after the round — so the merged effect sequence
//! equals a sequential ascending-rank schedule's no matter which host
//! thread polled what. A wave's destinations are consumed strictly in
//! ascending node order (late responses are stashed), so with
//! wake-on-arrival pipelining VPs resume per completed destination — in
//! deterministic order — while slower destinations are still in flight,
//! and with pipelining off every destination drains before any VP resumes;
//! either way the schedule never depends on network timing (DESIGN.md
//! §13). Write bundles are applied in ascending source-node order.
//! Simulated clocks are computed from per-phase totals, never from message
//! interleaving. See DESIGN.md §12.

use std::collections::BTreeMap;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};

use ppm_simnet::{ArgValue, Message, SimTime};

use crate::balance;
use crate::bitset::NodeSet;
use crate::dist::Dist;
use crate::error::RecoveryError;
use crate::msgs::{
    self, BarrierMsg, MigrateMsg, RefreshPart, ReplicaFrame, ReqBundle, RespBundle, TokenMsg,
    WriteBundleMsg,
};
use crate::nodectx::NodeCtx;
use crate::state::{merge_vp, DoMode, PhaseKind, ServeHist, Traffic, VpCell};
use crate::vp::Vp;

/// Refresh-push serve-history TTL, in global phases: an element whose last
/// peer serve is older than this is forgotten (and disarmed), bounding
/// push waste for read-once access patterns. Owner pushes do not extend
/// the TTL — only actual serves do — so a long-armed element re-earns its
/// pushes every `SERVE_TTL` phases (DESIGN.md §13).
const SERVE_TTL: u64 = 8;

/// Per-phase counter-delta argument names, aligned with
/// [`ppm_simnet::Counters::named_fields`] (the `debug_assert` in
/// [`emit_phase_summary`] keeps the two in lockstep).
const DELTA_ARG_NAMES: [&str; 29] = [
    "d_msgs_sent",
    "d_bytes_sent",
    "d_msgs_recv",
    "d_bytes_recv",
    "d_flops",
    "d_mem_ops",
    "d_barriers",
    "d_remote_gets",
    "d_remote_puts",
    "d_bundles_sent",
    "d_waves",
    "d_local_accesses",
    "d_retries",
    "d_faults_dropped",
    "d_faults_duplicated",
    "d_faults_delayed",
    "d_dups_suppressed",
    "d_acks_sent",
    "d_crash_recoveries",
    "d_cache_hits",
    "d_cache_misses",
    "d_dedup_reads",
    "d_partial_wakes",
    "d_peers_suspected",
    "d_peers_confirmed_dead",
    "d_failovers",
    "d_replica_bytes",
    "d_tile_spills",
    "d_tile_refills",
];

/// Record a phase-summary span `[start, now]` carrying the phase's time
/// breakdown plus the per-phase delta of every counter, and advance the
/// delta baseline. Only called while tracing is enabled.
fn emit_phase_summary(
    nc: &mut NodeCtx<'_>,
    name: &'static str,
    start: SimTime,
    idx: u64,
    mut args: Vec<(&'static str, ArgValue)>,
) {
    let merged = nc.ep_counters();
    let delta = merged.delta(&nc.inner.borrow().ctr_base);
    args.insert(0, ("phase", ArgValue::U64(idx)));
    for (dn, (n, v)) in DELTA_ARG_NAMES.iter().zip(delta.named_fields()) {
        debug_assert_eq!(&dn[2..], n, "DELTA_ARG_NAMES out of sync with Counters");
        args.push((dn, ArgValue::U64(v)));
    }
    let end = nc.ep.clock.now();
    nc.ep.tracer.span(name, "phase", start, end, args);
    nc.inner.borrow_mut().ctr_base = merged;
}

type VpTask = Pin<Box<dyn Future<Output = ()> + Send>>;
/// Write parcels grouped per array: `(source node, payload)` pairs.
type ParcelsByArray = BTreeMap<u32, Vec<(u32, Box<dyn std::any::Any + Send>)>>;

/// Outcome of polling one VP once (possibly on a host worker thread).
enum PollOut {
    Done,
    Pending,
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Poll one VP future once. Panics are caught so the driver can merge the
/// lower-rank VPs' effects first and then re-raise — reproducing a
/// sequential schedule's panic behavior from any worker thread.
fn poll_vp(tasks: &[Mutex<Option<VpTask>>], vp: usize) -> PollOut {
    let mut guard = tasks[vp].lock().unwrap_or_else(PoisonError::into_inner);
    let task = guard.as_mut().expect("ready VP must be live");
    let mut cx = Context::from_waker(Waker::noop());
    match catch_unwind(AssertUnwindSafe(|| task.as_mut().poll(&mut cx))) {
        Ok(Poll::Ready(())) => {
            *guard = None;
            PollOut::Done
        }
        Ok(Poll::Pending) => PollOut::Pending,
        Err(payload) => {
            *guard = None;
            PollOut::Panicked(payload)
        }
    }
}

/// Resolve the host worker-thread count for a `ppm_do`:
/// `cfg.host_threads` if nonzero, else `PPM_HOST_THREADS`, else
/// `min(host parallelism, cores_per_node)`. Purely a wall-clock knob —
/// results are bit-identical at any value (DESIGN.md §12).
fn host_workers(cfg: &crate::config::PpmConfig) -> usize {
    let n = if cfg.host_threads > 0 {
        cfg.host_threads
    } else {
        std::env::var("PPM_HOST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    };
    if n > 0 {
        return n;
    }
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    host.min(cfg.cores_per_node()).max(1)
}

/// Run one `PPM_do(k) f` construct to completion.
pub(crate) fn run_do<Fut>(nc: &mut NodeCtx<'_>, k: usize, mode: DoMode, f: impl Fn(Vp) -> Fut)
where
    Fut: Future<Output = ()> + Send + 'static,
{
    let me = nc.node_id();
    if mode == DoMode::Collective {
        // A node with zero VPs could never send its end-of-phase bundles,
        // deadlocking any peer that runs a global phase. Fail early with
        // advice instead.
        assert!(
            k >= 1,
            "node {me}: ppm_do requires at least one VP per node (use k=1 with an \
             empty function for idle nodes, or ppm_do_local for node-only work)"
        );
    }
    let (base, total) = match mode {
        DoMode::Collective => {
            // Collective prologue: learn every node's VP count so global
            // ranks and `PPM_VP_global_rank` work (k may differ per node).
            let ks = nc.allgather_nodes(k as u64);
            let split = (ks[..me].iter().sum(), ks.iter().sum());
            // Kept for the failover trace instant's payload (how many VPs
            // a buddy adopts with a dead rank's partitions, DESIGN.md §15).
            nc.inner.borrow_mut().peer_vps = ks;
            split
        }
        // Asynchronous mode: no cross-node coordination; ranks are
        // node-local.
        DoMode::Local => (0, k as u64),
    };
    {
        let mut inner = nc.inner.borrow_mut();
        inner.vp_base_global = base;
        inner.total_vps_global = total;
        inner.live_vps = k;
        inner.do_mode = mode;
    }
    if nc.ep.tracer.enabled() {
        // Per-phase counter deltas start from here, excluding the
        // construct's collective prologue.
        let merged = nc.ep_counters();
        nc.inner.borrow_mut().ctr_base = merged;
    }

    // Read caches do not survive across constructs: direct mutation
    // between `ppm_do`s (`with_local_mut`) can change any partition
    // without a phase exchange to carry invalidations.
    {
        let mut inner = nc.inner.borrow_mut();
        for ga in inner.garrays.iter_mut() {
            ga.cache_clear();
        }
    }

    // Crash recovery line: direct mutation between `ppm_do`s
    // (`with_local_mut`) may have changed the arrays since the last
    // phase-end snapshot, so refresh it at construct entry. Untracked
    // mutation means the whole copy is charged.
    if nc.snapshots_enabled() {
        nc.take_snapshot(None);
    }

    // Instantiate the VPs: a shared identity/scratch cell per VP, plus its
    // future behind a `Mutex` so host workers can poll it.
    let cfg = nc.config();
    let cells: Vec<Arc<VpCell>> = (0..k)
        .map(|rank| {
            Arc::new(VpCell::new(
                rank,
                base + rank as u64,
                me,
                cfg,
                mode,
                k,
                total,
            ))
        })
        .collect();
    let tasks: Vec<Mutex<Option<VpTask>>> = cells
        .iter()
        .map(|cell| {
            let vp = Vp {
                inner: nc.inner.clone(),
                cell: cell.clone(),
            };
            Mutex::new(Some(Box::pin(f(vp)) as VpTask))
        })
        .collect();

    let workers = host_workers(&cfg).min(k.max(1));
    let cores = cfg.cores_per_node();
    if workers <= 1 {
        // Inline: the identical record-to-scratch + rank-ordered-merge path
        // minus the thread handoff, so one code path defines the semantics
        // at every worker count.
        drive(nc, &cells, k, |batch| {
            batch.iter().map(|&vp| (vp, poll_vp(&tasks, vp))).collect()
        });
    } else {
        // Persistent worker pool for the whole construct. Workers only ever
        // poll futures (short `Inner` read locks + private scratches); the
        // driver thread owns every ordered effect.
        std::thread::scope(|s| {
            let (res_tx, res_rx) = mpsc::channel::<Vec<(usize, PollOut)>>();
            let cmd_txs: Vec<mpsc::Sender<Vec<usize>>> = (0..workers)
                .map(|_| {
                    let (tx, rx) = mpsc::channel::<Vec<usize>>();
                    let res_tx = res_tx.clone();
                    let tasks = &tasks;
                    s.spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            let out: Vec<(usize, PollOut)> = batch
                                .into_iter()
                                .map(|vp| (vp, poll_vp(tasks, vp)))
                                .collect();
                            if res_tx.send(out).is_err() {
                                break;
                            }
                        }
                    });
                    tx
                })
                .collect();
            drop(res_tx);
            let mut batches: Vec<Vec<usize>> = vec![Vec::new(); workers];
            drive(nc, &cells, k, move |batch| {
                // Partition by simulated core (the clock-accounting mapping)
                // and fan cores out across workers; results are re-sorted by
                // rank before merging, so arrival order never matters.
                for &vp in batch {
                    batches[(vp % cores) % workers].push(vp);
                }
                let mut in_flight = 0;
                for (w, b) in batches.iter_mut().enumerate() {
                    if !b.is_empty() {
                        cmd_txs[w]
                            .send(std::mem::take(b))
                            .expect("host worker exited early");
                        in_flight += 1;
                    }
                }
                let mut out = Vec::with_capacity(batch.len());
                for _ in 0..in_flight {
                    out.extend(res_rx.recv().expect("host worker exited early"));
                }
                out
            });
        });
    }

    // Epilogue: charge compute done after the last phase and merge counters.
    let leftover = {
        let mut inner = nc.inner.borrow_mut();
        let max = inner
            .core_compute
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        inner
            .core_compute
            .iter_mut()
            .for_each(|c| *c = SimTime::ZERO);
        max
    };
    nc.ep.clock.advance_compute(leftover);
    merge_counters(nc);
}

/// The construct's main loop: poll rounds (delegated to `poll_round`, which
/// may fan out to host workers), rank-ordered effect merges, waves, and
/// phase ends. One code path serves every worker count.
fn drive(
    nc: &mut NodeCtx<'_>,
    cells: &[Arc<VpCell>],
    k: usize,
    mut poll_round: impl FnMut(&[usize]) -> Vec<(usize, PollOut)>,
) {
    let me = nc.node_id();
    let cfg = nc.config();
    let mut live = k;
    let mut ready: Vec<usize> = (0..k).collect();
    let mut bufs = WaveBufs::default();
    let mut wave: Option<WaveState> = None;

    loop {
        // Poll runnable VPs; effects land in private scratches. Compute
        // merged while an in-flight wave is partially consumed genuinely
        // overlaps the remaining responses — the pipelining cost model
        // credits it against wave latency (charge_phase_time).
        let pipelined_window = cfg.wave_pipelining
            && wave
                .as_ref()
                .is_some_and(|w| w.next > 0 && w.next < w.pending.len());
        while !ready.is_empty() {
            ready.sort_unstable();
            ready.dedup();
            let batch = std::mem::take(&mut ready);
            let mut results = poll_round(&batch);
            debug_assert_eq!(results.len(), batch.len());
            results.sort_by_key(|&(vp, _)| vp);
            // Merge every polled VP's effects in ascending rank order: the
            // determinism keystone (DESIGN.md §12). The merged effect
            // sequence — including floating-point accumulate fold order and
            // checker event order — equals a sequential ascending-rank
            // schedule's regardless of which host thread polled what. A
            // panicking VP behaves like its sequential self: lower ranks
            // merge, its own effects are discarded, the payload re-raises.
            let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
            {
                let mut inner = nc.inner.borrow_mut();
                let mut round_compute = SimTime::ZERO;
                for (vp, out) in results {
                    match out {
                        PollOut::Panicked(p) => {
                            panicked = Some(p);
                            break;
                        }
                        PollOut::Done => {
                            round_compute += merge_vp(&mut inner, &cells[vp]);
                            live -= 1;
                            inner.live_vps = live;
                        }
                        PollOut::Pending => {
                            round_compute += merge_vp(&mut inner, &cells[vp]);
                        }
                    }
                }
                if pipelined_window {
                    inner.traffic.pipelined_compute += round_compute;
                }
            }
            if let Some(p) = panicked {
                std::panic::resume_unwind(p);
            }
        }

        if live == 0 {
            break;
        }

        // Cold-tile faults take priority over everything else
        // (DESIGN.md §18): they are local and free in modeled time, and
        // must fully drain before a wave starts or advances so that wave
        // content and the compute-overlap window attribution match
        // in-core execution bit for bit.
        if !nc.inner.borrow().pending_tile_faults.is_empty() {
            service_tile_faults(nc, &mut ready);
            continue;
        }

        // A wave in flight takes priority: consume its next destination
        // (strictly ascending). With pipelining on, the VPs it satisfied
        // resume immediately; with it off, drain every destination first —
        // the pre-pipelining all-responses barrier.
        if wave.is_some() {
            let mut woken: Vec<usize> = Vec::new();
            loop {
                let ws = wave.as_mut().expect("checked above");
                woken.extend(wave_recv_next(nc, cells, ws));
                if ws.next == ws.pending.len() {
                    let ws = wave.take().expect("checked above");
                    finalize_wave(nc, &ws);
                    break;
                }
                if cfg.wave_pipelining {
                    // Partial wake: at least one VP resumes while later
                    // destinations are still in flight.
                    debug_assert!(!woken.is_empty(), "a destination with no waiters");
                    let mut inner = nc.inner.borrow_mut();
                    inner.counters.partial_wakes += 1;
                    drop(inner);
                    if nc.ep.tracer.enabled() {
                        let ws = wave.as_ref().expect("checked above");
                        nc.ep.tracer.instant(
                            "partial_wake",
                            "comm",
                            nc.ep.clock.now(),
                            vec![
                                ("dests_done", ArgValue::U64(ws.next as u64)),
                                ("dests_total", ArgValue::U64(ws.pending.len() as u64)),
                                ("woken", ArgValue::U64(woken.len() as u64)),
                            ],
                        );
                    }
                    break;
                }
            }
            ready.append(&mut woken);
            continue;
        }

        // No VP is runnable and no wave is in flight: decide why and
        // advance the runtime.
        let (has_reqs, outstanding, arrived, open) = {
            let inner = nc.inner.borrow();
            (
                inner.reqs.iter().any(|v| !v.is_empty()),
                inner.outstanding_reads,
                inner.phase.arrived,
                inner.phase.open,
            )
        };

        if has_reqs {
            wave = Some(start_wave(nc, &mut bufs));
            continue;
        }
        assert_eq!(
            outstanding, 0,
            "VPs parked on reads but no requests queued: runtime bug"
        );
        match open {
            Some(kind) if arrived == live => {
                match kind {
                    PhaseKind::Node => node_phase_end(nc),
                    PhaseKind::Global => global_phase_end(nc),
                }
                let mut inner = nc.inner.borrow_mut();
                ready.append(&mut inner.barrier_waiters);
            }
            _ => {
                let v = crate::check::PhaseViolation::BarrierMismatch {
                    node: me,
                    live,
                    arrived,
                };
                panic!("{v} (open phase: {open:?})");
            }
        }
    }
}

/// Service one cold-tile fault round (pseudo-streaming, DESIGN.md §18):
/// refill the *minimum* pending `(array, tile)` — evicting
/// least-recently-touched tiles to stay under the budget — and wake every
/// fault-parked VP. Woken VPs whose tiles are still cold re-record their
/// faults charge-free, so exactly one tile group resolves per round;
/// servicing only the minimum group keeps simultaneous residency bounded
/// by the budget even when every VP faults a different tile at once, and
/// each round strictly shrinks the set of unresolved deferred reads (the
/// refilled tile cannot be evicted before the very next poll captures its
/// values). Spills and refills are free in modeled time and charge no
/// counters beyond their own: residency is an accounting overlay on the
/// same backing storage, so the phase cost model never sees it —
/// makespans stay bit-identical to in-core execution.
fn service_tile_faults(nc: &mut NodeCtx<'_>, ready: &mut Vec<usize>) {
    let (array, tile, spilled, resident) = {
        let mut inner = nc.inner.borrow_mut();
        let inner = &mut *inner;
        let &(array, tile) = inner
            .pending_tile_faults
            .iter()
            .min()
            .expect("fault round with no faults");
        // Drop the other groups: every parked VP is woken below and
        // re-records any still-cold fault on its next poll.
        inner.pending_tile_faults.clear();
        let spilled = inner.tile_budget.refill(array, tile);
        inner.counters.tile_refills += 1;
        inner.counters.tile_spills += spilled.len() as u64;
        ready.append(&mut inner.fault_waiters);
        (array, tile, spilled, inner.tile_budget.bytes_resident())
    };
    if nc.ep.tracer.enabled() {
        let ts = nc.ep.clock.now();
        for &(a, t) in &spilled {
            nc.ep.tracer.instant(
                "tile_spill",
                "mem",
                ts,
                vec![
                    ("array", ArgValue::U64(a as u64)),
                    ("tile", ArgValue::U64(t as u64)),
                ],
            );
        }
        nc.ep.tracer.instant(
            "tile_refill",
            "mem",
            ts,
            vec![
                ("array", ArgValue::U64(array as u64)),
                ("tile", ArgValue::U64(tile as u64)),
                ("bytes_resident", ArgValue::U64(resident)),
            ],
        );
    }
}

/// Reusable wave-construction buffer (bundle-path allocation diet): the
/// former per-wave `BTreeMap`-of-`BTreeMap` dedup is one flat stable sort
/// in a buffer that keeps its capacity across waves.
#[derive(Default)]
struct WaveBufs {
    /// `(dest, array, idx, vp, slot)` per queued request.
    flat: Vec<(usize, u32, u64, usize, u64)>,
}

/// One destination's share of a wave: the destination node, each request
/// ticket's `(vp, slot)` waiter group, and each ticket's `(array, idx)`.
type DestPending = (usize, Vec<Vec<(usize, u64)>>, Vec<(u32, u64)>);

/// A refresh part addressed to this node, parked until the invalidation
/// sweep has run: `(array, idxs, values, mine_flags)`.
type CollectedRefresh = (
    u32,
    Vec<u64>,
    Box<dyn std::any::Any + Send + Sync>,
    Vec<bool>,
);

/// One in-flight communication wave. Destinations complete strictly in
/// ascending node order no matter when their responses really arrive
/// (`pump_recv` stashes the early ones), so the VP wake order — with or
/// without pipelining — never depends on network timing (DESIGN.md §13).
struct WaveState {
    /// Per destination, ascending: the destination node, each request
    /// ticket's `(vp, slot)` waiter group, and each ticket's
    /// `(array, global idx)` (the read cache needs the index on fill).
    pending: Vec<DestPending>,
    /// Destinations consumed so far; `pending[next]` is the next to drain.
    next: usize,
    dests: u64,
    entries: u64,
    bytes_out: u64,
    bytes_in: u64,
}

/// Flush the queued read requests as one bundle per destination, with
/// duplicate (array, index) requests from different VPs merged into a
/// single wire entry. Returns the wave's completion state; responses are
/// consumed by [`wave_recv_next`].
fn start_wave(nc: &mut NodeCtx<'_>, bufs: &mut WaveBufs) -> WaveState {
    let me = nc.node_id();
    let cfg = nc.config();
    let phase = {
        let mut inner = nc.inner.borrow_mut();
        bufs.flat.clear();
        for (dest, entries) in inner.reqs.iter_mut().enumerate() {
            // drain() keeps each destination Vec's capacity for later waves.
            for e in entries.drain(..) {
                bufs.flat.push((dest, e.array, e.idx, e.vp, e.slot));
            }
        }
        inner.phase.global_seq
    };
    // Stable sort: requests for the same (dest, array, idx) keep their
    // ascending-VP-rank queue order, so wire bundles and ticket groups are
    // deterministic (`reqs` is dense and indexed by destination, so the
    // flat buffer is already in ascending-destination order; the sort's
    // leading dest key is then a stable no-op).
    bufs.flat
        .sort_by_key(|&(dest, array, idx, _, _)| (dest, array, idx));

    let mut ws = WaveState {
        pending: Vec::new(),
        next: 0,
        dests: 0,
        entries: 0,
        bytes_out: 0,
        bytes_in: 0,
    };
    let mut i = 0;
    while i < bufs.flat.len() {
        let dest = bufs.flat[i].0;
        debug_assert_ne!(dest, me);
        let mut entries = Vec::new();
        let mut tickets: Vec<Vec<(usize, u64)>> = Vec::new();
        let mut meta: Vec<(u32, u64)> = Vec::new();
        let mut deduped = 0u64;
        while i < bufs.flat.len() && bufs.flat[i].0 == dest {
            let (_, array, idx, _, _) = bufs.flat[i];
            let mut group = Vec::new();
            while i < bufs.flat.len() {
                let (d, a, x, vp, slot) = bufs.flat[i];
                if d != dest || a != array || x != idx {
                    break;
                }
                group.push((vp, slot));
                i += 1;
            }
            deduped += group.len() as u64 - 1;
            entries.push(msgs::ReqEntry {
                array,
                idx,
                slot: tickets.len() as u64,
            });
            tickets.push(group);
            meta.push((array, idx));
        }
        let bytes = cfg.bundle_header_bytes + entries.len() * cfg.req_entry_bytes;
        ws.dests += 1;
        ws.entries += entries.len() as u64;
        ws.bytes_out += bytes as u64;
        {
            let mut inner = nc.inner.borrow_mut();
            inner.traffic.req_bundles_out += 1;
            inner.traffic.req_entries_out += entries.len() as u64;
            inner.traffic.req_bytes_out += bytes as u64;
            inner.counters.msgs_sent += 1;
            inner.counters.bytes_sent += bytes as u64;
            inner.counters.bundles_sent += 1;
            inner.counters.dedup_reads += deduped;
        }
        let now = nc.ep.clock.now();
        nc.send_msg(
            Message::new(
                me,
                dest,
                msgs::tag(msgs::K_READ_REQ, phase),
                now,
                bytes,
                ReqBundle { phase, entries },
            ),
            msgs::K_READ_REQ,
        );
        ws.pending.push((dest, tickets, meta));
    }
    debug_assert!(!ws.pending.is_empty(), "wave started with no requests");
    ws
}

/// Block for the wave's next destination (ascending order; peers are
/// serviced and unrelated messages stashed meanwhile), fill the answered
/// slots — populating the read cache when enabled — and return the VPs
/// whose reads were satisfied.
fn wave_recv_next(nc: &mut NodeCtx<'_>, cells: &[Arc<VpCell>], ws: &mut WaveState) -> Vec<usize> {
    let cache_on = nc.config().read_cache;
    let (dest, tickets, meta) = &mut ws.pending[ws.next];
    let dest = *dest;
    let msg = nc.pump_recv(|m| msgs::untag(m.tag).0 == msgs::K_READ_RESP && m.src == dest);
    let bytes = msg.bytes as u64;
    let resp: RespBundle = msg.take();
    let mut inner = nc.inner.borrow_mut();
    inner.traffic.resp_bundles_in += 1;
    inner.traffic.resp_bytes_in += bytes;
    inner.counters.msgs_recv += 1;
    inner.counters.bytes_recv += bytes;
    let mut woken: Vec<usize> = Vec::new();
    let mut filled = 0usize;
    let mut idxs: Vec<u64> = Vec::new();
    for part in resp.parts {
        // The echoed "slots" are our tickets; expand each back to the
        // (vp, slot) waiters parked on that element.
        let groups: Vec<Vec<(usize, u64)>> = part
            .slots
            .iter()
            .map(|&t| std::mem::take(&mut tickets[t as usize]))
            .collect();
        idxs.clear();
        idxs.extend(part.slots.iter().map(|&t| {
            debug_assert_eq!(meta[t as usize].0, part.array, "ticket/part array mismatch");
            meta[t as usize].1
        }));
        inner.garrays[part.array as usize].fulfill_multi(
            part.values,
            &idxs,
            &groups,
            cache_on,
            &mut |vp, slot, value| {
                cells[vp].scratch().slots.fill(slot, value);
                woken.push(vp);
                filled += 1;
            },
        );
    }
    inner.outstanding_reads -= filled;
    ws.bytes_in += bytes;
    ws.next += 1;
    woken
}

/// Account a completed wave: counters, the pipelining latency-hiding
/// budget, and the tracing timeline instant.
fn finalize_wave(nc: &mut NodeCtx<'_>, ws: &WaveState) {
    let cfg = nc.config();
    let mut inner = nc.inner.borrow_mut();
    inner.traffic.waves += 1;
    inner.counters.waves += 1;
    if cfg.wave_pipelining && ws.dests >= 2 {
        // A multi-destination wave exposes one response leg that compute
        // merged during partial consumption can hide (charge_phase_time
        // takes min(pipelined_compute, pipeline_hideable)).
        inner.traffic.pipeline_hideable += cfg.machine.net.latency;
    }
    let wave_idx = inner.traffic.waves - 1;

    if nc.ep.tracer.enabled() {
        // Simulated time is charged at phase end, so the clock still reads
        // the phase-start instant here. Place the instant at the wave's
        // cumulative completion offset within the phase — round-trip
        // latency, per-bundle overheads both ways, serialization of the
        // larger direction — so Perfetto shows a real comm timeline
        // (DESIGN.md §11). Estimated elapsed only; never feeds the charged
        // phase time. One bundle went to each destination — the paper's
        // bundling invariant.
        let net = cfg.machine.net;
        let wave_cost = net.latency.scale(2)
            + net.overhead.scale(2 * ws.dests)
            + net.gap_per_byte.scale(ws.bytes_out.max(ws.bytes_in));
        inner.traffic.wave_elapsed += wave_cost;
        let ts = nc.ep.clock.now() + inner.traffic.wave_elapsed;
        drop(inner);
        nc.ep.tracer.instant(
            "wave",
            "comm",
            ts,
            vec![
                ("wave", ArgValue::U64(wave_idx)),
                ("dests", ArgValue::U64(ws.dests)),
                ("bundles", ArgValue::U64(ws.dests)),
                ("entries", ArgValue::U64(ws.entries)),
                ("bytes_out", ArgValue::U64(ws.bytes_out)),
                ("resp_bytes_in", ArgValue::U64(ws.bytes_in)),
            ],
        );
    }
}

/// End a node phase: publish node-shared writes, charge the cores' max
/// compute plus the node barrier, release the VPs.
fn node_phase_end(nc: &mut NodeCtx<'_>) {
    let cfg = nc.config();
    let t0 = nc.ep.clock.now();
    let compute = {
        let mut inner = nc.inner.borrow_mut();
        if let Some(c) = inner.checker.as_mut() {
            let mut found = c.end_phase();
            inner.violations.append(&mut found);
        }
        for na in inner.narrays.iter_mut() {
            na.apply();
        }
        debug_assert!(
            inner.garrays.iter().all(|g| !g.has_pending_writes()),
            "global writes buffered during a node phase"
        );
        let max = inner
            .core_compute
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        inner
            .core_compute
            .iter_mut()
            .for_each(|c| *c = SimTime::ZERO);
        inner.phase.open = None;
        inner.phase.entered = 0;
        inner.phase.arrived = 0;
        inner.phase.node_seq += 1;
        inner.phase.epoch += 1;
        inner.counters.barriers += 1;
        inner.phase_log.push(crate::state::PhaseRecord {
            kind: PhaseKind::Node,
            compute: max,
            service: SimTime::ZERO,
            comm: cfg.node_barrier,
            waves: 0,
            bytes_out: 0,
            bytes_in: 0,
        });
        max
    };
    nc.ep.clock.advance_compute(compute);
    nc.ep.clock.advance_comm(cfg.node_barrier);

    if nc.ep.tracer.enabled() {
        let idx = nc.inner.borrow().phase.node_seq - 1;
        let t1 = t0 + compute;
        nc.ep.tracer.span("compute", "phase", t0, t1, vec![]);
        nc.ep
            .tracer
            .span("barrier", "phase", t1, nc.ep.clock.now(), vec![]);
        emit_phase_summary(
            nc,
            "node_phase",
            t0,
            idx,
            vec![
                ("compute_ps", ArgValue::U64(compute.as_ps())),
                ("barrier_ps", ArgValue::U64(cfg.node_barrier.as_ps())),
            ],
        );
    }
}

/// End a global phase: ship write bundles, collect everyone's, apply
/// deterministically, charge the phase's modeled time, and run the
/// clock-synchronizing barrier.
fn global_phase_end(nc: &mut NodeCtx<'_>) {
    let me = nc.node_id();
    let nodes = nc.num_nodes();
    let cfg = nc.config();
    let phase = nc.inner.borrow().phase.global_seq;
    let t0 = nc.ep.clock.now();

    // Seeded crash: the node "fails" here — after the phase body, before
    // the exchange — and recovers from its super-step snapshot before
    // rejoining. Peers never notice: the recovering node simply reaches
    // the exchange later (reboot + restore + redo time), and the clock
    // barrier propagates the delay.
    if nc.rel.as_deref().is_some_and(|r| r.crash_at(phase)) {
        recover_from_crash(nc, phase);
    }

    // Seeded permanent death (fail-stop, DESIGN.md §15): victims scheduled
    // to die at the end of this phase are detected here, deterministically,
    // from the replicated fault plan — the modeled equivalent of "this
    // peer's retransmit attempts crossed the suspect timeout". With
    // replication off a death is unsurvivable and every node raises the
    // identical structured error; with it on, survivors charge the
    // detection stall, the victim's endpoint continues as its buddy's
    // hosted persona (restored from the replica), and the suspicion bits
    // OR-flood on the clock barrier below so every live node confirms the
    // death at the same phase boundary.
    let local_suspect = detect_permanent_deaths(nc, phase);

    // 0. Flush the conformance checker: the phase body is over, so its
    //    access record is complete.
    {
        let mut inner = nc.inner.borrow_mut();
        if let Some(c) = inner.checker.as_mut() {
            let mut found = c.end_phase();
            inner.violations.append(&mut found);
        }
    }

    // 1. Drain write buffers into per-destination parcels. First note
    //    which arrays this node wrote at all: the clock barrier OR-floods
    //    those bits so every node can invalidate stale cache lines for
    //    arrays that changed anywhere (DESIGN.md §13). One growable bit
    //    per array id — no overflow/wholesale fallback.
    let mut local_inv = NodeSet::new();
    let mut per_dest: Vec<Vec<(u32, Box<dyn std::any::Any + Send>)>> =
        (0..nodes).map(|_| Vec::new()).collect();
    let mut dest_entries = vec![0u64; nodes];
    let mut dest_bytes = vec![0usize; nodes];
    {
        let mut inner = nc.inner.borrow_mut();
        if cfg.read_cache {
            for (id, ga) in inner.garrays.iter().enumerate() {
                if ga.has_pending_writes() {
                    local_inv.insert(id);
                }
            }
        }
        for id in 0..inner.garrays.len() {
            for parcel in inner.garrays[id].drain_writes() {
                dest_entries[parcel.dest] += parcel.entries;
                dest_bytes[parcel.dest] += parcel.bytes;
                per_dest[parcel.dest].push((id as u32, parcel.payload));
            }
        }
    }

    // 2. Learn who sends what, then ship. Sparse protocol (DESIGN.md §17,
    //    the default): an O(log N) token dissemination allgathers every
    //    node's write-destination set, so only non-empty bundles travel and
    //    step 3 blocks on exactly the announced senders. Legacy protocol
    //    (`sparse_tokens` off): ship a bundle to every peer — empty ones
    //    act as end-of-phase tokens, uncharged as traffic but real wire
    //    messages, so they do count as messages — and receivers count to
    //    N−1.
    let sparse = cfg.sparse_tokens && nodes > 1;
    let expected: Option<NodeSet> = if sparse {
        let my_writes: NodeSet = (0..nodes)
            .filter(|&d| d != me && dest_entries[d] > 0)
            .collect();
        Some(exchange_sender_sets(nc, phase, &my_writes))
    } else {
        None
    };
    for dest in 0..nodes {
        if dest == me {
            continue;
        }
        let entries = dest_entries[dest];
        if sparse && entries == 0 {
            continue;
        }
        let parts = std::mem::take(&mut per_dest[dest]);
        let bytes = if entries > 0 {
            cfg.bundle_header_bytes + dest_bytes[dest]
        } else {
            0
        };
        {
            let mut inner = nc.inner.borrow_mut();
            if entries > 0 {
                inner.traffic.write_bundles_out += 1;
                inner.traffic.write_entries_out += entries;
                inner.traffic.write_bytes_out += bytes as u64;
                inner.counters.bundles_sent += 1;
            }
            inner.counters.msgs_sent += 1;
            inner.counters.bytes_sent += bytes as u64;
        }
        let now = nc.ep.clock.now();
        nc.send_msg(
            Message::new(
                me,
                dest,
                msgs::tag(msgs::K_WRITE, phase),
                now,
                bytes,
                WriteBundleMsg {
                    phase,
                    entries,
                    parts,
                },
            ),
            msgs::K_WRITE,
        );
    }

    // 3. Collect the announced (sparse) or everyone's (legacy) bundles,
    //    servicing read requests from stragglers still inside their phase
    //    bodies.
    let want = match &expected {
        Some(set) => set.count() as usize,
        None => nodes - 1,
    };
    let mut incoming: Vec<(u32, WriteBundleMsg)> = Vec::with_capacity(want);
    while incoming.len() < want {
        let msg = nc.pump_recv(|m| m.tag == msgs::tag(msgs::K_WRITE, phase));
        let src = msg.src as u32;
        let bytes = msg.bytes as u64;
        let bundle: WriteBundleMsg = msg.take();
        debug_assert_eq!(bundle.phase, phase);
        if let Some(set) = &expected {
            debug_assert!(
                set.contains(src as usize),
                "node {src} sent a K_WRITE bundle it never announced"
            );
            debug_assert!(
                bundle.entries > 0,
                "node {src} shipped an empty bundle under the sparse protocol"
            );
        }
        let mut inner = nc.inner.borrow_mut();
        if bundle.entries > 0 {
            inner.traffic.write_bundles_in += 1;
            inner.traffic.write_entries_in += bundle.entries;
            inner.traffic.write_bytes_in += bytes;
        }
        inner.counters.msgs_recv += 1;
        inner.counters.bytes_recv += bytes;
        drop(inner);
        incoming.push((src, bundle));
    }

    // 4. Apply: group parcels by array, sources in ascending order
    //    (own writes participate as source `me`).
    let mut by_array: ParcelsByArray = BTreeMap::new();
    for (array, payload) in std::mem::take(&mut per_dest[me]) {
        by_array
            .entry(array)
            .or_default()
            .push((me as u32, payload));
    }
    for (src, bundle) in incoming {
        for (array, payload) in bundle.parts {
            by_array.entry(array).or_default().push((src, payload));
        }
    }
    let mut applied_remote = 0u64;
    let push_on = cfg.read_cache && nodes > 1;
    {
        let mut inner = nc.inner.borrow_mut();
        // Every phase-`phase` read request has been serviced by now — the
        // legacy all-to-all guarantees it per link (a peer's requests
        // precede its K_WRITE bundle, and step 3 has all bundles), the
        // sparse protocol via the token dissemination's transitive flush
        // (see `exchange_sender_sets`) — and no phase+1 request can have
        // been serviced yet
        // (`global_seq` still gates them). Folding the parked service
        // counters here attributes them to this phase deterministically,
        // whatever real-time moment the requests actually arrived at.
        let deferred = std::mem::take(&mut inner.deferred_service_ctrs);
        inner.counters = inner.counters.merge(&deferred);
        // Fold the phase's serve log into the owner-side history. An
        // element arms for refresh pushes on its SECOND serve within
        // SERVE_TTL phases — a one-serve wonder never earns pushes, and
        // stale history (read-once apps) is pruned so the map stays
        // bounded by the hot working set. Pushes do not extend
        // `last_serve`: armed elements must re-earn their pushes every
        // TTL window (one two-miss hiccup per cycle; DESIGN.md §13).
        let mut serves = std::mem::take(&mut inner.deferred_serves);
        serves.sort_unstable();
        serves.dedup();
        for (peer, array, idx) in serves {
            let h = inner
                .serve_hist
                .entry((array, idx))
                .or_insert_with(|| ServeHist {
                    last_serve: phase,
                    readers: NodeSet::new(),
                    armed: false,
                });
            if phase > h.last_serve + SERVE_TTL {
                h.readers.clear();
                h.armed = false;
            }
            if h.readers.any() {
                h.armed = true;
            }
            h.readers.insert(peer);
            h.last_serve = phase;
        }
        inner
            .serve_hist
            .retain(|_, h| phase <= h.last_serve + SERVE_TTL);
        for (array, mut parcels) in by_array {
            parcels.sort_by_key(|(src, _)| *src);
            let (n, written) = {
                // Split borrow: applied writes bump tile recency on
                // resident tiles (write-through without admission,
                // DESIGN.md §18).
                let inner = &mut *inner;
                let tiles = &mut inner.tile_budget;
                inner.garrays[array as usize]
                    .apply_writes(parcels, &mut |off| tiles.touch(array, off))
            };
            applied_remote += n;
            if !push_on {
                continue;
            }
            // Rewritten elements that recently served remote readers get
            // their post-apply values pushed on the upcoming barrier
            // messages, refreshing peer caches without a request/response
            // wave next phase.
            let mut idxs: Vec<u64> = Vec::new();
            let mut masks: Vec<NodeSet> = Vec::new();
            for idx in written {
                if let Some(h) = inner.serve_hist.get(&(array, idx)) {
                    // Hop cutoff: a refresh pays its bytes once per
                    // dissemination hop, and reader `t` sits
                    // popcount((t - me) mod nodes) hops away on the
                    // barrier's source routes. Beyond two hops the pushed
                    // copies cost more wire than the fetch round-trip they
                    // save, so distant readers keep fetching. Pure function
                    // of node ids — identical on every host schedule.
                    let targets: NodeSet = h
                        .readers
                        .iter()
                        .filter(|&t| t != me && ((t + nodes - me) % nodes).count_ones() <= 2)
                        .collect();
                    if h.armed && targets.any() {
                        idxs.push(idx);
                        masks.push(targets);
                    }
                }
            }
            if !idxs.is_empty() {
                let values = inner.garrays[array as usize].refresh_collect(&idxs);
                inner.pending_refresh.push(RefreshPart {
                    array,
                    idxs,
                    masks,
                    values,
                });
            }
        }
        // Node-shared writes made inside the global phase publish too.
        for na in inner.narrays.iter_mut() {
            na.apply();
        }
        inner.service_time += cfg.service_overhead.scale(applied_remote);
        // The arrays now hold the next phase's snapshot: requests for
        // phase+1 may legally arrive (from nodes that already finished the
        // clock barrier) and be serviced from here on.
        inner.phase.global_seq += 1;
    }

    // 4a. Trace-guided adaptive repartitioning (DESIGN.md §14): every node
    //     holds the identical load window (the barrier's loads sidecar)
    //     and identical bounds, so all nodes compute the same cuts with no
    //     agreement round; elements migrate here — after writes applied,
    //     before the snapshot line advances — so crash recovery always
    //     restores post-migration partitions.
    if cfg.adaptive_balance {
        maybe_rebalance(nc, phase);
    }

    // 4b. Advance the crash-recovery line: the arrays now ARE the next
    //     super-step's consistent state. Phase-end refreshes are
    //     incremental: only the bytes the exchange just wrote into this
    //     node's partitions (plus migration arrivals) cost copy time.
    let dirty = dest_bytes[me] as u64 + {
        let inner = nc.inner.borrow();
        inner.traffic.write_bytes_in + inner.traffic.migr_bytes_in
    };
    if nc.snapshots_enabled() {
        nc.take_snapshot(Some(dirty));
    }

    // 4c. Buddy replication (DESIGN.md §15): stream the fresh recovery
    //     line to the cyclic successor as a frame riding the round-0
    //     barrier message — whose destination IS the buddy. The first
    //     frame (and the first after any death re-homes replicas) ships
    //     the full snapshot; later frames ship only the bytes written
    //     into this node's partitions this phase (own write parcels,
    //     peers' write bundles, migration arrivals — node-shared deltas
    //     ride free, like the barrier's other sidecars). Read before
    //     step 5 resets the traffic totals.
    let replica: Option<ReplicaFrame> = if cfg.replication && nodes > 1 {
        let mut inner = nc.inner.borrow_mut();
        let snap = inner
            .snapshots
            .as_ref()
            .expect("replication maintains snapshots");
        let (snap_phase, full) = (snap.phase, snap.bytes);
        let base = !inner.replica_base_sent;
        let bytes = if base {
            full
        } else {
            dest_bytes[me] as u64 + inner.traffic.write_bytes_in + inner.traffic.migr_bytes_in
        };
        inner.replica_base_sent = true;
        Some(ReplicaFrame {
            phase: snap_phase,
            bytes,
            base,
        })
    } else {
        None
    };

    // 5. Charge the phase's modeled time.
    let charge = charge_phase_time(nc);

    // 6. Clock-synchronizing dissemination barrier — carrying the cache
    //    invalidation bits, refresh pushes, the balancer's loads sidecar,
    //    and the failure-tolerance sidecars (suspicions, replica frame,
    //    hosted-persona compute) — then release the VPs.
    let my_load = (charge.compute + charge.service).as_ps();
    let hosted_ps = {
        let mut inner = nc.inner.borrow_mut();
        if inner.hosted {
            // The buddy serializes this dead rank's re-executed VPs after
            // its own: this phase's busy time, plus the one-shot failover
            // cost the phase it died.
            let extra = inner.hosted_extra;
            inner.hosted_extra = SimTime::ZERO;
            my_load + extra.as_ps()
        } else {
            0
        }
    };
    let barrier_start = nc.ep.clock.now();
    clock_barrier(
        nc,
        phase,
        local_inv,
        my_load,
        local_suspect,
        replica,
        hosted_ps,
    );

    {
        let mut inner = nc.inner.borrow_mut();
        inner.phase.open = None;
        inner.phase.entered = 0;
        inner.phase.arrived = 0;
        inner.phase.epoch += 1;
        inner.counters.barriers += 1;
    }

    if nc.ep.tracer.enabled() {
        let barrier_end = nc.ep.clock.now();
        nc.ep
            .tracer
            .span("barrier", "phase", barrier_start, barrier_end, vec![]);
        let t = charge.traffic;
        // Refresh pushes sent during the barrier that just closed this
        // phase land in the live (already reset) traffic — read them
        // there so the summary's bundle reconciliation stays exact
        // (their *time* is charged next phase; see `Traffic` docs).
        let refresh_out = nc.inner.borrow().traffic.refresh_bundles_out;
        emit_phase_summary(
            nc,
            "global_phase",
            t0,
            phase,
            vec![
                ("compute_ps", ArgValue::U64(charge.compute.as_ps())),
                ("service_ps", ArgValue::U64(charge.service.as_ps())),
                ("comm_ps", ArgValue::U64(charge.comm.as_ps())),
                (
                    "barrier_ps",
                    ArgValue::U64((barrier_end - barrier_start).as_ps()),
                ),
                ("waves", ArgValue::U64(t.waves)),
                ("bytes_out", ArgValue::U64(charge.bytes_out)),
                ("bytes_in", ArgValue::U64(charge.bytes_in)),
                ("req_bundles_out", ArgValue::U64(t.req_bundles_out)),
                ("write_bundles_out", ArgValue::U64(t.write_bundles_out)),
                ("refresh_bundles_out", ArgValue::U64(refresh_out)),
                ("rel_delay_ps", ArgValue::U64(t.rel_delay.as_ps())),
            ],
        );
    }
}

/// The modeled time charged for one global phase, plus the traffic totals
/// it was computed from (kept for the tracer's phase summary).
struct PhaseCharge {
    compute: SimTime,
    service: SimTime,
    comm: SimTime,
    bytes_out: u64,
    bytes_in: u64,
    traffic: Traffic,
}

/// Turn the phase's traffic totals and compute accumulators into simulated
/// time on this node's clock.
fn charge_phase_time(nc: &mut NodeCtx<'_>) -> PhaseCharge {
    let cfg = nc.config();
    let net = cfg.machine.net;
    let (compute, service, t) = {
        let mut inner = nc.inner.borrow_mut();
        let compute = inner
            .core_compute
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        inner
            .core_compute
            .iter_mut()
            .for_each(|c| *c = SimTime::ZERO);
        let service = inner.service_time;
        inner.service_time = SimTime::ZERO;
        let t = inner.traffic;
        inner.traffic = Traffic::default();
        (compute, service, t)
    };

    // Refresh pushes ride barrier messages; the previous barrier recorded
    // their bytes into the (already reset) live Traffic, so they surface
    // here one phase later — symmetrically on sender and receiver, hence
    // still deterministic. The job's final barrier's refresh bytes are
    // never charged as time (the counters still count them).
    let mut bytes_out =
        t.req_bytes_out + t.resp_bytes_out + t.write_bytes_out + t.refresh_bytes_out;
    let mut bytes_in = t.req_bytes_in + t.resp_bytes_in + t.write_bytes_in + t.refresh_bytes_in;
    // Migration payloads (adaptive repartitioning, DESIGN.md §14) are
    // runtime bulk transfers — one bundle per peer regardless of the
    // bundling ablation — charged in the rebalancing phase's gap term.
    bytes_out += t.migr_bytes_out;
    bytes_in += t.migr_bytes_in;
    // Replica frames ride barrier messages like refresh pushes and are
    // recorded into the live (already reset) Traffic during the barrier,
    // so their time likewise surfaces one phase later — but only on the
    // RECEIVING end (the buddy ingesting the frame into its replica
    // store): the sender streams the frame during the barrier gap it is
    // already paying, so the send side is modeled free. The final
    // barrier's frame is never charged as time.
    bytes_in += t.replica_bytes_in;
    let (mut msgs_out, mut msgs_in) = if cfg.bundling {
        (
            t.req_bundles_out + t.resp_bundles_out + t.write_bundles_out,
            t.req_bundles_in + t.resp_bundles_in + t.write_bundles_in,
        )
    } else {
        // Ablation: every element access is its own message, with its own
        // per-message overhead and framing bytes.
        let extra_out = (t.req_entries_out + t.req_entries_in + t.write_entries_out) * 16;
        let extra_in = (t.req_entries_in + t.req_entries_out + t.write_entries_in) * 16;
        bytes_out += extra_out;
        bytes_in += extra_in;
        (
            t.req_entries_out + t.req_entries_in + t.write_entries_out,
            t.req_entries_in + t.req_entries_out + t.write_entries_in,
        )
    };

    msgs_out += t.migr_bundles_out;
    msgs_in += t.migr_bundles_in;

    // Reliability layer (zero when disabled): retransmitted/duplicate
    // envelopes pay per-message overhead, and backoff/fault delay is
    // exposed wait time. Cumulative acks are modeled as piggybacked and
    // cost no simulated time (see `Traffic::rel_extra_msgs`).
    msgs_out += t.rel_extra_msgs;

    // Node-level sender: the runtime owns the NIC (share factor 1).
    let gap = net.gap_per_byte.scale(bytes_out.max(bytes_in));
    let overhead = net.overhead.scale(msgs_out + msgs_in);
    // Wave pipelining hides compute merged while a multi-destination wave
    // was partially consumed under the wave's exposed response legs —
    // capped by the hideable budget (one latency per >=2-destination
    // wave), which is itself <= latency.scale(waves), so the subtraction
    // cannot underflow. Both accumulators are zero with pipelining off.
    let hidden = if cfg.wave_pipelining {
        t.pipelined_compute.min(t.pipeline_hideable)
    } else {
        SimTime::ZERO
    };
    let latency = net.latency.scale(2 * t.waves) - hidden;

    let busy = compute + service;
    let busy_start = nc.ep.clock.now();
    nc.ep.clock.advance_compute(busy);
    let comm = if cfg.overlap {
        // Gap time hides under computation (§3.3 overlap); overheads and
        // wave round trips do not.
        let exposed_gap = if gap > busy {
            gap - busy
        } else {
            SimTime::ZERO
        };
        exposed_gap + overhead + latency
    } else {
        gap + overhead + latency
    };
    let comm = comm + t.rel_delay;
    nc.ep.clock.advance_comm(comm);
    nc.inner
        .borrow_mut()
        .phase_log
        .push(crate::state::PhaseRecord {
            kind: PhaseKind::Global,
            compute,
            service,
            comm,
            waves: t.waves,
            bytes_out,
            bytes_in,
        });

    if nc.ep.tracer.enabled() {
        let busy_end = busy_start + busy;
        nc.ep.tracer.span(
            "compute",
            "phase",
            busy_start,
            busy_end,
            vec![
                ("compute_ps", ArgValue::U64(compute.as_ps())),
                ("service_ps", ArgValue::U64(service.as_ps())),
            ],
        );
        nc.ep.tracer.span(
            "comm",
            "phase",
            busy_end,
            busy_end + comm,
            vec![
                ("waves", ArgValue::U64(t.waves)),
                ("bytes_out", ArgValue::U64(bytes_out)),
                ("bytes_in", ArgValue::U64(bytes_in)),
            ],
        );
    }

    PhaseCharge {
        compute,
        service,
        comm,
        bytes_out,
        bytes_in,
        traffic: t,
    }
}

/// Sparse-exchange sender-set allgather (DESIGN.md §17): ⌈log₂ N⌉
/// dissemination rounds on the clock barrier's edge pattern, forwarding
/// every known `(node, write-destination set)` pair whole and deduping
/// through a [`NodeSet`] — exactly the barrier's loads-sidecar shape.
/// Returns the set of peers that announced a non-empty [`K_WRITE`] bundle
/// for this node this phase.
///
/// Modeled free: zero wire bytes, no clock advance, no message counters.
/// The N−1 empty tokens this replaces were equally free in simulated time
/// (their only real cost was the O(N²) message count), so fault-free
/// makespans stay bit-identical to the legacy protocol.
///
/// Determinism note — this dissemination is also the exchange's *flush
/// point*. A peer's phase-`phase` read requests are enqueued to this
/// node's inbox before the peer's round-0 token send (program order on
/// the peer), and that send transitively happens-before the token message
/// that carries the peer's pair here (each hop forwards only after
/// receiving). The per-endpoint inbox is one FIFO queue, so by the time
/// the final round's `pump_recv` returns, every peer's phase-`phase`
/// requests have been dequeued — and `pump_recv` services them inline.
/// The legacy protocol derived the same guarantee from collecting all N−1
/// bundles; step 4's deferred-counter and serve-history folds rely on it
/// either way. No phase-`phase+1` token can arrive before step 6: a peer
/// starts its next phase only after its clock barrier completes, which
/// transitively requires this node's barrier sends.
///
/// [`K_WRITE`]: msgs::K_WRITE
fn exchange_sender_sets(nc: &mut NodeCtx<'_>, phase: u64, my_writes: &NodeSet) -> NodeSet {
    let me = nc.node_id();
    let nodes = nc.num_nodes();
    // The accumulated pair vector lives behind an `Arc`: each round's send
    // is a refcount bump, not an O(2^round) entry copy (clone-audit,
    // DESIGN.md §17). `Arc::make_mut` below copies-on-write only while the
    // in-flight message still shares the allocation.
    let mut writers: Arc<Vec<(u32, NodeSet)>> = Arc::new(vec![(me as u32, my_writes.clone())]);
    let mut known = NodeSet::single(me);
    let mut d = 1usize;
    let mut round = 0u32;
    while d < nodes {
        let to = (me + d) % nodes;
        let from = (me + nodes - d) % nodes;
        let tag = msgs::tag(msgs::K_TOKENS, msgs::barrier_meta(phase, round));
        let now = nc.ep.clock.now();
        nc.send_msg(
            Message::new(
                me,
                to,
                tag,
                now,
                0,
                TokenMsg {
                    phase,
                    writers: Arc::clone(&writers),
                },
            ),
            msgs::K_TOKENS,
        );
        let msg = nc.pump_recv(|m| m.tag == tag && m.src == from);
        let tm: TokenMsg = msg.take();
        debug_assert_eq!(tm.phase, phase);
        let acc = Arc::make_mut(&mut writers);
        for (n, ws) in tm.writers.iter() {
            if !known.contains(*n as usize) {
                known.insert(*n as usize);
                acc.push((*n, ws.clone()));
            }
        }
        d <<= 1;
        round += 1;
    }
    debug_assert_eq!(writers.len(), nodes, "sender-set allgather incomplete");
    let expected: NodeSet = writers
        .iter()
        .filter(|(n, ws)| *n as usize != me && ws.contains(me))
        .map(|(n, _)| *n as usize)
        .collect();
    if nc.ep.tracer.enabled() {
        nc.ep.tracer.instant(
            "token_exchange",
            "runtime",
            nc.ep.clock.now(),
            vec![
                ("phase", ArgValue::U64(phase)),
                ("write_dests", ArgValue::U64(my_writes.count() as u64)),
                ("expected_senders", ArgValue::U64(expected.count() as u64)),
            ],
        );
    }
    expected
}

/// Dissemination barrier among nodes that also propagates the maximum
/// clock, so every node leaves the phase at a consistent (and
/// deterministic) simulated instant.
///
/// The read-cache coherence sidecar rides the same messages (DESIGN.md
/// §13), adding zero messages of its own:
///
/// - `inv_bits` — each node's "arrays I wrote this phase" bits are
///   OR-flooded; the dissemination pattern guarantees every node's bits
///   reach every other node by the final round.
/// - `refreshes` — owner-pushed post-apply values for armed elements,
///   source-routed along the dissemination edges. At round `r` (edge
///   `me → me+2^r`), an entry is forwarded for exactly the targets `t`
///   whose offset `(t - holder) mod nodes` has bit `r` set. By induction,
///   an entry held at the start of round `r` has all offset bits `< r`
///   clear (each bit is consumed at its round, and a forward received in
///   round `r` arrives with offset reduced by `2^r`), so every target
///   receives each entry exactly once and nothing is left pending after
///   the last round.
///
/// Barrier messages never count toward `msgs_sent`/`msgs_recv` (the
/// pre-existing convention: barrier cost is modeled, not counted);
/// non-empty refresh payloads DO count as a bundle and bytes so the
/// fig-bench traffic columns reflect them honestly.
///
/// A third sidecar rides the same messages: `loads` — each node's
/// compute+service time for the phase the barrier closes, forwarded whole
/// each round (an allgather). After the final round every node holds the
/// identical per-node load vector, which feeds the adaptive
/// repartitioner's decision function one phase later (DESIGN.md §14).
/// Like `inv_bits`, modeled free: it changes no clock and no counter, so
/// makespans are bit-identical whether `adaptive_balance` is on or off —
/// until a migration actually fires.
/// Failure-tolerance sidecars (DESIGN.md §15) ride the same messages too:
/// `suspect_bits` OR-floods like `inv_bits` so every live node confirms a
/// death at the same boundary; the round-0 message (destination = cyclic
/// successor = the replication buddy) additionally carries the snapshot
/// `replica` frame and the `hosted_compute_ps` a hosted persona charges to
/// its host. Replica bytes are accounted here explicitly (they must not
/// ride `Message::bytes`, which the receive path attributes to refresh
/// traffic); newly confirmed deaths are folded after the final round.
fn clock_barrier(
    nc: &mut NodeCtx<'_>,
    phase: u64,
    local_inv: NodeSet,
    my_load: u64,
    local_suspect: NodeSet,
    mut replica: Option<ReplicaFrame>,
    hosted_ps: u64,
) {
    let me = nc.node_id();
    let nodes = nc.num_nodes();
    if nodes == 1 {
        // Single node: every read is local, the cache holds nothing. Still
        // feed the balancer's window so its counters are uniform across
        // node counts (rebalancing one node is a no-op anyway).
        let mut inner = nc.inner.borrow_mut();
        if inner.load_acc.len() != 1 {
            inner.load_acc = vec![0; 1];
        }
        inner.load_acc[0] = inner.load_acc[0].saturating_add(my_load);
        inner.load_window += 1;
        return;
    }
    let cfg = nc.config();
    let net = cfg.machine.net;
    let push_on = cfg.read_cache;
    let me_set = NodeSet::single(me);
    let mut inv = local_inv;
    // Refresh entries addressed to this node, absorbed only after the
    // invalidation sweep (the pushed values are post-exchange truth and
    // must survive it).
    let mut collected: Vec<CollectedRefresh> = Vec::new();
    // Loads allgather state: every (node, load) pair this node knows.
    // Round r's receive doubles the coverage, so the final round leaves
    // all `nodes` entries here (asserted below). `known` mirrors the
    // vector as a bitset so each received pair dedups in O(1) instead of
    // an O(N) scan per entry (O(N²) per barrier at 1024 nodes).
    // Arc'd for the same reason as `exchange_sender_sets`' pair vector:
    // the allgather forwards the whole accumulated vector every round, so
    // sending a refcount bump instead of an O(N)-entry clone keeps the
    // barrier's copy work linear in N rather than N·log N.
    let mut known_loads: Arc<Vec<(u32, u64)>> = Arc::new(vec![(me as u32, my_load)]);
    let mut known = me_set.clone();
    // Suspicion OR-flood state, seeded with this node's own detections.
    let mut suspects = local_suspect;

    let mut d = 1usize;
    let mut round = 0u32;
    while d < nodes {
        let to = (me + d) % nodes;
        let from = (me + nodes - d) % nodes;
        nc.ep.clock.advance_comm(net.overhead);

        // Split the pending refresh entries: targets whose offset has this
        // round's bit set travel on this edge; the rest stay for a later
        // round.
        let mut refreshes: Vec<RefreshPart> = Vec::new();
        let mut refresh_bytes = 0u64;
        if push_on {
            let mut rt = NodeSet::new();
            for t in 0..nodes {
                if t != me && ((t + nodes - me) % nodes) & d != 0 {
                    rt.insert(t);
                }
            }
            let pending = {
                let mut inner = nc.inner.borrow_mut();
                std::mem::take(&mut inner.pending_refresh)
            };
            for part in pending {
                let send_take: Vec<bool> = part.masks.iter().map(|m| m.intersects(&rt)).collect();
                let keep_take: Vec<bool> =
                    part.masks.iter().map(|m| m.difference(&rt).any()).collect();
                let mut inner = nc.inner.borrow_mut();
                let ga = &inner.garrays[part.array as usize];
                if send_take.iter().any(|&b| b) {
                    let (values, vbytes) = ga.refresh_select(part.values.as_ref(), &send_take);
                    let (idxs, masks): (Vec<u64>, Vec<NodeSet>) = part
                        .idxs
                        .iter()
                        .zip(&part.masks)
                        .zip(&send_take)
                        .filter(|&(_, &take)| take)
                        .map(|((&idx, m), _)| (idx, m.intersection(&rt)))
                        .unzip();
                    // A refresh entry is (idx, value): no slot ticket
                    // (nobody is waiting on it), the array id is amortized
                    // into an 8-byte part header, and the indices are
                    // sorted ascending (they come from `apply_writes`'
                    // `written` list), so the wire format delta-varint
                    // encodes them — charged at 4 bytes per index, versus
                    // 12 for a random-access request entry.
                    refresh_bytes += 8 + vbytes + idxs.len() as u64 * 4;
                    refreshes.push(RefreshPart {
                        array: part.array,
                        idxs,
                        masks,
                        values,
                    });
                }
                if keep_take.iter().any(|&b| b) {
                    let (values, _) = ga.refresh_select(part.values.as_ref(), &keep_take);
                    let (idxs, masks): (Vec<u64>, Vec<NodeSet>) = part
                        .idxs
                        .iter()
                        .zip(&part.masks)
                        .zip(&keep_take)
                        .filter(|&(_, &take)| take)
                        .map(|((&idx, m), _)| (idx, m.difference(&rt)))
                        .unzip();
                    inner.pending_refresh.push(RefreshPart {
                        array: part.array,
                        idxs,
                        masks,
                        values,
                    });
                }
            }
            if refresh_bytes > 0 {
                // Refreshes ride a barrier message that is sent either
                // way, so they are NOT a new bundle or message — only
                // their bytes hit the wire. `refresh_bundles_out` counts
                // barrier sends that carried a refresh payload.
                let mut inner = nc.inner.borrow_mut();
                inner.counters.bytes_sent += refresh_bytes;
                inner.traffic.refresh_bytes_out += refresh_bytes;
                inner.traffic.refresh_bundles_out += 1;
            }
        }

        // The replica frame and hosted-persona compute ride only the
        // round-0 edge: its destination, the cyclic successor, IS the
        // buddy. Frame bytes are accounted out-of-band (not on
        // `Message::bytes`: the receive path below credits those to
        // refresh traffic).
        let frame = if round == 0 { replica.take() } else { None };
        if let Some(fr) = &frame {
            let mut inner = nc.inner.borrow_mut();
            inner.counters.bytes_sent += fr.bytes;
            inner.counters.replica_bytes += fr.bytes;
            inner.traffic.replica_bytes_out += fr.bytes;
        }
        let now = nc.ep.clock.now();
        let tag = msgs::tag(msgs::K_BARRIER, msgs::barrier_meta(phase, round));
        // `ts` is the arrival instant (send time + latency, plus any fault
        // delay added by the reliability layer in send_msg).
        nc.send_msg(
            Message::new(
                me,
                to,
                tag,
                now + net.latency,
                refresh_bytes as usize,
                BarrierMsg {
                    // The two bitsets stay owned clones on purpose
                    // (clone-audit): a NodeSet is a few machine words
                    // copied by memcpy, and both are OR-mutated every
                    // round, so an Arc would deep-copy under
                    // `make_mut` anyway. Only the variable-length
                    // `loads` sidecar rides an Arc.
                    inv_bits: inv.clone(),
                    suspect_bits: suspects.clone(),
                    replica: frame,
                    hosted_compute_ps: if round == 0 { hosted_ps } else { 0 },
                    refreshes,
                    loads: Arc::clone(&known_loads),
                },
            ),
            msgs::K_BARRIER,
        );
        let msg = nc.pump_recv(|m| m.tag == tag && m.src == from);
        nc.ep.clock.wait_until(msg.ts);
        nc.ep.clock.advance_comm(net.overhead);
        let bytes_in = msg.bytes as u64;
        let bm: BarrierMsg = msg.take();
        inv.union_with(&bm.inv_bits);
        suspects.union_with(&bm.suspect_bits);
        {
            let acc = Arc::make_mut(&mut known_loads);
            for &(n, l) in bm.loads.iter() {
                if !known.contains(n as usize) {
                    known.insert(n as usize);
                    acc.push((n, l));
                }
            }
        }
        if bytes_in > 0 {
            let mut inner = nc.inner.borrow_mut();
            inner.counters.bytes_recv += bytes_in;
            inner.traffic.refresh_bytes_in += bytes_in;
        }
        if let Some(fr) = bm.replica {
            let mut inner = nc.inner.borrow_mut();
            inner.counters.bytes_recv += fr.bytes;
            inner.traffic.replica_bytes_in += fr.bytes;
            inner.replica_in = Some((fr.phase, fr.bytes, fr.base));
        }
        if bm.hosted_compute_ps > 0 {
            // This node hosts its predecessor's persona: the dead rank's
            // re-executed work serializes after ours, so our clock (and
            // through later rounds, the global makespan) reflects it.
            nc.ep
                .clock
                .advance_compute(SimTime::from_ps(bm.hosted_compute_ps));
        }
        for part in bm.refreshes {
            let fwd_take: Vec<bool> = part
                .masks
                .iter()
                .map(|m| m.difference(&me_set).any())
                .collect();
            let mine_take: Vec<bool> = part.masks.iter().map(|m| m.contains(me)).collect();
            if fwd_take.iter().any(|&b| b) {
                let mut inner = nc.inner.borrow_mut();
                let ga = &inner.garrays[part.array as usize];
                let (values, _) = ga.refresh_select(part.values.as_ref(), &fwd_take);
                let (idxs, masks): (Vec<u64>, Vec<NodeSet>) = part
                    .idxs
                    .iter()
                    .zip(&part.masks)
                    .zip(&fwd_take)
                    .filter(|&(_, &take)| take)
                    .map(|((&idx, m), _)| (idx, m.difference(&me_set)))
                    .unzip();
                inner.pending_refresh.push(RefreshPart {
                    array: part.array,
                    idxs,
                    masks,
                    values,
                });
            }
            if mine_take.iter().any(|&b| b) {
                collected.push((part.array, part.idxs, part.values, mine_take));
            }
        }
        d <<= 1;
        round += 1;
    }

    // Fold the complete load vector into the balancer's window. Every node
    // folds the identical vector at the identical boundary, so the window
    // stays replicated without ever being exchanged itself.
    {
        let mut inner = nc.inner.borrow_mut();
        debug_assert_eq!(
            known_loads.len(),
            nodes,
            "loads sidecar incomplete after the final dissemination round"
        );
        if inner.load_acc.len() != nodes {
            inner.load_acc = vec![0; nodes];
        }
        for &(n, l) in known_loads.iter() {
            let slot = &mut inner.load_acc[n as usize];
            *slot = slot.saturating_add(l);
        }
        inner.load_window += 1;
    }

    // Confirm deaths (DESIGN.md §15): after the final round every node
    // holds the identical suspicion union, so each newly suspected node is
    // confirmed dead by all survivors at this same boundary. The dead
    // rank's partitions and VPs re-home onto its *effective buddy* — the
    // first cyclic successor not itself dead — which counts the failover,
    // emits the trace instant with the adopted footprint, and (on any
    // confirmation) restarts replica streams from a fresh base frame.
    let newly = {
        let mut inner = nc.inner.borrow_mut();
        let newly = suspects.difference(&inner.dead_bits);
        if newly.any() {
            inner.dead_bits.union_with(&newly);
            inner.replica_base_sent = false;
            inner.counters.peers_confirmed_dead += u64::from(newly.difference(&me_set).count());
        }
        newly
    };
    if newly.any() && !cfg.replication {
        // Unsurvivable: no replica stream exists, so the dead rank's
        // partitions are gone. The barrier is already complete — every
        // node stands at this same confirmation point with nothing left
        // in flight — so every node (victim included) raises the
        // IDENTICAL structured error naming the dead node, and whichever
        // endpoint's panic the cluster driver re-raises first, the caller
        // sees the same payload. Victims black-hole their inbox first so
        // defensive late traffic can never observe a hung-up peer.
        let victim = newly.first().expect("newly is non-empty");
        if newly.contains(me) {
            nc.ep.net.mark_dead();
        }
        RecoveryError {
            node: victim,
            phase,
            reason: "node died permanently with replication disabled \
                     (enable PpmConfig::with_replication / PPM_REPLICATION \
                     to survive fail-stop faults)"
                .into(),
        }
        .raise();
    }
    if newly.any() {
        let dead = nc.inner.borrow().dead_bits.clone();
        for v in newly.iter() {
            let mut buddy = (v + 1) % nodes;
            while dead.contains(buddy) {
                buddy = (buddy + 1) % nodes;
            }
            if buddy != me {
                continue;
            }
            let (elems, bytes, vps) = {
                let mut inner = nc.inner.borrow_mut();
                inner.counters.failovers += 1;
                let mut elems = 0u64;
                let mut bytes = 0u64;
                for ga in inner.garrays.iter() {
                    let r = ga.dist().owned_range(v);
                    elems += (r.end - r.start) as u64;
                    bytes += ga.owned_bytes(v);
                }
                let vps = inner.peer_vps.get(v).copied().unwrap_or(0);
                (elems, bytes, vps)
            };
            nc.ep.tracer.instant(
                "failover",
                "runtime",
                nc.ep.clock.now(),
                vec![
                    ("phase", ArgValue::U64(phase)),
                    ("victim", ArgValue::U64(v as u64)),
                    ("adopted_elems", ArgValue::U64(elems)),
                    ("adopted_bytes", ArgValue::U64(bytes)),
                    ("adopted_vps", ArgValue::U64(vps)),
                ],
            );
        }
    }

    if cfg.read_cache {
        let mut inner = nc.inner.borrow_mut();
        debug_assert!(
            inner.pending_refresh.is_empty(),
            "refresh entries survived the final dissemination round"
        );
        // Invalidate, THEN absorb: the pushed values are already
        // post-exchange truth for the bits being invalidated.
        for (id, ga) in inner.garrays.iter_mut().enumerate() {
            if inv.contains(id) {
                ga.cache_clear();
            }
        }
        for (array, idxs, values, take) in collected {
            inner.garrays[array as usize].refresh_absorb(&idxs, values.as_ref(), &take);
        }
    }
}

/// Phase-boundary recovery from a seeded [`CrashFault`]: the node "fails"
/// at the end of global phase `phase` (body done, exchange not started),
/// reboots, restores its owned shared-array partitions and phase sequence
/// from the last super-step snapshot, and re-executes the lost phase body.
/// Re-execution is deterministic — the write buffers it would rebuild are
/// exactly the ones already in hand — so the recovered node rejoins the
/// exchange with bit-identical state, just later: reboot + restore copy +
/// redo compute are charged to its clock and propagate through the clock
/// barrier.
///
/// [`CrashFault`]: ppm_simnet::CrashFault
fn recover_from_crash(nc: &mut NodeCtx<'_>, phase: u64) {
    let cfg = nc.config();
    let me = nc.node_id();
    let t0 = nc.ep.clock.now();
    let (redo, bytes) = restore_from_snapshot(nc, me, phase);
    nc.inner.borrow_mut().counters.crash_recoveries += 1;
    nc.ep.clock.advance_compute(cfg.crash_reboot);
    // Restore is a streaming copy back out of the snapshot store: charged
    // at cache-line granularity like the capture itself.
    nc.ep
        .clock
        .advance_compute(cfg.machine.core.mem_ops(bytes / 64));
    nc.ep.clock.advance_compute(redo);

    if nc.ep.tracer.enabled() {
        nc.ep.tracer.span(
            "crash_recovery",
            "reliability",
            t0,
            nc.ep.clock.now(),
            vec![
                ("phase", ArgValue::U64(phase)),
                ("restored_bytes", ArgValue::U64(bytes)),
                ("redo_ps", ArgValue::U64(redo.as_ps())),
            ],
        );
    }
}

/// Restore every shared array from the last super-step snapshot and
/// return the pending redo compute (the crashed phase body's uncharged
/// per-core maximum) plus the bytes restored. Any inconsistency — missing
/// snapshot, wrong recovery line, payload/shape mismatch — raises the
/// structured [`RecoveryError`] naming `node` and `phase` instead of a
/// bare panic, so harnesses can observe recovery failures programmatically.
fn restore_from_snapshot(nc: &mut NodeCtx<'_>, node: usize, phase: u64) -> (SimTime, u64) {
    let fail = |reason: String| -> ! {
        RecoveryError {
            node,
            phase,
            reason,
        }
        .raise()
    };
    let mut inner = nc.inner.borrow_mut();
    let snaps = match inner.snapshots.take() {
        Some(s) => s,
        None => fail("crash fault fired with no snapshot (runtime bug)".into()),
    };
    if snaps.phase != phase {
        fail(format!(
            "snapshot is not the crashed super-step's recovery line \
             (snapshot phase {}, crashed phase {phase})",
            snaps.phase
        ));
    }
    let mut bytes = 0u64;
    for (ga, s) in inner.garrays.iter_mut().zip(&snaps.garrays) {
        bytes += ga.restore_local(s.as_ref()).unwrap_or_else(|e| fail(e));
    }
    for (na, s) in inner.narrays.iter_mut().zip(&snaps.narrays) {
        bytes += na.restore_local(s.as_ref()).unwrap_or_else(|e| fail(e));
    }
    inner.snapshots = Some(snaps);
    // The phase body's compute still sits uncharged in the per-core
    // accumulators; the redo costs that much again.
    let redo = inner
        .core_compute
        .iter()
        .copied()
        .fold(SimTime::ZERO, SimTime::max);
    (redo, bytes)
}

/// Entry hook of [`global_phase_end`] for seeded permanent deaths
/// (DESIGN.md §15). Returns this node's local suspicion bits for the
/// clock barrier's OR-flood (zero when nothing died here).
///
/// Detection is a pure function of the replicated fault plan — the
/// deterministic stand-in for "retransmit attempts to this peer crossed
/// [`PpmConfig::suspect_timeout`] of simulated time" — so every node
/// suspects the same victims at the same phase boundary without
/// exchanging anything beyond the barrier sidecar. Survivors charge the
/// timeout as reliability stall; retry counters are untouched (no real
/// retransmissions happen, and `retries == faults_dropped` must keep
/// holding).
///
/// [`PpmConfig::suspect_timeout`]: crate::PpmConfig
fn detect_permanent_deaths(nc: &mut NodeCtx<'_>, phase: u64) -> NodeSet {
    let victims = match nc.rel.as_deref() {
        Some(r) => r.perm_victims_at(phase),
        None => return NodeSet::new(),
    };
    if victims.is_empty() {
        return NodeSet::new();
    }
    debug_assert!(
        victims.iter().all(|&v| phase == 0
            || !nc
                .rel
                .as_deref()
                .is_some_and(|r| r.perm_dead_by(v, phase - 1))),
        "a node can die only once (enforced by FaultConfig::with_permanent_crash)"
    );
    let me = nc.node_id();
    let nodes = nc.num_nodes();
    let cfg = nc.config();
    if nodes == 1 {
        // No barrier rounds will run to confirm the death, and a lone
        // node has no buddy even with replication on: fail here with the
        // structured error.
        nc.inner.borrow_mut().dead_bits.insert(victims[0]);
        nc.ep.net.mark_dead();
        RecoveryError {
            node: victims[0],
            phase,
            reason: "single-node job cannot survive a permanent death \
                     (no buddy exists to host a replica)"
                .into(),
        }
        .raise();
    }
    let survivable = cfg.replication;
    let mut bits = NodeSet::new();
    for &v in &victims {
        bits.insert(v);
        if v == me {
            if survivable {
                fail_over_self(nc, phase);
            }
            // Unsurvivable deaths carry the suspicion through the barrier
            // and abort at the confirmation point (clock_barrier), where
            // every node raises the identical error with nobody blocked.
        } else {
            let mut inner = nc.inner.borrow_mut();
            inner.counters.peers_suspected += 1;
            inner.traffic.rel_delay += cfg.suspect_timeout;
        }
    }
    bits
}

/// This node just died permanently — and becomes its buddy's *hosted
/// persona* (DESIGN.md §15): the endpoint thread continues as the
/// deterministic reconstruction the buddy performs from its replica.
/// Logical computation is unchanged (the replica is byte-identical to the
/// victim's own snapshot by construction, so the restore uses the local
/// copy), which is what makes results bit-identical to the fault-free
/// run; only the cost model changes. The persona charges the detection
/// stall plus the restore-and-redo here, and from now on ships its
/// per-phase busy time to the buddy via the barrier's
/// `hosted_compute_ps` sidecar (the buddy serializes the persona's VPs
/// after its own).
fn fail_over_self(nc: &mut NodeCtx<'_>, phase: u64) {
    let cfg = nc.config();
    let me = nc.node_id();
    let t0 = nc.ep.clock.now();
    let (redo, bytes) = restore_from_snapshot(nc, me, phase);
    let restore = cfg.machine.core.mem_ops(bytes / 64);
    // Nobody restores anything until the suspect timeout has confirmed
    // the death; no reboot is charged (the buddy is already up).
    nc.ep.clock.advance_comm(cfg.suspect_timeout);
    nc.ep.clock.advance_compute(restore);
    nc.ep.clock.advance_compute(redo);
    {
        let mut inner = nc.inner.borrow_mut();
        inner.hosted = true;
        inner.hosted_extra = restore + redo;
    }
    if nc.ep.tracer.enabled() {
        nc.ep.tracer.span(
            "failover_restore",
            "reliability",
            t0,
            nc.ep.clock.now(),
            vec![
                ("phase", ArgValue::U64(phase)),
                ("restored_bytes", ArgValue::U64(bytes)),
                ("redo_ps", ArgValue::U64(redo.as_ps())),
            ],
        );
    }
}

/// Step 4a of [`global_phase_end`]: trace-guided adaptive repartitioning
/// (DESIGN.md §14).
///
/// Decide from the replicated load window (every node folded the identical
/// loads vector out of the barrier sidecar), recut the balanced arrays'
/// weighted bounds with [`balance::rebalance_bounds`], then swap the moved
/// stretches: one (possibly empty) [`K_MIGRATE`] bundle per peer — the
/// empty ones are free end-of-rebalance tokens, mirroring the empty
/// `K_WRITE` convention — collected before any partition rebinds.
///
/// Determinism: every input to the decision (load window, bounds, array
/// ids) is replicated, so all nodes compute the same plan with no
/// agreement round; the migrated stretches are disjoint by construction
/// (old spans are disjoint, new spans are disjoint), so rebind order
/// cannot matter — sources are still applied in ascending node order. No
/// phase-`phase+1` read request can arrive mid-migration: a peer issues
/// those only after its clock barrier completes, which transitively
/// requires this node's first barrier send — and that happens after this
/// hook returns.
///
/// [`K_MIGRATE`]: msgs::K_MIGRATE
fn maybe_rebalance(nc: &mut NodeCtx<'_>, phase: u64) {
    let me = nc.node_id();
    let nodes = nc.num_nodes();
    let cfg = nc.config();
    // Decide: a pure function of the replicated window. `(id, old, new)`
    // per balanced array whose cut moves.
    let (evaluated, plan): (bool, Vec<(u32, Dist, Dist)>) = {
        let inner = nc.inner.borrow();
        if nodes < 2 || inner.balanced.is_empty() || inner.load_window < balance::MIN_WINDOW {
            (false, Vec::new())
        } else {
            let plan = inner
                .balanced
                .iter()
                .filter_map(|&id| {
                    let old = inner.garrays[id as usize].dist().clone();
                    let cur = old.bounds();
                    balance::rebalance_bounds(&cur, &inner.load_acc).map(|nb| {
                        let new = Dist::weighted(old.len, old.nodes, Arc::new(nb));
                        (id, old, new)
                    })
                })
                .collect();
            (true, plan)
        }
    };
    if evaluated {
        // The window was consumed by a decision (either way): restart it so
        // the next evaluation sees only post-decision phases.
        let mut inner = nc.inner.borrow_mut();
        inner.load_acc.iter_mut().for_each(|l| *l = 0);
        inner.load_window = 0;
    }
    if plan.is_empty() {
        return;
    }

    // Sparse exchange (DESIGN.md §17): the plan is a pure function of the
    // replicated load window, so both sides of every transfer evaluate the
    // same overlap predicate the ship loop uses — no dissemination round
    // needed. `expected` is exactly the set of peers that will send this
    // node a non-empty bundle; with `sparse_tokens` off the legacy
    // protocol sends one bundle per peer (empty ones included) and
    // receivers count to N−1.
    let sparse = cfg.sparse_tokens;
    let expected: NodeSet = (0..nodes)
        .filter(|&src| {
            src != me
                && plan.iter().any(|(_, old, new)| {
                    let theirs = old.owned_range(src);
                    let mine = new.owned_range(me);
                    theirs.start.max(mine.start) < theirs.end.min(mine.end)
                })
        })
        .collect();

    // Ship: one bundle per peer with every stretch leaving this node.
    let mut moved_out = 0u64;
    let mut bytes_out_total = 0u64;
    for dest in 0..nodes {
        if dest == me {
            continue;
        }
        let mut parts: Vec<(u32, u64, Box<dyn std::any::Any + Send>)> = Vec::new();
        let mut payload_bytes = 0u64;
        {
            let inner = nc.inner.borrow();
            for (id, old, new) in &plan {
                let mine = old.owned_range(me);
                let theirs = new.owned_range(dest);
                let lo = mine.start.max(theirs.start);
                let hi = mine.end.min(theirs.end);
                if lo < hi {
                    let (payload, b) = inner.garrays[*id as usize].migrate_extract(lo..hi);
                    payload_bytes += b;
                    moved_out += (hi - lo) as u64;
                    parts.push((*id, lo as u64, payload));
                }
            }
        }
        if sparse && parts.is_empty() {
            continue;
        }
        let bytes = if parts.is_empty() {
            0
        } else {
            cfg.bundle_header_bytes + payload_bytes as usize
        };
        bytes_out_total += bytes as u64;
        {
            let mut inner = nc.inner.borrow_mut();
            if !parts.is_empty() {
                inner.traffic.migr_bundles_out += 1;
                inner.traffic.migr_bytes_out += bytes as u64;
                inner.counters.bundles_sent += 1;
            }
            inner.counters.msgs_sent += 1;
            inner.counters.bytes_sent += bytes as u64;
        }
        let now = nc.ep.clock.now();
        nc.send_msg(
            Message::new(
                me,
                dest,
                msgs::tag(msgs::K_MIGRATE, phase),
                now,
                bytes,
                MigrateMsg { phase, parts },
            ),
            msgs::K_MIGRATE,
        );
    }

    // Collect: exactly the announced senders (sparse) or every peer's
    // bundle, empty ones included (legacy: receivers count rather than
    // guess).
    let want = if sparse {
        expected.count() as usize
    } else {
        nodes - 1
    };
    let mut incoming: Vec<(u32, MigrateMsg)> = Vec::with_capacity(want);
    while incoming.len() < want {
        let msg = nc.pump_recv(|m| m.tag == msgs::tag(msgs::K_MIGRATE, phase));
        let src = msg.src as u32;
        let bytes = msg.bytes as u64;
        let bundle: MigrateMsg = msg.take();
        debug_assert_eq!(bundle.phase, phase);
        if sparse {
            debug_assert!(
                expected.contains(src as usize),
                "node {src} sent a K_MIGRATE bundle the plan never predicted"
            );
            debug_assert!(
                !bundle.parts.is_empty(),
                "node {src} shipped an empty migration bundle under the \
                 sparse protocol"
            );
        }
        let mut inner = nc.inner.borrow_mut();
        if !bundle.parts.is_empty() {
            inner.traffic.migr_bundles_in += 1;
            inner.traffic.migr_bytes_in += bytes;
        }
        inner.counters.msgs_recv += 1;
        inner.counters.bytes_recv += bytes;
        drop(inner);
        incoming.push((src, bundle));
    }
    incoming.sort_by_key(|&(src, _)| src);

    // Rebind: install the new layouts, retained overlap plus arrived
    // stretches, per balanced array.
    type ArrivedParts = Vec<(usize, Box<dyn std::any::Any + Send>)>;
    let mut by_array: BTreeMap<u32, ArrivedParts> = BTreeMap::new();
    for (_src, bundle) in incoming {
        for (id, start, payload) in bundle.parts {
            let start = usize::try_from(start).expect("migration start exceeds usize");
            by_array.entry(id).or_default().push((start, payload));
        }
    }
    let moved_in = {
        let mut inner = nc.inner.borrow_mut();
        let mut moved_in = 0u64;
        for (id, _old, new) in &plan {
            let parts = by_array.remove(id).unwrap_or_default();
            moved_in += inner.garrays[*id as usize].migrate_rebind(me, new.clone(), parts);
            // The repartitioned stretch starts fully cold: residency is
            // keyed by local offsets, which the rebind just remapped
            // (DESIGN.md §18).
            inner.tile_budget.rebind(*id, new.local_len(me));
        }
        debug_assert!(
            by_array.is_empty(),
            "migration payload for an unplanned array"
        );
        // Serve history keys owner-side elements; ownership moved, so drop
        // the migrated arrays' entries (refresh pushes re-arm from fresh
        // serves under the new layout). Remote-read caches are kept:
        // migration moves ownership, not values, and the owner check
        // shadows any entry this node now owns.
        let planned: Vec<u32> = plan.iter().map(|p| p.0).collect();
        inner.serve_hist.retain(|&(a, _), _| !planned.contains(&a));
        // Installing arrived elements is owner-side work, charged like
        // write application.
        inner.service_time += cfg.service_overhead.scale(moved_in);
        moved_in
    };

    if nc.ep.tracer.enabled() {
        let moved_vps = nc.inner.borrow().live_vps as u64;
        nc.ep.tracer.instant(
            "rebalance",
            "runtime",
            nc.ep.clock.now(),
            vec![
                ("phase", ArgValue::U64(phase)),
                ("arrays", ArgValue::U64(plan.len() as u64)),
                ("moved_elems_out", ArgValue::U64(moved_out)),
                ("moved_elems_in", ArgValue::U64(moved_in)),
                ("moved_bytes", ArgValue::U64(bytes_out_total)),
                ("moved_vps", ArgValue::U64(moved_vps)),
            ],
        );
    }
}

/// Fold the Inner counters accumulated during `ppm_do` into the endpoint's.
fn merge_counters(nc: &mut NodeCtx<'_>) {
    let mut inner = nc.inner.borrow_mut();
    let c = std::mem::take(&mut inner.counters);
    nc.ep.counters = nc.ep.counters.merge(&c);
}
