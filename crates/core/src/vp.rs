//! Virtual processors and parallel phases — the programmer-facing side of
//! the model (paper §3.1, items 2–4).
//!
//! A PPM function in the paper becomes an `async` closure here: the
//! `PPM_do(K) func(...)` construct is [`NodeCtx::ppm_do`](crate::NodeCtx::ppm_do),
//! which instantiates `K` futures of the closure, and
//! `PPM_global_phase { ... }` / `PPM_node_phase { ... }` become
//! [`Vp::global_phase`] / [`Vp::node_phase`], whose implicit end-of-phase
//! barrier is the `.await` of an internal barrier future. Suspension points
//! (remote reads, barriers) are exactly where the paper's runtime would
//! deschedule a virtual processor.
//!
//! Every effect a VP produces goes into its private
//! [`VpScratch`](crate::state::VpScratch) (via the shared
//! [`VpCell`]); the executor merges scratches in ascending rank order, so
//! these futures are `Send` and may be polled from any host worker thread
//! (see `exec.rs` and DESIGN.md §12).

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use crate::elem::{AccumElem, AccumOp, Elem};
use crate::shared::{GlobalShared, NodeShared};
use crate::state::{DoMode, GetOutcome, PhaseKind, SharedInner, VpCell};

/// Handle given to each virtual processor started by `ppm_do`.
///
/// Carries the VP's identity (rank functions, paper §3.1 item 6), explicit
/// work charging, and the phase constructs.
pub struct Vp {
    pub(crate) inner: SharedInner,
    pub(crate) cell: Arc<VpCell>,
}

// Cheap handle duplication so phase bodies (`async move` blocks) can
// capture their own copy while the VP function keeps using the original.
impl Clone for Vp {
    fn clone(&self) -> Self {
        Vp {
            inner: self.inner.clone(),
            cell: self.cell.clone(),
        }
    }
}

impl Vp {
    /// `PPM_VP_node_rank()`: this VP's rank among the node's VPs.
    #[inline]
    pub fn node_rank(&self) -> usize {
        self.cell.id
    }

    /// `PPM_VP_global_rank()`: this VP's rank across all nodes.
    #[inline]
    pub fn global_rank(&self) -> usize {
        self.cell.global_rank as usize
    }

    /// VPs started on this node by the current `ppm_do`.
    #[inline]
    pub fn node_vp_count(&self) -> usize {
        self.cell.node_vp_count
    }

    /// VPs started across all nodes by the current `ppm_do`.
    #[inline]
    pub fn global_vp_count(&self) -> usize {
        self.cell.total_vps_global as usize
    }

    /// `PPM_node_id`.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.cell.node
    }

    /// `PPM_node_count`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cell.cfg.nodes()
    }

    /// `PPM_cores_per_node`.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cell.cfg.cores_per_node()
    }

    /// Global index range this VP's node currently owns in `g` (any
    /// contiguous layout; panics for cyclic). Zero modeled cost: it reads
    /// runtime metadata, not shared data.
    ///
    /// For arrays allocated with
    /// [`NodeCtx::alloc_global_balanced`](crate::NodeCtx::alloc_global_balanced)
    /// the range can change at any global phase boundary (work follows
    /// data, DESIGN.md §14) — re-derive it inside each phase instead of
    /// hoisting it across phases, and split it among the node's VPs by
    /// [`Self::node_rank`].
    pub fn local_range<T: Elem>(&self, g: &GlobalShared<T>) -> std::ops::Range<usize> {
        let inner = self.inner.borrow();
        inner.garrays[g.id as usize]
            .dist()
            .owned_range(self.cell.node)
    }

    /// Tile-aware variant of [`Self::local_range`]: the node's owned range
    /// as successive subranges of at most `chunk_elems` elements, aligned
    /// so each subrange falls inside one pseudo-streaming tile boundary
    /// multiple (see [`crate::Dist::owned_chunks`]). `chunk_elems == 0`
    /// yields the whole range as one chunk, so a disabled chunking knob
    /// passes straight through. Zero modeled cost, like `local_range`.
    pub fn local_chunks<T: Elem>(
        &self,
        g: &GlobalShared<T>,
        chunk_elems: usize,
    ) -> Vec<std::ops::Range<usize>> {
        let inner = self.inner.borrow();
        inner.garrays[g.id as usize]
            .dist()
            .owned_chunks(self.cell.node, chunk_elems)
            .collect()
    }

    /// Charge `n` floating-point operations of VP-private computation.
    pub fn charge_flops(&self, n: u64) {
        self.cell.charge_flops(n);
    }

    /// Charge `n` memory operations of VP-private computation.
    pub fn charge_mem_ops(&self, n: u64) {
        self.cell.charge_mem_ops(n);
    }

    /// `PPM_global_phase { body }`: run `body` under phase semantics
    /// (reads see phase-start values, writes publish at phase end) with an
    /// implicit cluster-wide barrier at the end.
    pub async fn global_phase<R, Fut>(&self, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        self.phase(PhaseKind::Global, body).await
    }

    /// `PPM_node_phase { body }`: like [`Self::global_phase`] but the
    /// barrier covers only this node's VPs and only node-shared writes
    /// publish. No network traffic.
    pub async fn node_phase<R, Fut>(&self, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        self.phase(PhaseKind::Node, body).await
    }

    async fn phase<R, Fut>(&self, kind: PhaseKind, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        assert!(
            !(self.cell.do_mode == DoMode::Local && kind == PhaseKind::Global),
            "global phases are not allowed inside ppm_do_local \
             (asynchronous node-level mode); use ppm_do"
        );
        {
            let mut s = self.cell.scratch();
            if s.cur_phase.is_some() {
                // Phase structure violation: report with the checker's
                // rendering and abort (the runtime cannot give nested
                // super-steps a meaning).
                let v = crate::check::PhaseViolation::NestedPhase {
                    vp: self.cell.id,
                    node: self.cell.node,
                };
                panic!("{v}");
            }
            s.cur_phase = Some(kind);
            s.pending_enter = Some(kind);
        }
        let ph = Phase {
            inner: self.inner.clone(),
            cell: self.cell.clone(),
            kind,
        };
        let r = body(ph).await;
        // Capture the epoch to outwait *before* flagging arrival: the
        // executor cannot advance it until this VP's arrival merges, which
        // happens only after the current poll returns.
        let epoch = self.inner.borrow().phase.epoch;
        self.cell.scratch().pending_arrive = true;
        BarrierFut {
            inner: self.inner.clone(),
            epoch,
        }
        .await;
        self.cell.scratch().cur_phase = None;
        r
    }
}

/// Handle to the currently executing phase: the only way to touch shared
/// variables, which enforces the paper's rule that shared access happens
/// inside phases.
pub struct Phase {
    inner: SharedInner,
    cell: Arc<VpCell>,
    kind: PhaseKind,
}

impl Phase {
    /// Which kind of phase this is.
    #[inline]
    pub fn kind(&self) -> PhaseKind {
        self.kind
    }

    /// Read a global shared element. Returns the value the element had at
    /// phase start. Local elements resolve immediately; remote elements
    /// suspend the VP until the runtime's next bundled wave.
    pub fn get<T: Elem>(&self, g: &GlobalShared<T>, idx: usize) -> GetFut<T> {
        GetFut {
            inner: self.inner.clone(),
            cell: self.cell.clone(),
            array: g.id,
            idx,
            state: GetFutState::Start,
            _t: std::marker::PhantomData,
        }
    }

    /// Bulk read of global shared elements: issues every access at once
    /// and resolves to the values in request order. Semantically identical
    /// to awaiting [`Self::get`] per index (all reads see phase-start
    /// values), but the runtime can satisfy all remote elements in a
    /// single communication wave instead of one wave per dependent await —
    /// this is the split-phase access the paper's compiler generates for
    /// loops over shared arrays.
    pub fn get_many<T: Elem>(
        &self,
        g: &GlobalShared<T>,
        idxs: impl IntoIterator<Item = usize>,
    ) -> GetManyFut<T> {
        GetManyFut {
            inner: self.inner.clone(),
            cell: self.cell.clone(),
            array: g.id,
            idxs: Some(idxs.into_iter().collect()),
            state: Vec::new(),
            remaining: 0,
        }
    }

    /// Write a global shared element. Takes effect at the end of the phase;
    /// conflicting writes resolve deterministically (last writer in
    /// (global VP rank, program order) wins). Only valid in a global phase.
    pub fn put<T: Elem>(&self, g: &GlobalShared<T>, idx: usize, val: T) {
        self.cell.put_global(&self.inner.borrow(), g.id, idx, val);
    }

    /// Combining write to a global shared element: at phase end the element
    /// becomes `op` applied over its phase-start value's *replacements*...
    /// precisely: all values accumulated this phase, combined with `op`
    /// (the phase-start value is *not* included). Accumulates from many VPs
    /// are merged locally, so a cluster-wide sum ships one entry per node.
    pub fn accumulate<T: AccumElem>(&self, g: &GlobalShared<T>, idx: usize, op: AccumOp, val: T) {
        self.cell
            .accum_global(&self.inner.borrow(), g.id, idx, op, val);
    }

    /// Read a node-shared element (this node's physical shared memory;
    /// immediate).
    pub fn get_node<T: Elem>(&self, n: &NodeShared<T>, idx: usize) -> T {
        self.cell.get_node_arr(&self.inner.borrow(), n.id, idx)
    }

    /// Write a node-shared element; takes effect at phase end.
    pub fn put_node<T: Elem>(&self, n: &NodeShared<T>, idx: usize, val: T) {
        self.cell.put_node_arr(&self.inner.borrow(), n.id, idx, val);
    }

    /// Combining write to a node-shared element.
    pub fn accumulate_node<T: AccumElem>(
        &self,
        n: &NodeShared<T>,
        idx: usize,
        op: AccumOp,
        val: T,
    ) {
        self.cell
            .accum_node_arr(&self.inner.borrow(), n.id, idx, op, val);
    }
}

enum GetFutState {
    /// Not yet issued (first poll pending).
    Start,
    /// Local element in a spilled tile: the access was fully charged on
    /// the first poll; re-read charge-free once the executor refills the
    /// tile (DESIGN.md §18).
    Deferred,
    /// Remote element parked on a wave slot.
    Slot(u64),
}

/// Future returned by [`Phase::get`].
pub struct GetFut<T: Elem> {
    inner: SharedInner,
    cell: Arc<VpCell>,
    array: u32,
    idx: usize,
    state: GetFutState,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T: Elem> Future for GetFut<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let this = &mut *self;
        match this.state {
            GetFutState::Start => {
                let outcome = this
                    .cell
                    .get_global::<T>(&this.inner.borrow(), this.array, this.idx);
                match outcome {
                    GetOutcome::Local(v) => Poll::Ready(v),
                    GetOutcome::LocalPending => {
                        this.state = GetFutState::Deferred;
                        Poll::Pending
                    }
                    GetOutcome::Remote(slot) => {
                        this.state = GetFutState::Slot(slot);
                        Poll::Pending
                    }
                }
            }
            GetFutState::Deferred => {
                match this
                    .cell
                    .read_local_resident::<T>(&this.inner.borrow(), this.array, this.idx)
                {
                    Some(v) => Poll::Ready(v),
                    None => Poll::Pending,
                }
            }
            GetFutState::Slot(slot) => match this.cell.scratch().slots.try_take(slot) {
                Some(boxed) => {
                    let v = boxed.downcast::<T>().expect("slot value type mismatch");
                    Poll::Ready(*v)
                }
                None => Poll::Pending,
            },
        }
    }
}

enum ManySlot<T> {
    Ready(T),
    Waiting(u64),
    /// Local element (at this global index) in a spilled tile, awaiting a
    /// charge-free re-read after the executor refills it.
    Deferred(usize),
}

/// Future returned by [`Phase::get_many`].
pub struct GetManyFut<T: Elem> {
    inner: SharedInner,
    cell: Arc<VpCell>,
    array: u32,
    idxs: Option<Vec<usize>>,
    state: Vec<ManySlot<T>>,
    remaining: usize,
}

// Sound: the future holds no self-references (plain owned fields); `T` is
// `Copy` data parked by value.
impl<T: Elem> Unpin for GetManyFut<T> {}

impl<T: Elem> Future for GetManyFut<T> {
    type Output = Vec<T>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Vec<T>> {
        let this = &mut *self;
        if let Some(idxs) = this.idxs.take() {
            // First poll: issue every access under one `Inner` read lock;
            // remote ones queue for the next wave together. Cold-tile
            // locals defer but are charged here, so wave content and
            // counters match the in-core schedule exactly.
            let inner = this.inner.borrow();
            this.state = idxs
                .into_iter()
                .map(
                    |idx| match this.cell.get_global::<T>(&inner, this.array, idx) {
                        GetOutcome::Local(v) => ManySlot::Ready(v),
                        GetOutcome::LocalPending => {
                            this.remaining += 1;
                            ManySlot::Deferred(idx)
                        }
                        GetOutcome::Remote(slot) => {
                            this.remaining += 1;
                            ManySlot::Waiting(slot)
                        }
                    },
                )
                .collect();
        } else {
            // Wave-filled slots first (scratch lock), then deferred local
            // re-reads (inner read lock; re-records faults through the
            // scratch lock) — the two locks are never held together.
            {
                let mut s = this.cell.scratch();
                for st in this.state.iter_mut() {
                    if let ManySlot::Waiting(slot) = *st {
                        if let Some(boxed) = s.slots.try_take(slot) {
                            let v = boxed.downcast::<T>().expect("slot value type mismatch");
                            *st = ManySlot::Ready(*v);
                            this.remaining -= 1;
                        }
                    }
                }
            }
            if this
                .state
                .iter()
                .any(|st| matches!(st, ManySlot::Deferred(_)))
            {
                let inner = this.inner.borrow();
                for st in this.state.iter_mut() {
                    if let ManySlot::Deferred(idx) = *st {
                        if let Some(v) = this.cell.read_local_resident::<T>(&inner, this.array, idx)
                        {
                            *st = ManySlot::Ready(v);
                            this.remaining -= 1;
                        }
                    }
                }
            }
        }
        if this.remaining == 0 {
            let values = std::mem::take(&mut this.state)
                .into_iter()
                .map(|s| match s {
                    ManySlot::Ready(v) => v,
                    _ => unreachable!("all slots resolved"),
                })
                .collect();
            Poll::Ready(values)
        } else {
            Poll::Pending
        }
    }
}

/// Future that resolves when the executor completes the current phase.
struct BarrierFut {
    inner: SharedInner,
    epoch: u64,
}

impl Future for BarrierFut {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.borrow().phase.epoch > self.epoch {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
