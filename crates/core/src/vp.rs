//! Virtual processors and parallel phases — the programmer-facing side of
//! the model (paper §3.1, items 2–4).
//!
//! A PPM function in the paper becomes an `async` closure here: the
//! `PPM_do(K) func(...)` construct is [`NodeCtx::ppm_do`](crate::NodeCtx::ppm_do),
//! which instantiates `K` futures of the closure, and
//! `PPM_global_phase { ... }` / `PPM_node_phase { ... }` become
//! [`Vp::global_phase`] / [`Vp::node_phase`], whose implicit end-of-phase
//! barrier is the `.await` of an internal barrier future. Suspension points
//! (remote reads, barriers) are exactly where the paper's runtime would
//! deschedule a virtual processor.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::elem::{AccumElem, AccumOp, Elem};
use crate::shared::{GlobalShared, NodeShared};
use crate::state::{GetOutcome, Inner, PhaseKind, WriteKey};

/// Identity of one virtual processor, shared between its `Vp` handle and
/// the phase handles it creates.
pub(crate) struct VpIdent {
    /// Node-relative rank (`PPM_VP_node_rank`).
    pub id: usize,
    /// Cluster-wide rank (`PPM_VP_global_rank`).
    pub global_rank: u64,
    /// Program-order counter for this VP's writes (conflict resolution).
    pub write_seq: Cell<u64>,
    /// Guard against nested phases.
    pub in_phase: Cell<bool>,
}

/// Handle given to each virtual processor started by `ppm_do`.
///
/// Carries the VP's identity (rank functions, paper §3.1 item 6), explicit
/// work charging, and the phase constructs.
pub struct Vp {
    pub(crate) inner: Rc<RefCell<Inner>>,
    pub(crate) ident: Rc<VpIdent>,
    pub(crate) node_vp_count: usize,
}

// Cheap handle duplication so phase bodies (`async move` blocks) can
// capture their own copy while the VP function keeps using the original.
impl Clone for Vp {
    fn clone(&self) -> Self {
        Vp {
            inner: self.inner.clone(),
            ident: self.ident.clone(),
            node_vp_count: self.node_vp_count,
        }
    }
}

impl Vp {
    /// `PPM_VP_node_rank()`: this VP's rank among the node's VPs.
    #[inline]
    pub fn node_rank(&self) -> usize {
        self.ident.id
    }

    /// `PPM_VP_global_rank()`: this VP's rank across all nodes.
    #[inline]
    pub fn global_rank(&self) -> usize {
        self.ident.global_rank as usize
    }

    /// VPs started on this node by the current `ppm_do`.
    #[inline]
    pub fn node_vp_count(&self) -> usize {
        self.node_vp_count
    }

    /// VPs started across all nodes by the current `ppm_do`.
    #[inline]
    pub fn global_vp_count(&self) -> usize {
        self.inner.borrow().total_vps_global as usize
    }

    /// `PPM_node_id`.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.inner.borrow().node
    }

    /// `PPM_node_count`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().cfg.nodes()
    }

    /// `PPM_cores_per_node`.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.inner.borrow().cfg.cores_per_node()
    }

    /// Charge `n` floating-point operations of VP-private computation.
    pub fn charge_flops(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.flops += n;
        let t = inner.cfg.machine.core.flops(n);
        inner.charge_core(self.ident.id, t);
    }

    /// Charge `n` memory operations of VP-private computation.
    pub fn charge_mem_ops(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.mem_ops += n;
        let t = inner.cfg.machine.core.mem_ops(n);
        inner.charge_core(self.ident.id, t);
    }

    /// `PPM_global_phase { body }`: run `body` under phase semantics
    /// (reads see phase-start values, writes publish at phase end) with an
    /// implicit cluster-wide barrier at the end.
    pub async fn global_phase<R, Fut>(&self, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        self.phase(PhaseKind::Global, body).await
    }

    /// `PPM_node_phase { body }`: like [`Self::global_phase`] but the
    /// barrier covers only this node's VPs and only node-shared writes
    /// publish. No network traffic.
    pub async fn node_phase<R, Fut>(&self, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        self.phase(PhaseKind::Node, body).await
    }

    async fn phase<R, Fut>(&self, kind: PhaseKind, body: impl FnOnce(Phase) -> Fut) -> R
    where
        Fut: Future<Output = R>,
    {
        if self.ident.in_phase.get() {
            // Phase structure violation: report with the checker's rendering
            // and abort (the runtime cannot give nested super-steps a
            // meaning).
            let v = crate::check::PhaseViolation::NestedPhase {
                vp: self.ident.id,
                node: self.node_id(),
            };
            panic!("{v}");
        }
        self.ident.in_phase.set(true);
        self.inner.borrow_mut().enter_phase(kind);
        let ph = Phase {
            inner: self.inner.clone(),
            ident: self.ident.clone(),
            kind,
        };
        let r = body(ph).await;
        let epoch = self.inner.borrow_mut().arrive_barrier(self.ident.id);
        BarrierFut {
            inner: self.inner.clone(),
            epoch,
        }
        .await;
        self.ident.in_phase.set(false);
        r
    }
}

/// Handle to the currently executing phase: the only way to touch shared
/// variables, which enforces the paper's rule that shared access happens
/// inside phases.
pub struct Phase {
    inner: Rc<RefCell<Inner>>,
    ident: Rc<VpIdent>,
    kind: PhaseKind,
}

impl Phase {
    /// Which kind of phase this is.
    #[inline]
    pub fn kind(&self) -> PhaseKind {
        self.kind
    }

    fn next_key(&self) -> WriteKey {
        let seq = self.ident.write_seq.get();
        self.ident.write_seq.set(seq + 1);
        WriteKey {
            vp: self.ident.global_rank,
            seq,
        }
    }

    /// Read a global shared element. Returns the value the element had at
    /// phase start. Local elements resolve immediately; remote elements
    /// suspend the VP until the runtime's next bundled wave.
    pub fn get<T: Elem>(&self, g: &GlobalShared<T>, idx: usize) -> GetFut<T> {
        GetFut {
            inner: self.inner.clone(),
            vp: self.ident.id,
            array: g.id,
            idx,
            slot: None,
            _t: std::marker::PhantomData,
        }
    }

    /// Bulk read of global shared elements: issues every access at once
    /// and resolves to the values in request order. Semantically identical
    /// to awaiting [`Self::get`] per index (all reads see phase-start
    /// values), but the runtime can satisfy all remote elements in a
    /// single communication wave instead of one wave per dependent await —
    /// this is the split-phase access the paper's compiler generates for
    /// loops over shared arrays.
    pub fn get_many<T: Elem>(
        &self,
        g: &GlobalShared<T>,
        idxs: impl IntoIterator<Item = usize>,
    ) -> GetManyFut<T> {
        GetManyFut {
            inner: self.inner.clone(),
            vp: self.ident.id,
            array: g.id,
            idxs: Some(idxs.into_iter().collect()),
            state: Vec::new(),
            remaining: 0,
        }
    }

    /// Write a global shared element. Takes effect at the end of the phase;
    /// conflicting writes resolve deterministically (last writer in
    /// (global VP rank, program order) wins). Only valid in a global phase.
    pub fn put<T: Elem>(&self, g: &GlobalShared<T>, idx: usize, val: T) {
        let key = self.next_key();
        self.inner
            .borrow_mut()
            .put_global(g.id, idx, val, key, self.ident.id);
    }

    /// Combining write to a global shared element: at phase end the element
    /// becomes `op` applied over its phase-start value's *replacements*...
    /// precisely: all values accumulated this phase, combined with `op`
    /// (the phase-start value is *not* included). Accumulates from many VPs
    /// are merged locally, so a cluster-wide sum ships one entry per node.
    pub fn accumulate<T: AccumElem>(&self, g: &GlobalShared<T>, idx: usize, op: AccumOp, val: T) {
        self.inner
            .borrow_mut()
            .accum_global(g.id, idx, op, val, self.ident.id);
    }

    /// Read a node-shared element (this node's physical shared memory;
    /// immediate).
    pub fn get_node<T: Elem>(&self, n: &NodeShared<T>, idx: usize) -> T {
        self.inner
            .borrow_mut()
            .get_node_arr(n.id, idx, self.ident.id)
    }

    /// Write a node-shared element; takes effect at phase end.
    pub fn put_node<T: Elem>(&self, n: &NodeShared<T>, idx: usize, val: T) {
        let key = self.next_key();
        self.inner
            .borrow_mut()
            .put_node_arr(n.id, idx, val, key, self.ident.id);
    }

    /// Combining write to a node-shared element.
    pub fn accumulate_node<T: AccumElem>(
        &self,
        n: &NodeShared<T>,
        idx: usize,
        op: AccumOp,
        val: T,
    ) {
        self.inner
            .borrow_mut()
            .accum_node_arr(n.id, idx, op, val, self.ident.id);
    }
}

/// Future returned by [`Phase::get`].
pub struct GetFut<T: Elem> {
    inner: Rc<RefCell<Inner>>,
    vp: usize,
    array: u32,
    idx: usize,
    slot: Option<u64>,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T: Elem> Future for GetFut<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let this = &mut *self;
        match this.slot {
            None => {
                let outcome = this
                    .inner
                    .borrow_mut()
                    .get_global::<T>(this.array, this.idx, this.vp);
                match outcome {
                    GetOutcome::Local(v) => Poll::Ready(v),
                    GetOutcome::Remote(slot) => {
                        this.slot = Some(slot);
                        Poll::Pending
                    }
                }
            }
            Some(slot) => match this.inner.borrow_mut().slots.try_take(slot) {
                Some(boxed) => {
                    let v = boxed.downcast::<T>().expect("slot value type mismatch");
                    Poll::Ready(*v)
                }
                None => Poll::Pending,
            },
        }
    }
}

enum ManySlot<T> {
    Ready(T),
    Waiting(u64),
}

/// Future returned by [`Phase::get_many`].
pub struct GetManyFut<T: Elem> {
    inner: Rc<RefCell<Inner>>,
    vp: usize,
    array: u32,
    idxs: Option<Vec<usize>>,
    state: Vec<ManySlot<T>>,
    remaining: usize,
}

// Sound: the future holds no self-references (plain owned fields); `T` is
// `Copy` data parked by value.
impl<T: Elem> Unpin for GetManyFut<T> {}

impl<T: Elem> Future for GetManyFut<T> {
    type Output = Vec<T>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Vec<T>> {
        let this = &mut *self;
        if let Some(idxs) = this.idxs.take() {
            // First poll: issue every access; remote ones queue for the
            // next wave together.
            let mut inner = this.inner.borrow_mut();
            this.state = idxs
                .into_iter()
                .map(
                    |idx| match inner.get_global::<T>(this.array, idx, this.vp) {
                        GetOutcome::Local(v) => ManySlot::Ready(v),
                        GetOutcome::Remote(slot) => {
                            this.remaining += 1;
                            ManySlot::Waiting(slot)
                        }
                    },
                )
                .collect();
        } else {
            let mut inner = this.inner.borrow_mut();
            for s in this.state.iter_mut() {
                if let ManySlot::Waiting(slot) = *s {
                    if let Some(boxed) = inner.slots.try_take(slot) {
                        let v = boxed.downcast::<T>().expect("slot value type mismatch");
                        *s = ManySlot::Ready(*v);
                        this.remaining -= 1;
                    }
                }
            }
        }
        if this.remaining == 0 {
            let values = std::mem::take(&mut this.state)
                .into_iter()
                .map(|s| match s {
                    ManySlot::Ready(v) => v,
                    _ => unreachable!("all slots resolved"),
                })
                .collect();
            Poll::Ready(values)
        } else {
            Poll::Pending
        }
    }
}

/// Future that resolves when the executor completes the current phase.
struct BarrierFut {
    inner: Rc<RefCell<Inner>>,
    epoch: u64,
}

impl Future for BarrierFut {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.borrow().phase.epoch > self.epoch {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
