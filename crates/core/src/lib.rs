//! # ppm-core — the Parallel Phase Model
//!
//! A Rust implementation of the Parallel Phase Model (PPM), the programming
//! model of Brightwell, Heroux, Wen & Wu, *"Parallel Phase Model: A
//! Programming Model for High-end Parallel Machines with Manycores"*
//! (SAND2009-2287 / ICPP 2009), running on the deterministic simulated
//! cluster of [`ppm_simnet`].
//!
//! ## The model
//!
//! * **SPMD**: one program copy per node ([`run`] gives each node a
//!   [`NodeCtx`]).
//! * **Virtual processors**: [`NodeCtx::ppm_do`] is `PPM_do(K) func(...)` —
//!   it starts `K` virtual processors (VPs) running a *PPM function* (an
//!   `async` closure), multiplexed over the node's cores the way the
//!   paper's compiler lowers VPs to loops.
//! * **Two-level shared variables**: [`GlobalShared`] arrays span the
//!   cluster (block- or cyclic-distributed); [`NodeShared`] arrays live in
//!   one node's physical shared memory.
//! * **Parallel phases**: [`Vp::global_phase`] / [`Vp::node_phase`] give
//!   the super-step semantics of `PPM_global_phase` / `PPM_node_phase`:
//!   inside a phase every read sees the value from the start of the phase,
//!   writes publish at the end, and an implicit barrier ends the phase.
//!   There are no explicit barriers or locks anywhere in the model.
//! * **Runtime services**: fine-grained remote reads suspend VPs and are
//!   *bundled* into one message per destination per wave; writes are
//!   bundled at phase end with combining (`accumulate`) support;
//!   communication gap time overlaps computation; node-level collectives
//!   ([`NodeCtx::allreduce_nodes`], [`NodeCtx::exscan_nodes`], …) provide
//!   the paper's utility functions.
//!
//! ## Example: the paper's §5 binary search
//!
//! Find, for every element of `B`, its insertion point in a sorted global
//! array `A` — one VP per element of `B`, whole search in one global phase
//! (reads see the phase-start snapshot, so the loop of dependent reads is
//! legal and gets bundled wave by wave):
//!
//! ```
//! use ppm_core::{PpmConfig, run};
//!
//! let cfg = PpmConfig::franklin(2); // 2 nodes × 4 cores
//! let n = 64;
//! let k = 16;
//! let report = run(cfg, |node| {
//!     let a = node.alloc_global::<f64>(n);
//!     let b = node.alloc_node::<f64>(k);
//!     let rank_in_a = node.alloc_node::<u64>(k);
//!     // Initialize A (every node fills the part it owns) and B.
//!     let lo = node.local_range(&a).start;
//!     node.with_local_mut(&a, |s| {
//!         for (off, v) in s.iter_mut().enumerate() {
//!             *v = (lo + off) as f64 * 2.0;
//!         }
//!     });
//!     node.with_node_mut(&b, |s| {
//!         for (i, v) in s.iter_mut().enumerate() {
//!             *v = i as f64 * 7.3;
//!         }
//!     });
//!     node.ppm_do(k, move |vp| async move {
//!         let me = vp.node_rank();
//!         vp.global_phase(|ph| async move {
//!             let key = ph.get_node(&b, me);
//!             let (mut left, mut right) = (0usize, n);
//!             while left < right {
//!                 let mid = (left + right) / 2;
//!                 if ph.get(&a, mid).await < key {
//!                     left = mid + 1;
//!                 } else {
//!                     right = mid;
//!                 }
//!             }
//!             ph.put_node(&rank_in_a, me, right as u64);
//!         })
//!         .await;
//!     });
//!     node.with_node(&rank_in_a, |s| s.to_vec())
//! });
//! // Verify against a sequential binary search.
//! for ranks in &report.results {
//!     for (i, &r) in ranks.iter().enumerate() {
//!         let key = i as f64 * 7.3;
//!         let expect = (0..n).position(|j| j as f64 * 2.0 >= key).unwrap_or(n);
//!         assert_eq!(r as usize, expect);
//!     }
//! }
//! ```

mod balance;
pub mod bitset;
pub mod check;
mod config;
mod dist;
mod elem;
pub mod error;
mod exec;
pub mod msgs;
mod nodecoll;
mod nodectx;
mod reliable;
mod shared;
mod state;
pub mod testkit;
pub mod util;
mod vp;

pub use bitset::NodeSet;
pub use check::{PhaseViolation, Space};
pub use config::PpmConfig;
pub use dist::{Dist, Layout};
pub use elem::{AccumElem, AccumOp, ByteHash, ByteHasher, Elem};
pub use error::RecoveryError;
pub use nodectx::NodeCtx;
pub use shared::{GlobalShared, NodeShared};
pub use state::{PhaseKind, PhaseRecord};
pub use vp::{GetFut, GetManyFut, Phase, Vp};

use ppm_simnet::JobReport;
pub use ppm_simnet::{TraceEvent, TraceSink, Tracer};

/// Run an SPMD PPM job: one node runtime per cluster node.
///
/// The closure is each node's copy of the program; its return values are
/// collected per node. The report's makespan is the job's simulated
/// runtime.
pub fn run<R, F>(cfg: PpmConfig, f: F) -> JobReport<R>
where
    R: Send,
    F: for<'c> Fn(&mut NodeCtx<'c>) -> R + Send + Sync,
{
    run_inner(cfg, None, f)
}

/// [`run`] with per-phase tracing: the job is registered on `sink` as one
/// trace process named `label`, and every node records phase spans, wave
/// events, barrier spans, reliability events, and per-phase counter deltas
/// to its own track (see `ppm_simnet::trace` and DESIGN.md §11).
///
/// Tracing charges no simulated time and touches no counters: results,
/// makespan, and `Counters` are bit-identical to the same job under
/// [`run`] (asserted by tests).
pub fn run_traced<R, F>(cfg: PpmConfig, sink: &TraceSink, label: &str, f: F) -> JobReport<R>
where
    R: Send,
    F: for<'c> Fn(&mut NodeCtx<'c>) -> R + Send + Sync,
{
    run_inner(cfg, Some((sink, label)), f)
}

fn run_inner<R, F>(cfg: PpmConfig, trace: Option<(&TraceSink, &str)>, f: F) -> JobReport<R>
where
    R: Send,
    F: for<'c> Fn(&mut NodeCtx<'c>) -> R + Send + Sync,
{
    ppm_simnet::run_traced(cfg.nodes(), cfg.machine, trace, move |ep| {
        let mut node = NodeCtx::new(ep, cfg);
        f(&mut node)
    })
}
