//! Dynamic phase-semantics conformance checker.
//!
//! The Parallel Phase Model's contract is super-step semantics: inside a
//! `PPM_global_phase`/`PPM_node_phase`, every read observes the phase-start
//! snapshot and writes publish only at the end-of-phase barrier. The
//! runtime *implements* that contract by buffering writes; this module
//! *verifies the program against it*: with the checker enabled
//! ([`crate::PpmConfig::with_checker`]; on by default in debug builds, so
//! `cargo test` runs everything under it), every shared-variable access is
//! recorded per phase and, at the phase barrier, suspicious access patterns
//! are reported as [`PhaseViolation`]s with deterministic diagnostics:
//!
//! * **Write–write conflicts** — two *different* VPs `put` *different
//!   values* to the same element in one phase without an `accumulate`
//!   combiner. The runtime resolves this deterministically (last writer in
//!   (global VP rank, program order) wins), but a program whose answer
//!   depends on VP rank order is almost always wrong — the paper's model
//!   provides `accumulate` for exactly this pattern. Idempotent concurrent
//!   puts (every VP's last write to the element carries the same value,
//!   e.g. many VPs clearing the same tree cell) are *not* flagged: the
//!   outcome is value-deterministic regardless of rank order. Values are
//!   compared by a byte-level fingerprint ([`crate::elem::ByteHash`], a
//!   bound of every [`crate::elem::Elem`]): floats hash their IEEE bit
//!   patterns, so even two NaNs with different payloads — which render
//!   identically under `Debug` — are distinguished, and no format string
//!   is allocated per recorded access.
//! * **Read-own-write hazards** — a VP reads an element it wrote earlier in
//!   the same phase. Under snapshot semantics the read returns the
//!   phase-*start* value, not the value just written; a program doing this
//!   would behave differently on any runtime that didn't snapshot, so it is
//!   either a bug or (rarely) a deliberate snapshot read that deserves a
//!   comment and a checker suppression via a fresh phase.
//! * **Phase-nesting / barrier-mismatch errors** — opening a phase inside a
//!   phase, VPs disagreeing on the current phase kind, or VPs not all
//!   arriving at the same barrier. These corrupt the super-step structure
//!   itself, so they are reported *and* the runtime aborts (panics) with
//!   the violation's rendering; tests assert on the message.
//!
//! Diagnostics are deterministic: the node runtime is single-threaded and
//! polls VPs in ascending rank order, and the per-barrier flush sorts
//! reports by (space, array, element, ranks) — the same program always
//! yields the same violation list in the same order.
//!
//! Violations are drained per node with [`crate::NodeCtx::take_violations`]
//! after a `ppm_do`; the app test suites assert the drain is empty.

use std::collections::HashMap;

use crate::state::PhaseKind;

/// FNV-1a over a value's identity bytes ([`crate::elem::ByteHash`]): a
/// deterministic, std-only, allocation-free fingerprint usable for any
/// `Elem` (which requires `ByteHash` but not `PartialEq`). Distinct bit
/// patterns → distinct fingerprints up to 64-bit collisions; a collision
/// can only *hide* a conflict, never invent one.
pub(crate) fn fingerprint<T: crate::elem::ByteHash>(v: &T) -> u64 {
    let mut h = crate::elem::ByteHasher::new();
    v.hash_bytes(&mut h);
    h.finish()
}

/// Which shared-variable space an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Space {
    /// A `PPM_global_shared` array (cluster-distributed).
    Global,
    /// A `PPM_node_shared` array (one instance per node).
    Node,
}

impl std::fmt::Display for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Space::Global => write!(f, "global"),
            Space::Node => write!(f, "node"),
        }
    }
}

/// One conformance violation detected by the checker, reported at the
/// phase's end barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseViolation {
    /// Two different VPs assigned (`put`) different values to the same
    /// element in one phase without an `accumulate` combiner.
    WriteWriteConflict {
        /// Shared-variable space of the array.
        space: Space,
        /// Array id (allocation order on the node).
        array: u32,
        /// Element index (global index for global arrays).
        index: u64,
        /// Lowest global VP rank that wrote the element.
        first_vp: u64,
        /// The first *other* global VP rank that also wrote it.
        second_vp: u64,
        /// Kind of the phase the conflict happened in.
        phase: PhaseKind,
    },
    /// A VP read an element it had already written earlier in the same
    /// phase (the read returns the phase-start snapshot, not the write).
    ReadOwnWrite {
        /// Shared-variable space of the array.
        space: Space,
        /// Array id.
        array: u32,
        /// Element index.
        index: u64,
        /// Global VP rank that wrote and then read.
        vp: u64,
        /// Kind of the phase.
        phase: PhaseKind,
    },
    /// A phase was opened while the same VP was already inside one.
    NestedPhase {
        /// Node-relative rank of the offending VP.
        vp: usize,
        /// Node id.
        node: usize,
    },
    /// Concurrent VPs disagree on the kind of the current phase.
    PhaseKindMismatch {
        /// Kind of the already-open phase.
        open: PhaseKind,
        /// Kind the late VP tried to enter.
        entered: PhaseKind,
    },
    /// VPs did not all arrive at the same end-of-phase barrier.
    BarrierMismatch {
        /// Node id.
        node: usize,
        /// VPs still live in the `ppm_do`.
        live: usize,
        /// VPs waiting at the barrier.
        arrived: usize,
    },
}

impl std::fmt::Display for PhaseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseViolation::WriteWriteConflict {
                space,
                array,
                index,
                first_vp,
                second_vp,
                phase,
            } => write!(
                f,
                "write-write conflict: VPs {first_vp} and {second_vp} put different \
                 values to {space} array {array} element {index} in one {phase:?} phase \
                 without an accumulate combiner (resolution is deterministic but \
                 rank-ordered; use accumulate or disjoint index sets)"
            ),
            PhaseViolation::ReadOwnWrite {
                space,
                array,
                index,
                vp,
                phase,
            } => write!(
                f,
                "read-own-write hazard: VP {vp} read {space} array {array} element \
                 {index} after writing it in the same {phase:?} phase (the read sees \
                 the phase-start snapshot, not the new value; split the phase if the \
                 new value was intended)"
            ),
            PhaseViolation::NestedPhase { vp, node } => write!(
                f,
                "phases cannot be nested (VP {vp} on node {node} opened a phase while \
                 already inside one)"
            ),
            PhaseViolation::PhaseKindMismatch { open, entered } => write!(
                f,
                "VPs disagree on the current phase kind: a {entered:?} phase was entered \
                 while a {open:?} phase is open — the Parallel Phase Model requires all \
                 of a node's VPs to execute the same phase sequence"
            ),
            PhaseViolation::BarrierMismatch {
                node,
                live,
                arrived,
            } => write!(
                f,
                "barrier mismatch on node {node}: {live} live VPs but only {arrived} \
                 arrived at the phase barrier — VPs must all follow the same phase \
                 sequence"
            ),
        }
    }
}

/// Per-element access record for the currently open phase.
#[derive(Debug)]
struct ElemAccess {
    /// Per assigning VP: (global rank, fingerprint of its *last* `put`),
    /// sorted by rank. Only the last write per VP can win the phase's
    /// last-writer-wins resolution, so only it matters for conflicts.
    assigners: Vec<(u64, u64)>,
    /// Global VP ranks that issued an `accumulate` (sorted, deduped).
    accumulators: Vec<u64>,
    /// Kind of the phase the element was assigned in.
    kind: PhaseKind,
    /// VPs whose read-own-write hazard was already recorded.
    own_read_reported: Vec<u64>,
}

impl Default for ElemAccess {
    fn default() -> Self {
        ElemAccess {
            assigners: Vec::new(),
            accumulators: Vec::new(),
            kind: PhaseKind::Global,
            own_read_reported: Vec::new(),
        }
    }
}

fn insert_sorted(v: &mut Vec<u64>, x: u64) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

/// The per-node conformance checker. Lives in the runtime's `Inner` when
/// enabled; all hooks are O(1) amortized per access.
#[derive(Debug, Default)]
pub(crate) struct Checker {
    /// Access records of the currently open phase.
    elems: HashMap<(Space, u32, u64), ElemAccess>,
    /// Violations detected in the current phase (flushed at the barrier).
    pending: Vec<PhaseViolation>,
}

impl Checker {
    /// Record a `put` (plain assignment) of a value with the given
    /// fingerprint. Conflicts are judged at [`Checker::end_phase`], once
    /// every VP's last write is known.
    pub fn record_put(
        &mut self,
        space: Space,
        array: u32,
        index: u64,
        vp: u64,
        fp: u64,
        kind: PhaseKind,
    ) {
        let e = self.elems.entry((space, array, index)).or_default();
        e.kind = kind;
        match e.assigners.binary_search_by_key(&vp, |&(v, _)| v) {
            Ok(pos) => e.assigners[pos].1 = fp, // later write supersedes
            Err(pos) => e.assigners.insert(pos, (vp, fp)),
        }
    }

    /// Record an `accumulate` (combining write — never a conflict with
    /// other accumulates; mixing with `put` already aborts in the runtime).
    pub fn record_accum(&mut self, space: Space, array: u32, index: u64, vp: u64) {
        let e = self.elems.entry((space, array, index)).or_default();
        insert_sorted(&mut e.accumulators, vp);
    }

    /// Record a read; flags a read-own-write hazard if this VP wrote the
    /// element earlier in the phase.
    pub fn record_get(&mut self, space: Space, array: u32, index: u64, vp: u64, kind: PhaseKind) {
        let Some(e) = self.elems.get_mut(&(space, array, index)) else {
            return;
        };
        let wrote = e.assigners.binary_search_by_key(&vp, |&(v, _)| v).is_ok()
            || e.accumulators.binary_search(&vp).is_ok();
        if wrote && e.own_read_reported.binary_search(&vp).is_err() {
            insert_sorted(&mut e.own_read_reported, vp);
            self.pending.push(PhaseViolation::ReadOwnWrite {
                space,
                array,
                index,
                vp,
                phase: kind,
            });
        }
    }

    /// Close the phase: judge write-write conflicts now that every VP's
    /// last write is known, clear access records, and return the phase's
    /// violations in deterministic order.
    pub fn end_phase(&mut self) -> Vec<PhaseViolation> {
        for (&(space, array, index), e) in &self.elems {
            // Rank order can only matter when at least two VPs assigned
            // AND their last values differ; identical (idempotent) puts
            // resolve to the same value no matter which writer wins.
            if e.assigners.len() >= 2 {
                let (first_vp, first_fp) = e.assigners[0];
                if let Some(&(second_vp, _)) =
                    e.assigners[1..].iter().find(|&&(_, fp)| fp != first_fp)
                {
                    self.pending.push(PhaseViolation::WriteWriteConflict {
                        space,
                        array,
                        index,
                        first_vp,
                        second_vp,
                        phase: e.kind,
                    });
                }
            }
        }
        self.elems.clear();
        let mut out = std::mem::take(&mut self.pending);
        out.sort_by_key(violation_sort_key);
        out
    }
}

/// Deterministic report order: by space, array, element, then ranks.
fn violation_sort_key(v: &PhaseViolation) -> (u8, Space, u32, u64, u64, u64) {
    match *v {
        PhaseViolation::WriteWriteConflict {
            space,
            array,
            index,
            first_vp,
            second_vp,
            ..
        } => (0, space, array, index, first_vp, second_vp),
        PhaseViolation::ReadOwnWrite {
            space,
            array,
            index,
            vp,
            ..
        } => (1, space, array, index, vp, 0),
        PhaseViolation::NestedPhase { vp, node } => {
            (2, Space::Global, 0, 0, vp as u64, node as u64)
        }
        PhaseViolation::PhaseKindMismatch { .. } => (3, Space::Global, 0, 0, 0, 0),
        PhaseViolation::BarrierMismatch { node, .. } => (4, Space::Global, 0, 0, 0, node as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_put_writers_conflict_once() {
        let mut c = Checker::default();
        c.record_put(Space::Global, 0, 5, 1, 10, PhaseKind::Global);
        c.record_put(Space::Global, 0, 5, 1, 11, PhaseKind::Global); // same VP: fine
        c.record_put(Space::Global, 0, 5, 3, 30, PhaseKind::Global);
        c.record_put(Space::Global, 0, 5, 7, 70, PhaseKind::Global); // one report per element
        let v = c.end_phase();
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0],
            PhaseViolation::WriteWriteConflict {
                space: Space::Global,
                array: 0,
                index: 5,
                first_vp: 1,
                second_vp: 3,
                phase: PhaseKind::Global,
            }
        );
    }

    #[test]
    fn idempotent_identical_puts_are_clean() {
        let mut c = Checker::default();
        // Three VPs all put the same value: last-writer-wins is
        // value-deterministic, no conflict.
        for vp in [0, 4, 9] {
            c.record_put(Space::Global, 2, 7, vp, 1234, PhaseKind::Global);
        }
        assert!(c.end_phase().is_empty());
        // Only the *last* write per VP counts: VP 1 first disagrees, then
        // converges to VP 0's value.
        c.record_put(Space::Global, 2, 7, 0, 50, PhaseKind::Global);
        c.record_put(Space::Global, 2, 7, 1, 99, PhaseKind::Global);
        c.record_put(Space::Global, 2, 7, 1, 50, PhaseKind::Global);
        assert!(c.end_phase().is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_values() {
        assert_eq!(fingerprint(&1.5f64), fingerprint(&1.5f64));
        assert_ne!(fingerprint(&1.5f64), fingerprint(&2.5f64));
        assert_ne!(fingerprint(&0.0f64), fingerprint(&-0.0f64));
        assert_ne!(fingerprint(&(1u64, 2u64)), fingerprint(&(2u64, 1u64)));
    }

    /// Regression for the Debug-rendering fingerprint's collision class:
    /// distinct NaN payloads render identically ("NaN"), so two VPs putting
    /// different NaN bit patterns used to look idempotent and the conflict
    /// was silently missed. Byte-level hashing must flag it.
    #[test]
    fn nan_payload_conflicts_are_detected() {
        let quiet = f64::NAN;
        let payload = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert_eq!(format!("{quiet:?}"), format!("{payload:?}"));
        let mut c = Checker::default();
        c.record_put(
            Space::Global,
            0,
            3,
            0,
            fingerprint(&quiet),
            PhaseKind::Global,
        );
        c.record_put(
            Space::Global,
            0,
            3,
            1,
            fingerprint(&payload),
            PhaseKind::Global,
        );
        let v = c.end_phase();
        assert_eq!(v.len(), 1, "distinct NaN payloads are a real conflict");
        assert!(matches!(
            v[0],
            PhaseViolation::WriteWriteConflict { index: 3, .. }
        ));
        // Same payload from both VPs stays idempotent-clean.
        c.record_put(
            Space::Global,
            0,
            3,
            0,
            fingerprint(&quiet),
            PhaseKind::Global,
        );
        c.record_put(
            Space::Global,
            0,
            3,
            1,
            fingerprint(&quiet),
            PhaseKind::Global,
        );
        assert!(c.end_phase().is_empty());
    }

    #[test]
    fn accumulates_never_conflict() {
        let mut c = Checker::default();
        for vp in 0..10 {
            c.record_accum(Space::Global, 2, 0, vp);
        }
        assert!(c.end_phase().is_empty());
    }

    #[test]
    fn read_own_write_detected_per_vp() {
        let mut c = Checker::default();
        c.record_put(Space::Node, 1, 4, 2, 77, PhaseKind::Node);
        c.record_get(Space::Node, 1, 4, 9, PhaseKind::Node); // other VP: fine
        c.record_get(Space::Node, 1, 4, 2, PhaseKind::Node); // own: hazard
        c.record_get(Space::Node, 1, 4, 2, PhaseKind::Node); // deduped
        let v = c.end_phase();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            PhaseViolation::ReadOwnWrite {
                vp: 2,
                index: 4,
                ..
            }
        ));
    }

    #[test]
    fn read_before_write_is_clean() {
        let mut c = Checker::default();
        c.record_get(Space::Global, 0, 3, 5, PhaseKind::Global);
        c.record_put(Space::Global, 0, 3, 5, 77, PhaseKind::Global);
        assert!(c.end_phase().is_empty());
    }

    #[test]
    fn end_phase_resets_state() {
        let mut c = Checker::default();
        c.record_put(Space::Global, 0, 1, 0, 10, PhaseKind::Global);
        c.record_put(Space::Global, 0, 1, 1, 20, PhaseKind::Global);
        assert_eq!(c.end_phase().len(), 1);
        // Next phase: same element, one writer — clean.
        c.record_put(Space::Global, 0, 1, 1, 30, PhaseKind::Global);
        assert!(c.end_phase().is_empty());
    }

    #[test]
    fn reports_sort_deterministically() {
        let mut c = Checker::default();
        c.record_put(Space::Node, 1, 9, 0, 1, PhaseKind::Node);
        c.record_put(Space::Node, 1, 9, 1, 2, PhaseKind::Node);
        c.record_put(Space::Global, 0, 2, 0, 1, PhaseKind::Global);
        c.record_put(Space::Global, 0, 2, 1, 2, PhaseKind::Global);
        let v = c.end_phase();
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            PhaseViolation::WriteWriteConflict {
                space: Space::Global,
                index: 2,
                ..
            }
        ));
        assert!(matches!(
            v[1],
            PhaseViolation::WriteWriteConflict {
                space: Space::Node,
                index: 9,
                ..
            }
        ));
    }

    #[test]
    fn display_is_actionable() {
        let v = PhaseViolation::WriteWriteConflict {
            space: Space::Global,
            array: 3,
            index: 17,
            first_vp: 2,
            second_vp: 5,
            phase: PhaseKind::Global,
        };
        let s = v.to_string();
        assert!(s.contains("write-write conflict"));
        assert!(s.contains("element 17"));
        assert!(s.contains("accumulate"));
    }
}
