//! Handles to PPM shared variables.
//!
//! Handles are small `Copy` tokens (array id + length), so VP closures can
//! capture them freely; the actual storage lives in the node runtime. This
//! mirrors the paper's `PPM_global_shared` / `PPM_node_shared` declarations:
//! a global declaration names *one* cluster-wide array, a node declaration
//! names one array *per node* (§3.1 item 1).

use std::marker::PhantomData;

use crate::elem::Elem;

/// A globally shared array, partitioned over the nodes of the cluster
/// (virtual shared memory). Declared with
/// [`NodeCtx::alloc_global`](crate::NodeCtx::alloc_global).
pub struct GlobalShared<T: Elem> {
    pub(crate) id: u32,
    pub(crate) len: usize,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T: Elem> GlobalShared<T> {
    pub(crate) fn new(id: u32, len: usize) -> Self {
        GlobalShared {
            id,
            len,
            _t: PhantomData,
        }
    }

    /// Global length of the array.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// Derived impls would bound on `T`, which handles don't need.
impl<T: Elem> Clone for GlobalShared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Elem> Copy for GlobalShared<T> {}
impl<T: Elem> std::fmt::Debug for GlobalShared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalShared#{}(len={})", self.id, self.len)
    }
}

/// A node-shared array: one instance per node, living in that node's
/// physical shared memory. Declared with
/// [`NodeCtx::alloc_node`](crate::NodeCtx::alloc_node).
pub struct NodeShared<T: Elem> {
    pub(crate) id: u32,
    pub(crate) len: usize,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T: Elem> NodeShared<T> {
    pub(crate) fn new(id: u32, len: usize) -> Self {
        NodeShared {
            id,
            len,
            _t: PhantomData,
        }
    }

    /// Length of this node's instance.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Elem> Clone for NodeShared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Elem> Copy for NodeShared<T> {}
impl<T: Elem> std::fmt::Debug for NodeShared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeShared#{}(len={})", self.id, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_small() {
        let g: GlobalShared<f64> = GlobalShared::new(0, 10);
        let g2 = g;
        assert_eq!(g.len(), g2.len());
        assert!(std::mem::size_of::<GlobalShared<f64>>() <= 16);
        let n: NodeShared<u64> = NodeShared::new(1, 0);
        assert!(n.is_empty());
        assert_eq!(format!("{g:?}"), "GlobalShared#0(len=10)");
    }
}
