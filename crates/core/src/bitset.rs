//! Growable node-id bitsets for the runtime's barrier sidecars.
//!
//! The dissemination barrier carries several per-node bit vectors as free
//! sidecar payload (DESIGN.md §13–§16): cache-invalidation bits per array,
//! the suspicion/confirmed-death sets of the failure detector, and the
//! per-entry destination masks of refresh pushes. They used to be fixed
//! `u64`/`u128` words, which silently capped the runtime at 64 (refresh
//! push) and 128 (death detection) nodes. [`NodeSet`] is the growable
//! replacement: a small `Vec<u64>`-backed set with the handful of
//! operations the sidecars need, deterministic iteration in ascending bit
//! order, and a *normalized* representation (no trailing zero words) so
//! equality and emptiness are structural.
//!
//! Sets ride simulated messages but are modeled as free protocol sidecar —
//! like write keys and rank tags, they carry no wire-byte charge of their
//! own (the payloads they gate are charged instead).

/// A growable set of small non-negative integers (node ids, array ids).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    /// Little-endian 64-bit words; invariant: the last word is non-zero.
    words: Vec<u64>,
}

impl NodeSet {
    /// The empty set.
    #[inline]
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// A set containing exactly `bit`.
    pub fn single(bit: usize) -> Self {
        let mut s = NodeSet::new();
        s.insert(bit);
        s
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether at least one bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        !self.words.is_empty()
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Add `bit` to the set.
    pub fn insert(&mut self, bit: usize) {
        let w = bit / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (bit % 64);
    }

    /// Remove `bit` from the set.
    pub fn remove(&mut self, bit: usize) {
        let w = bit / 64;
        if w < self.words.len() {
            self.words[w] &= !(1u64 << (bit % 64));
            self.normalize();
        }
    }

    /// Whether `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let w = bit / 64;
        w < self.words.len() && self.words[w] & (1u64 << (bit % 64)) != 0
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.normalize();
    }

    /// `self & !other`, as a new set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut d = self.clone();
        d.difference_with(other);
        d
    }

    /// Whether `self ∩ other` is non-empty.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `self & other`, as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        NodeSet { words }
    }

    /// Smallest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * 64 + self.words[i].trailing_zeros() as usize)
    }

    /// Remove every bit.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterate the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let b = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(i * 64 + b)
                }
            })
        })
    }

    /// Restore the no-trailing-zero-words invariant.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<usize> for NodeSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_across_word_boundaries() {
        let mut s = NodeSet::new();
        for b in [0, 63, 64, 127, 128, 1000] {
            assert!(!s.contains(b));
            s.insert(b);
            assert!(s.contains(b), "bit {b}");
        }
        assert_eq!(s.count(), 6);
        assert_eq!(s.first(), Some(0));
        s.remove(0);
        assert_eq!(s.first(), Some(63));
        s.remove(1000);
        assert!(!s.contains(1000));
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn equality_is_structural_after_removal() {
        // Removing a high bit must not leave a trailing zero word that
        // breaks Eq against a set that never had the bit.
        let mut a = NodeSet::single(900);
        a.insert(3);
        a.remove(900);
        assert_eq!(a, NodeSet::single(3));
        a.remove(3);
        assert_eq!(a, NodeSet::new());
        assert!(a.is_empty());
        assert_eq!(a.first(), None);
    }

    #[test]
    fn union_difference_intersection() {
        let a: NodeSet = [1usize, 65, 200].into_iter().collect();
        let b: NodeSet = [65usize, 300].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 65, 200, 300]);
        let d = a.difference(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 200]);
        assert!(a.intersects(&b));
        assert!(!d.intersects(&b));
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![65]);
        assert!(a.intersection(&d.difference(&a)).is_empty());
    }

    #[test]
    fn iter_is_ascending_and_matches_count() {
        let bits = [7usize, 0, 511, 64, 65, 129];
        let s: NodeSet = bits.into_iter().collect();
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 7, 64, 65, 129, 511]);
        assert_eq!(s.count() as usize, got.len());
    }

    #[test]
    fn debug_renders_as_set() {
        let s: NodeSet = [2usize, 70].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{2, 70}");
    }
}
