//! Higher-level runtime utilities built on the model's own primitives.
//!
//! The paper lists utility functions (reduction, parallel prefix, …) as
//! part of the PPM programming environment (§3.1 item 6). The node-level
//! reduction/prefix/broadcast live as methods on
//! [`NodeCtx`]; this module adds array-granularity
//! utilities used by the applications, most importantly a distributed
//! sample sort.

use crate::dist::Layout;
use crate::elem::Elem;
use crate::nodectx::NodeCtx;
use crate::shared::GlobalShared;

/// Guard for the combine-order contract of [`reduce_global`] and
/// [`scan_global`]: both document ascending-global-index application of
/// `op`, which the node-local storage order delivers only under a
/// contiguous distribution (block, or the weighted layout of a balanced
/// array). A cyclic partition stores global indices
/// `node, node + p, node + 2p, …` contiguously, so folding local runs and
/// combining across nodes would silently apply `op` in a scrambled order —
/// wrong for any non-commutative `op`. Reject loudly instead.
fn require_contiguous_layout<T: Elem>(node: &NodeCtx<'_>, g: &GlobalShared<T>, what: &str) {
    let dist = node.dist_of(g);
    assert!(
        !matches!(dist.layout, Layout::Cyclic),
        "{what} requires a block-distributed array (or any contiguous \
         layout): the documented ascending-global-index combine order \
         cannot be recovered from a cyclic layout's local storage \
         (allocate with Layout::Block, or gather and fold explicitly for \
         cyclic data)"
    );
}

/// Sort a block-distributed global `u64` array in place (ascending), using
/// a node-level sample sort: sample local partitions, agree on splitters,
/// pairwise-exchange buckets, sort locally, then rebalance back to the
/// array's block distribution. Collective.
///
/// Charges `O((n/p)·log n)` comparison work per node plus the exchange
/// traffic that the pairwise all-to-all induces.
pub fn sort_global_u64(node: &mut NodeCtx<'_>, g: &GlobalShared<u64>) {
    sort_global_by_key(node, g, |x| x)
}

/// Like [`sort_global_u64`] but ordering elements by `key(elem)`.
/// `key` must be the same function on every node. The sort is stable with
/// respect to the pre-sort global order of equal keys.
pub fn sort_global_by_key<T, K>(node: &mut NodeCtx<'_>, g: &GlobalShared<T>, key: K)
where
    T: Elem,
    K: Fn(T) -> u64 + Copy,
{
    let p = node.num_nodes();
    let n = g.len();
    if n == 0 {
        return;
    }
    let mut local: Vec<T> = node.with_local(g, |s| s.to_vec());
    // 1. Local sort.
    charge_sort(node, local.len());
    local.sort_by_key(|&x| key(x));

    if p > 1 {
        // 2. Regular sampling: p samples per node.
        let samples: Vec<u64> = (0..p)
            .map(|i| {
                if local.is_empty() {
                    u64::MAX
                } else {
                    key(local[i * local.len() / p])
                }
            })
            .collect();
        let mut sorted_samples: Vec<u64> = node
            .allgatherv_nodes(samples)
            .into_iter()
            .flatten()
            .collect();
        sorted_samples.sort_unstable();
        // p-1 splitters at the sample quantiles.
        let splitters: Vec<u64> = (1..p).map(|i| sorted_samples[i * p]).collect();

        // 3. Partition the local run by splitter and exchange pairwise.
        let mut buckets: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for &x in &local {
            let b = splitters.partition_point(|&s| s <= key(x));
            buckets[b].push(x);
        }
        charge_probe(node, local.len(), p);
        let received = node.alltoallv_nodes(buckets);

        // 4. Merge the received (sorted) runs.
        local = received.into_iter().flatten().collect();
        charge_sort(node, local.len());
        local.sort_by_key(|&x| key(x));
    }

    // 5. Rebalance to the block distribution: node i must end up with
    //    exactly its block of the globally sorted order.
    let counts = node.allgather_nodes(local.len() as u64);
    let my_start: u64 = counts[..node.node_id()].iter().sum();
    // Widen-then-narrow audit: the prefix sum of partition sizes is bounded
    // by the global length (a usize), so the conversion cannot truncate —
    // assert it rather than `as`-cast and wrap on a 32-bit host.
    let my_start = usize::try_from(my_start).expect("sort rebalance offset exceeds usize");
    let dist = node.dist_of(g);
    let mut outgoing: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for (i, &x) in local.iter().enumerate() {
        let gidx = my_start + i;
        outgoing[dist.owner(gidx)].push(x);
    }
    let incoming = node.alltoallv_nodes(outgoing);
    // Sources arrive in node order and each node's run is sorted and
    // contiguous in the global order, so concatenation is exactly the
    // block this node owns.
    let merged: Vec<T> = incoming.into_iter().flatten().collect();
    node.with_local_mut(g, |s| {
        assert_eq!(
            s.len(),
            merged.len(),
            "rebalance must fill the block exactly"
        );
        s.copy_from_slice(&merged);
    });
}

/// Reduce a global array to a single value with `op` (applied in ascending
/// index order per node, then across nodes in node order — deterministic).
/// Collective; every node receives the result.
///
/// Requires a block distribution (panics otherwise): only block layout
/// makes local storage order equal ascending global-index order, which the
/// combine-order guarantee above depends on for non-commutative `op`.
pub fn reduce_global<T, F>(node: &mut NodeCtx<'_>, g: &GlobalShared<T>, identity: T, op: F) -> T
where
    T: Elem,
    F: Fn(T, T) -> T,
{
    require_contiguous_layout(node, g, "reduce_global");
    let local = node.with_local(g, |s| s.iter().fold(identity, |a, &b| op(a, b)));
    node.charge_mem_ops(node.with_local(g, |s| s.len()) as u64);
    node.allreduce_nodes(local, op)
}

/// In-place inclusive prefix combine (parallel prefix, paper §3.1 item 6)
/// over a block-distributed global array: element `i` becomes
/// `op(a[0], …, a[i])`. Local scans plus one node-level exclusive scan.
/// Collective.
pub fn scan_global<T, F>(node: &mut NodeCtx<'_>, g: &GlobalShared<T>, op: F)
where
    T: Elem,
    F: Fn(T, T) -> T + Copy,
{
    // Contiguous layouts only (panics otherwise): the local-scan + carry
    // scheme below is only a prefix combine in ascending global-index
    // order when each node's storage is one contiguous global stretch.
    require_contiguous_layout(node, g, "scan_global");

    // 1. Local inclusive scan.
    let total = node.with_local_mut(g, |s| {
        let mut acc: Option<T> = None;
        for v in s.iter_mut() {
            acc = Some(match acc {
                None => *v,
                Some(a) => op(a, *v),
            });
            *v = acc.expect("just set");
        }
        acc
    });
    node.charge_mem_ops(node.with_local(g, |s| s.len()) as u64);

    // 2. Exclusive scan of the node totals (empty partitions contribute
    //    nothing).
    let below = node
        .exscan_nodes(total, move |a, b| match (a, b) {
            (Some(x), Some(y)) => Some(op(x, y)),
            (x, None) => x,
            (None, y) => y,
        })
        .flatten();

    // 3. Fold the carry into the local elements.
    if let Some(carry) = below {
        node.with_local_mut(g, |s| {
            for v in s.iter_mut() {
                *v = op(carry, *v);
            }
        });
        node.charge_mem_ops(node.with_local(g, |s| s.len()) as u64);
    }
}

/// Scatter `(global index, value)` records into a global array: records are
/// routed to their owner nodes (pairwise exchange) and written directly.
/// Collective; each index should be written by at most one record across
/// all nodes (later sources overwrite earlier ones deterministically).
pub fn scatter_global<T: Elem>(
    node: &mut NodeCtx<'_>,
    g: &GlobalShared<T>,
    records: Vec<(usize, T)>,
) {
    let dist = node.dist_of(g);
    let p = node.num_nodes();
    let mut sends: Vec<Vec<(u64, T)>> = (0..p).map(|_| Vec::new()).collect();
    for (idx, v) in records {
        assert!(idx < g.len(), "scatter index {idx} out of bounds");
        sends[dist.owner(idx)].push((idx as u64, v));
    }
    let received = node.alltoallv_nodes(sends);
    node.charge_mem_ops(received.iter().map(Vec::len).sum::<usize>() as u64);
    node.with_local_mut(g, |s| {
        for batch in received {
            for (idx, v) in batch {
                // Indices were produced from usize on the sender; a wire
                // value that no longer fits is corruption, not data.
                let idx = usize::try_from(idx).expect("scatter index exceeds usize");
                s[dist.local_offset(idx)] = v;
            }
        }
    });
}

fn charge_sort(node: &mut NodeCtx<'_>, n: usize) {
    if n > 1 {
        let cmps = (n as u64) * (usize::BITS - (n - 1).leading_zeros()) as u64;
        node.charge_mem_ops(cmps);
    }
}

fn charge_probe(node: &mut NodeCtx<'_>, n: usize, p: usize) {
    if n > 0 && p > 1 {
        let cmps = (n as u64) * (usize::BITS - (p - 1).leading_zeros()) as u64;
        node.charge_mem_ops(cmps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, PpmConfig};

    fn scrambled(n: usize) -> Vec<u64> {
        // Deterministic pseudo-random values (with duplicates).
        (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761)) % 1000)
            .collect()
    }

    #[test]
    fn sample_sort_matches_std_sort() {
        for nodes in [1u32, 2, 3, 5] {
            for n in [0usize, 1, 7, 100, 257] {
                let vals = scrambled(n);
                let mut expect = vals.clone();
                expect.sort_unstable();
                let report = run(PpmConfig::new(ppm_simnet::MachineConfig::new(nodes, 2)), {
                    let vals = vals.clone();
                    move |node| {
                        let g = node.alloc_global::<u64>(n);
                        let r = node.local_range(&g);
                        node.with_local_mut(&g, |s| {
                            s.copy_from_slice(&vals[r.clone()]);
                        });
                        sort_global_u64(node, &g);
                        node.gather_global(&g)
                    }
                });
                for got in report.results {
                    assert_eq!(got, expect, "nodes={nodes} n={n}");
                }
            }
        }
    }

    #[test]
    fn reduce_global_matches_sequential_fold() {
        for nodes in [1u32, 2, 5] {
            for n in [0usize, 1, 13, 64] {
                let report = run(
                    PpmConfig::new(ppm_simnet::MachineConfig::new(nodes, 1)),
                    move |node| {
                        let g = node.alloc_global::<u64>(n);
                        let r = node.local_range(&g);
                        node.with_local_mut(&g, |s| {
                            for (off, v) in s.iter_mut().enumerate() {
                                *v = (r.start + off) as u64 + 1;
                            }
                        });
                        (
                            reduce_global(node, &g, 0, |a, b| a + b),
                            reduce_global(node, &g, u64::MAX, u64::min),
                        )
                    },
                );
                let sum = (n as u64) * (n as u64 + 1) / 2;
                let min = if n == 0 { u64::MAX } else { 1 };
                for (s, m) in report.results {
                    assert_eq!(s, sum, "nodes={nodes} n={n}");
                    assert_eq!(m, min, "nodes={nodes} n={n}");
                }
            }
        }
    }

    #[test]
    fn scan_global_is_inclusive_prefix() {
        for nodes in [1u32, 2, 3, 7] {
            for n in [0usize, 1, 9, 50] {
                let report = run(
                    PpmConfig::new(ppm_simnet::MachineConfig::new(nodes, 1)),
                    move |node| {
                        let g = node.alloc_global::<u64>(n);
                        let r = node.local_range(&g);
                        node.with_local_mut(&g, |s| {
                            for (off, v) in s.iter_mut().enumerate() {
                                *v = (r.start + off) as u64 + 1;
                            }
                        });
                        scan_global(node, &g, |a, b| a + b);
                        node.gather_global(&g)
                    },
                );
                let expect: Vec<u64> = (1..=n as u64).map(|i| i * (i + 1) / 2).collect();
                for got in report.results {
                    assert_eq!(got, expect, "nodes={nodes} n={n}");
                }
            }
        }
    }

    /// Non-commutative associative op for order tests: elements are affine
    /// maps `x → αx + β` over wrapping `u32`, packed as `(α << 32) | β`.
    /// `combine(f, g)` is "apply f, then g" — function composition, which
    /// is associative but (for α ≠ 1) not commutative, so any deviation
    /// from ascending-global-index order changes the result.
    fn affine(alpha: u32, beta: u32) -> u64 {
        ((alpha as u64) << 32) | beta as u64
    }

    fn affine_combine(f: u64, g: u64) -> u64 {
        let (fa, fb) = ((f >> 32) as u32, f as u32);
        let (ga, gb) = ((g >> 32) as u32, g as u32);
        affine(ga.wrapping_mul(fa), ga.wrapping_mul(fb).wrapping_add(gb))
    }

    const AFFINE_ID: u64 = 1 << 32;

    fn affine_elem(i: usize) -> u64 {
        affine(2 * i as u32 + 3, i as u32)
    }

    #[test]
    fn reduce_global_applies_non_commutative_op_in_index_order() {
        for nodes in [1u32, 2, 3, 5] {
            for n in [0usize, 1, 13, 64] {
                let report = run(
                    PpmConfig::new(ppm_simnet::MachineConfig::new(nodes, 1)),
                    move |node| {
                        let g = node.alloc_global::<u64>(n);
                        let r = node.local_range(&g);
                        node.with_local_mut(&g, |s| {
                            for (off, v) in s.iter_mut().enumerate() {
                                *v = affine_elem(r.start + off);
                            }
                        });
                        reduce_global(node, &g, AFFINE_ID, affine_combine)
                    },
                );
                let expect = (0..n).map(affine_elem).fold(AFFINE_ID, affine_combine);
                for got in report.results {
                    assert_eq!(got, expect, "nodes={nodes} n={n}");
                }
            }
        }
    }

    #[test]
    fn scan_global_applies_non_commutative_op_in_index_order() {
        for nodes in [1u32, 2, 3, 7] {
            for n in [0usize, 1, 9, 50] {
                let report = run(
                    PpmConfig::new(ppm_simnet::MachineConfig::new(nodes, 1)),
                    move |node| {
                        let g = node.alloc_global::<u64>(n);
                        let r = node.local_range(&g);
                        node.with_local_mut(&g, |s| {
                            for (off, v) in s.iter_mut().enumerate() {
                                *v = affine_elem(r.start + off);
                            }
                        });
                        scan_global(node, &g, affine_combine);
                        node.gather_global(&g)
                    },
                );
                let mut expect = Vec::with_capacity(n);
                let mut acc = AFFINE_ID;
                for i in 0..n {
                    acc = affine_combine(acc, affine_elem(i));
                    expect.push(acc);
                }
                for got in report.results {
                    assert_eq!(got, expect, "nodes={nodes} n={n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "block-distributed")]
    fn reduce_global_rejects_cyclic_layout() {
        // Regression: a cyclic layout used to fold local storage order —
        // global indices `node, node+p, …` — silently producing an
        // order-dependent result for non-commutative ops.
        run(
            PpmConfig::new(ppm_simnet::MachineConfig::new(2, 1)),
            move |node| {
                let g = node.alloc_global_with::<u64>(8, crate::dist::Layout::Cyclic);
                reduce_global(node, &g, AFFINE_ID, affine_combine)
            },
        );
    }

    #[test]
    #[should_panic(expected = "block-distributed")]
    fn scan_global_rejects_cyclic_layout() {
        run(
            PpmConfig::new(ppm_simnet::MachineConfig::new(2, 1)),
            move |node| {
                let g = node.alloc_global_with::<u64>(8, crate::dist::Layout::Cyclic);
                scan_global(node, &g, affine_combine);
            },
        );
    }

    #[test]
    fn sort_by_key_orders_structs() {
        let n = 64usize;
        let report = run(
            PpmConfig::new(ppm_simnet::MachineConfig::new(3, 1)),
            move |node| {
                let g = node.alloc_global::<(u64, f64)>(n);
                let r = node.local_range(&g);
                node.with_local_mut(&g, |s| {
                    for (off, v) in s.iter_mut().enumerate() {
                        let gi = (r.start + off) as u64;
                        *v = ((n as u64 - gi) % 17, gi as f64);
                    }
                });
                sort_global_by_key(node, &g, |(k, _)| k);
                node.gather_global(&g)
            },
        );
        for got in report.results {
            let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(keys, expect);
        }
    }
}
