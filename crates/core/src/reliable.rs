//! The PPM runtime's reliable-transport sublayer.
//!
//! The simulated network ([`ppm_simnet`]) delivers every message exactly
//! once, in per-sender FIFO order — real HPC interconnects mostly do too,
//! until they don't. This module makes the runtime survive the faults a
//! seeded [`FaultPlan`] injects: every runtime message becomes a
//! *sequence-numbered envelope* on its directed link, receivers send
//! *cumulative acknowledgements* every [`PpmConfig::ack_every`] envelopes,
//! lost transmission attempts are retransmitted after a *capped
//! exponential backoff* in **simulated** time, and duplicate copies are
//! suppressed on receive.
//!
//! ## Virtual retransmission
//!
//! Payloads are live `Box<dyn Any + Send>` values that cannot be cloned or
//! reconstructed, so a drop is injected *virtually*: the fault plan tells
//! the sender, at send time, how many transmission attempts will be lost
//! (`lost_attempts`). The sender charges the attempts' retransmission
//! delays — the deterministic schedule its timeout state machine would
//! produce: attempt `i` fires `min(rto · 2^(i-1), rto_max)` after the
//! previous one — and the surviving copy travels with the accumulated
//! delay. Duplicates are likewise delivered as a receiver-side count and
//! suppressed there. The observable protocol behavior (retry counters,
//! backoff delays, ack traffic, makespan impact) is exactly that of a
//! message-loss run, but bit-reproducible and independent of host timing.
//!
//! ## Time accounting
//!
//! Fault/backoff delay reaches the simulated clocks by message kind:
//! barrier and collective messages carry it on [`Message::ts`] (their
//! receivers wait until `ts`), while data-plane messages (requests,
//! responses, write bundles), whose cost is charged from per-phase traffic
//! totals, accumulate it in [`Traffic::rel_delay`] and pay it at
//! `charge_phase_time`. Either way the end-of-phase clock barrier
//! propagates the maximum, so one slow link stalls the whole phase — just
//! like a real BSP super-step.
//!
//! [`Message::ts`]: ppm_simnet::Message
//! [`Traffic::rel_delay`]: crate::state::Traffic
//! [`PpmConfig::ack_every`]: crate::PpmConfig

use ppm_simnet::{FaultPlan, RelMeta, SimTime};

use crate::config::PpmConfig;

/// Per-directed-link protocol state (this node ↔ one peer).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkState {
    /// Sequence number of the next envelope sent to the peer.
    pub next_seq: u64,
    /// Peer's cumulative ack: envelopes `< acked_by_peer` are known
    /// delivered.
    pub acked_by_peer: u64,
    /// Next envelope sequence expected *from* the peer.
    pub recv_next: u64,
    /// Envelopes received from the peer since the last ack we sent.
    pub recv_unacked: u64,
}

impl LinkState {
    /// Envelopes sent to the peer but not yet covered by its cumulative
    /// ack.
    pub fn outstanding(&self) -> u64 {
        self.next_seq - self.acked_by_peer
    }
}

/// What the reliability layer did to an outgoing envelope.
pub(crate) struct SendOutcome {
    /// Envelope metadata to attach to the message.
    pub meta: RelMeta,
    /// Total retransmission backoff charged for the lost attempts.
    pub backoff: SimTime,
    /// Extra wire delay the fault plan injected on the surviving copy.
    pub wire_delay: SimTime,
}

impl SendOutcome {
    /// Backoff plus injected wire delay.
    pub fn total_delay(&self) -> SimTime {
        self.backoff + self.wire_delay
    }
}

/// What the reliability layer did with an incoming envelope.
pub(crate) struct RecvOutcome {
    /// Duplicate copies suppressed alongside this envelope.
    pub dups_suppressed: u32,
    /// `Some(watermark)`: a cumulative ack for envelopes `< watermark` is
    /// due to the sender now.
    pub ack_due: Option<u64>,
}

/// Total capped-exponential retransmission backoff for `lost_attempts`
/// consecutive losses: the i-th retransmission fires
/// `min(rto · 2^(i-1), rto_max)` after the previous attempt, all in
/// simulated time.
///
/// Saturating arithmetic throughout: the doubling step would overflow
/// `u64` picoseconds within 64 attempts when `rto_max` leaves it
/// effectively uncapped, and the accumulated sum can overflow for large
/// attempt counts regardless — either way the schedule must clamp, not
/// wrap (release) or panic (debug).
pub(crate) fn backoff_schedule(lost_attempts: u32, rto: SimTime, rto_max: SimTime) -> SimTime {
    let mut backoff = SimTime::ZERO;
    let mut step = if rto < rto_max { rto } else { rto_max };
    for _ in 0..lost_attempts {
        backoff = backoff.saturating_add(step);
        let doubled = step.saturating_add(step);
        step = if doubled < rto_max { doubled } else { rto_max };
    }
    backoff
}

/// Per-node reliability state machine. Present on a [`crate::NodeCtx`]
/// only when reliability is enabled ([`PpmConfig::reliability_enabled`]);
/// with it absent the send/receive fast paths are untouched.
pub(crate) struct Reliability {
    me: usize,
    plan: FaultPlan,
    links: Vec<LinkState>,
    rto: SimTime,
    rto_max: SimTime,
    ack_every: u64,
}

impl Reliability {
    pub fn new(me: usize, cfg: &PpmConfig) -> Self {
        assert!(cfg.ack_every >= 1, "ack_every must be at least 1");
        Reliability {
            me,
            plan: FaultPlan::new(cfg.machine.faults),
            links: vec![LinkState::default(); cfg.nodes()],
            rto: cfg.rto,
            rto_max: cfg.rto_max,
            ack_every: cfg.ack_every,
        }
    }

    /// Whether this node crashes at the end of global phase `phase`.
    pub fn crash_at(&self, phase: u64) -> bool {
        self.plan.crash_at(self.me, phase)
    }

    /// Whether super-step snapshots must be maintained (a transient crash
    /// or a permanent death is configured for *some* node; every node
    /// snapshots so the survivor set is symmetric and costs are uniform).
    pub fn snapshots_enabled(&self) -> bool {
        let cfg = self.plan.config();
        cfg.crash.is_some() || cfg.any_permanent_crash()
    }

    /// Nodes scheduled to die permanently at the end of global phase
    /// `phase` (ascending; replicated plan, so identical on every node).
    pub fn perm_victims_at(&self, phase: u64) -> Vec<usize> {
        self.plan.perm_victims_at(phase)
    }

    /// Whether `node` has died permanently at or before the end of global
    /// phase `phase`.
    pub fn perm_dead_by(&self, node: usize, phase: u64) -> bool {
        self.plan.perm_dead_by(node, phase)
    }

    /// Process an outgoing envelope to `dst`: assign its sequence number,
    /// consult the fault plan, and price the retransmission backoff for
    /// any lost attempts.
    pub fn on_send(&mut self, dst: usize, kind: u64) -> SendOutcome {
        let ev = self.plan.on_send(self.me, dst, kind);
        let link = &mut self.links[dst];
        let seq = link.next_seq;
        link.next_seq += 1;

        let backoff = backoff_schedule(ev.lost_attempts, self.rto, self.rto_max);

        SendOutcome {
            meta: RelMeta {
                seq,
                lost_attempts: ev.lost_attempts,
                duplicates: ev.duplicates,
            },
            backoff,
            wire_delay: ev.extra_delay,
        }
    }

    /// Process an incoming envelope from `src`: verify the sequence,
    /// suppress duplicates, and decide whether a cumulative ack is due.
    pub fn on_recv(&mut self, src: usize, meta: RelMeta) -> RecvOutcome {
        let link = &mut self.links[src];
        // The simulated channels are FIFO and the virtual-retransmission
        // scheme never reorders, so a gap here is a protocol bug, not a
        // network fault.
        assert_eq!(
            meta.seq, link.recv_next,
            "node {}: envelope from node {src} out of sequence (got {}, expected {})",
            self.me, meta.seq, link.recv_next
        );
        link.recv_next += 1;
        link.recv_unacked += 1;
        let ack_due = if link.recv_unacked >= self.ack_every {
            link.recv_unacked = 0;
            Some(link.recv_next)
        } else {
            None
        };
        RecvOutcome {
            dups_suppressed: meta.duplicates,
            ack_due,
        }
    }

    /// Process a cumulative ack from `peer`: envelopes `< upto` are
    /// delivered. Acks can only move the watermark forward.
    pub fn on_ack(&mut self, peer: usize, upto: u64) {
        let link = &mut self.links[peer];
        if upto > link.acked_by_peer {
            link.acked_by_peer = upto;
        }
    }

    /// Render the per-link protocol state for the stall watchdog.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "reliability links (peer: sent/acked-by-peer/outstanding, recv-next/unacked):\n",
        );
        for (peer, l) in self.links.iter().enumerate() {
            if peer == self.me {
                continue;
            }
            let _ = writeln!(
                out,
                "  peer {peer}: sent={} acked={} outstanding={} | recv_next={} unacked={}",
                l.next_seq,
                l.acked_by_peer,
                l.outstanding(),
                l.recv_next,
                l.recv_unacked
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_simnet::{FaultConfig, MachineConfig};

    fn cfg_with(faults: FaultConfig) -> PpmConfig {
        PpmConfig::new(MachineConfig::franklin(4).with_faults(faults))
    }

    #[test]
    fn sequences_and_acks_advance_per_link() {
        let cfg = cfg_with(FaultConfig::seeded(1, 0.0, 0.0, 0.0));
        let mut rel = Reliability::new(0, &cfg);
        assert_eq!(rel.on_send(1, 3).meta.seq, 0);
        assert_eq!(rel.on_send(1, 3).meta.seq, 1);
        assert_eq!(rel.on_send(2, 3).meta.seq, 0, "links number independently");

        // Receive side: acks fall due every `ack_every` envelopes.
        let mut recv = Reliability::new(1, &cfg);
        let mut acks = 0;
        for seq in 0..10u64 {
            let out = recv.on_recv(
                0,
                RelMeta {
                    seq,
                    lost_attempts: 0,
                    duplicates: 0,
                },
            );
            if let Some(upto) = out.ack_due {
                assert_eq!(upto, seq + 1);
                acks += 1;
            }
        }
        assert_eq!(acks, 10 / cfg.ack_every, "one ack per ack_every envelopes");

        // Sender folds the ack in; the watermark never regresses.
        rel.on_ack(1, 2);
        assert_eq!(rel.links[1].outstanding(), 0);
        rel.on_ack(1, 1);
        assert_eq!(rel.links[1].acked_by_peer, 2);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let mut cfg = cfg_with(FaultConfig::NONE.with_targeted(ppm_simnet::TargetedFault {
            src: 0,
            dst: 1,
            kind: ppm_simnet::KIND_ANY,
            nth: 1,
            action: ppm_simnet::FaultAction::Drop,
        }));
        cfg.rto = SimTime::from_us(10);
        cfg.rto_max = SimTime::from_us(15);
        let mut rel = Reliability::new(0, &cfg);
        let out = rel.on_send(1, 3);
        assert_eq!(out.meta.lost_attempts, 1);
        assert_eq!(out.backoff, SimTime::from_us(10), "first retry after rto");

        // Force repeated drops through probabilities to see the cap.
        let cfg2 = {
            let mut c = cfg_with(FaultConfig::seeded(0, 1.0, 0.0, 0.0));
            c.rto = SimTime::from_us(10);
            c.rto_max = SimTime::from_us(15);
            c
        };
        let mut rel2 = Reliability::new(0, &cfg2);
        let out2 = rel2.on_send(1, 3);
        assert_eq!(
            out2.meta.lost_attempts,
            ppm_simnet::fault::MAX_LOST_ATTEMPTS
        );
        // 10 + 15 + 15 + 15 + 15 + 15 — every step after the first capped.
        assert_eq!(out2.backoff, SimTime::from_us(10 + 5 * 15));
        assert_eq!(out2.total_delay(), out2.backoff + out2.wire_delay);
    }

    #[test]
    fn backoff_saturates_at_large_attempt_counts() {
        // Regression: with rto_max effectively uncapped, the pre-fix
        // doubling step (`step + step`) overflowed u64 picoseconds within
        // 64 attempts — a debug panic / release wraparound to a tiny
        // backoff. The schedule must clamp instead.
        let rto = SimTime::from_us(25);
        let uncapped = SimTime::from_ps(u64::MAX);
        for attempts in [64u32, 65, 100, 200] {
            let b = backoff_schedule(attempts, rto, uncapped);
            // Reference schedule computed in u128 and clamped to u64.
            let mut expect: u128 = 0;
            let mut step: u128 = rto.as_ps() as u128;
            for _ in 0..attempts {
                expect += step.min(u64::MAX as u128);
                step = (step * 2).min(u64::MAX as u128);
            }
            let expect = expect.min(u64::MAX as u128) as u64;
            assert_eq!(b.as_ps(), expect, "attempts = {attempts}");
        }
        // Monotone in the attempt count, even at saturation.
        let a = backoff_schedule(500, rto, uncapped);
        let b = backoff_schedule(501, rto, uncapped);
        assert!(b >= a);
        assert_eq!(b.as_ps(), u64::MAX, "fully saturated");
    }

    #[test]
    fn backoff_first_step_respects_the_cap() {
        // An rto above rto_max must clamp from the very first retry.
        let b = backoff_schedule(1, SimTime::from_us(300), SimTime::from_us(200));
        assert_eq!(b, SimTime::from_us(200));
    }

    #[test]
    #[should_panic(expected = "out of sequence")]
    fn sequence_gap_is_a_protocol_bug() {
        let cfg = cfg_with(FaultConfig::seeded(1, 0.0, 0.0, 0.0));
        let mut rel = Reliability::new(0, &cfg);
        rel.on_recv(
            1,
            RelMeta {
                seq: 5,
                lost_attempts: 0,
                duplicates: 0,
            },
        );
    }

    #[test]
    fn crash_and_snapshot_gating() {
        let cfg = cfg_with(FaultConfig::NONE.with_crash(2, 7));
        let rel = Reliability::new(2, &cfg);
        assert!(rel.crash_at(7));
        assert!(!rel.crash_at(6));
        assert!(rel.snapshots_enabled());
        let other = Reliability::new(0, &cfg);
        assert!(!other.crash_at(7), "only the seeded node crashes");
        assert!(other.snapshots_enabled(), "but every node snapshots");
        let dump = rel.dump();
        assert!(dump.contains("peer 0"));
        assert!(!dump.contains("peer 2"), "no self link in the dump");
    }

    #[test]
    fn permanent_death_gates_snapshots_and_reports_victims() {
        let cfg = cfg_with(FaultConfig::NONE.with_permanent_crash(1, 4));
        let rel = Reliability::new(0, &cfg);
        assert!(rel.snapshots_enabled(), "permanent deaths need snapshots");
        assert_eq!(rel.perm_victims_at(4), vec![1]);
        assert!(rel.perm_victims_at(3).is_empty());
        assert!(!rel.perm_dead_by(1, 3));
        assert!(rel.perm_dead_by(1, 4));
        assert!(rel.perm_dead_by(1, 9), "death is permanent");
        assert!(!rel.perm_dead_by(0, 9));
    }
}
