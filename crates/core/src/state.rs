//! Per-node runtime state shared between VP futures and the executor.
//!
//! Everything a virtual processor touches while running (shared-array
//! storage, write buffers, pending read requests, phase bookkeeping,
//! per-core compute accounting) lives in [`Inner`], behind an
//! `Arc<RwLock<_>>` ([`SharedInner`]). During a phase body the live arrays
//! are immutable (writes are *buffered*), so VP polls only ever take the
//! read lock; every side effect a VP produces — buffered writes, read
//! requests, counter deltas, checker events, phase entry/arrival — goes
//! into its private [`VpScratch`] instead. The executor merges scratches
//! into `Inner` in ascending VP-rank order after each poll round, which is
//! what makes the host-parallel scheduler bit-identical to a sequential
//! one at any worker count (see `exec.rs` and DESIGN.md §12).
//!
//! Phase semantics are implemented here:
//!
//! * reads see phase-start values because writes are *buffered* (the live
//!   arrays are never mutated during a phase body);
//! * `put` conflicts resolve deterministically by [`WriteKey`] (global VP
//!   rank, program order) — last writer wins;
//! * `accumulate` writes ship as rank-keyed raw contributions (one bundle
//!   *entry* per node per element, carrying that node's contribution list)
//!   and the owner flat-folds the concatenation in ascending (global VP
//!   rank, program order) — a *canonical* order independent of where
//!   partition boundaries fall, so floating-point results are
//!   bit-reproducible and **placement-invariant**: any contiguous
//!   repartitioning (see `balance.rs`) folds the same contributions in the
//!   same order and produces the same bits. Wire cost still charges one
//!   combined value per entry — combining is modeled as done sender-side,
//!   the rank tags ride free like other protocol sidecars;
//! * mixing `put` and `accumulate` on the same element in the same phase is
//!   a programming error and panics.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use ppm_simnet::{Counters, SimTime, WireSize};

use crate::bitset::NodeSet;
use crate::check::{Checker, PhaseViolation, Space};
use crate::config::PpmConfig;
use crate::dist::Dist;
use crate::elem::{AccumElem, AccumOp, Elem};

/// Deterministic ordering key for assign conflicts: (global VP rank,
/// per-VP write sequence number). Later keys win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct WriteKey {
    pub vp: u64,
    pub seq: u64,
}

/// A buffered write, as shipped in write bundles.
///
/// `Accum` carries the monomorphized combiner so the type-erased apply path
/// can merge values without knowing `T: AccumElem`, plus the raw
/// `(global VP rank, value)` contribution list sorted by rank: the owner
/// concatenates the lists from all source nodes and flat-folds in ascending
/// rank order, which is the canonical fold order of a sequential
/// ascending-rank schedule. Because the contribution order is keyed by VP
/// rank — not by which node happened to own the writer — the fold is
/// invariant under repartitioning. The modeled wire cost of an entry stays
/// one combined value (see `drain_writes`); the rank tags are free protocol
/// sidecar, like write keys.
#[derive(Debug, Clone)]
pub(crate) enum WireWrite<T> {
    Assign(T, WriteKey),
    Accum {
        op: AccumOp,
        f: fn(AccumOp, T, T) -> T,
        /// `(global VP rank, value)` contributions, ascending by rank,
        /// program order within a rank.
        parts: Vec<(u64, T)>,
    },
}

/// One buffered, not-yet-published write op, as appended to an array's
/// flat write log. The log is append-only during a phase body (O(1) per
/// write, no per-element map lookup); grouping, last-writer resolution,
/// and accumulate folding all happen once, at drain time, over the
/// stable-sorted log. `Accum` keeps the raw contribution rather than an
/// eagerly-folded running value: contributions flat-fold in ascending
/// (rank, program order) when the buffer drains, so the floating-point
/// result depends only on each VP's program order — never on the
/// poll-round structure that interleaved the VPs' merges. Wake-on-arrival
/// pipelining changes that structure (DESIGN.md §13), so this is what
/// keeps results bit-identical with pipelining on or off.
#[derive(Clone, Copy)]
enum WEntry<T> {
    Assign(T, WriteKey),
    Accum {
        op: AccumOp,
        f: fn(AccumOp, T, T) -> T,
        /// Contributing VP's global rank.
        rank: u64,
        val: T,
    },
}

/// Resolve one element's log run (all ops for `idx`, in merge-arrival
/// order: ascending rank, program order within a rank) into its wire
/// form. Assign runs keep the highest [`WriteKey`]; accumulate runs check
/// operator agreement and sort contributions into ascending global-rank
/// order (the stable sort keeps arrival order for equal ranks). The
/// contributions ship raw, rank-keyed: folding happens once, at the
/// owner, over the concatenation from all source nodes
/// (`resolve_conflicts`), so the fold order never depends on which node a
/// contributing VP lived on. Mixing `put` and `accumulate` on one element
/// panics here — at the phase boundary, same run, same message as the old
/// buffer-time check.
fn resolve_run<T: Elem>(what: &str, idx: usize, run: &[(usize, WEntry<T>)]) -> WireWrite<T> {
    match run[0].1 {
        WEntry::Assign(..) => {
            let mut best: Option<(T, WriteKey)> = None;
            for &(_, e) in run {
                match e {
                    WEntry::Assign(v, k) => {
                        if best.is_none_or(|(_, bk)| k > bk) {
                            best = Some((v, k));
                        }
                    }
                    WEntry::Accum { .. } => {
                        panic!("{what}element {idx}: put and accumulate mixed in one phase")
                    }
                }
            }
            let (v, k) = best.expect("non-empty run");
            WireWrite::Assign(v, k)
        }
        WEntry::Accum { op, f, .. } => {
            let mut parts: Vec<(u64, T)> = Vec::with_capacity(run.len());
            for &(_, e) in run {
                match e {
                    WEntry::Accum {
                        op: op2, rank, val, ..
                    } => {
                        assert_eq!(
                            op, op2,
                            "{what}element {idx}: conflicting accumulate operators in one phase"
                        );
                        parts.push((rank, val));
                    }
                    WEntry::Assign(..) => {
                        panic!("{what}element {idx}: put and accumulate mixed in one phase")
                    }
                }
            }
            parts.sort_by_key(|p| p.0);
            WireWrite::Accum { op, f, parts }
        }
    }
}

/// Walk a stable-idx-sorted write log and hand each equal-index run to
/// `emit`. Shared by the global drain and the node-shared apply.
fn for_each_run<T: Elem>(
    log: &[(usize, WEntry<T>)],
    mut emit: impl FnMut(usize, &[(usize, WEntry<T>)]),
) {
    let mut i = 0;
    while i < log.len() {
        let idx = log[i].0;
        let mut j = i + 1;
        while j < log.len() && log[j].0 == idx {
            j += 1;
        }
        emit(idx, &log[i..j]);
        i = j;
    }
}

/// Flat-fold one wire write into its final value (rank order for
/// accumulates; the parts of a single [`WireWrite::Accum`] are already
/// sorted). Used where a single source's write resolves alone (node-shared
/// apply).
fn fold_wire<T: Elem>(w: WireWrite<T>) -> T {
    match w {
        WireWrite::Assign(v, _) => v,
        WireWrite::Accum { op, f, parts } => {
            let mut it = parts.into_iter();
            let (_, first) = it.next().expect("accum entry with no contributions");
            it.fold(first, |acc, (_, v)| f(op, acc, v))
        }
    }
}

/// A read request queued in [`Inner`] for the next communication wave:
/// VP `vp` wants element `idx` of global array `array`, and will receive
/// it in its private slot `slot`. (The wire format is
/// [`crate::msgs::ReqEntry`]; requests are deduplicated per
/// (destination, array, index) when the wave is built.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedReq {
    pub array: u32,
    pub idx: u64,
    pub vp: usize,
    pub slot: u64,
}

/// How the current `ppm_do` participates in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DoMode {
    /// `ppm_do`: collective across nodes; global phases allowed.
    Collective,
    /// `ppm_do_local`: this node only (asynchronous mode, paper §3.3);
    /// only node phases and node-shared variables may be used.
    Local,
}

/// Which phase construct is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// `PPM_global_phase`: synchronizes all VPs on all nodes and publishes
    /// global- and node-shared writes.
    Global,
    /// `PPM_node_phase`: synchronizes this node's VPs and publishes
    /// node-shared writes. No network traffic.
    Node,
}

// ---------------------------------------------------------------------------
// Per-VP slot table: parking spots for one VP's suspended remote reads.
// ---------------------------------------------------------------------------

enum Slot {
    Waiting,
    Filled { value: Box<dyn Any + Send> },
}

/// Parking table for one VP's suspended remote reads. Lives in the VP's
/// [`VpScratch`]; the executor fills slots when a wave's responses arrive
/// and then wakes the owning VP.
#[derive(Default)]
pub(crate) struct VpSlots {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
}

impl VpSlots {
    pub fn alloc(&mut self) -> u64 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(Slot::Waiting);
                i as u64
            }
            None => {
                self.slots.push(Some(Slot::Waiting));
                (self.slots.len() - 1) as u64
            }
        }
    }

    pub fn fill(&mut self, slot: u64, value: Box<dyn Any + Send>) {
        let s = self.slots[slot as usize]
            .replace(Slot::Filled { value })
            .expect("filling a free slot");
        match s {
            Slot::Waiting => {}
            Slot::Filled { .. } => panic!("slot {slot} filled twice"),
        }
    }

    /// Take the value if the slot has been filled; frees the slot.
    pub fn try_take(&mut self, slot: u64) -> Option<Box<dyn Any + Send>> {
        match &self.slots[slot as usize] {
            Some(Slot::Filled { .. }) => {
                let s = self.slots[slot as usize].take().expect("checked above");
                self.free.push(slot as usize);
                match s {
                    Slot::Filled { value } => Some(value),
                    Slot::Waiting => unreachable!(),
                }
            }
            Some(Slot::Waiting) => None,
            None => panic!("polling a freed slot"),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-VP effect scratch: everything a VP poll produces, merged by the
// executor in ascending rank order.
// ---------------------------------------------------------------------------

/// A shared-variable access recorded during a VP poll for deferred replay
/// into the conformance checker (the checker itself lives in [`Inner`];
/// replaying at merge time keeps its event order identical to a
/// sequential schedule).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CheckEvent {
    Get {
        space: Space,
        array: u32,
        idx: u64,
        kind: PhaseKind,
    },
    Put {
        space: Space,
        array: u32,
        idx: u64,
        fp: u64,
        kind: PhaseKind,
    },
    Accum {
        space: Space,
        array: u32,
        idx: u64,
    },
}

/// One buffered write op recorded in a VP's scratch. `Accum` carries the
/// monomorphized combiner (captured at push time) so replay does not need
/// a `T: AccumElem` bound.
enum WOp<T> {
    Assign(T, WriteKey),
    Accum(AccumOp, T, fn(AccumOp, T, T) -> T),
}

/// Type-erased face of one `(space, array)`'s scratch write list, replayed
/// into the array's phase write buffer at merge time.
pub(crate) trait ScratchWrites: Send {
    fn as_any(&mut self) -> &mut dyn Any;
    fn is_empty(&self) -> bool;
    fn replay_global(&mut self, ga: &mut dyn GArrayObj, rank: u64);
    fn replay_node(&mut self, na: &mut dyn NArrayObj, rank: u64);
}

struct WOps<T: Elem> {
    ops: Vec<(usize, WOp<T>)>,
}

impl<T: Elem> ScratchWrites for WOps<T> {
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn replay_global(&mut self, ga: &mut dyn GArrayObj, rank: u64) {
        let ga = ga
            .as_any()
            .downcast_mut::<GArray<T>>()
            .expect("scratch write buffer type mismatch");
        // drain() keeps the Vec's capacity: the per-VP lists are reused
        // across rounds and phases (bundle-path allocation diet).
        for (idx, op) in self.ops.drain(..) {
            match op {
                WOp::Assign(v, k) => ga.buffer_assign(idx, v, k),
                WOp::Accum(o, v, f) => ga.buffer_accum_with(idx, o, v, f, rank),
            }
        }
    }

    fn replay_node(&mut self, na: &mut dyn NArrayObj, rank: u64) {
        let na = na
            .as_any()
            .downcast_mut::<NArray<T>>()
            .expect("scratch write buffer type mismatch");
        for (idx, op) in self.ops.drain(..) {
            match op {
                WOp::Assign(v, k) => na.buffer_assign(idx, v, k),
                WOp::Accum(o, v, f) => na.buffer_accum_with(idx, o, v, f, rank),
            }
        }
    }
}

/// A read request recorded in a VP's scratch, waiting to be queued into
/// [`Inner::reqs`] at merge time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScratchReq {
    pub dest: usize,
    pub array: u32,
    pub idx: u64,
    pub slot: u64,
}

/// Every side effect one VP produces while being polled. Private to the VP
/// (executor and wave code touch it only between polls), so polls of
/// different VPs can run on different host threads with no ordering races;
/// the executor merges scratches into [`Inner`] in ascending rank order.
#[derive(Default)]
pub(crate) struct VpScratch {
    /// Program-order counter for this VP's writes (conflict resolution).
    pub write_seq: u64,
    /// Phase this VP is currently inside, if any (guards nested phases and
    /// out-of-phase shared access without reading `Inner`).
    pub cur_phase: Option<PhaseKind>,
    /// Phase entry not yet replayed into `Inner::enter_phase`.
    pub pending_enter: Option<PhaseKind>,
    /// Barrier arrival not yet replayed into `Inner`.
    pub pending_arrive: bool,
    /// Parking table for this VP's suspended remote reads.
    pub slots: VpSlots,
    /// Slots allocated since the last merge (feeds
    /// `Inner::outstanding_reads`).
    pub slots_alloced: usize,
    /// Read requests to queue for the next wave.
    pub reqs: Vec<ScratchReq>,
    /// Cold-tile faults (`(array, tile)`) recorded by local reads under a
    /// tile budget; drained into [`Inner::pending_tile_faults`] at merge.
    pub tile_faults: Vec<(u32, u32)>,
    /// Buffered writes per touched `(space, array)`.
    writes: Vec<(Space, u32, Box<dyn ScratchWrites>)>,
    /// Conformance-checker events in program order.
    pub checks: Vec<CheckEvent>,
    /// Counter deltas.
    pub counters: Counters,
    /// Compute charged by this VP since the last merge (lands on its
    /// simulated core).
    pub compute: SimTime,
}

impl VpScratch {
    fn writes_for<T: Elem>(&mut self, space: Space, id: u32) -> &mut Vec<(usize, WOp<T>)> {
        // Linear scan: programs touch a handful of arrays.
        let pos = match self
            .writes
            .iter()
            .position(|(s, i, _)| *s == space && *i == id)
        {
            Some(p) => p,
            None => {
                self.writes
                    .push((space, id, Box::new(WOps::<T> { ops: Vec::new() })));
                self.writes.len() - 1
            }
        };
        &mut self.writes[pos]
            .2
            .as_any()
            .downcast_mut::<WOps<T>>()
            .expect("scratch write buffer type mismatch")
            .ops
    }
}

/// Identity and scratch of one virtual processor. Shared (via `Arc`)
/// between the VP's futures, which record effects during polls, and the
/// executor, which merges them. The frequently-read identity fields are
/// plain copies so VP accessors never lock [`Inner`].
pub(crate) struct VpCell {
    /// Node-relative rank (`PPM_VP_node_rank`).
    pub id: usize,
    /// Cluster-wide rank (`PPM_VP_global_rank`).
    pub global_rank: u64,
    pub node: usize,
    pub cfg: PpmConfig,
    pub do_mode: DoMode,
    pub node_vp_count: usize,
    pub total_vps_global: u64,
    /// Whether checker events need recording (checker enabled in `cfg`).
    pub checker_on: bool,
    pub scratch: Mutex<VpScratch>,
}

impl VpCell {
    pub fn new(
        id: usize,
        global_rank: u64,
        node: usize,
        cfg: PpmConfig,
        do_mode: DoMode,
        node_vp_count: usize,
        total_vps_global: u64,
    ) -> Self {
        VpCell {
            id,
            global_rank,
            node,
            cfg,
            do_mode,
            node_vp_count,
            total_vps_global,
            checker_on: cfg.checker,
            scratch: Mutex::new(VpScratch::default()),
        }
    }

    /// Lock this VP's scratch (uncontended except for wave fills; poison
    /// from a caught VP panic is benign — the run is unwinding anyway).
    pub fn scratch(&self) -> MutexGuard<'_, VpScratch> {
        self.scratch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    fn core(&self) -> usize {
        self.id % self.cfg.cores_per_node()
    }

    fn in_phase(s: &VpScratch, what: &str) -> PhaseKind {
        s.cur_phase
            .unwrap_or_else(|| panic!("{what} requires an open phase"))
    }

    /// VP read of a global shared element.
    pub fn get_global<T: Elem>(&self, inner: &Inner, id: u32, idx: usize) -> GetOutcome<T> {
        let mut s = self.scratch();
        let kind = Self::in_phase(&s, "global shared read");
        s.compute += self.cfg.sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Get {
                space: Space::Global,
                array: id,
                idx: idx as u64,
                kind,
            });
        }
        let ga = garray_ref::<T>(inner, id);
        assert!(idx < ga.dist.len, "global read index {idx} out of bounds");
        let owner = ga.dist.owner(idx);
        if owner == self.node {
            // The access is fully charged (sv_overhead, checker event,
            // counter) before the residency check, so a cold tile costs
            // exactly what the in-core hit does — the fault itself is free
            // in modeled time and counters.
            s.counters.local_accesses += 1;
            let off = ga.dist.local_offset(idx);
            if inner.tile_budget.is_cold(id, off) {
                s.tile_faults.push((id, inner.tile_budget.tile_of(id, off)));
                return GetOutcome::LocalPending;
            }
            GetOutcome::Local(ga.local[off])
        } else {
            assert_eq!(
                kind,
                PhaseKind::Global,
                "remote shared read inside a node phase (element {idx} is on node {owner}); \
                 use a global phase"
            );
            // Phase-coherent read cache: a remote value learned earlier
            // (response bundle or owner push) is this phase's frozen truth,
            // so it can be returned without wire traffic. The checker event
            // and sv_overhead above are recorded either way — the cache
            // must never mask a conformance violation.
            if self.cfg.read_cache {
                if let Some(v) = ga.cache_get(idx as u64) {
                    s.counters.cache_hits += 1;
                    return GetOutcome::Local(v);
                }
            }
            s.counters.cache_misses += 1;
            let slot = s.slots.alloc();
            s.slots_alloced += 1;
            s.reqs.push(ScratchReq {
                dest: owner,
                array: id,
                idx: idx as u64,
                slot,
            });
            s.counters.remote_gets += 1;
            GetOutcome::Remote(slot)
        }
    }

    /// Charge-free re-read of a local element whose first access returned
    /// [`GetOutcome::LocalPending`]. The original [`Self::get_global`]
    /// already paid the full in-core cost (overhead, counters, checker
    /// event), so this resolution path must stay invisible to every
    /// observable: it touches no counters, no compute, no checker. If the
    /// tile is still cold (another tile was serviced first), the fault is
    /// re-recorded — also charge-free — and the VP parks again.
    pub fn read_local_resident<T: Elem>(&self, inner: &Inner, id: u32, idx: usize) -> Option<T> {
        let ga = garray_ref::<T>(inner, id);
        let off = ga.dist.local_offset(idx);
        if inner.tile_budget.is_cold(id, off) {
            self.scratch()
                .tile_faults
                .push((id, inner.tile_budget.tile_of(id, off)));
            return None;
        }
        Some(ga.local[off])
    }

    /// VP write (assign) of a global shared element.
    pub fn put_global<T: Elem>(&self, inner: &Inner, id: u32, idx: usize, val: T) {
        let mut s = self.scratch();
        let kind = Self::in_phase(&s, "global shared write");
        assert_eq!(
            kind,
            PhaseKind::Global,
            "global shared writes are only allowed inside a global phase"
        );
        s.compute += self.cfg.sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Put {
                space: Space::Global,
                array: id,
                idx: idx as u64,
                fp: crate::check::fingerprint(&val),
                kind,
            });
        }
        let ga = garray_ref::<T>(inner, id);
        assert!(idx < ga.dist.len, "global write index {idx} out of bounds");
        if ga.dist.owner(idx) == self.node {
            s.counters.local_accesses += 1;
        } else {
            s.counters.remote_puts += 1;
        }
        let key = WriteKey {
            vp: self.global_rank,
            seq: s.write_seq,
        };
        s.write_seq += 1;
        s.writes_for::<T>(Space::Global, id)
            .push((idx, WOp::Assign(val, key)));
    }

    /// VP combining write of a global shared element.
    pub fn accum_global<T: AccumElem>(
        &self,
        inner: &Inner,
        id: u32,
        idx: usize,
        op: AccumOp,
        val: T,
    ) {
        let mut s = self.scratch();
        let kind = Self::in_phase(&s, "global shared accumulate");
        assert_eq!(
            kind,
            PhaseKind::Global,
            "global shared accumulates are only allowed inside a global phase"
        );
        s.compute += self.cfg.sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Accum {
                space: Space::Global,
                array: id,
                idx: idx as u64,
            });
        }
        let ga = garray_ref::<T>(inner, id);
        assert!(idx < ga.dist.len, "accumulate index {idx} out of bounds");
        if ga.dist.owner(idx) == self.node {
            s.counters.local_accesses += 1;
        } else {
            s.counters.remote_puts += 1;
        }
        s.writes_for::<T>(Space::Global, id)
            .push((idx, WOp::Accum(op, val, T::combine)));
    }

    /// VP read of a node-shared element (physical shared memory:
    /// immediate).
    pub fn get_node_arr<T: Elem>(&self, inner: &Inner, id: u32, idx: usize) -> T {
        let mut s = self.scratch();
        let kind = Self::in_phase(&s, "node shared read");
        s.compute += self.cfg.node_sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Get {
                space: Space::Node,
                array: id,
                idx: idx as u64,
                kind,
            });
        }
        s.counters.local_accesses += 1;
        let na = narray_ref::<T>(inner, id);
        assert!(idx < na.data.len(), "node read index {idx} out of bounds");
        na.data[idx]
    }

    /// VP write (assign) of a node-shared element.
    pub fn put_node_arr<T: Elem>(&self, inner: &Inner, id: u32, idx: usize, val: T) {
        let mut s = self.scratch();
        let kind = Self::in_phase(&s, "node shared write");
        s.compute += self.cfg.node_sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Put {
                space: Space::Node,
                array: id,
                idx: idx as u64,
                fp: crate::check::fingerprint(&val),
                kind,
            });
        }
        s.counters.local_accesses += 1;
        let na = narray_ref::<T>(inner, id);
        assert!(idx < na.data.len(), "node write index {idx} out of bounds");
        let key = WriteKey {
            vp: self.global_rank,
            seq: s.write_seq,
        };
        s.write_seq += 1;
        s.writes_for::<T>(Space::Node, id)
            .push((idx, WOp::Assign(val, key)));
    }

    /// VP combining write of a node-shared element.
    pub fn accum_node_arr<T: AccumElem>(
        &self,
        inner: &Inner,
        id: u32,
        idx: usize,
        op: AccumOp,
        val: T,
    ) {
        let mut s = self.scratch();
        Self::in_phase(&s, "node shared accumulate");
        s.compute += self.cfg.node_sv_overhead;
        if self.checker_on {
            s.checks.push(CheckEvent::Accum {
                space: Space::Node,
                array: id,
                idx: idx as u64,
            });
        }
        s.counters.local_accesses += 1;
        let na = narray_ref::<T>(inner, id);
        assert!(idx < na.data.len(), "accumulate index {idx} out of bounds");
        s.writes_for::<T>(Space::Node, id)
            .push((idx, WOp::Accum(op, val, T::combine)));
    }

    /// Charge `n` floating-point operations of VP-private computation.
    pub fn charge_flops(&self, n: u64) {
        let mut s = self.scratch();
        s.counters.flops += n;
        s.compute += self.cfg.machine.core.flops(n);
    }

    /// Charge `n` memory operations of VP-private computation.
    pub fn charge_mem_ops(&self, n: u64) {
        let mut s = self.scratch();
        s.counters.mem_ops += n;
        s.compute += self.cfg.machine.core.mem_ops(n);
    }
}

/// Merge one VP's scratch into the node state. Called by the executor in
/// ascending VP-rank order after every poll round, which reproduces the
/// exact effect order of a sequential ascending-rank schedule — including
/// per-element accumulate fold order and checker event order. Returns the
/// compute this merge charged, so the executor can attribute compute that
/// overlapped an in-flight wave (pipelining cost model, DESIGN.md §13).
pub(crate) fn merge_vp(inner: &mut Inner, cell: &VpCell) -> SimTime {
    let mut s = cell.scratch();
    if let Some(kind) = s.pending_enter.take() {
        inner.enter_phase(kind);
    }
    if let Some(c) = inner.checker.as_mut() {
        for ev in s.checks.drain(..) {
            match ev {
                CheckEvent::Get {
                    space,
                    array,
                    idx,
                    kind,
                } => c.record_get(space, array, idx, cell.global_rank, kind),
                CheckEvent::Put {
                    space,
                    array,
                    idx,
                    fp,
                    kind,
                } => c.record_put(space, array, idx, cell.global_rank, fp, kind),
                CheckEvent::Accum { space, array, idx } => {
                    c.record_accum(space, array, idx, cell.global_rank)
                }
            }
        }
    } else {
        s.checks.clear();
    }
    for (space, id, w) in s.writes.iter_mut() {
        if w.is_empty() {
            continue;
        }
        match space {
            Space::Global => w.replay_global(&mut *inner.garrays[*id as usize], cell.global_rank),
            Space::Node => w.replay_node(&mut *inner.narrays[*id as usize], cell.global_rank),
        }
    }
    for r in s.reqs.drain(..) {
        inner.reqs[r.dest].push(QueuedReq {
            array: r.array,
            idx: r.idx,
            vp: cell.id,
            slot: r.slot,
        });
    }
    if !s.tile_faults.is_empty() {
        inner.pending_tile_faults.append(&mut s.tile_faults);
        inner.fault_waiters.push(cell.id);
    }
    let c = std::mem::take(&mut s.counters);
    inner.counters = inner.counters.merge(&c);
    let compute = std::mem::replace(&mut s.compute, SimTime::ZERO);
    inner.core_compute[cell.core()] += compute;
    inner.outstanding_reads += std::mem::take(&mut s.slots_alloced);
    if std::mem::take(&mut s.pending_arrive) {
        inner.phase.arrived += 1;
        inner.barrier_waiters.push(cell.id);
    }
    compute
}

// ---------------------------------------------------------------------------
// Shared handle to the per-node state.
// ---------------------------------------------------------------------------

/// The shared handle to [`Inner`]: a read lock during VP polls (the live
/// arrays are immutable inside a phase body), a write lock for the
/// executor's merges and exchanges. Lock poisoning is ignored — a caught
/// VP panic is re-raised by the executor, so a poisoned lock only ever
/// guards state that is about to unwind.
#[derive(Clone)]
pub(crate) struct SharedInner(Arc<RwLock<Inner>>);

impl SharedInner {
    pub fn new(inner: Inner) -> Self {
        SharedInner(Arc::new(RwLock::new(inner)))
    }

    pub fn borrow(&self) -> RwLockReadGuard<'_, Inner> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn borrow_mut(&self) -> RwLockWriteGuard<'_, Inner> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_borrow(&self) -> Option<RwLockReadGuard<'_, Inner>> {
        self.0.try_read().ok()
    }

    pub fn try_borrow_mut(&self) -> Option<RwLockWriteGuard<'_, Inner>> {
        self.0.try_write().ok()
    }
}

// Typed views of the arrays through their trait objects.
pub(crate) fn garray_ref<T: Elem>(inner: &Inner, id: u32) -> &GArray<T> {
    inner.garrays[id as usize]
        .as_any_ref()
        .downcast_ref::<GArray<T>>()
        .expect("global array handle type mismatch")
}

pub(crate) fn garray_mut<T: Elem>(inner: &mut Inner, id: u32) -> &mut GArray<T> {
    inner.garrays[id as usize]
        .as_any()
        .downcast_mut::<GArray<T>>()
        .expect("global array handle type mismatch")
}

pub(crate) fn narray_ref<T: Elem>(inner: &Inner, id: u32) -> &NArray<T> {
    inner.narrays[id as usize]
        .as_any_ref()
        .downcast_ref::<NArray<T>>()
        .expect("node array handle type mismatch")
}

pub(crate) fn narray_mut<T: Elem>(inner: &mut Inner, id: u32) -> &mut NArray<T> {
    inner.narrays[id as usize]
        .as_any()
        .downcast_mut::<NArray<T>>()
        .expect("node array handle type mismatch")
}

// ---------------------------------------------------------------------------
// Global shared array storage.
// ---------------------------------------------------------------------------

/// A write parcel produced by draining an array's write buffer: the entries
/// destined for one owner node.
pub(crate) struct WriteParcel {
    pub dest: usize,
    pub entries: u64,
    pub bytes: usize,
    /// `Vec<(u64 global_idx, WireWrite<T>)>`, sorted by index.
    pub payload: Box<dyn Any + Send>,
}

/// This node's partition of one global shared array plus its phase write
/// buffer and phase-coherent remote-read cache.
pub(crate) struct GArray<T: Elem> {
    pub dist: Dist,
    pub local: Vec<T>,
    /// Flat append-only write log for the current phase, in merge-arrival
    /// order (ascending VP rank, program order within a rank). Grouped,
    /// resolved, and drained at the phase boundary — no per-element map in
    /// the per-write hot path.
    wlog: Vec<(usize, WEntry<T>)>,
    /// Remote elements whose phase-frozen value this node has learned —
    /// from response bundles or owner-pushed refreshes — as a flat
    /// `(global index, value)` vec sorted by index (binary-search lookup,
    /// no hashing). Consulted by [`VpCell::get_global`] before queueing a
    /// remote read; cleared when the array takes writes (exec.rs
    /// invalidation).
    rcache: Vec<(u64, T)>,
}

impl<T: Elem> GArray<T> {
    pub fn new(dist: Dist, node: usize) -> Self {
        let local = vec![T::default(); dist.local_len(node)];
        GArray {
            dist,
            local,
            wlog: Vec::new(),
            rcache: Vec::new(),
        }
    }

    /// Cached phase-frozen value of remote element `idx`, if known.
    pub fn cache_get(&self, idx: u64) -> Option<T> {
        self.rcache
            .binary_search_by_key(&idx, |e| e.0)
            .ok()
            .map(|p| self.rcache[p].1)
    }

    /// Learn (or refresh) the phase-frozen value of remote element `idx`.
    fn cache_put(&mut self, idx: u64, v: T) {
        match self.rcache.binary_search_by_key(&idx, |e| e.0) {
            Ok(p) => self.rcache[p].1 = v,
            Err(p) => self.rcache.insert(p, (idx, v)),
        }
    }

    pub fn buffer_assign(&mut self, idx: usize, val: T, key: WriteKey) {
        self.wlog.push((idx, WEntry::Assign(val, key)));
    }

    /// Append a combining write with an explicit combiner, so the
    /// type-erased scratch-replay path (`T: Elem` only) can buffer
    /// accumulates recorded during VP polls. `rank` is the contributing
    /// VP's global rank (see [`WEntry`] for why contributions are
    /// rank-keyed).
    pub fn buffer_accum_with(
        &mut self,
        idx: usize,
        op: AccumOp,
        val: T,
        f: fn(AccumOp, T, T) -> T,
        rank: u64,
    ) {
        self.wlog.push((idx, WEntry::Accum { op, f, rank, val }));
    }
}

#[cfg(test)]
impl<T: AccumElem> GArray<T> {
    /// Test convenience: accumulate with the element's own combiner as
    /// VP rank 0.
    pub fn buffer_accum(&mut self, idx: usize, op: AccumOp, val: T) {
        self.buffer_accum_with(idx, op, val, T::combine, 0);
    }
}

/// Type-erased face of `GArray<T>` for the exchange path (serving reads,
/// draining and applying write bundles). `Send + Sync` because [`Inner`]
/// is shared across the host worker threads that poll VPs.
pub(crate) trait GArrayObj: Send + Sync {
    fn as_any(&mut self) -> &mut dyn Any;
    fn as_any_ref(&self) -> &dyn Any;
    /// Read the values at `idxs` (global indices owned by this node);
    /// returns the payload (`Vec<T>`) and its modeled byte size.
    fn serve(&self, idxs: &[u64]) -> (Box<dyn Any + Send>, usize);
    /// Requester side: value `i` of the response fans out to every
    /// `(vp, slot)` waiter in `groups[i]` (request deduplication lets many
    /// VPs share one wire entry for the same remote element); `idxs[i]` is
    /// the element's global index. With `cache` on, each value also
    /// populates the read cache. `fill` delivers one boxed value to one
    /// waiter's slot.
    fn fulfill_multi(
        &mut self,
        values: Box<dyn Any + Send>,
        idxs: &[u64],
        groups: &[Vec<(usize, u64)>],
        cache: bool,
        fill: &mut dyn FnMut(usize, u64, Box<dyn Any + Send>),
    );
    /// Drain the write buffer into per-destination parcels (the destination
    /// may be this node itself).
    fn drain_writes(&mut self) -> Vec<WriteParcel>;
    /// Owner side: apply `(source node, payload)` parcels; resolution order
    /// is deterministic. Returns the number of entries applied and the
    /// distinct written global indices in ascending order (feeds the
    /// refresh-push protocol, DESIGN.md §13). `touch` is called with each
    /// resolved local offset before the store lands — the executor wires it
    /// to [`TileBudget::touch`] so applied writes bump tile recency
    /// (write-through without admission, DESIGN.md §18).
    fn apply_writes(
        &mut self,
        parcels: Vec<(u32, Box<dyn Any + Send>)>,
        touch: &mut dyn FnMut(usize),
    ) -> (u64, Vec<u64>);
    /// Whether any writes are buffered (used to assert clean phase ends
    /// and to compute per-array cache-invalidation bits).
    fn has_pending_writes(&self) -> bool;
    /// Read the post-apply values at `idxs` (owned global indices) into a
    /// refresh-push payload (`Vec<T>`). Like [`Self::serve`], but `Sync`
    /// too: the entries park in [`Inner::pending_refresh`] between
    /// dissemination rounds.
    fn refresh_collect(&self, idxs: &[u64]) -> Box<dyn Any + Send + Sync>;
    /// Copy the `take`-marked subset of a refresh payload (`Vec<T>`);
    /// returns the subset payload and its modeled wire byte size.
    fn refresh_select(&self, values: &dyn Any, take: &[bool]) -> (Box<dyn Any + Send + Sync>, u64);
    /// Receiver side of an owner push: insert `idxs[i] → values[i]` into
    /// the read cache for every `take`-marked entry.
    fn refresh_absorb(&mut self, idxs: &[u64], values: &dyn Any, take: &[bool]);
    /// Drop every cached remote value (invalidation at phase end when the
    /// array took writes, and at construct entry).
    fn cache_clear(&mut self);
    /// Current distribution of the array (layout + length + nodes).
    fn dist(&self) -> &Dist;
    /// Repartitioning: copy the owned elements in `range` (a contiguous
    /// global range inside this node's current span) into a migration
    /// payload (`Vec<T>`); returns the payload and its modeled byte size.
    fn migrate_extract(&self, range: std::ops::Range<usize>) -> (Box<dyn Any + Send>, u64);
    /// Repartitioning: rebind this node's partition to `dist` (a contiguous
    /// layout), keeping the elements retained from the old span and
    /// installing `parts` — `(global start index, Vec<T> payload)` received
    /// from peers — into the acquired stretch. Requires an empty write
    /// buffer (the hook runs after writes apply). Returns the number of
    /// elements that arrived from peers.
    fn migrate_rebind(
        &mut self,
        node: usize,
        dist: Dist,
        parts: Vec<(usize, Box<dyn Any + Send>)>,
    ) -> u64;
    /// Modeled payload bytes of `node`'s owned partition (failover
    /// accounting: the footprint a buddy adopts, DESIGN.md §15).
    fn owned_bytes(&self, node: usize) -> u64;
    /// Copy the local partition for a super-step snapshot; returns the
    /// payload (`Vec<T>`) and its modeled byte size.
    fn snapshot_local(&self) -> (Box<dyn Any + Send + Sync>, u64);
    /// Overwrite the local partition from a snapshot taken by
    /// [`Self::snapshot_local`] (crash recovery); returns bytes restored,
    /// or a description of why the snapshot cannot be applied (payload
    /// type or shape mismatch) — the executor wraps the error into a
    /// structured [`crate::error::RecoveryError`] naming node and phase.
    fn restore_local(&mut self, snap: &dyn Any) -> Result<u64, String>;
}

impl<T: Elem> GArrayObj for GArray<T> {
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any_ref(&self) -> &dyn Any {
        self
    }

    fn serve(&self, idxs: &[u64]) -> (Box<dyn Any + Send>, usize) {
        let values: Vec<T> = idxs
            .iter()
            .map(|&i| self.local[self.dist.local_offset(i as usize)])
            .collect();
        let bytes = values.wire_size();
        (Box::new(values), bytes)
    }

    fn fulfill_multi(
        &mut self,
        values: Box<dyn Any + Send>,
        idxs: &[u64],
        groups: &[Vec<(usize, u64)>],
        cache: bool,
        fill: &mut dyn FnMut(usize, u64, Box<dyn Any + Send>),
    ) {
        let values = values
            .downcast::<Vec<T>>()
            .expect("response payload type mismatch");
        debug_assert_eq!(values.len(), groups.len());
        debug_assert_eq!(values.len(), idxs.len());
        for ((waiters, &idx), v) in groups.iter().zip(idxs).zip(*values) {
            if cache {
                self.cache_put(idx, v);
            }
            for &(vp, slot) in waiters {
                fill(vp, slot, Box::new(v));
            }
        }
    }

    fn drain_writes(&mut self) -> Vec<WriteParcel> {
        if self.wlog.is_empty() {
            return Vec::new();
        }
        let mut log = std::mem::take(&mut self.wlog);
        // Stable sort groups each element's ops while keeping their
        // merge-arrival order (ascending rank, program order within a
        // rank) — the canonical order `resolve_run` relies on.
        log.sort_by_key(|(idx, _)| *idx);
        // Dense per-destination buckets: emission is ascending by node id
        // by construction, never keyed by hash-iteration order. Entries
        // land in each bucket in ascending index order because the log is
        // sorted by index.
        let mut by_dest: Vec<Vec<(u64, WireWrite<T>)>> = Vec::new();
        by_dest.resize_with(self.dist.nodes, Vec::new);
        for_each_run(&log, |idx, run| {
            by_dest[self.dist.owner(idx)].push((idx as u64, resolve_run("", idx, run)));
        });
        by_dest
            .into_iter()
            .enumerate()
            .filter(|(_, entries)| !entries.is_empty())
            .map(|(dest, entries)| {
                // One combined value per entry: an accumulate entry is
                // modeled as pre-combined on the wire (its rank-keyed
                // contribution list is free sidecar), so repartitioning
                // changes neither entry counts nor bytes.
                let bytes: usize = entries
                    .iter()
                    .map(|(_, w)| {
                        9 + match w {
                            WireWrite::Assign(v, _) => v.wire_size(),
                            WireWrite::Accum { parts, .. } => parts
                                .first()
                                .expect("accum entry with no contributions")
                                .1
                                .wire_size(),
                        }
                    })
                    .sum();
                WriteParcel {
                    dest,
                    entries: entries.len() as u64,
                    bytes,
                    payload: Box::new(entries),
                }
            })
            .collect()
    }

    fn apply_writes(
        &mut self,
        parcels: Vec<(u32, Box<dyn Any + Send>)>,
        touch: &mut dyn FnMut(usize),
    ) -> (u64, Vec<u64>) {
        let mut all: Vec<(u64, u32, WireWrite<T>)> = Vec::new();
        for (src, payload) in parcels {
            let entries = payload
                .downcast::<Vec<(u64, WireWrite<T>)>>()
                .expect("write parcel type mismatch");
            all.extend(entries.into_iter().map(|(idx, w)| (idx, src, w)));
        }
        // Deterministic application order: by element, then by source node.
        all.sort_by_key(|(idx, src, _)| (*idx, *src));
        let applied = all.len() as u64;
        let mut written = Vec::new();
        let mut i = 0;
        while i < all.len() {
            let idx = all[i].0;
            let mut j = i + 1;
            while j < all.len() && all[j].0 == idx {
                j += 1;
            }
            let resolved = resolve_conflicts(idx, &mut all[i..j]);
            let off = self.dist.local_offset(idx as usize);
            touch(off);
            self.local[off] = resolved;
            written.push(idx);
            i = j;
        }
        (applied, written)
    }

    fn has_pending_writes(&self) -> bool {
        !self.wlog.is_empty()
    }

    fn refresh_collect(&self, idxs: &[u64]) -> Box<dyn Any + Send + Sync> {
        let values: Vec<T> = idxs
            .iter()
            .map(|&i| self.local[self.dist.local_offset(i as usize)])
            .collect();
        Box::new(values)
    }

    fn refresh_select(&self, values: &dyn Any, take: &[bool]) -> (Box<dyn Any + Send + Sync>, u64) {
        let values = values
            .downcast_ref::<Vec<T>>()
            .expect("refresh payload type mismatch");
        debug_assert_eq!(values.len(), take.len());
        let subset: Vec<T> = values
            .iter()
            .zip(take)
            .filter_map(|(&v, &t)| t.then_some(v))
            .collect();
        let bytes = if subset.is_empty() {
            0
        } else {
            subset.wire_size() as u64
        };
        (Box::new(subset), bytes)
    }

    fn refresh_absorb(&mut self, idxs: &[u64], values: &dyn Any, take: &[bool]) {
        let values = values
            .downcast_ref::<Vec<T>>()
            .expect("refresh payload type mismatch");
        debug_assert_eq!(values.len(), idxs.len());
        debug_assert_eq!(values.len(), take.len());
        for ((&idx, &v), &t) in idxs.iter().zip(values).zip(take) {
            if t {
                debug_assert_ne!(
                    self.dist.owner(idx as usize),
                    usize::MAX,
                    "unreachable: owner() is total"
                );
                self.cache_put(idx, v);
            }
        }
    }

    fn cache_clear(&mut self) {
        self.rcache.clear();
    }

    fn dist(&self) -> &Dist {
        &self.dist
    }

    fn migrate_extract(&self, range: std::ops::Range<usize>) -> (Box<dyn Any + Send>, u64) {
        let values: Vec<T> = if range.is_empty() {
            Vec::new()
        } else {
            // Contiguous layouts keep local offsets dense, so the whole
            // stretch starts at the first element's offset.
            let base = self.dist.local_offset(range.start);
            (0..range.len()).map(|k| self.local[base + k]).collect()
        };
        let bytes = if values.is_empty() {
            0
        } else {
            values.wire_size() as u64
        };
        (Box::new(values), bytes)
    }

    fn migrate_rebind(
        &mut self,
        node: usize,
        dist: Dist,
        parts: Vec<(usize, Box<dyn Any + Send>)>,
    ) -> u64 {
        debug_assert!(
            self.wlog.is_empty(),
            "repartitioning with unapplied buffered writes"
        );
        let old_range = self.dist.owned_range(node);
        let new_range = dist.owned_range(node);
        let mut local = vec![T::default(); new_range.len()];
        // Retained overlap of the old and new spans.
        let lo = old_range.start.max(new_range.start);
        let hi = old_range.end.min(new_range.end);
        for g in lo..hi {
            local[g - new_range.start] = self.local[g - old_range.start];
        }
        let mut arrived = 0u64;
        for (start, payload) in parts {
            let values = payload
                .downcast::<Vec<T>>()
                .expect("migration payload type mismatch");
            arrived += values.len() as u64;
            for (k, v) in values.into_iter().enumerate() {
                let g = start + k;
                debug_assert!(new_range.contains(&g), "migrated element {g} not acquired");
                local[g - new_range.start] = v;
            }
        }
        self.local = local;
        self.dist = dist;
        arrived
    }

    fn owned_bytes(&self, node: usize) -> u64 {
        let r = self.dist.owned_range(node);
        (r.end - r.start) as u64 * std::mem::size_of::<T>() as u64
    }

    fn snapshot_local(&self) -> (Box<dyn Any + Send + Sync>, u64) {
        let copy = self.local.clone();
        let bytes = copy.wire_size() as u64;
        (Box::new(copy), bytes)
    }

    fn restore_local(&mut self, snap: &dyn Any) -> Result<u64, String> {
        let snap = snap
            .downcast_ref::<Vec<T>>()
            .ok_or_else(|| "snapshot payload type mismatch".to_string())?;
        if snap.len() != self.local.len() {
            return Err(format!(
                "snapshot shape does not match the partition \
                 (snapshot {} elements, partition {})",
                snap.len(),
                self.local.len()
            ));
        }
        self.local.clone_from(snap);
        Ok(snap.wire_size() as u64)
    }
}

/// Fold one element's writes (already in deterministic order) into a value.
///
/// Assigns resolve by highest [`WriteKey`]. Accumulates resolve in the
/// *canonical* order: the rank-keyed contribution lists of every source are
/// concatenated, stable-sorted by global VP rank, and flat-folded ascending
/// — exactly the fold a single-node (or sequential) run performs, whatever
/// the partitioning. A rank's contributions all come from the one node that
/// hosted it, already in program order, so the stable sort never has to
/// break a tie across sources.
fn resolve_conflicts<T: Elem>(idx: u64, run: &mut [(u64, u32, WireWrite<T>)]) -> T {
    let (_, _, first) = run.first().expect("non-empty run");
    match first {
        WireWrite::Assign(..) => {
            let mut best: Option<(T, WriteKey)> = None;
            for (_, _, w) in run.iter() {
                match w {
                    WireWrite::Assign(v, k) => {
                        if best.is_none_or(|(_, bk)| *k > bk) {
                            best = Some((*v, *k));
                        }
                    }
                    WireWrite::Accum { .. } => {
                        panic!("element {idx}: put and accumulate mixed across nodes in one phase")
                    }
                }
            }
            best.expect("non-empty run").0
        }
        WireWrite::Accum { op, f, .. } => {
            let (op, f) = (*op, *f);
            let mut all: Vec<(u64, T)> = Vec::new();
            for (_, _, w) in run.iter_mut() {
                match w {
                    WireWrite::Accum { op: op2, parts, .. } => {
                        assert_eq!(op, *op2, "element {idx}: conflicting accumulate operators");
                        all.append(parts);
                    }
                    WireWrite::Assign(..) => {
                        panic!("element {idx}: put and accumulate mixed across nodes in one phase")
                    }
                }
            }
            all.sort_by_key(|p| p.0);
            let mut it = all.into_iter();
            let (_, acc0) = it.next().expect("accum run with no contributions");
            it.fold(acc0, |acc, (_, v)| f(op, acc, v))
        }
    }
}

// ---------------------------------------------------------------------------
// Node shared array storage.
// ---------------------------------------------------------------------------

/// One node's instance of a node-shared array plus its phase write buffer.
/// Buffered accumulates are rank-keyed [`WEntry`] contributions for the
/// same reason as [`GArray`]: node-shared accumulates may happen inside a
/// global phase, whose poll-round structure wave pipelining changes.
pub(crate) struct NArray<T: Elem> {
    pub data: Vec<T>,
    /// Flat append-only write log (see [`GArray::wlog`]).
    wlog: Vec<(usize, WEntry<T>)>,
}

impl<T: Elem> NArray<T> {
    pub fn new(len: usize) -> Self {
        NArray {
            data: vec![T::default(); len],
            wlog: Vec::new(),
        }
    }

    pub fn buffer_assign(&mut self, idx: usize, val: T, key: WriteKey) {
        self.wlog.push((idx, WEntry::Assign(val, key)));
    }

    /// See [`GArray::buffer_accum_with`].
    pub fn buffer_accum_with(
        &mut self,
        idx: usize,
        op: AccumOp,
        val: T,
        f: fn(AccumOp, T, T) -> T,
        rank: u64,
    ) {
        self.wlog.push((idx, WEntry::Accum { op, f, rank, val }));
    }
}

#[cfg(test)]
impl<T: AccumElem> NArray<T> {
    /// Test convenience: accumulate with the element's own combiner as
    /// VP rank 0.
    pub fn buffer_accum(&mut self, idx: usize, op: AccumOp, val: T) {
        self.buffer_accum_with(idx, op, val, T::combine, 0);
    }
}

/// Type-erased face of `NArray<T>` for end-of-phase application.
pub(crate) trait NArrayObj: Send + Sync {
    fn as_any(&mut self) -> &mut dyn Any;
    fn as_any_ref(&self) -> &dyn Any;
    /// Apply the buffered writes. Returns entries applied.
    fn apply(&mut self) -> u64;
    /// Copy the node instance for a super-step snapshot (payload plus
    /// modeled byte size).
    fn snapshot_local(&self) -> (Box<dyn Any + Send + Sync>, u64);
    /// Overwrite the node instance from a snapshot (crash recovery);
    /// returns bytes restored, or a description of why the snapshot
    /// cannot be applied (payload type or shape mismatch).
    fn restore_local(&mut self, snap: &dyn Any) -> Result<u64, String>;
}

impl<T: Elem> NArrayObj for NArray<T> {
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any_ref(&self) -> &dyn Any {
        self
    }

    fn apply(&mut self) -> u64 {
        let mut log = std::mem::take(&mut self.wlog);
        log.sort_by_key(|(idx, _)| *idx);
        let mut n = 0u64;
        for_each_run(&log, |idx, run| {
            self.data[idx] = fold_wire(resolve_run("node ", idx, run));
            n += 1;
        });
        n
    }

    fn snapshot_local(&self) -> (Box<dyn Any + Send + Sync>, u64) {
        let copy = self.data.clone();
        let bytes = copy.wire_size() as u64;
        (Box::new(copy), bytes)
    }

    fn restore_local(&mut self, snap: &dyn Any) -> Result<u64, String> {
        let snap = snap
            .downcast_ref::<Vec<T>>()
            .ok_or_else(|| "snapshot payload type mismatch".to_string())?;
        if snap.len() != self.data.len() {
            return Err(format!(
                "snapshot shape does not match the node array \
                 (snapshot {} elements, array {})",
                snap.len(),
                self.data.len()
            ));
        }
        self.data.clone_from(snap);
        Ok(snap.wire_size() as u64)
    }
}

// ---------------------------------------------------------------------------
// Phase bookkeeping and traffic accounting.
// ---------------------------------------------------------------------------

/// Barrier/phase bookkeeping for the current `ppm_do`.
#[derive(Debug, Default)]
pub(crate) struct PhaseState {
    /// Kind of the currently open phase, if any VP has entered one.
    pub open: Option<PhaseKind>,
    /// VPs that entered the current phase.
    pub entered: usize,
    /// VPs waiting at the current phase's end barrier.
    pub arrived: usize,
    /// Completed-phase counter; barrier futures wait for it to advance.
    pub epoch: u64,
    /// Completed global phases (used to tag runtime messages).
    pub global_seq: u64,
    /// Completed node phases.
    pub node_seq: u64,
}

/// One completed phase, as recorded in the node's phase log — the
/// observability channel for understanding where a PPM program's time
/// goes. Retrieved with [`crate::NodeCtx::take_phase_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Global or node phase.
    pub kind: PhaseKind,
    /// Max per-core compute charged during the phase.
    pub compute: SimTime,
    /// Owner-side service CPU (remote reads served, writes applied).
    pub service: SimTime,
    /// Communication time charged (gap + overhead + wave latency +
    /// barrier), as seen by this node.
    pub comm: SimTime,
    /// Request flush rounds.
    pub waves: u64,
    /// Modeled bytes sent during the phase.
    pub bytes_out: u64,
    /// Modeled bytes received during the phase.
    pub bytes_in: u64,
}

/// Per-phase communication totals, turned into simulated time by the
/// executor's cost formula at each global phase end.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Traffic {
    pub req_bundles_out: u64,
    pub req_entries_out: u64,
    pub req_bytes_out: u64,
    pub req_bundles_in: u64,
    pub req_entries_in: u64,
    pub req_bytes_in: u64,
    pub resp_bundles_out: u64,
    pub resp_bytes_out: u64,
    pub resp_bundles_in: u64,
    pub resp_bytes_in: u64,
    pub write_bundles_out: u64,
    pub write_entries_out: u64,
    pub write_bytes_out: u64,
    pub write_bundles_in: u64,
    pub write_entries_in: u64,
    pub write_bytes_in: u64,
    /// Adaptive repartitioning (DESIGN.md §14): non-empty migration
    /// bundles and their bytes, charged into the rebalancing phase's gap
    /// and overhead terms by the executor's cost formula. Empty bundles
    /// are free end-of-rebalance tokens (the empty-`K_WRITE` convention).
    pub migr_bundles_out: u64,
    pub migr_bytes_out: u64,
    pub migr_bundles_in: u64,
    pub migr_bytes_in: u64,
    pub waves: u64,
    /// Refresh-push bytes sent riding barrier messages (DESIGN.md §13).
    /// Charged into the *next* phase's gap term for every party — the
    /// barrier closes this phase, so its payload overlaps the following
    /// phase's work, symmetrically and deterministically.
    pub refresh_bytes_out: u64,
    /// Refresh-push bytes received riding barrier messages.
    pub refresh_bytes_in: u64,
    /// Non-empty refresh payloads sent riding barrier messages (each also
    /// counts once in `Counters::bundles_sent`; the tracer's phase summary
    /// uses this so the bundle reconciliation stays exact).
    pub refresh_bundles_out: u64,
    /// Snapshot-replica frame bytes streamed to the buddy riding the
    /// round-0 barrier message (DESIGN.md §15). Like refresh bytes, they
    /// are charged into the *next* phase's gap term — the barrier closes
    /// this phase, so the frame overlaps the following phase's work.
    pub replica_bytes_out: u64,
    /// Snapshot-replica frame bytes received from the buddy's predecessor.
    pub replica_bytes_in: u64,
    /// Pipelining: compute merged while a wave had at least one destination
    /// already consumed and at least one still pending — work genuinely
    /// overlapped with in-flight responses.
    pub pipelined_compute: SimTime,
    /// Pipelining: response latency that overlapped compute could hide —
    /// one response leg per completed multi-destination wave. The phase
    /// cost formula subtracts `min(pipelined_compute, pipeline_hideable)`
    /// from the wave latency term.
    pub pipeline_hideable: SimTime,
    /// Reliability: extra virtual transmissions this phase (retransmitted
    /// attempts + duplicate copies) — each pays per-message overhead.
    /// Cumulative acks deliberately do *not* appear here: they are sent
    /// from the receive pump, whose position relative to the phase-time
    /// fold depends on real-time message interleaving, so charging them
    /// would break clock determinism. They are modeled as piggybacked
    /// (free in simulated time) and show up only in [`Counters`].
    ///
    /// [`Counters`]: ppm_simnet::Counters
    pub rel_extra_msgs: u64,
    /// Reliability: retransmission backoff plus injected wire delay
    /// accumulated by data-plane sends this phase (barrier/collective
    /// delay rides on `Message::ts` instead; see `reliable.rs`).
    pub rel_delay: SimTime,
    /// Tracing only: estimated unoverlapped elapsed time of the waves run
    /// so far this phase, used to place each `wave` instant on a real
    /// timeline inside the phase (the clock itself is frozen until phase
    /// end; see DESIGN.md §11). Never feeds the charged phase time.
    pub wave_elapsed: SimTime,
}

// ---------------------------------------------------------------------------
// Inner: the per-node runtime state.
// ---------------------------------------------------------------------------

/// Super-step snapshot of this node's shared-array state, maintained while
/// a crash fault is configured (see `exec.rs`). The BSP discipline makes
/// this cheap to reason about: between phases the live arrays *are* the
/// snapshot (writes are buffered during phase bodies), so a snapshot taken
/// at each global phase end — plus redo of the crashed phase's (buffered,
/// deterministic) work — is a complete recovery line.
pub(crate) struct Snapshots {
    /// `phase.global_seq` at capture time: the number of completed global
    /// exchanges this state reflects.
    pub phase: u64,
    /// One `Vec<T>` payload per global array partition.
    pub garrays: Vec<Box<dyn Any + Send + Sync>>,
    /// One `Vec<T>` payload per node-shared array instance.
    pub narrays: Vec<Box<dyn Any + Send + Sync>>,
    /// Total modeled bytes of all payloads — the size of a base (full)
    /// replica frame when buddy replication streams this snapshot
    /// (DESIGN.md §15).
    pub bytes: u64,
}

/// Serve history of one owned element, for the refresh-push side of the
/// read cache (DESIGN.md §13). An element *arms* on its second serve
/// within the TTL window: one serve is as likely read-once as read-again,
/// two serves within a few phases is a reuse pattern worth pushing for.
#[derive(Debug, Clone)]
pub(crate) struct ServeHist {
    /// `phase.global_seq` of the most recent serve (TTL pruning).
    pub last_serve: u64,
    /// Nodes that have requested this element. Growable — the old `u64`
    /// word capped the push protocol at 64 nodes.
    pub readers: NodeSet,
    /// Whether rewrites of this element trigger an owner push.
    pub armed: bool,
}

/// Outcome of a shared read issued by a VP.
pub(crate) enum GetOutcome<T> {
    /// The element is owned locally; here is its value.
    Local(T),
    /// The element is remote; the VP parks on this slot.
    Remote(u64),
    /// The element is owned locally but its partition tile is spilled
    /// (pseudo-streaming, DESIGN.md §18). The VP parks slot-free; the
    /// executor refills the tile and wakes it, and the deferred re-read
    /// ([`VpCell::read_local_resident`]) is charge-free — the access was
    /// fully charged here, exactly like the in-core path.
    LocalPending,
}

// ---------------------------------------------------------------------------
// Pseudo-streaming tile residency (DESIGN.md §18).
// ---------------------------------------------------------------------------

/// Tiling registration of one global array's local partition.
struct ArrayTiles {
    elem_bytes: u64,
    local_len: usize,
    /// Elements per tile; 0 = untiled (the whole partition counts as
    /// permanently resident).
    tile_elems: usize,
    /// Residency bit per tile. All tiles start cold.
    resident: Vec<bool>,
    /// Deterministic recency per tile: the [`TileBudget::clock`] value of
    /// the last driver-side touch (refill or write application). Never
    /// updated by VP reads, which run under the shared read lock.
    last_touch: Vec<u64>,
}

impl ArrayTiles {
    fn n_tiles(&self) -> usize {
        self.resident.len()
    }

    fn tile_bytes(&self, tile: usize) -> u64 {
        let start = tile * self.tile_elems;
        let len = self.tile_elems.min(self.local_len - start);
        len as u64 * self.elem_bytes
    }
}

/// Residency accounting for pseudo-streaming execution (DESIGN.md §18):
/// which tiles of each global array's local partition are resident under
/// the configured byte budget. Purely a *model* — `GArray::local` always
/// holds every element (it stands for node memory plus the backing
/// store), so spill/refill moves no data; exchange-path reads (serve,
/// refresh, snapshot, migration) stream from the backing store without
/// admission. What residency gates is the VP read hot path: a read of a
/// cold tile parks the VP ([`GetOutcome::LocalPending`]) until the
/// executor refills the tile, evicting the least-recently-touched
/// resident tiles to stay under budget.
pub(crate) struct TileBudget {
    /// Resident-bytes budget; 0 = streaming off (everything resident,
    /// every query answers "hot").
    budget: u64,
    /// Indexed by global array id (registration order = allocation order).
    arrays: Vec<ArrayTiles>,
    /// Monotonic recency clock, bumped by driver-side touches only.
    clock: u64,
    /// Bytes currently resident: untiled partitions in full plus the
    /// resident tiles of tiled partitions.
    resident_bytes: u64,
    /// High-water mark of [`Self::resident_bytes`].
    peak_bytes: u64,
}

impl TileBudget {
    pub fn new(budget: u64) -> Self {
        TileBudget {
            budget,
            arrays: Vec::new(),
            clock: 0,
            resident_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn bump(&mut self, delta: u64) {
        self.resident_bytes += delta;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
    }

    /// Register array `id`'s local partition (allocation and rebinds). A
    /// partition is tiled iff streaming is on and it spans at least two
    /// tiles of `max(1, budget / (8 * elem_bytes))` elements — so roughly
    /// eight tiles fit in the budget and eviction always has headroom.
    /// Tiled partitions start fully cold; untiled ones count as resident
    /// in full.
    pub fn register(&mut self, id: u32, elem_bytes: usize, local_len: usize) {
        let elem_bytes = elem_bytes.max(1) as u64;
        let tile_elems = if self.budget == 0 {
            0
        } else {
            usize::try_from((self.budget / (8 * elem_bytes)).max(1)).unwrap_or(usize::MAX)
        };
        let tiled = tile_elems > 0 && local_len > tile_elems;
        let n_tiles = if tiled {
            local_len.div_ceil(tile_elems)
        } else {
            0
        };
        let at = ArrayTiles {
            elem_bytes,
            local_len,
            tile_elems: if tiled { tile_elems } else { 0 },
            resident: vec![false; n_tiles],
            last_touch: vec![0; n_tiles],
        };
        // Residency is only tracked under a budget; with streaming off the
        // whole question is moot and every accessor reports zero.
        if self.budget > 0 && !tiled {
            self.bump(local_len as u64 * elem_bytes);
        }
        let id = id as usize;
        assert_eq!(id, self.arrays.len(), "tile registration out of order");
        self.arrays.push(at);
    }

    /// Re-register array `id` after a repartitioning rebind: drop the old
    /// partition's resident contribution and start the new one fully cold.
    pub fn rebind(&mut self, id: u32, local_len: usize) {
        let a = &self.arrays[id as usize];
        let elem_bytes = a.elem_bytes;
        // Mirror of `register`'s accounting: with streaming off nothing
        // was ever counted resident, untiled partitions were counted in
        // full, tiled ones by their resident tiles.
        let old: u64 = if self.budget == 0 {
            0
        } else if a.tile_elems == 0 {
            a.local_len as u64 * a.elem_bytes
        } else {
            (0..a.n_tiles())
                .filter(|&t| a.resident[t])
                .map(|t| a.tile_bytes(t))
                .sum()
        };
        self.resident_bytes -= old;
        let tile_elems = if self.budget == 0 {
            0
        } else {
            usize::try_from((self.budget / (8 * elem_bytes)).max(1)).unwrap_or(usize::MAX)
        };
        let tiled = tile_elems > 0 && local_len > tile_elems;
        let n_tiles = if tiled {
            local_len.div_ceil(tile_elems)
        } else {
            0
        };
        self.arrays[id as usize] = ArrayTiles {
            elem_bytes,
            local_len,
            tile_elems: if tiled { tile_elems } else { 0 },
            resident: vec![false; n_tiles],
            last_touch: vec![0; n_tiles],
        };
        if self.budget > 0 && !tiled {
            self.bump(local_len as u64 * elem_bytes);
        }
    }

    /// Whether local offset `off` of array `id` sits in a spilled tile.
    /// Always false with streaming off or for untiled arrays.
    pub fn is_cold(&self, id: u32, off: usize) -> bool {
        match self.arrays.get(id as usize) {
            Some(a) if a.tile_elems > 0 => !a.resident[off / a.tile_elems],
            _ => false,
        }
    }

    /// Tile index containing local offset `off` of array `id`. Only
    /// meaningful for tiled arrays.
    pub fn tile_of(&self, id: u32, off: usize) -> u32 {
        let a = &self.arrays[id as usize];
        debug_assert!(a.tile_elems > 0, "tile_of on an untiled array");
        (off / a.tile_elems) as u32
    }

    /// Driver-side recency touch for a write applied at local offset
    /// `off` (phase-end exchange). Cold tiles are written through to the
    /// backing store without admission, so only resident tiles move in
    /// the recency order.
    pub fn touch(&mut self, id: u32, off: usize) {
        let Some(a) = self.arrays.get_mut(id as usize) else {
            return;
        };
        if a.tile_elems == 0 {
            return;
        }
        let t = off / a.tile_elems;
        if a.resident[t] {
            self.clock += 1;
            a.last_touch[t] = self.clock;
        }
    }

    /// Make `tile` of array `id` resident, evicting least-recently-touched
    /// resident tiles (deterministic tie-break: ascending array, tile)
    /// while the budget would be exceeded. Returns the spilled
    /// `(array, tile)` pairs, in eviction order. Best-effort: if nothing
    /// is evictable (only untiled bytes remain) the refill overshoots and
    /// the peak records it honestly.
    pub fn refill(&mut self, id: u32, tile: u32) -> Vec<(u32, u32)> {
        let incoming = self.arrays[id as usize].tile_bytes(tile as usize);
        debug_assert!(
            !self.arrays[id as usize].resident[tile as usize],
            "refilling a resident tile"
        );
        let mut spilled = Vec::new();
        while self.resident_bytes + incoming > self.budget {
            let mut victim: Option<(u64, u32, u32)> = None;
            for (aid, a) in self.arrays.iter().enumerate() {
                if a.tile_elems == 0 {
                    continue;
                }
                for t in 0..a.n_tiles() {
                    if !a.resident[t] {
                        continue;
                    }
                    let key = (a.last_touch[t], aid as u32, t as u32);
                    if victim.is_none_or(|v| key < v) {
                        victim = Some(key);
                    }
                }
            }
            let Some((_, va, vt)) = victim else {
                break;
            };
            let a = &mut self.arrays[va as usize];
            a.resident[vt as usize] = false;
            self.resident_bytes -= self.arrays[va as usize].tile_bytes(vt as usize);
            spilled.push((va, vt));
        }
        let a = &mut self.arrays[id as usize];
        a.resident[tile as usize] = true;
        self.clock += 1;
        a.last_touch[tile as usize] = self.clock;
        self.bump(incoming);
        spilled
    }

    /// Bytes currently resident.
    pub fn bytes_resident(&self) -> u64 {
        self.resident_bytes
    }

    /// High-water mark of resident bytes over the run.
    pub fn peak_bytes_resident(&self) -> u64 {
        self.peak_bytes
    }
}

/// All per-node runtime state the VPs and the executor share.
pub(crate) struct Inner {
    pub garrays: Vec<Box<dyn GArrayObj>>,
    pub narrays: Vec<Box<dyn NArrayObj>>,
    /// Reads parked in VP slot tables but not yet answered by a wave
    /// (incremented when scratches merge, decremented per slot fill).
    pub outstanding_reads: usize,
    /// Outgoing read requests queued for the next wave — dense, indexed by
    /// destination node id, so every iteration that feeds the wire walks
    /// destinations in ascending order (never hash-iteration order).
    pub reqs: Vec<Vec<QueuedReq>>,
    pub phase: PhaseState,
    pub traffic: Traffic,
    /// Per-core compute accumulated in the current phase (VP charges and
    /// shared-access overheads).
    pub core_compute: Vec<SimTime>,
    /// Owner-side service CPU spent this phase.
    pub service_time: SimTime,
    /// Event counters, merged into the endpoint at exchange points.
    pub counters: Counters,
    /// Counters from servicing peers' read requests, parked until the
    /// serviced phase's end folds them into `counters` (exec.rs). A peer
    /// that is ahead of us can deliver a request early (during our clock
    /// barrier, or a `ppm_do` prologue collective) — a real-time accident —
    /// so crediting services immediately would make per-phase counter
    /// deltas in the trace depend on host scheduling. Parking them keeps
    /// every snapshot of the merged counters (which excludes this bucket)
    /// deterministic; totals are unaffected because the bucket always
    /// drains into `counters` by job end.
    pub deferred_service_ctrs: Counters,
    /// VPs of the current `ppm_do` that have not finished.
    pub live_vps: usize,
    /// Global rank of this node's VP 0 in the current `ppm_do`.
    pub vp_base_global: u64,
    /// Total VPs across all nodes in the current `ppm_do`.
    pub total_vps_global: u64,
    /// VPs woken by the executor releasing a barrier.
    pub barrier_waiters: Vec<usize>,
    /// Participation mode of the current `ppm_do`.
    pub(crate) do_mode: DoMode,
    /// Completed-phase records (drained by `NodeCtx::take_phase_log`).
    pub phase_log: Vec<PhaseRecord>,
    /// Conformance checker (present iff `cfg.checker`).
    pub(crate) checker: Option<Checker>,
    /// Violations flushed at phase barriers (drained by
    /// `NodeCtx::take_violations`).
    pub violations: Vec<PhaseViolation>,
    /// Last super-step snapshot (crash recovery; `None` unless a crash
    /// fault is configured).
    pub snapshots: Option<Snapshots>,
    /// Merged-counter snapshot at the last phase boundary, used by the
    /// tracer to attach per-phase [`Counters`] deltas to phase events.
    /// Only maintained while tracing is enabled.
    pub ctr_base: Counters,
    /// Refresh-push: serve history per owned `(array, global idx)`, folded
    /// from [`Self::deferred_serves`] at each global phase end and TTL-pruned.
    /// A `BTreeMap` so arming/pruning iterate in deterministic order.
    pub serve_hist: BTreeMap<(u32, u64), ServeHist>,
    /// Peer read requests served since the last global phase end, as
    /// `(requesting node, array, global idx)` — recorded by
    /// `service_read_req` in arrival order, folded into [`Self::serve_hist`]
    /// (deterministically: sorted first) at phase end.
    pub deferred_serves: Vec<(usize, u32, u64)>,
    /// Refresh-push entries awaiting dissemination: owner-pushed values for
    /// armed rewritten elements, each with its remaining destination mask.
    /// Drained into barrier messages round by round (exec.rs).
    pub pending_refresh: Vec<crate::msgs::RefreshPart>,
    /// Ids of global arrays opted into adaptive repartitioning
    /// (`NodeCtx::alloc_global_balanced`). Allocation order, hence
    /// identical on every node.
    pub balanced: Vec<u32>,
    /// Per-node load (compute + service picoseconds) accumulated since the
    /// last rebalance, replicated identically on every node by the free
    /// loads sidecar of the clock barrier (`exec.rs`). Indexed by node id;
    /// sized on first use.
    pub load_acc: Vec<u64>,
    /// Global phases folded into [`Self::load_acc`] since the last
    /// rebalance — the balancer's hysteresis window.
    pub load_window: u64,
    /// Failure detector (DESIGN.md §15): nodes every survivor has
    /// confirmed permanently dead, identical on all live nodes after the
    /// confirming clock barrier. Growable — the old `u128` word capped
    /// death detection at 128 nodes.
    pub dead_bits: NodeSet,
    /// Whether this rank is a hosted persona: its node died permanently
    /// and the logical rank now runs on its buddy. The endpoint thread
    /// continues as the buddy's deterministic reconstruction from the
    /// replica; only the cost model changes (compute serializes onto the
    /// buddy via the barrier's `hosted_compute_ps` sidecar).
    pub hosted: bool,
    /// One-shot failover cost (replica restore + redo of the victim's
    /// unfinished phase) a freshly hosted persona charges to its buddy via
    /// the next barrier's `hosted_compute_ps`, then clears.
    pub hosted_extra: SimTime,
    /// VPs hosted by each node in the current `ppm_do` (the prologue
    /// allgather), kept for the failover trace instant's payload.
    pub peer_vps: Vec<u64>,
    /// Whether the buddy already holds a base (full-snapshot) replica
    /// frame; reset on any new death confirmation so re-homed replicas
    /// start from a fresh base frame.
    pub replica_base_sent: bool,
    /// Latest replica frame received from the predecessor, as
    /// `(snapshot phase, bytes, base)` — shows in the watchdog's protocol
    /// dump how fresh the hosted replica is.
    pub replica_in: Option<(u64, u64, bool)>,
    /// Pseudo-streaming tile residency under `cfg.tile_budget`
    /// (DESIGN.md §18). With the budget off every query answers "hot" and
    /// the streaming paths are never taken.
    pub tile_budget: TileBudget,
    /// Cold-tile faults merged from VP scratches this poll round, as
    /// `(array, tile)`; the executor services the minimum group per fault
    /// round and clears the rest (parked VPs re-record still-cold faults
    /// when re-polled).
    pub pending_tile_faults: Vec<(u32, u32)>,
    /// VPs parked on cold-tile faults, woken (pushed back into the ready
    /// list) after each fault-service round.
    pub fault_waiters: Vec<usize>,
}

impl Inner {
    pub fn new(cfg: PpmConfig, _node: usize) -> Self {
        Inner {
            garrays: Vec::new(),
            narrays: Vec::new(),
            outstanding_reads: 0,
            reqs: vec![Vec::new(); cfg.nodes()],
            phase: PhaseState::default(),
            traffic: Traffic::default(),
            core_compute: vec![SimTime::ZERO; cfg.cores_per_node()],
            service_time: SimTime::ZERO,
            counters: Counters::default(),
            deferred_service_ctrs: Counters::default(),
            live_vps: 0,
            vp_base_global: 0,
            total_vps_global: 0,
            barrier_waiters: Vec::new(),
            do_mode: DoMode::Collective,
            phase_log: Vec::new(),
            checker: cfg.checker.then(Checker::default),
            violations: Vec::new(),
            snapshots: None,
            ctr_base: Counters::default(),
            serve_hist: BTreeMap::new(),
            deferred_serves: Vec::new(),
            pending_refresh: Vec::new(),
            balanced: Vec::new(),
            load_acc: Vec::new(),
            load_window: 0,
            dead_bits: NodeSet::new(),
            hosted: false,
            hosted_extra: SimTime::ZERO,
            peer_vps: Vec::new(),
            replica_base_sent: false,
            replica_in: None,
            tile_budget: TileBudget::new(cfg.tile_budget),
            pending_tile_faults: Vec::new(),
            fault_waiters: Vec::new(),
        }
    }

    /// A VP enters a phase of `kind`; all concurrent VPs must agree.
    /// Called from [`merge_vp`] in ascending rank order, so a mismatch
    /// panics on the same VP it would under a sequential schedule.
    pub fn enter_phase(&mut self, kind: PhaseKind) {
        assert!(
            !(self.do_mode == DoMode::Local && kind == PhaseKind::Global),
            "global phases are not allowed inside ppm_do_local \
             (asynchronous node-level mode); use ppm_do"
        );
        match self.phase.open {
            None => {
                self.phase.open = Some(kind);
                self.phase.entered = 1;
            }
            Some(k) => {
                if k != kind {
                    // Phase structure is corrupt: report as a conformance
                    // violation and abort (the runtime cannot continue a
                    // mismatched super-step).
                    let v = PhaseViolation::PhaseKindMismatch {
                        open: k,
                        entered: kind,
                    };
                    panic!("{v}");
                }
                self.phase.entered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vp: u64, seq: u64) -> WriteKey {
        WriteKey { vp, seq }
    }

    #[test]
    fn vp_slots_lifecycle() {
        let mut t = VpSlots::default();
        let s0 = t.alloc();
        let s1 = t.alloc();
        assert_ne!(s0, s1);
        assert!(t.try_take(s0).is_none());
        t.fill(s0, Box::new(1.5f64));
        let v = t.try_take(s0).expect("filled");
        assert_eq!(*v.downcast::<f64>().unwrap(), 1.5);
        // freed slot is reused
        let s2 = t.alloc();
        assert_eq!(s2, s0);
        t.fill(s1, Box::new(2u64));
        t.fill(s2, Box::new(3u64));
        assert_eq!(*t.try_take(s1).unwrap().downcast::<u64>().unwrap(), 2);
        assert_eq!(*t.try_take(s2).unwrap().downcast::<u64>().unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let mut t = VpSlots::default();
        let s = t.alloc();
        t.fill(s, Box::new(1u8));
        t.fill(s, Box::new(2u8));
    }

    #[test]
    fn assign_last_writer_wins_locally() {
        let mut ga: GArray<f64> = GArray::new(Dist::block(4, 1), 0);
        ga.buffer_assign(2, 1.0, key(0, 0));
        ga.buffer_assign(2, 2.0, key(1, 0));
        ga.buffer_assign(2, 1.5, key(0, 5)); // lower vp, loses to (1,0)? No: (1,0) > (0,5)
        let parcels = ga.drain_writes();
        assert_eq!(parcels.len(), 1);
        let p = parcels.into_iter().next().unwrap();
        let entries = p.payload.downcast::<Vec<(u64, WireWrite<f64>)>>().unwrap();
        match entries[0].1 {
            WireWrite::Assign(v, k) => {
                assert_eq!(v, 2.0);
                assert_eq!(k, key(1, 0));
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn accum_merges_locally() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(4, 2), 0);
        ga.buffer_accum(3, AccumOp::Add, 5);
        ga.buffer_accum(3, AccumOp::Add, 7);
        let parcels = ga.drain_writes();
        assert_eq!(parcels.len(), 1);
        assert_eq!(parcels[0].dest, 1); // idx 3 lives on node 1 of 2
        assert_eq!(parcels[0].entries, 1); // merged
    }

    /// Mixed put/accumulate on one element is detected when the log
    /// resolves at the phase boundary (buffering itself is append-only).
    #[test]
    #[should_panic(expected = "put and accumulate mixed")]
    fn mixed_write_kinds_panic() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(4, 1), 0);
        ga.buffer_assign(0, 1, key(0, 0));
        ga.buffer_accum(0, AccumOp::Add, 1);
        ga.drain_writes();
    }

    #[test]
    #[should_panic(expected = "node element 0: put and accumulate mixed")]
    fn node_mixed_write_kinds_panic() {
        let mut na: NArray<u64> = NArray::new(2);
        na.buffer_accum(0, AccumOp::Add, 1);
        na.buffer_assign(0, 1, key(0, 0));
        na.apply();
    }

    #[test]
    #[should_panic(expected = "conflicting accumulate operators")]
    fn conflicting_accum_ops_panic() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(4, 1), 0);
        ga.buffer_accum(1, AccumOp::Add, 1);
        ga.buffer_accum(1, AccumOp::Max, 2);
        ga.drain_writes();
    }

    fn accum_parts(parts: &[(u64, f64)]) -> WireWrite<f64> {
        WireWrite::Accum {
            op: AccumOp::Add,
            f: f64::combine,
            parts: parts.to_vec(),
        }
    }

    #[test]
    fn apply_resolves_across_sources_deterministically() {
        let mut ga: GArray<f64> = GArray::new(Dist::block(4, 1), 0);
        // Two "remote" parcels plus a local one, unsorted source order.
        let p2: Vec<(u64, WireWrite<f64>)> = vec![(1, WireWrite::Assign(20.0, key(9, 0)))];
        let p0: Vec<(u64, WireWrite<f64>)> = vec![
            (1, WireWrite::Assign(10.0, key(2, 3))),
            (2, accum_parts(&[(0, 1.0)])),
        ];
        let p1: Vec<(u64, WireWrite<f64>)> = vec![(2, accum_parts(&[(5, 2.0)]))];
        let (n, written) = ga.apply_writes(
            vec![(2, Box::new(p2)), (0, Box::new(p0)), (1, Box::new(p1))],
            &mut |_| {},
        );
        assert_eq!(n, 4);
        assert_eq!(written, vec![1, 2], "distinct written indices, ascending");
        assert_eq!(ga.local[1], 20.0, "assign with highest WriteKey wins");
        assert_eq!(ga.local[2], 3.0, "accumulates sum across sources");
        assert_eq!(ga.local[0], 0.0, "untouched elements stay default");
    }

    /// The canonical accumulate fold runs in ascending VP rank order across
    /// sources — NOT per-source-node partials. The values below are picked
    /// so the two orders give different f64 bits: ranks 0 and 1 cancel
    /// exactly before rank 2 lands, which only happens when rank 1 (from
    /// the *other* node) folds between its neighbors.
    #[test]
    fn accum_fold_is_rank_canonical_across_sources() {
        let mut ga: GArray<f64> = GArray::new(Dist::block(1, 1), 0);
        let from0: Vec<(u64, WireWrite<f64>)> = vec![(0, accum_parts(&[(0, 1e16), (2, 1.0)]))];
        let from1: Vec<(u64, WireWrite<f64>)> = vec![(0, accum_parts(&[(1, -1e16)]))];
        ga.apply_writes(
            vec![(0, Box::new(from0)), (1, Box::new(from1))],
            &mut |_| {},
        );
        assert_eq!(
            ga.local[0], 1.0,
            "(1e16 + -1e16) + 1.0 — node-partial folding would give 0.0"
        );
    }

    /// Repartitioning round-trip: extract a stretch, rebind to new bounds,
    /// and confirm values land at the right global indices on both sides.
    #[test]
    fn migrate_extract_rebind_moves_elements() {
        use std::sync::Arc;
        let bounds0 = Arc::new(vec![0usize, 4, 8]);
        let bounds1 = Arc::new(vec![0usize, 2, 8]);
        // Node 0 starts owning 0..4 with values 10..14.
        let mut n0: GArray<u64> = GArray::new(Dist::weighted(8, 2, bounds0.clone()), 0);
        n0.local.copy_from_slice(&[10, 11, 12, 13]);
        // Node 1 starts owning 4..8 with values 14..18.
        let mut n1: GArray<u64> = GArray::new(Dist::weighted(8, 2, bounds0), 1);
        n1.local.copy_from_slice(&[14, 15, 16, 17]);
        // New layout gives node 1 the stretch 2..4.
        let (payload, bytes) = GArrayObj::migrate_extract(&n0, 2..4);
        assert_eq!(bytes, (vec![0u64; 2]).wire_size() as u64);
        let arrived = n0.migrate_rebind(0, Dist::weighted(8, 2, bounds1.clone()), vec![]);
        assert_eq!(arrived, 0);
        assert_eq!(n0.local, vec![10, 11], "node 0 keeps only 0..2");
        let arrived = n1.migrate_rebind(1, Dist::weighted(8, 2, bounds1), vec![(2, payload)]);
        assert_eq!(arrived, 2);
        assert_eq!(n1.local, vec![12, 13, 14, 15, 16, 17], "2..8 in order");
    }

    #[test]
    #[should_panic(expected = "mixed across nodes")]
    fn apply_detects_cross_node_mix() {
        let mut ga: GArray<f64> = GArray::new(Dist::block(2, 1), 0);
        let a: Vec<(u64, WireWrite<f64>)> = vec![(0, WireWrite::Assign(1.0, key(0, 0)))];
        let b: Vec<(u64, WireWrite<f64>)> = vec![(0, accum_parts(&[(1, 1.0)]))];
        ga.apply_writes(vec![(0, Box::new(a)), (1, Box::new(b))], &mut |_| {});
    }

    #[test]
    fn serve_reads_global_indices() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(10, 2), 1);
        // node 1 owns indices 5..10 at offsets 0..5
        for (off, v) in ga.local.iter_mut().enumerate() {
            *v = (off + 100) as u64;
        }
        let (payload, bytes) = GArrayObj::serve(&ga, &[5, 9, 7]);
        assert_eq!(bytes, 8 + 3 * 8);
        let vals = payload.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*vals, vec![100, 104, 102]);
    }

    #[test]
    fn tile_budget_off_means_everything_hot() {
        let mut tb = TileBudget::new(0);
        tb.register(0, 8, 1 << 20);
        assert!(!tb.is_cold(0, 0));
        assert!(!tb.is_cold(0, (1 << 20) - 1));
        assert_eq!(tb.bytes_resident(), 0);
        assert_eq!(tb.peak_bytes_resident(), 0);
    }

    #[test]
    fn tile_budget_small_arrays_stay_untiled() {
        // budget 1024 B, f64 elems → tile_elems = 1024/(8*8) = 16; a
        // 16-element partition fits one tile and stays untiled (fully
        // resident, never cold).
        let mut tb = TileBudget::new(1024);
        tb.register(0, 8, 16);
        assert!(!tb.is_cold(0, 15));
        assert_eq!(tb.bytes_resident(), 16 * 8);
        // A 100-element partition is tiled: 7 tiles of 16, all cold.
        tb.register(1, 8, 100);
        assert!(tb.is_cold(1, 0));
        assert!(tb.is_cold(1, 99));
        assert_eq!(tb.tile_of(1, 0), 0);
        assert_eq!(tb.tile_of(1, 17), 1);
        assert_eq!(tb.tile_of(1, 99), 6);
        assert_eq!(tb.bytes_resident(), 16 * 8, "cold tiles are not resident");
    }

    #[test]
    fn tile_budget_refill_evicts_lru_deterministically() {
        // budget 256 B, u64 elems → tile_elems = 4 (32 B/tile); 8 tiles
        // fit exactly. One tiled array of 64 elements = 16 tiles.
        let mut tb = TileBudget::new(256);
        tb.register(0, 8, 64);
        for t in 0..8 {
            assert!(tb.refill(0, t).is_empty(), "first 8 refills fit");
        }
        assert_eq!(tb.bytes_resident(), 256);
        assert_eq!(tb.peak_bytes_resident(), 256);
        // Touch tile 0 so tile 1 becomes the LRU victim.
        tb.touch(0, 1); // offset 1 lives in tile 0
        assert_eq!(tb.refill(0, 8), vec![(0, 1)], "evicts LRU, not MRU");
        assert!(tb.is_cold(0, 4), "tile 1 spilled");
        assert!(!tb.is_cold(0, 32), "tile 8 resident");
        assert_eq!(tb.bytes_resident(), 256, "stays at budget");
        // Writes to cold tiles are write-through: no admission, no touch.
        tb.touch(0, 5);
        assert!(tb.is_cold(0, 5));
    }

    #[test]
    fn tile_budget_rebind_starts_cold() {
        let mut tb = TileBudget::new(256);
        tb.register(0, 8, 64);
        tb.refill(0, 0);
        assert_eq!(tb.bytes_resident(), 32);
        tb.rebind(0, 128);
        assert_eq!(tb.bytes_resident(), 0, "old residency dropped");
        assert!(tb.is_cold(0, 0), "rebound partition starts cold");
        assert_eq!(tb.peak_bytes_resident(), 32, "peak survives rebinds");
    }

    #[test]
    fn tile_budget_last_tile_is_short() {
        // 10 elements, tile_elems 4 → tiles of 4, 4, 2 elements.
        let mut tb = TileBudget::new(256);
        tb.register(0, 8, 10);
        tb.refill(0, 2);
        assert_eq!(tb.bytes_resident(), 2 * 8, "short tail tile");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(8, 2), 0);
        ga.local.copy_from_slice(&[1, 2, 3, 4]);
        let (snap, bytes) = GArrayObj::snapshot_local(&ga);
        assert_eq!(bytes, ga.local.wire_size() as u64);
        ga.local[2] = 99;
        assert_eq!(GArrayObj::restore_local(&mut ga, snap.as_ref()), Ok(bytes));
        assert_eq!(ga.local, vec![1, 2, 3, 4]);

        let mut na: NArray<f64> = NArray::new(2);
        na.data[1] = 7.5;
        let (snap, _) = NArrayObj::snapshot_local(&na);
        na.data[1] = 0.0;
        NArrayObj::restore_local(&mut na, snap.as_ref()).expect("restorable");
        assert_eq!(na.data[1], 7.5);
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(8, 2), 0);
        let wrong_type: Box<dyn Any + Send + Sync> = Box::new(vec![1.0f64; 4]);
        let err = GArrayObj::restore_local(&mut ga, wrong_type.as_ref())
            .expect_err("type mismatch must be an error");
        assert!(err.contains("type mismatch"), "{err}");
        let wrong_shape: Box<dyn Any + Send + Sync> = Box::new(vec![1u64; 3]);
        let err = GArrayObj::restore_local(&mut ga, wrong_shape.as_ref())
            .expect_err("shape mismatch must be an error");
        assert!(err.contains("shape does not match the partition"), "{err}");

        let mut na: NArray<u64> = NArray::new(2);
        let wrong_shape: Box<dyn Any + Send + Sync> = Box::new(vec![1u64; 5]);
        let err = NArrayObj::restore_local(&mut na, wrong_shape.as_ref())
            .expect_err("shape mismatch must be an error");
        assert!(err.contains("shape does not match the node array"), "{err}");
    }

    #[test]
    fn narray_apply_overwrites_and_clears() {
        let mut na: NArray<u64> = NArray::new(3);
        na.buffer_assign(0, 5, key(0, 0));
        na.buffer_accum(2, AccumOp::Max, 9);
        na.buffer_accum(2, AccumOp::Max, 4);
        assert_eq!(na.apply(), 2);
        assert_eq!(na.data, vec![5, 0, 9]);
        assert_eq!(na.apply(), 0);
    }

    #[test]
    fn drain_splits_by_owner_and_sorts() {
        let mut ga: GArray<u64> = GArray::new(Dist::block(8, 4), 0);
        for idx in [7, 0, 3, 5, 1] {
            ga.buffer_assign(idx, idx as u64, key(0, idx as u64));
        }
        let parcels = ga.drain_writes();
        let dests: Vec<usize> = parcels.iter().map(|p| p.dest).collect();
        assert_eq!(dests, vec![0, 1, 2, 3]);
        assert!(!ga.has_pending_writes());
        let p0 = parcels.into_iter().next().unwrap();
        let entries = p0.payload.downcast::<Vec<(u64, WireWrite<u64>)>>().unwrap();
        let idxs: Vec<u64> = entries.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1], "entries sorted by index");
    }
}
