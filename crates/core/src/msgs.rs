//! Runtime message kinds and tag layout for node-to-node traffic.
//!
//! The kind constants are public so that fault-injection plans
//! ([`ppm_simnet::fault::TargetedFault`]) can target a specific protocol
//! message — e.g. "drop the 3rd [`K_WRITE`] bundle from node 2 to node 0".

use std::any::Any;
use std::sync::Arc;

use crate::bitset::NodeSet;

/// Read-request bundle (one per destination per wave). Kinds live in the
/// top byte of the 64-bit tag.
pub const K_READ_REQ: u64 = 1;
/// Read-response bundle (one per request bundle).
pub const K_READ_RESP: u64 = 2;
/// End-of-phase write bundle.
pub const K_WRITE: u64 = 3;
/// Clock-synchronizing dissemination-barrier message.
pub const K_BARRIER: u64 = 4;
/// Node-level collective message.
pub const K_COLL: u64 = 5;
/// Reliability-layer cumulative acknowledgement (meta = acked watermark).
pub const K_ACK: u64 = 6;
/// Adaptive-repartitioning migration bundle (one per peer per rebalance).
pub const K_MIGRATE: u64 = 7;
/// Sparse-exchange sender-set token (DESIGN.md §17): the O(log N)
/// dissemination allgather of "which peers will I send a non-empty
/// [`K_WRITE`] bundle this phase", run just before the write exchange so
/// receivers block on exactly the announced senders instead of N−1
/// mostly-empty bundles.
pub const K_TOKENS: u64 = 8;

/// Human-readable name of a message kind (watchdog / panic diagnostics).
pub fn kind_name(kind: u64) -> &'static str {
    match kind {
        K_READ_REQ => "READ_REQ",
        K_READ_RESP => "READ_RESP",
        K_WRITE => "WRITE",
        K_BARRIER => "BARRIER",
        K_COLL => "COLL",
        K_ACK => "ACK",
        K_MIGRATE => "MIGRATE",
        K_TOKENS => "TOKENS",
        _ => "UNKNOWN",
    }
}

const KIND_SHIFT: u32 = 56;
const META_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// Compose a runtime tag from a kind and kind-specific metadata.
#[inline]
pub(crate) fn tag(kind: u64, meta: u64) -> u64 {
    debug_assert!(meta <= META_MASK);
    (kind << KIND_SHIFT) | meta
}

/// Extract (kind, meta) from a tag.
#[inline]
pub(crate) fn untag(t: u64) -> (u64, u64) {
    (t >> KIND_SHIFT, t & META_MASK)
}

/// Barrier metadata: phase sequence and dissemination round.
#[inline]
pub(crate) fn barrier_meta(phase: u64, round: u32) -> u64 {
    debug_assert!(round < 64);
    (phase << 6) | round as u64
}

/// One entry of an outgoing read-request bundle. `slot` is a
/// requester-side ticket: the responder echoes it back, and the requester
/// fans the value out to every VP waiting on that (array, index).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqEntry {
    pub array: u32,
    pub idx: u64,
    pub slot: u64,
}

/// A bundle of read requests for elements owned by the destination node.
pub(crate) struct ReqBundle {
    /// Global phase sequence the requests belong to (protocol checking).
    pub phase: u64,
    pub entries: Vec<ReqEntry>,
}

/// One array's worth of a read response.
pub(crate) struct RespPart {
    pub array: u32,
    /// Requester-side slots, parallel to `values`.
    pub slots: Vec<u64>,
    /// `Vec<T>` for the array's element type.
    pub values: Box<dyn Any + Send>,
}

/// A bundle of read responses (one per request bundle).
pub(crate) struct RespBundle {
    pub parts: Vec<RespPart>,
}

/// One array's worth of owner-pushed cache refreshes riding a barrier
/// message (DESIGN.md §13). Values are post-exchange truth for the phase
/// the barrier closes, routed along the dissemination edges: `masks`
/// carries each entry's remaining destination set (bit = node id), and a
/// holder forwards exactly the targets whose offset has the current
/// round's bit set, so every target receives each entry once.
pub(crate) struct RefreshPart {
    pub array: u32,
    /// Element indices, parallel to `values`.
    pub idxs: Vec<u64>,
    /// Remaining destination-node sets per entry, parallel to `idxs`.
    pub masks: Vec<NodeSet>,
    /// `Vec<T>` for the array's element type, parallel to `idxs`.
    /// `Sync` as well as `Send` because undelivered parts park in
    /// [`crate::state::Inner::pending_refresh`] between rounds.
    pub values: Box<dyn Any + Send + Sync>,
}

/// Clock-barrier payload. Pre-cache the barrier carried no payload a
/// receiver consumed; the read-cache coherence sidecar rides these
/// messages so the protocol adds no messages of its own: `inv_bits` is
/// the OR-flood of "this array took writes this phase" (one growable bit
/// per array id — no overflow/wholesale case), and `refreshes` are
/// owner-pushed values for remotely cached elements that were rewritten.
pub(crate) struct BarrierMsg {
    pub inv_bits: NodeSet,
    /// Failure-detector sidecar (DESIGN.md §15): OR-flood of "I suspect
    /// node `i` permanently dead" bits (bit = node id). After the barrier
    /// every node holds the identical union, so deaths are confirmed by
    /// all survivors at the same phase boundary — a pure function of
    /// message history. Rides messages the barrier sends anyway.
    pub suspect_bits: NodeSet,
    /// Buddy snapshot-replication sidecar (DESIGN.md §15), attached only
    /// to the round-0 dissemination message — whose destination,
    /// `(me+1) % nodes`, is exactly the buddy.
    pub replica: Option<ReplicaFrame>,
    /// Hosted-persona compute (picoseconds) a dead rank charges to the
    /// buddy that hosts it, attached only to the round-0 message: the
    /// buddy serializes the dead rank's re-executed VPs after its own, so
    /// it advances its clock by this much inside the barrier.
    pub hosted_compute_ps: u64,
    pub refreshes: Vec<RefreshPart>,
    /// Loads sidecar for the adaptive repartitioner (DESIGN.md §14): every
    /// `(node, compute+service picoseconds)` pair the sender knows for the
    /// phase this barrier closes. Forwarded whole each dissemination round
    /// (an allgather), so after the barrier every node holds the identical
    /// load vector. Like `inv_bits`, modeled free — it rides messages the
    /// barrier sends anyway, keeping makespans bit-identical whether the
    /// balance knob is on or off (until a migration actually happens).
    ///
    /// Shared, not owned: the sender's accumulated vector is behind an
    /// `Arc`, so a dissemination send is a refcount bump instead of an
    /// O(N) copy per round (the transport is in-memory; nothing is
    /// serialized). The receiver folds entries it hasn't seen and drops
    /// the handle.
    pub loads: Arc<Vec<(u32, u64)>>,
}

/// One snapshot-replica delta frame streamed to the buddy (DESIGN.md §15).
/// Metadata only: the simulator never needs the payload bytes on the wire
/// (a failover restores from the victim's own snapshot, which is
/// byte-identical to the buddy's replica by construction), so the frame
/// carries just the modeled size for cost accounting and the
/// `replica_bytes` counter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplicaFrame {
    /// Global phase sequence of the snapshot this frame brings the buddy's
    /// replica up to.
    pub phase: u64,
    /// Modeled frame bytes: the full snapshot on the first (base) frame,
    /// the bytes written since the previous snapshot on delta frames.
    pub bytes: u64,
    /// Whether this is a base (full-snapshot) frame.
    pub base: bool,
}

/// End-of-phase write bundle: buffered writes destined for one owner node.
pub(crate) struct WriteBundleMsg {
    pub phase: u64,
    /// Total entries across parts (for traffic accounting).
    pub entries: u64,
    /// `(array id, Vec<(u64 idx, WireWrite<T>)>)` per touched array.
    pub parts: Vec<(u32, Box<dyn Any + Send>)>,
}

/// Sender-set token for the sparse end-of-phase exchange (DESIGN.md §17).
/// Every `(node, write-destination set)` pair the sender knows for this
/// phase, forwarded whole each dissemination round (an allgather, exactly
/// like [`BarrierMsg::loads`]). After ⌈log₂ N⌉ rounds every node holds all
/// N pairs and derives its expected-sender set `{s : W_s ∋ me}` locally.
/// Modeled free: like the empty tokens it replaces, a token carries zero
/// wire bytes and advances no clock, so makespans are bit-identical to
/// the legacy all-to-all.
pub(crate) struct TokenMsg {
    /// Global phase sequence the sets belong to (protocol checking).
    pub phase: u64,
    /// `(node id, set of nodes it will send a non-empty K_WRITE bundle)`.
    /// Shared like [`BarrierMsg::loads`]: sending is a refcount bump, not
    /// an O(N)-entry copy per dissemination round.
    pub writers: Arc<Vec<(u32, NodeSet)>>,
}

/// Repartitioning migration bundle: the elements this node hands over to
/// one peer. Legacy protocol (`sparse_tokens` off): possibly empty — every
/// node sends exactly one per peer per rebalance, so receivers can count
/// instead of guessing. Sparse protocol: only non-empty bundles are sent;
/// both sides derive the sender set from the replicated rebalance plan.
pub(crate) struct MigrateMsg {
    /// Global phase sequence of the rebalancing boundary (protocol check).
    pub phase: u64,
    /// `(array id, global start index, Vec<T> payload)` per moved stretch.
    pub parts: Vec<(u32, u64, Box<dyn Any + Send>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> = (1..=8).map(kind_name).collect();
        assert_eq!(names.len(), 8);
        assert_eq!(kind_name(99), "UNKNOWN");
    }

    #[test]
    fn tag_roundtrip() {
        for kind in [
            K_READ_REQ,
            K_READ_RESP,
            K_WRITE,
            K_BARRIER,
            K_COLL,
            K_ACK,
            K_MIGRATE,
            K_TOKENS,
        ] {
            for meta in [0u64, 1, 12345, META_MASK] {
                assert_eq!(untag(tag(kind, meta)), (kind, meta));
            }
        }
    }

    #[test]
    fn barrier_meta_packs_phase_and_round() {
        let m = barrier_meta(100, 5);
        assert_eq!(m >> 6, 100);
        assert_eq!(m & 63, 5);
        assert_ne!(barrier_meta(100, 5), barrier_meta(100, 6));
        assert_ne!(barrier_meta(100, 5), barrier_meta(101, 5));
    }
}
