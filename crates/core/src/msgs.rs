//! Runtime message kinds and tag layout for node-to-node traffic.

use std::any::Any;

use crate::state::ReqEntry;

/// Message kinds (top byte of the 64-bit tag).
pub(crate) const K_READ_REQ: u64 = 1;
pub(crate) const K_READ_RESP: u64 = 2;
pub(crate) const K_WRITE: u64 = 3;
pub(crate) const K_BARRIER: u64 = 4;
pub(crate) const K_COLL: u64 = 5;

const KIND_SHIFT: u32 = 56;
const META_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// Compose a runtime tag from a kind and kind-specific metadata.
#[inline]
pub(crate) fn tag(kind: u64, meta: u64) -> u64 {
    debug_assert!(meta <= META_MASK);
    (kind << KIND_SHIFT) | meta
}

/// Extract (kind, meta) from a tag.
#[inline]
pub(crate) fn untag(t: u64) -> (u64, u64) {
    (t >> KIND_SHIFT, t & META_MASK)
}

/// Barrier metadata: phase sequence and dissemination round.
#[inline]
pub(crate) fn barrier_meta(phase: u64, round: u32) -> u64 {
    debug_assert!(round < 64);
    (phase << 6) | round as u64
}

/// A bundle of read requests for elements owned by the destination node.
pub(crate) struct ReqBundle {
    /// Global phase sequence the requests belong to (protocol checking).
    pub phase: u64,
    pub entries: Vec<ReqEntry>,
}

/// One array's worth of a read response.
pub(crate) struct RespPart {
    pub array: u32,
    /// Requester-side slots, parallel to `values`.
    pub slots: Vec<u64>,
    /// `Vec<T>` for the array's element type.
    pub values: Box<dyn Any + Send>,
}

/// A bundle of read responses (one per request bundle).
pub(crate) struct RespBundle {
    pub parts: Vec<RespPart>,
}

/// End-of-phase write bundle: buffered writes destined for one owner node.
pub(crate) struct WriteBundleMsg {
    pub phase: u64,
    /// Total entries across parts (for traffic accounting).
    pub entries: u64,
    /// `(array id, Vec<(u64 idx, WireWrite<T>)>)` per touched array.
    pub parts: Vec<(u32, Box<dyn Any + Send>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for kind in [K_READ_REQ, K_READ_RESP, K_WRITE, K_BARRIER, K_COLL] {
            for meta in [0u64, 1, 12345, META_MASK] {
                assert_eq!(untag(tag(kind, meta)), (kind, meta));
            }
        }
    }

    #[test]
    fn barrier_meta_packs_phase_and_round() {
        let m = barrier_meta(100, 5);
        assert_eq!(m >> 6, 100);
        assert_eq!(m & 63, 5);
        assert_ne!(barrier_meta(100, 5), barrier_meta(100, 6));
        assert_ne!(barrier_meta(100, 5), barrier_meta(101, 5));
    }
}
