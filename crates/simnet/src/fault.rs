//! Deterministic, seeded fault injection for the simulated network.
//!
//! The simulator's channels never actually lose data — payloads are real
//! Rust values that cannot be reconstructed once dropped — so faults are
//! injected *virtually*, at the protocol layer that owns reliability (the
//! PPM runtime's transport in `ppm-core`): a "dropped" message is one whose
//! first k transmission attempts are charged as lost, with the surviving
//! copy delivered at the retransmission instant the sender's ack/retry
//! state machine would have produced. This keeps every run deterministic
//! (the schedule is a pure function of the seed and the per-link send
//! sequence) while still exercising the full reliability protocol: retry
//! counters, backoff delays, duplicate suppression, and makespan impact
//! are all observable and bit-reproducible.
//!
//! Determinism is per *link*: each directed `(src, dst)` pair owns an
//! independent SplitMix64 stream seeded from the plan seed and the link
//! ids, and the stream advances once per message sent on that link. The
//! fault schedule therefore depends only on the protocol's (deterministic)
//! send sequence, never on host-thread interleaving across links.

use crate::time::SimTime;

/// Maximum number of targeted one-shot faults a [`FaultConfig`] can carry
/// (a fixed-size array keeps `FaultConfig`, and thus `MachineConfig`,
/// `Copy`).
pub const MAX_TARGETED_FAULTS: usize = 4;

/// Cap on virtual retransmission attempts for a single message. A message
/// is never lost more than `MAX_LOST_ATTEMPTS` times, so the reliability
/// layer always converges.
pub const MAX_LOST_ATTEMPTS: u32 = 6;

/// In-repo SplitMix64 (std-only policy: no `rand` crate). Equal seeds give
/// equal streams on every platform, which is the property the fault
/// schedule relies on.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits of the next u64).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What a targeted one-shot fault does to its matched message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Lose the message once (the reliability layer retransmits it).
    Drop,
    /// Deliver one extra copy (the reliability layer suppresses it).
    Duplicate,
    /// Hold the message on the wire for the given extra simulated time.
    Delay(SimTime),
}

/// A targeted one-shot fault: "apply `action` to the `nth` message of
/// `kind` sent from `src` to `dst`" — e.g. *drop the 3rd write bundle from
/// node 2 to node 0*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedFault {
    /// Sending endpoint.
    pub src: usize,
    /// Receiving endpoint.
    pub dst: usize,
    /// Message kind to match (the transport layer's kind id, e.g.
    /// `ppm_core::msgs::K_WRITE`); `KIND_ANY` matches every kind.
    pub kind: u64,
    /// 1-based occurrence on the link (per matched kind).
    pub nth: u64,
    /// What to do to the matched message.
    pub action: FaultAction,
}

/// Kind wildcard for [`TargetedFault::kind`].
pub const KIND_ANY: u64 = u64::MAX;

/// A seeded node crash: the node "fails" when it reaches the end of global
/// phase `phase` and must recover from its last super-step snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Node that crashes.
    pub node: usize,
    /// Global phase sequence number at whose end barrier the crash fires.
    pub phase: u64,
}

/// Maximum number of permanent (fail-stop) crashes a [`FaultConfig`] can
/// carry. Two slots so the "two simultaneous deaths in one phase" scenario
/// is expressible while keeping the config `Copy`.
pub const MAX_PERM_CRASHES: usize = 2;

/// A seeded *permanent* node death (fail-stop): the node's hardware is
/// lost for good at the end of global phase `phase`. Unlike [`CrashFault`]
/// there is no reboot — the node never computes on its own again, and the
/// runtime must fail its work over to a surviving buddy (or abort the job
/// with a structured error when snapshot replication is off). The router
/// black-holes traffic to a dead endpoint thereafter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermanentCrash {
    /// Node that dies.
    pub node: usize,
    /// Global phase sequence number at whose end barrier the death fires.
    pub phase: u64,
}

/// Fault model configuration, carried on
/// [`MachineConfig`](crate::config::MachineConfig).
///
/// All fields default to "no faults", in which case the transport fast
/// path is bit-for-bit identical to a fault-free build. Probabilities are
/// sampled per message per directed link from the link's own seeded
/// stream; `targeted` faults fire exactly once each, on top of the random
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-link fault streams. Equal seeds give equal
    /// schedules.
    pub seed: u64,
    /// Per-message probability that a transmission attempt is lost
    /// (attempts are re-lost independently, capped at
    /// [`MAX_LOST_ATTEMPTS`]).
    pub drop_p: f64,
    /// Per-message probability of delivering one extra (duplicate) copy.
    pub dup_p: f64,
    /// Per-message probability of an extra wire delay, uniform in
    /// `(0, max_extra_delay]`.
    pub delay_p: f64,
    /// Upper bound of the random extra delay.
    pub max_extra_delay: SimTime,
    /// Targeted one-shot faults (fixed capacity; `None` slots are unused).
    pub targeted: [Option<TargetedFault>; MAX_TARGETED_FAULTS],
    /// Seeded node crash, recovered at a phase boundary by the runtime.
    pub crash: Option<CrashFault>,
    /// Seeded permanent node deaths (fail-stop; fixed capacity so the
    /// config stays `Copy`, `None` slots are unused).
    pub perm_crashes: [Option<PermanentCrash>; MAX_PERM_CRASHES],
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

impl FaultConfig {
    /// The fault-free configuration.
    pub const NONE: FaultConfig = FaultConfig {
        seed: 0,
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        max_extra_delay: SimTime::from_us(50),
        targeted: [None; MAX_TARGETED_FAULTS],
        crash: None,
        perm_crashes: [None; MAX_PERM_CRASHES],
    };

    /// Random drop/duplicate/delay faults from a seed, with the given
    /// per-message probabilities.
    pub fn seeded(seed: u64, drop_p: f64, dup_p: f64, delay_p: f64) -> Self {
        for p in [drop_p, dup_p, delay_p] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {p} not in [0,1]"
            );
        }
        FaultConfig {
            seed,
            drop_p,
            dup_p,
            delay_p,
            ..FaultConfig::NONE
        }
    }

    /// Add a targeted one-shot fault. Panics if all
    /// [`MAX_TARGETED_FAULTS`] slots are taken.
    pub fn with_targeted(mut self, fault: TargetedFault) -> Self {
        let slot = self
            .targeted
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all targeted-fault slots in use");
        *slot = Some(fault);
        self
    }

    /// Add a seeded node crash at a global phase boundary.
    pub fn with_crash(mut self, node: usize, phase: u64) -> Self {
        self.crash = Some(CrashFault { node, phase });
        self
    }

    /// Add a seeded permanent (fail-stop) node death at a global phase
    /// boundary. Panics if all [`MAX_PERM_CRASHES`] slots are taken or the
    /// node already has a scheduled death (a node can only die once).
    pub fn with_permanent_crash(mut self, node: usize, phase: u64) -> Self {
        assert!(
            !self.perm_crashes.iter().flatten().any(|c| c.node == node),
            "node {node} already has a scheduled permanent crash"
        );
        let slot = self
            .perm_crashes
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all permanent-crash slots in use");
        *slot = Some(PermanentCrash { node, phase });
        self
    }

    /// Whether any permanent (fail-stop) death is scheduled.
    pub fn any_permanent_crash(&self) -> bool {
        self.perm_crashes.iter().any(Option::is_some)
    }

    /// Whether any fault can ever fire under this configuration.
    pub fn enabled(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.targeted.iter().any(Option::is_some)
            || self.crash.is_some()
            || self.any_permanent_crash()
    }
}

/// The faults injected into one message transmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultEvent {
    /// Number of lost transmission attempts before the surviving one.
    pub lost_attempts: u32,
    /// Number of extra (duplicate) copies delivered.
    pub duplicates: u32,
    /// Extra wire delay injected on the surviving copy.
    pub extra_delay: SimTime,
}

impl FaultEvent {
    /// Whether this event perturbs the message at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultEvent::default()
    }
}

/// One (link, kind) fault stream: an independent SplitMix64 plus a send
/// counter for targeted-fault matching.
#[derive(Debug)]
struct LinkStream {
    rng: SplitMix64,
    /// Messages of this stream's kind sent on this link so far.
    sent: u64,
}

/// One endpoint's instantiation of the fault schedule: call
/// [`FaultPlan::on_send`] once per outgoing message, in send order.
///
/// Each directed link gets an independent stream *per message kind*, so
/// the schedule depends only on the link's per-kind send sequence.
/// Per-kind sequences are what a transport layer can keep deterministic:
/// the order of, say, read *responses* relative to barrier messages on a
/// link may depend on when stragglers' requests happen to be serviced,
/// while the order of responses among themselves (or barriers among
/// themselves) is fixed by the program. Keying the stream on the kind
/// makes the schedule immune to that cross-kind interleaving, and
/// concurrent sends on other links cannot perturb it either.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    streams: std::collections::HashMap<(usize, usize, u64), LinkStream>,
    /// Raw per-link send counts, only used to match `KIND_ANY` targeted
    /// faults (see [`FaultPlan::on_send`] for the caveat).
    sent_any: std::collections::HashMap<(usize, usize), u64>,
}

/// Mix a (link, kind) identity into the plan seed (SplitMix64-style
/// finalizer over the packed ids, so nearby streams are unrelated).
fn link_seed(seed: u64, src: usize, dst: usize, kind: u64) -> u64 {
    let mut z = seed ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(kind.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Instantiate the schedule for one endpoint.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            streams: std::collections::HashMap::new(),
            sent_any: std::collections::HashMap::new(),
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether the given node crashes at the end of the given global phase.
    pub fn crash_at(&self, node: usize, phase: u64) -> bool {
        self.cfg.crash == Some(CrashFault { node, phase })
    }

    /// Whether the given node dies *permanently* at the end of the given
    /// global phase.
    pub fn perm_crash_at(&self, node: usize, phase: u64) -> bool {
        self.cfg
            .perm_crashes
            .iter()
            .flatten()
            .any(|c| c.node == node && c.phase == phase)
    }

    /// Whether the given node is permanently dead once the given global
    /// phase's end barrier completes (its scheduled death is at this phase
    /// or an earlier one).
    pub fn perm_dead_by(&self, node: usize, phase: u64) -> bool {
        self.cfg
            .perm_crashes
            .iter()
            .flatten()
            .any(|c| c.node == node && c.phase <= phase)
    }

    /// Nodes whose permanent death fires at the end of exactly the given
    /// global phase, in ascending node order (deterministic iteration for
    /// the failure detector).
    pub fn perm_victims_at(&self, phase: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .cfg
            .perm_crashes
            .iter()
            .flatten()
            .filter(|c| c.phase == phase)
            .map(|c| c.node)
            .collect();
        v.sort_unstable();
        v
    }

    /// Sample the faults for the next message of `kind` sent from `src` to
    /// `dst`. Must be called exactly once per message, in per-kind send
    /// order on each link.
    ///
    /// Note on `KIND_ANY` targeted faults: their `nth` counts raw sends of
    /// every kind on the link, so on links whose cross-kind send order
    /// depends on servicing interleaving they may hit a different message
    /// from run to run (the random schedule and per-kind targeting never
    /// do). Prefer a concrete kind when exact reproducibility matters.
    pub fn on_send(&mut self, src: usize, dst: usize, kind: u64) -> FaultEvent {
        let cfg = self.cfg;
        let link = self
            .streams
            .entry((src, dst, kind))
            .or_insert_with(|| LinkStream {
                rng: SplitMix64::new(link_seed(cfg.seed, src, dst, kind)),
                sent: 0,
            });
        let mut ev = FaultEvent::default();

        // Random faults, sampled in a fixed order. Draw-count per message
        // is variable, but the stream is consumed strictly per (link,
        // kind) in send order, so the schedule stays deterministic.
        if cfg.drop_p > 0.0 {
            while ev.lost_attempts < MAX_LOST_ATTEMPTS && link.rng.next_f64() < cfg.drop_p {
                ev.lost_attempts += 1;
            }
        }
        if cfg.dup_p > 0.0 && link.rng.next_f64() < cfg.dup_p {
            ev.duplicates += 1;
        }
        if cfg.delay_p > 0.0 && link.rng.next_f64() < cfg.delay_p {
            let frac = link.rng.next_f64();
            let ps = 1 + (frac * cfg.max_extra_delay.as_ps().saturating_sub(1) as f64) as u64;
            ev.extra_delay += SimTime::from_ps(ps);
        }

        // Targeted one-shot faults, applied on top.
        link.sent += 1;
        let n_kind = link.sent;
        let any = self.sent_any.entry((src, dst)).or_insert(0);
        *any += 1;
        let n_any = *any;
        for t in self.cfg.targeted.iter().flatten() {
            if t.src != src || t.dst != dst {
                continue;
            }
            let matched = if t.kind == KIND_ANY {
                t.nth == n_any
            } else {
                t.kind == kind && t.nth == n_kind
            };
            if matched {
                match t.action {
                    FaultAction::Drop => ev.lost_attempts += 1,
                    FaultAction::Duplicate => ev.duplicates += 1,
                    FaultAction::Delay(d) => ev.extra_delay += d,
                }
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soak(plan: &mut FaultPlan, src: usize, dst: usize, n: usize) -> Vec<FaultEvent> {
        (0..n).map(|_| plan.on_send(src, dst, 3)).collect()
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(9).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn no_faults_by_default() {
        let cfg = FaultConfig::NONE;
        assert!(!cfg.enabled());
        let mut plan = FaultPlan::new(cfg);
        for ev in soak(&mut plan, 0, 1, 100) {
            assert!(ev.is_clean());
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::seeded(42, 0.3, 0.2, 0.2);
        assert!(cfg.enabled());
        let a = soak(&mut FaultPlan::new(cfg), 1, 0, 500);
        let b = soak(&mut FaultPlan::new(cfg), 1, 0, 500);
        assert_eq!(a, b);
        assert!(a.iter().any(|e| e.lost_attempts > 0), "drops sampled");
        assert!(a.iter().any(|e| e.duplicates > 0), "dups sampled");
        assert!(
            a.iter().any(|e| e.extra_delay > SimTime::ZERO),
            "delays sampled"
        );
    }

    #[test]
    fn links_are_independent_streams() {
        let cfg = FaultConfig::seeded(42, 0.3, 0.0, 0.0);
        // Interleaving sends on another link must not change link (1,0).
        let mut plain = FaultPlan::new(cfg);
        let alone = soak(&mut plain, 1, 0, 100);
        let mut mixed = FaultPlan::new(cfg);
        let mut interleaved = Vec::new();
        for _ in 0..100 {
            mixed.on_send(2, 0, 3);
            interleaved.push(mixed.on_send(1, 0, 3));
        }
        assert_eq!(alone, interleaved);
        // Other *kinds* on the same link must not perturb it either: the
        // cross-kind send order can depend on servicing interleaving, so
        // each (link, kind) gets its own stream.
        let mut kinds = FaultPlan::new(cfg);
        let mut with_other_kinds = Vec::new();
        for _ in 0..100 {
            kinds.on_send(1, 0, 2);
            with_other_kinds.push(kinds.on_send(1, 0, 3));
            kinds.on_send(1, 0, 4);
        }
        assert_eq!(alone, with_other_kinds);
        // And the two directions of a link differ.
        let fwd = soak(&mut FaultPlan::new(cfg), 0, 1, 100);
        let rev = soak(&mut FaultPlan::new(cfg), 1, 0, 100);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn drop_attempts_are_capped() {
        let cfg = FaultConfig::seeded(1, 1.0, 0.0, 0.0);
        let mut plan = FaultPlan::new(cfg);
        let ev = plan.on_send(0, 1, 3);
        assert_eq!(ev.lost_attempts, MAX_LOST_ATTEMPTS);
    }

    #[test]
    fn targeted_fault_hits_nth_of_kind() {
        let cfg = FaultConfig::NONE.with_targeted(TargetedFault {
            src: 2,
            dst: 0,
            kind: 3,
            nth: 3,
            action: FaultAction::Drop,
        });
        let mut plan = FaultPlan::new(cfg);
        // Other kinds on the link do not advance the match counter.
        assert!(plan.on_send(2, 0, 1).is_clean());
        assert!(plan.on_send(2, 0, 3).is_clean());
        assert!(plan.on_send(2, 0, 3).is_clean());
        let hit = plan.on_send(2, 0, 3);
        assert_eq!(hit.lost_attempts, 1);
        assert!(plan.on_send(2, 0, 3).is_clean(), "one-shot");
        // Wrong link never matches.
        let mut other = FaultPlan::new(cfg);
        for _ in 0..10 {
            assert!(other.on_send(0, 2, 3).is_clean());
        }
    }

    #[test]
    fn targeted_wildcard_counts_all_kinds() {
        let cfg = FaultConfig::NONE.with_targeted(TargetedFault {
            src: 0,
            dst: 1,
            kind: KIND_ANY,
            nth: 2,
            action: FaultAction::Delay(SimTime::from_us(5)),
        });
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.on_send(0, 1, 7).is_clean());
        assert_eq!(plan.on_send(0, 1, 9).extra_delay, SimTime::from_us(5));
    }

    #[test]
    fn crash_matching() {
        let cfg = FaultConfig::NONE.with_crash(2, 5);
        let plan = FaultPlan::new(cfg);
        assert!(plan.crash_at(2, 5));
        assert!(!plan.crash_at(2, 4));
        assert!(!plan.crash_at(1, 5));
        assert!(cfg.enabled());
    }

    #[test]
    fn permanent_crash_matching() {
        let cfg = FaultConfig::NONE
            .with_permanent_crash(2, 5)
            .with_permanent_crash(3, 5);
        assert!(cfg.enabled());
        assert!(cfg.any_permanent_crash());
        let plan = FaultPlan::new(cfg);
        assert!(plan.perm_crash_at(2, 5));
        assert!(plan.perm_crash_at(3, 5));
        assert!(!plan.perm_crash_at(2, 4));
        assert!(!plan.perm_crash_at(1, 5));
        // Dead-by is cumulative: once dead, always dead.
        assert!(!plan.perm_dead_by(2, 4));
        assert!(plan.perm_dead_by(2, 5));
        assert!(plan.perm_dead_by(2, 900));
        assert!(!plan.perm_dead_by(0, 900));
        // Victims of a phase come out sorted, and only for that phase.
        assert_eq!(plan.perm_victims_at(5), vec![2, 3]);
        assert!(plan.perm_victims_at(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "already has a scheduled permanent crash")]
    fn a_node_dies_only_once() {
        let _ = FaultConfig::NONE
            .with_permanent_crash(1, 2)
            .with_permanent_crash(1, 7);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_probability_rejected() {
        FaultConfig::seeded(0, 1.5, 0.0, 0.0);
    }
}
