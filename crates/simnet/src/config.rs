//! Machine description and communication/computation cost model.
//!
//! The model is LogGP-flavoured: a point-to-point message of `b` bytes costs
//! the sender `o` CPU time, travels for `L + G·b` wire time, and costs the
//! receiver `o` CPU time. Messages between endpoints on the *same* node skip
//! the network and instead pay a cheaper shared-memory copy path
//! (`o_intra + G_intra·b`), mirroring the paper's observation (§4.5) that
//! intra-node MPI traffic still goes through the message-passing stack.
//!
//! NIC contention (paper §3.3): all cores of a node share one network
//! interface. Uncoordinated per-core senders (MPI ranks) see the per-byte gap
//! inflated by the NIC sharing factor passed to [`NetParams::wire_time`]; a
//! node-level sender that
//! owns the NIC (the PPM runtime) sees the raw gap.

use crate::fault::FaultConfig;
use crate::time::SimTime;

/// Network cost parameters. Defaults are calibrated to a 2009 Cray XT4
/// (SeaStar2) as used by the paper's "Franklin" platform; see DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    /// One-way wire latency for an off-node message.
    pub latency: SimTime,
    /// Per-byte gap (inverse injection bandwidth) for off-node traffic.
    pub gap_per_byte: SimTime,
    /// CPU overhead charged to each side of an off-node message.
    pub overhead: SimTime,
    /// CPU overhead charged to each side of an intra-node message.
    pub intra_overhead: SimTime,
    /// Per-byte copy cost for intra-node messages.
    pub intra_gap_per_byte: SimTime,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency: SimTime::from_us(6),
            gap_per_byte: SimTime::from_ps(550),
            overhead: SimTime::from_ns(1_500),
            intra_overhead: SimTime::from_ns(900),
            intra_gap_per_byte: SimTime::from_ps(350),
        }
    }
}

impl NetParams {
    /// CPU time the sender spends injecting a message (per-message stack
    /// overhead; the per-byte cost is wire-side, see [`Self::wire_time`]).
    #[inline]
    pub fn send_cpu(&self, _bytes: usize, intra: bool) -> SimTime {
        if intra {
            self.intra_overhead
        } else {
            self.overhead
        }
    }

    /// Wire (or memory-copy) transfer time for a message of `bytes` bytes.
    #[inline]
    pub fn wire_time(&self, bytes: usize, intra: bool, nic_share: u32) -> SimTime {
        if intra {
            self.intra_gap_per_byte.scale(bytes as u64)
        } else {
            self.latency
                + self
                    .gap_per_byte
                    .scale(bytes as u64)
                    .scale(nic_share as u64)
        }
    }

    /// CPU time the receiver spends draining a message of `bytes` bytes.
    #[inline]
    pub fn recv_cpu(&self, _bytes: usize, intra: bool) -> SimTime {
        if intra {
            self.intra_overhead
        } else {
            self.overhead
        }
    }

    /// Pure per-byte cost (used by bulk-exchange accounting).
    #[inline]
    pub fn copy_cost(&self, bytes: usize, intra: bool, nic_share: u32) -> SimTime {
        if intra {
            self.intra_gap_per_byte.scale(bytes as u64)
        } else {
            self.gap_per_byte
                .scale(bytes as u64)
                .scale(nic_share as u64)
        }
    }
}

/// Per-core computation cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreParams {
    /// Time per floating-point operation in a sparse/irregular kernel.
    pub flop: SimTime,
    /// Time per charged memory operation (used where kernels are
    /// memory-bound and the app charges loads/stores explicitly).
    pub mem_op: SimTime,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            flop: SimTime::from_ps(800),
            mem_op: SimTime::from_ps(1_200),
        }
    }
}

impl CoreParams {
    /// Cost of `n` floating-point operations.
    #[inline]
    pub fn flops(&self, n: u64) -> SimTime {
        self.flop.scale(n)
    }

    /// Cost of `n` charged memory operations.
    #[inline]
    pub fn mem_ops(&self, n: u64) -> SimTime {
        self.mem_op.scale(n)
    }
}

/// Shape and cost model of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cluster nodes.
    pub nodes: u32,
    /// Cores per node (the paper's Franklin has 4).
    pub cores_per_node: u32,
    /// Network cost parameters.
    pub net: NetParams,
    /// Core cost parameters.
    pub core: CoreParams,
    /// Fault-injection model (defaults to no faults; see
    /// [`crate::fault`]).
    pub faults: FaultConfig,
    /// Wall-clock watchdog for blocking receives: how long an endpoint may
    /// sit in `recv` with nothing arriving before the simulation is
    /// declared wedged. This is *host* time, not simulated time — it only
    /// bounds hangs, it never shows up in results.
    pub recv_stall: std::time::Duration,
}

impl MachineConfig {
    /// A machine of `nodes` nodes with `cores_per_node` cores each and
    /// Franklin-calibrated cost constants.
    pub fn new(nodes: u32, cores_per_node: u32) -> Self {
        assert!(nodes >= 1, "machine needs at least one node");
        assert!(cores_per_node >= 1, "nodes need at least one core");
        MachineConfig {
            nodes,
            cores_per_node,
            net: NetParams::default(),
            core: CoreParams::default(),
            faults: FaultConfig::NONE,
            recv_stall: DEFAULT_RECV_STALL,
        }
    }

    /// Enable fault injection (see [`crate::fault::FaultConfig`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Override the blocking-receive stall watchdog.
    pub fn with_recv_stall(mut self, stall: std::time::Duration) -> Self {
        self.recv_stall = stall;
        self
    }

    /// The paper's platform shape: quad-core nodes (§4.1).
    pub fn franklin(nodes: u32) -> Self {
        MachineConfig::new(nodes, 4)
    }

    /// Total cores in the machine.
    #[inline]
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Node that hosts a given core-indexed rank (rank layout is
    /// node-major: ranks `[n·C, (n+1)·C)` live on node `n`).
    #[inline]
    pub fn node_of_rank(&self, rank: u32) -> u32 {
        rank / self.cores_per_node
    }

    /// Whether two core-indexed ranks share a node.
    #[inline]
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of_rank(a) == self.node_of_rank(b)
    }
}

/// Default blocking-receive watchdog (see [`MachineConfig::recv_stall`]).
/// Applications in this workspace are deterministic and deadlock-free by
/// construction, so hitting this is always a protocol bug; failing loudly
/// beats hanging the test suite.
pub const DEFAULT_RECV_STALL: std::time::Duration = std::time::Duration::from_secs(60);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn franklin_shape() {
        let m = MachineConfig::franklin(8);
        assert_eq!(m.nodes, 8);
        assert_eq!(m.cores_per_node, 4);
        assert_eq!(m.total_cores(), 32);
    }

    #[test]
    fn rank_to_node_mapping() {
        let m = MachineConfig::franklin(4);
        assert_eq!(m.node_of_rank(0), 0);
        assert_eq!(m.node_of_rank(3), 0);
        assert_eq!(m.node_of_rank(4), 1);
        assert_eq!(m.node_of_rank(15), 3);
        assert!(m.same_node(0, 3));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        MachineConfig::new(0, 4);
    }

    #[test]
    fn intra_node_cheaper_than_network() {
        let net = NetParams::default();
        let b = 4096;
        let off = net.wire_time(b, false, 1) + net.recv_cpu(b, false);
        let on = net.wire_time(b, true, 1) + net.recv_cpu(b, true);
        assert!(on < off, "intra-node path must be cheaper: {on} vs {off}");
    }

    #[test]
    fn nic_sharing_inflates_gap() {
        let net = NetParams::default();
        let shared = net.wire_time(1000, false, 4);
        let exclusive = net.wire_time(1000, false, 1);
        assert!(shared > exclusive);
        // latency itself is not scaled, only the per-byte term
        let diff = shared - exclusive;
        assert_eq!(diff, net.gap_per_byte.scale(1000).scale(3));
    }

    #[test]
    fn zero_byte_message_costs_latency_and_overhead_only() {
        let net = NetParams::default();
        assert_eq!(net.wire_time(0, false, 1), net.latency);
        assert_eq!(net.copy_cost(0, false, 1), SimTime::ZERO);
    }

    #[test]
    fn faults_default_off_and_builders_set_them() {
        let m = MachineConfig::new(2, 2);
        assert!(!m.faults.enabled());
        assert_eq!(m.recv_stall, DEFAULT_RECV_STALL);
        let m = m
            .with_faults(FaultConfig::seeded(1, 0.1, 0.0, 0.0))
            .with_recv_stall(std::time::Duration::from_millis(200));
        assert!(m.faults.enabled());
        assert_eq!(m.faults.seed, 1);
        assert_eq!(m.recv_stall, std::time::Duration::from_millis(200));
    }

    #[test]
    fn core_costs_scale_linearly() {
        let c = CoreParams::default();
        assert_eq!(c.flops(10), c.flop.scale(10));
        assert_eq!(c.mem_ops(3), c.mem_op.scale(3));
        assert_eq!(c.flops(0), SimTime::ZERO);
    }
}
