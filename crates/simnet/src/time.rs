//! Simulated time.
//!
//! All clocks in the simulator are [`SimTime`] instants measured in integer
//! picoseconds since job start. Integer time keeps every run bit-for-bit
//! deterministic (no floating-point accumulation order issues) while still
//! resolving sub-nanosecond per-byte costs. A `u64` of picoseconds covers
//! about 213 days of simulated time, far beyond any job we model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant (or duration — the simulator uses one type for both) of
/// simulated time, in picoseconds.
///
/// `SimTime` is totally ordered. Additive operators saturate at
/// [`SimTime::MAX`]: modeled costs are sums of products of user-supplied
/// sizes, so a pathological input clamps to "forever" instead of wrapping
/// into a small (and plausible-looking) makespan. Subtraction still
/// debug-asserts on underflow — a negative duration is a logic bug, not an
/// extreme input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (job start) / zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant (≈ 213 simulated days). Additive
    /// arithmetic clamps here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Construct from a (non-negative, finite) number of nanoseconds given as
    /// `f64`, rounding to the nearest picosecond. Used for cost-model
    /// constants expressed fractionally (e.g. 0.55 ns/byte).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns}");
        SimTime((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in milliseconds (lossy).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration scaled by an integer count (e.g. per-byte gap × bytes).
    #[inline]
    pub fn scale(self, count: u64) -> SimTime {
        SimTime(self.0.saturating_mul(count))
    }

    /// Sum that clamps at the representable maximum instead of overflowing.
    /// Used where a modeled duration can grow without bound (e.g. doubling
    /// retransmission backoff) and the cap is applied separately.
    #[inline]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
    }

    #[test]
    fn fractional_ns_rounds_to_ps() {
        assert_eq!(SimTime::from_ns_f64(0.55), SimTime::from_ps(550));
        assert_eq!(SimTime::from_ns_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(13));
        assert_eq!(a - b, SimTime::from_ns(7));
        assert_eq!(a.max(b), a);
        assert_eq!(b.scale(4), SimTime::from_ns(12));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(13));
    }

    /// Regression: `+`/`+=`/`scale` near the top of the range must clamp
    /// at `SimTime::MAX`, not wrap (release) or abort (debug).
    #[test]
    fn additive_arithmetic_saturates() {
        let almost = SimTime(u64::MAX - 10);
        assert_eq!(almost + SimTime::from_ns(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::MAX, SimTime::MAX);
        let mut t = almost;
        t += SimTime::from_ps(100);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::from_ns(2).scale(u64::MAX), SimTime::MAX);
        // Ordinary magnitudes are unaffected.
        assert_eq!(
            SimTime::from_ns(1) + SimTime::from_ns(2),
            SimTime::from_ns(3)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(500)), "500.000ns");
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_ms(3_000)), "3.000s");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_us(1234);
        assert!((t.as_us_f64() - 1234.0).abs() < 1e-9);
        assert!((t.as_ms_f64() - 1.234).abs() < 1e-12);
    }
}
