//! Per-endpoint simulated clocks with a time breakdown.

use crate::time::SimTime;

/// A simulated clock, tracking where the time went.
///
/// `now` is the endpoint's current instant. The breakdown buckets
/// (`compute`, `comm`, `wait`) always sum to `now`, which tests assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
    compute: SimTime,
    comm: SimTime,
    wait: SimTime,
}

impl Clock {
    /// A clock at instant zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Time spent computing.
    #[inline]
    pub fn compute(&self) -> SimTime {
        self.compute
    }

    /// Time spent in communication (send/recv CPU, wire time on the
    /// critical path).
    #[inline]
    pub fn comm(&self) -> SimTime {
        self.comm
    }

    /// Time spent idle, waiting for peers (barrier skew, blocked receives).
    #[inline]
    pub fn wait(&self) -> SimTime {
        self.wait
    }

    /// Advance by computation time.
    #[inline]
    pub fn advance_compute(&mut self, d: SimTime) {
        self.now += d;
        self.compute += d;
    }

    /// Advance by communication time.
    #[inline]
    pub fn advance_comm(&mut self, d: SimTime) {
        self.now += d;
        self.comm += d;
    }

    /// Jump forward to `t` if it is in the future, accounting the idle gap
    /// as wait time. Used when receiving a message whose arrival instant is
    /// later than the local clock, and at barriers.
    #[inline]
    pub fn wait_until(&mut self, t: SimTime) {
        if t > self.now {
            self.wait += t - self.now;
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.compute(), SimTime::ZERO);
    }

    #[test]
    fn breakdown_sums_to_now() {
        let mut c = Clock::new();
        c.advance_compute(SimTime::from_ns(100));
        c.advance_comm(SimTime::from_ns(30));
        c.wait_until(SimTime::from_ns(500));
        assert_eq!(c.now(), SimTime::from_ns(500));
        assert_eq!(c.compute() + c.comm() + c.wait(), c.now());
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut c = Clock::new();
        c.advance_compute(SimTime::from_ns(100));
        c.wait_until(SimTime::from_ns(50));
        assert_eq!(c.now(), SimTime::from_ns(100));
        assert_eq!(c.wait(), SimTime::ZERO);
    }
}
