//! # ppm-simnet — a deterministic simulated cluster
//!
//! This crate is the machine substrate for the Parallel Phase Model (PPM)
//! reproduction. The paper evaluated PPM on "Franklin", a Cray XT4 with
//! quad-core nodes; we do not have that machine, so every experiment runs on
//! a *simulated* distributed-memory cluster instead:
//!
//! * **Real execution, modeled time.** Endpoints (nodes or ranks) are OS
//!   threads running real Rust code and exchanging real data through the
//!   [`router`]. Time, however, is simulated: computation is charged
//!   explicitly by the kernels and communication is charged from a
//!   LogGP-style cost model ([`config::NetParams`]). Reported runtimes are
//!   simulated makespans, so results are deterministic and independent of
//!   host load or host core count.
//! * **Cost model.** An off-node message of `b` bytes costs the sender `o`
//!   CPU, travels `L + G·b`, and costs the receiver `o` CPU. Intra-node
//!   messages take a cheaper shared-memory path. Cores of a node share one
//!   NIC: uncoordinated per-core senders see the per-byte gap multiplied by
//!   the sharing factor, which is how the paper's NIC-contention argument
//!   (§3.3) enters the model.
//!
//! Layers above: [`ppm-mps`](../ppm_mps/index.html) builds an MPI-like
//! interface on these endpoints; [`ppm-core`](../ppm_core/index.html) builds
//! the PPM runtime.

pub mod clock;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod message;
pub mod router;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wire;

pub use clock::Clock;
pub use cluster::{run, run_traced, EndpointCtx, JobReport};
pub use config::{CoreParams, MachineConfig, NetParams};
pub use fault::{
    CrashFault, FaultAction, FaultConfig, FaultEvent, FaultPlan, PermanentCrash, TargetedFault,
    KIND_ANY,
};
pub use message::{Message, RelMeta};
pub use router::{make_router, Endpoint};
pub use stats::{Counters, ReliabilitySummary};
pub use time::SimTime;
pub use trace::{validate_json, ArgValue, EventKind, TraceEvent, TraceSink, Tracer};
pub use wire::WireSize;
