//! Typed messages moved between simulated endpoints.

use std::any::Any;

use crate::time::SimTime;

/// Reliability-envelope metadata riding on a [`Message`].
///
/// Attached by a reliable transport layer (the PPM runtime's); `None` for
/// raw sends. `seq` numbers the link's envelopes for cumulative acks and
/// duplicate suppression; `lost_attempts`/`duplicates` record the faults
/// the fault plan injected into this transmission, so the receiver can
/// account for them deterministically (see [`crate::fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelMeta {
    /// Per-link envelope sequence number (starts at 0).
    pub seq: u64,
    /// Virtual transmission attempts lost before this copy got through.
    pub lost_attempts: u32,
    /// Extra copies the wire delivered (to be suppressed by the receiver).
    pub duplicates: u32,
}

/// A message in flight between two endpoints.
///
/// The payload is an arbitrary `Send` value — the simulator does not
/// serialize; communication *cost* is charged from the modeled [`bytes`]
/// size. [`ts`] is the earliest simulated arrival instant at the receiver
/// (sender clock after send overhead, plus wire time), assigned by the layer
/// that charges costs (e.g. `ppm-mps`).
///
/// [`bytes`]: Message::bytes
/// [`ts`]: Message::ts
pub struct Message {
    /// Sending endpoint id.
    pub src: usize,
    /// Destination endpoint id.
    pub dst: usize,
    /// Application-level tag used for matching/demultiplexing.
    pub tag: u64,
    /// Earliest simulated arrival instant at the receiver.
    pub ts: SimTime,
    /// Modeled wire size in bytes.
    pub bytes: usize,
    /// Reliability-envelope metadata (`None` for raw transports).
    pub rel: Option<RelMeta>,
    payload: Box<dyn Any + Send>,
}

impl Message {
    /// Wrap a payload value into a message.
    pub fn new<T: Any + Send>(
        src: usize,
        dst: usize,
        tag: u64,
        ts: SimTime,
        bytes: usize,
        payload: T,
    ) -> Self {
        Message {
            src,
            dst,
            tag,
            ts,
            bytes,
            rel: None,
            payload: Box::new(payload),
        }
    }

    /// Attach reliability-envelope metadata.
    pub fn with_rel(mut self, rel: RelMeta) -> Self {
        self.rel = Some(rel);
        self
    }

    /// Recover the payload. Panics with a diagnostic if the stored type does
    /// not match — a type mismatch is always a protocol bug, never data.
    pub fn take<T: Any>(self) -> T {
        match self.payload.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "message payload type mismatch (src={} dst={} tag={}): expected {}",
                self.src,
                self.dst,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Borrow the payload if it has the expected type.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Message")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("tag", &self.tag)
            .field("ts", &self.ts)
            .field("bytes", &self.bytes)
            .field("rel", &self.rel)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_payload() {
        let m = Message::new(0, 1, 7, SimTime::from_ns(5), 24, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 7);
        assert_eq!(m.peek::<Vec<f64>>().unwrap().len(), 3);
        assert!(m.peek::<Vec<u32>>().is_none());
        let v: Vec<f64> = m.take();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rel_meta_defaults_off_and_attaches() {
        let m = Message::new(0, 1, 7, SimTime::ZERO, 8, 1u64);
        assert!(m.rel.is_none());
        let meta = RelMeta {
            seq: 3,
            lost_attempts: 2,
            duplicates: 1,
        };
        let m = m.with_rel(meta);
        assert_eq!(m.rel, Some(meta));
        assert_eq!(m.take::<u64>(), 1);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn wrong_type_panics() {
        let m = Message::new(0, 1, 0, SimTime::ZERO, 8, 42u64);
        let _: f64 = m.take();
    }
}
