//! Message transport between simulated endpoints.
//!
//! The router gives every endpoint an unbounded inbox. Delivery preserves
//! per-sender FIFO order (messages from A to B arrive in the order A sent
//! them), which the PPM phase protocol relies on: a node's read requests
//! always precede its end-of-phase write bundle on the same channel.

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::message::Message;

/// How long a blocking receive waits before declaring the simulation wedged.
/// Applications in this workspace are deterministic and deadlock-free by
/// construction, so hitting this is always a protocol bug; failing loudly
/// beats hanging the test suite.
const RECV_STALL: std::time::Duration = std::time::Duration::from_secs(60);

/// Per-endpoint transport handle.
pub struct Endpoint {
    id: usize,
    inbox: Receiver<Message>,
    outboxes: Vec<Sender<Message>>,
}

impl Endpoint {
    /// This endpoint's id.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints in the job.
    #[inline]
    pub fn len(&self) -> usize {
        self.outboxes.len()
    }

    /// Always false — a router has at least one endpoint.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Deliver a message to its destination's inbox.
    pub fn send(&self, msg: Message) {
        debug_assert_eq!(msg.src, self.id, "message src must be the sender");
        let dst = msg.dst;
        self.outboxes[dst]
            .send(msg)
            .unwrap_or_else(|_| panic!("endpoint {dst} hung up (panicked?)"));
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Message {
        match self.inbox.recv_timeout(RECV_STALL) {
            Ok(m) => m,
            Err(e) => panic!("endpoint {} stalled waiting for a message: {e}", self.id),
        }
    }

    /// Take a message if one is already queued.
    pub fn try_recv(&self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }
}

/// Create the transport for `n` endpoints.
pub fn make_router(n: usize) -> Vec<Endpoint> {
    assert!(n >= 1, "router needs at least one endpoint");
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| channel()).unzip();
    receivers
        .into_iter()
        .enumerate()
        .map(|(id, inbox)| Endpoint {
            id,
            inbox,
            outboxes: senders.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn msg(src: usize, dst: usize, tag: u64, v: u64) -> Message {
        Message::new(src, dst, tag, SimTime::ZERO, 8, v)
    }

    #[test]
    fn self_send_and_recv() {
        let eps = make_router(1);
        eps[0].send(msg(0, 0, 1, 42));
        let m = eps[0].recv();
        assert_eq!(m.take::<u64>(), 42);
    }

    #[test]
    fn per_sender_fifo_order() {
        let eps = make_router(2);
        for i in 0..100u64 {
            eps[0].send(msg(0, 1, 0, i));
        }
        for i in 0..100u64 {
            assert_eq!(eps[1].recv().take::<u64>(), i);
        }
    }

    #[test]
    fn try_recv_empty_and_nonempty() {
        let eps = make_router(2);
        assert!(eps[1].try_recv().is_none());
        eps[0].send(msg(0, 1, 9, 7));
        let m = eps[1].try_recv().expect("queued message");
        assert_eq!(m.tag, 9);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = make_router(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let m = e1.recv();
            assert_eq!(m.src, 0);
            e1.send(msg(1, 0, 0, m.take::<u64>() + 1));
        });
        e0.send(msg(0, 1, 0, 10));
        assert_eq!(e0.recv().take::<u64>(), 11);
        t.join().unwrap();
    }

    #[test]
    fn endpoint_metadata() {
        let eps = make_router(3);
        assert_eq!(eps[2].id(), 2);
        assert_eq!(eps[0].len(), 3);
        assert!(!eps[0].is_empty());
    }
}
