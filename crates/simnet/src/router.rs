//! Message transport between simulated endpoints.
//!
//! The router gives every endpoint an unbounded inbox. Delivery preserves
//! per-sender FIFO order (messages from A to B arrive in the order A sent
//! them), which the PPM phase protocol relies on: a node's read requests
//! always precede its end-of-phase write bundle on the same channel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::config::DEFAULT_RECV_STALL;
use crate::message::Message;

/// Per-endpoint transport handle.
pub struct Endpoint {
    id: usize,
    inbox: Receiver<Message>,
    outboxes: Vec<Sender<Message>>,
    /// Fail-stop markers shared by every endpoint of the router: once an
    /// endpoint is marked dead, traffic addressed to it is black-holed
    /// (silently swallowed) instead of enqueued or reported as a hung-up
    /// peer. See [`Endpoint::mark_dead`].
    dead: Arc<Vec<AtomicBool>>,
    /// Wall-clock watchdog for blocking receives (see
    /// [`crate::config::MachineConfig::recv_stall`]).
    stall: Duration,
}

impl Endpoint {
    /// This endpoint's id.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints in the job.
    #[inline]
    pub fn len(&self) -> usize {
        self.outboxes.len()
    }

    /// Whether the job has zero endpoints. [`make_router`] guarantees at
    /// least one, so this is `false` for any endpoint it built — but it is
    /// computed honestly from the peer table, not hard-coded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.outboxes.is_empty()
    }

    /// Deliver a message to its destination's inbox. Panics with the
    /// in-flight message's coordinates if the destination hung up
    /// (use [`Self::try_send`] to attach richer protocol context).
    pub fn send(&self, msg: Message) {
        if let Err(msg) = self.try_send(msg) {
            panic!(
                "endpoint {} hung up (panicked?); in-flight message: \
                 src={} dst={} tag={:#018x} bytes={}",
                msg.dst, msg.src, msg.dst, msg.tag, msg.bytes
            );
        }
    }

    /// Deliver a message, returning it if the destination hung up so the
    /// caller can report what was in flight in its own vocabulary.
    /// Messages to an endpoint marked dead ([`Self::mark_dead`]) are
    /// black-holed: the send reports success and the message evaporates,
    /// the way a wire to lost hardware would.
    pub fn try_send(&self, msg: Message) -> Result<(), Message> {
        debug_assert_eq!(msg.src, self.id, "message src must be the sender");
        if self.dead[msg.dst].load(Ordering::Acquire) {
            return Ok(());
        }
        self.outboxes[msg.dst].send(msg).map_err(|e| e.0)
    }

    /// Declare this endpoint permanently dead (fail-stop): all future
    /// traffic addressed to it is black-holed rather than delivered, and
    /// senders never observe it as a hung-up peer even after its thread
    /// exits. Irreversible.
    pub fn mark_dead(&self) {
        self.dead[self.id].store(true, Ordering::Release);
    }

    /// Whether a peer endpoint has been marked permanently dead.
    pub fn peer_is_dead(&self, peer: usize) -> bool {
        self.dead[peer].load(Ordering::Acquire)
    }

    /// Block until a message arrives. Panics (with no extra diagnostics)
    /// if nothing arrives within the stall watchdog.
    pub fn recv(&self) -> Message {
        self.recv_with_diag(String::new)
    }

    /// Block until a message arrives. If the stall watchdog fires, `diag`
    /// is invoked to render the caller's protocol state (outstanding acks,
    /// phase sequence, pending barriers, …) into the panic message, so a
    /// wedged run fails with a usable dump instead of a bare timeout.
    pub fn recv_with_diag(&self, diag: impl FnOnce() -> String) -> Message {
        match self.inbox.recv_timeout(self.stall) {
            Ok(m) => m,
            Err(e) => {
                let dump = diag();
                let sep = if dump.is_empty() { "" } else { "\n" };
                panic!(
                    "endpoint {} stalled for {:?} waiting for a message: {e}{sep}{dump}",
                    self.id, self.stall
                )
            }
        }
    }

    /// Take a message if one is already queued.
    pub fn try_recv(&self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }
}

/// Create the transport for `n` endpoints with the default stall watchdog.
pub fn make_router(n: usize) -> Vec<Endpoint> {
    make_router_with_stall(n, DEFAULT_RECV_STALL)
}

/// Create the transport for `n` endpoints with an explicit stall watchdog
/// (wired from [`crate::config::MachineConfig::recv_stall`] by
/// [`crate::cluster::run`]).
pub fn make_router_with_stall(n: usize, stall: Duration) -> Vec<Endpoint> {
    assert!(n >= 1, "router needs at least one endpoint");
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| channel()).unzip();
    let dead: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    receivers
        .into_iter()
        .enumerate()
        .map(|(id, inbox)| Endpoint {
            id,
            inbox,
            outboxes: senders.clone(),
            dead: Arc::clone(&dead),
            stall,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn msg(src: usize, dst: usize, tag: u64, v: u64) -> Message {
        Message::new(src, dst, tag, SimTime::ZERO, 8, v)
    }

    #[test]
    fn self_send_and_recv() {
        let eps = make_router(1);
        eps[0].send(msg(0, 0, 1, 42));
        let m = eps[0].recv();
        assert_eq!(m.take::<u64>(), 42);
    }

    #[test]
    fn per_sender_fifo_order() {
        let eps = make_router(2);
        for i in 0..100u64 {
            eps[0].send(msg(0, 1, 0, i));
        }
        for i in 0..100u64 {
            assert_eq!(eps[1].recv().take::<u64>(), i);
        }
    }

    #[test]
    fn try_recv_empty_and_nonempty() {
        let eps = make_router(2);
        assert!(eps[1].try_recv().is_none());
        eps[0].send(msg(0, 1, 9, 7));
        let m = eps[1].try_recv().expect("queued message");
        assert_eq!(m.tag, 9);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = make_router(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let m = e1.recv();
            assert_eq!(m.src, 0);
            e1.send(msg(1, 0, 0, m.take::<u64>() + 1));
        });
        e0.send(msg(0, 1, 0, 10));
        assert_eq!(e0.recv().take::<u64>(), 11);
        t.join().unwrap();
    }

    #[test]
    fn endpoint_metadata() {
        let eps = make_router(3);
        assert_eq!(eps[2].id(), 2);
        assert_eq!(eps[0].len(), 3);
        assert!(!eps[0].is_empty());
    }

    #[test]
    fn try_send_reports_hung_up_peer() {
        let mut eps = make_router_with_stall(2, Duration::from_millis(50));
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e1); // peer "panicked"
        let m = e0.try_send(msg(0, 1, 42, 7)).expect_err("peer is gone");
        assert_eq!((m.src, m.dst, m.tag), (0, 1, 42));
    }

    #[test]
    #[should_panic(expected = "in-flight message: src=0 dst=1 tag=0x000000000000002a")]
    fn send_panic_names_the_message() {
        let mut eps = make_router(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e1);
        e0.send(msg(0, 1, 42, 7));
    }

    #[test]
    fn dead_endpoint_black_holes_traffic() {
        let mut eps = make_router_with_stall(2, Duration::from_millis(50));
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        assert!(!e0.peer_is_dead(1));
        e1.mark_dead();
        assert!(e0.peer_is_dead(1));
        // Sends to the dead endpoint succeed and evaporate.
        e0.try_send(msg(0, 1, 7, 1))
            .expect("black-holed, not an error");
        assert!(e1.try_recv().is_none(), "message must be swallowed");
        // Even after its thread exits (receiver dropped), senders never
        // observe the dead peer as hung up.
        drop(e1);
        e0.try_send(msg(0, 1, 7, 2)).expect("still black-holed");
        e0.send(msg(0, 1, 7, 3)); // must not panic either
    }

    #[test]
    #[should_panic(expected = "protocol dump here")]
    fn stall_watchdog_fires_with_diagnostics() {
        let eps = make_router_with_stall(1, Duration::from_millis(20));
        eps[0].recv_with_diag(|| "protocol dump here".to_string());
    }
}
