//! Per-phase tracing: timestamped spans and instant events in simulated
//! time.
//!
//! The runtime services behind the paper's performance claims — bundling of
//! fine-grained accesses into one message per destination per wave, overlap
//! of communication and computation, super-step barrier costs — are
//! invisible in a job-level makespan. This module records them as events on
//! a shared [`TraceSink`]: each endpoint owns a cheap [`Tracer`] handle and
//! emits phase spans, communication-wave events, barrier spans, reliability
//! events, and per-phase counter deltas, all stamped with **simulated**
//! time (so traces are bit-reproducible, like everything else here).
//!
//! Two export formats:
//!
//! * [`TraceSink::chrome_trace_json`] — Chrome trace-event JSON (the
//!   `traceEvents` array format), loadable in Perfetto / `chrome://tracing`.
//!   Jobs map to processes, nodes map to threads, so a multi-job bench run
//!   renders as labeled per-node tracks.
//! * [`TraceSink::metrics_json`] — a structured metrics report with the
//!   per-phase compute / service / comm / barrier-wait breakdown aggregated
//!   across nodes, plus per-phase counter deltas.
//!
//! Tracing is **off by default**: a disabled [`Tracer`] is a no-op on every
//! record path and the runtime charges no simulated time for tracing either
//! way, so results, makespans, and counters are bit-identical with tracing
//! on, off, or absent (tests assert this).
//!
//! The sink is shared (`Arc<Mutex<_>>`) rather than per-endpoint so that
//! events survive an endpoint panic: the recv-stall watchdog records its
//! protocol-state dump as a `recv_stall` event *before* panicking, leaving
//! a readable trace of a wedged run instead of only a panic string.

use std::cell::Cell;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::time::SimTime;

/// A typed event argument (the `args` payload of a trace event).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned counter / quantity.
    U64(u64),
    /// Fractional quantity.
    F64(f64),
    /// Free-form text (e.g. the watchdog's protocol-state dump).
    Str(String),
}

/// How an event occupies time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span `[ts, ts + dur]` (Chrome "complete" event, `ph: "X"`).
    Span {
        /// Span duration in simulated time.
        dur: SimTime,
    },
    /// A point event at `ts` (Chrome instant event, `ph: "i"`).
    Instant,
}

/// One trace event, stamped with simulated time.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (fixed vocabulary; see DESIGN.md §11).
    pub name: &'static str,
    /// Category (Chrome `cat`): "phase", "comm", "reliability", "runtime".
    pub cat: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Event start instant in simulated time.
    pub ts: SimTime,
    /// Job id (Chrome `pid`): one per traced job on the sink.
    pub pid: u32,
    /// Node id within the job (Chrome `tid`): one track per node.
    pub tid: u32,
    /// Per-(pid, tid) emission sequence number — the deterministic sort key.
    pub seq: u64,
    /// Named arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Look up a `U64` argument by name.
    pub fn arg_u64(&self, name: &str) -> Option<u64> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(x) if *k == name => Some(*x),
            _ => None,
        })
    }

    /// Look up a `Str` argument by name.
    pub fn arg_str(&self, name: &str) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if *k == name => Some(s.as_str()),
            _ => None,
        })
    }

    /// End instant (`ts` for instants, `ts + dur` for spans).
    pub fn end(&self) -> SimTime {
        match self.kind {
            EventKind::Span { dur } => self.ts + dur,
            EventKind::Instant => self.ts,
        }
    }
}

#[derive(Default)]
struct SinkState {
    events: Vec<TraceEvent>,
    /// Per-job (label, node count), indexed by pid.
    jobs: Vec<(String, u32)>,
}

/// Shared event collector for one or more traced jobs.
///
/// Cloning is cheap (an `Arc`); all clones feed the same buffer. Events are
/// kept unordered internally (endpoints push concurrently) and sorted
/// deterministically — by `(pid, tid, seq)`, all of which are themselves
/// deterministic — on every read or export.
#[derive(Clone, Default)]
pub struct TraceSink(Arc<Mutex<SinkState>>);

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Survive lock poisoning: a panicking endpoint (e.g. the stall
    /// watchdog) must not make the already-recorded events unreadable —
    /// they are exactly what the reader wants then.
    fn lock(&self) -> MutexGuard<'_, SinkState> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a traced job; returns its `pid` for the job's tracers.
    pub fn begin_job(&self, label: &str, nodes: u32) -> u32 {
        let mut s = self.lock();
        s.jobs.push((label.to_string(), nodes));
        (s.jobs.len() - 1) as u32
    }

    /// An enabled tracer feeding this sink, for node `tid` of job `pid`.
    pub fn tracer(&self, pid: u32, tid: u32) -> Tracer {
        Tracer {
            sink: Some(self.clone()),
            pid,
            tid,
            seq: Cell::new(0),
        }
    }

    fn push(&self, ev: TraceEvent) {
        self.lock().events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in deterministic `(pid, tid, seq)` order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs = self.lock().events.clone();
        evs.sort_by_key(|e| (e.pid, e.tid, e.seq));
        evs
    }

    /// Registered job labels and node counts, indexed by pid.
    pub fn jobs(&self) -> Vec<(String, u32)> {
        self.lock().jobs.clone()
    }

    /// Render the Chrome trace-event JSON (`{"traceEvents": [...]}`),
    /// loadable in Perfetto. One process per traced job, one thread track
    /// per node. Timestamps and durations are microseconds of simulated
    /// time.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let jobs = self.jobs();
        let mut out = String::with_capacity(events.len() * 128 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, body: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(body);
        };

        // Metadata: process names (job labels) and thread names (nodes).
        for (pid, (label, _)) in jobs.iter().enumerate() {
            let mut m = String::new();
            m.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
            m.push_str(&pid.to_string());
            m.push_str(",\"tid\":0,\"args\":{\"name\":");
            json_string(label, &mut m);
            m.push_str("}}");
            emit(&mut out, &mut first, &m);
        }
        let mut tracks: Vec<(u32, u32)> = events.iter().map(|e| (e.pid, e.tid)).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for (pid, tid) in tracks {
            let m = format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"node {tid}\"}}}}"
            );
            emit(&mut out, &mut first, &m);
        }

        for e in &events {
            let mut m = String::new();
            m.push('{');
            match e.kind {
                EventKind::Span { dur } => {
                    m.push_str("\"ph\":\"X\",\"dur\":");
                    m.push_str(&us(dur));
                    m.push(',');
                }
                EventKind::Instant => {
                    // Thread-scoped instant.
                    m.push_str("\"ph\":\"i\",\"s\":\"t\",");
                }
            }
            m.push_str("\"name\":\"");
            m.push_str(e.name);
            m.push_str("\",\"cat\":\"");
            m.push_str(e.cat);
            m.push_str("\",\"ts\":");
            m.push_str(&us(e.ts));
            m.push_str(",\"pid\":");
            m.push_str(&e.pid.to_string());
            m.push_str(",\"tid\":");
            m.push_str(&e.tid.to_string());
            if !e.args.is_empty() {
                m.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        m.push(',');
                    }
                    m.push('"');
                    m.push_str(k);
                    m.push_str("\":");
                    match v {
                        ArgValue::U64(x) => m.push_str(&x.to_string()),
                        ArgValue::F64(x) => m.push_str(&json_f64(*x)),
                        ArgValue::Str(s) => json_string(s, &mut m),
                    }
                }
                m.push('}');
            }
            m.push('}');
            emit(&mut out, &mut first, &m);
        }
        out.push_str("]}");
        out
    }

    /// Render the structured metrics report: per job, the per-phase
    /// compute / service / comm / barrier-wait breakdown (max across
    /// nodes), traffic totals, and summed counter deltas.
    pub fn metrics_json(&self) -> String {
        use std::collections::BTreeMap;
        let events = self.events();
        let jobs = self.jobs();

        let mut out = String::from("{\"jobs\":[");
        for (pid, (label, nodes)) in jobs.iter().enumerate() {
            let pid = pid as u32;
            if pid > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(label, &mut out);
            out.push_str(&format!(",\"pid\":{pid},\"nodes\":{nodes},"));

            // Group phase events by (kind, phase index).
            #[derive(Default)]
            struct Group {
                nodes: u64,
                compute_max: u64,
                service_max: u64,
                comm_max: u64,
                barrier_max: u64,
                waves_max: u64,
                bytes_out: u64,
                bytes_in: u64,
                counters: BTreeMap<&'static str, u64>,
            }
            let mut groups: BTreeMap<(&'static str, u64), Group> = BTreeMap::new();
            let mut makespan = SimTime::ZERO;
            for e in events.iter().filter(|e| e.pid == pid) {
                makespan = makespan.max(e.end());
                let kind = match e.name {
                    "global_phase" => "global",
                    "node_phase" => "node",
                    _ => continue,
                };
                let idx = e.arg_u64("phase").unwrap_or(0);
                let g = groups.entry((kind, idx)).or_default();
                g.nodes += 1;
                let get = |n| e.arg_u64(n).unwrap_or(0);
                g.compute_max = g.compute_max.max(get("compute_ps"));
                g.service_max = g.service_max.max(get("service_ps"));
                g.comm_max = g.comm_max.max(get("comm_ps"));
                g.barrier_max = g.barrier_max.max(get("barrier_ps"));
                g.waves_max = g.waves_max.max(get("waves"));
                g.bytes_out += get("bytes_out");
                g.bytes_in += get("bytes_in");
                for (k, v) in &e.args {
                    if let (Some(name), ArgValue::U64(x)) = (k.strip_prefix("d_"), v) {
                        *g.counters.entry(name).or_default() += x;
                    }
                }
            }
            out.push_str(&format!(
                "\"makespan_ps\":{},\"phases\":[",
                makespan.as_ps()
            ));
            for (i, ((kind, idx), g)) in groups.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kind\":\"{kind}\",\"index\":{idx},\"nodes\":{},\
                     \"compute_ps_max\":{},\"service_ps_max\":{},\"comm_ps_max\":{},\
                     \"barrier_ps_max\":{},\"waves_max\":{},\"bytes_out_total\":{},\
                     \"bytes_in_total\":{},\"counters\":{{",
                    g.nodes,
                    g.compute_max,
                    g.service_max,
                    g.comm_max,
                    g.barrier_max,
                    g.waves_max,
                    g.bytes_out,
                    g.bytes_in,
                ));
                for (j, (k, v)) in g.counters.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push_str("}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Write the Chrome trace to `path` and the metrics report next to it
    /// at `<path>.metrics.json`.
    pub fn write_files(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())?;
        std::fs::write(format!("{path}.metrics.json"), self.metrics_json())
    }
}

/// Simulated picoseconds rendered as Chrome-trace microseconds.
fn us(t: SimTime) -> String {
    json_f64(t.as_ps() as f64 / 1e6)
}

/// A finite f64 as JSON (JSON has no NaN/inf; clamp them to null-free 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral f64s without a dot; that is still valid JSON.
        s
    } else {
        "0".to_string()
    }
}

/// Escape and quote a string per the JSON grammar.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Per-endpoint tracing handle. Disabled (the default) it is a no-op on
/// every path; enabled it stamps events with this endpoint's `(pid, tid)`
/// and a per-track sequence number and pushes them to the shared sink.
pub struct Tracer {
    sink: Option<TraceSink>,
    pid: u32,
    tid: u32,
    /// Emission counter (interior mutability so recording works behind a
    /// shared borrow, e.g. inside the recv-stall diagnostic closure).
    seq: Cell<u64>,
}

impl Tracer {
    /// A no-op tracer (tracing off — the default).
    pub fn disabled() -> Tracer {
        Tracer {
            sink: None,
            pid: 0,
            tid: 0,
            seq: Cell::new(0),
        }
    }

    /// Whether events are being recorded. Callers may use this to skip
    /// building argument vectors on the fast path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn record(
        &self,
        name: &'static str,
        cat: &'static str,
        kind: EventKind,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let Some(sink) = &self.sink else { return };
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        sink.push(TraceEvent {
            name,
            cat,
            kind,
            ts,
            pid: self.pid,
            tid: self.tid,
            seq,
            args,
        });
    }

    /// Record an instant event at simulated time `ts`.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        ts: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.record(name, cat, EventKind::Instant, ts, args);
    }

    /// Record a span `[start, end]` in simulated time.
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        debug_assert!(end >= start, "span must not end before it starts");
        self.record(name, cat, EventKind::Span { dur: end - start }, start, args);
    }
}

// ---------------------------------------------------------------------------
// Std-only JSON well-formedness checker.
// ---------------------------------------------------------------------------

/// Validate that `s` is one well-formed JSON value (std-only recursive
/// descent; no external parser, per the repo's offline policy). Returns a
/// position-annotated error on malformed input. Used by the test suite and
/// CI to gate the emitted trace files.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value(0)?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 256;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string().map_err(|_| self.err("expected object key"))?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.b.get(self.i) {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if *c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while p.b.get(p.i).is_some_and(u8::is_ascii_digit) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        // Integer part: "0" or non-zero-led digits.
        match self.b.get(self.i) {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => digits(self)?,
            _ => return Err(self.err("expected a number")),
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant("wave", "comm", SimTime::from_ns(5), vec![]);
        t.span(
            "global_phase",
            "phase",
            SimTime::ZERO,
            SimTime::from_ns(9),
            vec![],
        );
        // No sink: nothing observable, and no panic.
    }

    #[test]
    fn events_sort_deterministically_and_carry_args() {
        let sink = TraceSink::new();
        let pid = sink.begin_job("job", 2);
        let t0 = sink.tracer(pid, 0);
        let t1 = sink.tracer(pid, 1);
        t1.instant(
            "wave",
            "comm",
            SimTime::from_ns(3),
            vec![("bundles", ArgValue::U64(2))],
        );
        t0.span(
            "global_phase",
            "phase",
            SimTime::ZERO,
            SimTime::from_ns(10),
            vec![("phase", ArgValue::U64(0))],
        );
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tid, 0, "sorted by (pid, tid, seq)");
        assert_eq!(evs[0].end(), SimTime::from_ns(10));
        assert_eq!(evs[1].arg_u64("bundles"), Some(2));
        assert_eq!(evs[1].arg_u64("missing"), None);
    }

    #[test]
    fn chrome_export_is_valid_json_with_tracks() {
        let sink = TraceSink::new();
        let pid = sink.begin_job("fig1 \"smoke\"\n", 2);
        for tid in 0..2 {
            let t = sink.tracer(pid, tid);
            t.span(
                "global_phase",
                "phase",
                SimTime::ZERO,
                SimTime::from_us(3),
                vec![
                    ("phase", ArgValue::U64(0)),
                    ("d_msgs_sent", ArgValue::U64(4)),
                ],
            );
            t.instant(
                "recv_stall",
                "runtime",
                SimTime::from_us(1),
                vec![("dump", ArgValue::Str("line1\nline2\t\"quoted\"".into()))],
            );
        }
        let json = sink.chrome_trace_json();
        validate_json(&json).expect("chrome export must be well-formed");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn metrics_export_aggregates_phases() {
        let sink = TraceSink::new();
        let pid = sink.begin_job("job", 2);
        for (tid, comp) in [(0u32, 100u64), (1, 300)] {
            let t = sink.tracer(pid, tid);
            t.span(
                "global_phase",
                "phase",
                SimTime::ZERO,
                SimTime::from_ps(500),
                vec![
                    ("phase", ArgValue::U64(0)),
                    ("compute_ps", ArgValue::U64(comp)),
                    ("bytes_out", ArgValue::U64(10)),
                    ("d_msgs_sent", ArgValue::U64(3)),
                ],
            );
        }
        let json = sink.metrics_json();
        validate_json(&json).expect("metrics export must be well-formed");
        assert!(
            json.contains("\"compute_ps_max\":300"),
            "max across nodes: {json}"
        );
        assert!(
            json.contains("\"bytes_out_total\":20"),
            "sum across nodes: {json}"
        );
        assert!(
            json.contains("\"msgs_sent\":6"),
            "counter deltas summed: {json}"
        );
        assert!(json.contains("\"makespan_ps\":500"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "null",
            " [1, 2.5, -3e-2, \"a\\u00e9\\n\", {\"k\": [true, false]}] ",
            "{}",
            "0.5",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.e5",
            "nul",
            "[1] trailing",
            "{\"a\":\"\u{1}\"}",
        ] {
            assert!(validate_json(bad).is_err(), "should reject: {bad:?}");
        }
    }
}
