//! Communication and computation counters.

/// Per-endpoint event counters. All counts are exact (not modeled), so they
/// double as a verification channel: tests assert e.g. that the PPM runtime
/// sends one bundle per (destination, wave) and that MPI baselines send the
/// expected number of fine-grained messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Modeled bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Modeled bytes received.
    pub bytes_recv: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Memory operations charged.
    pub mem_ops: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// PPM: remote element reads issued (before bundling).
    pub remote_gets: u64,
    /// PPM: remote element writes issued (before bundling).
    pub remote_puts: u64,
    /// PPM: request/write bundles sent (after bundling).
    pub bundles_sent: u64,
    /// PPM: communication waves (request flush rounds) executed.
    pub waves: u64,
    /// PPM: shared-variable accesses that resolved locally.
    pub local_accesses: u64,
    /// Reliability layer: retransmissions performed (one per lost
    /// transmission attempt injected by the fault plan).
    pub retries: u64,
    /// Reliability layer: transmission attempts the fault plan dropped.
    pub faults_dropped: u64,
    /// Reliability layer: duplicate copies the fault plan delivered.
    pub faults_duplicated: u64,
    /// Reliability layer: messages the fault plan held back on the wire.
    pub faults_delayed: u64,
    /// Reliability layer: duplicate envelopes suppressed on receive.
    pub dups_suppressed: u64,
    /// Reliability layer: cumulative ack messages sent.
    pub acks_sent: u64,
    /// Phase-boundary crash recoveries performed.
    pub crash_recoveries: u64,
}

impl Counters {
    /// Element-wise sum, for job-level aggregation.
    pub fn merge(&self, other: &Counters) -> Counters {
        Counters {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            flops: self.flops + other.flops,
            mem_ops: self.mem_ops + other.mem_ops,
            barriers: self.barriers + other.barriers,
            remote_gets: self.remote_gets + other.remote_gets,
            remote_puts: self.remote_puts + other.remote_puts,
            bundles_sent: self.bundles_sent + other.bundles_sent,
            waves: self.waves + other.waves,
            local_accesses: self.local_accesses + other.local_accesses,
            retries: self.retries + other.retries,
            faults_dropped: self.faults_dropped + other.faults_dropped,
            faults_duplicated: self.faults_duplicated + other.faults_duplicated,
            faults_delayed: self.faults_delayed + other.faults_delayed,
            dups_suppressed: self.dups_suppressed + other.dups_suppressed,
            acks_sent: self.acks_sent + other.acks_sent,
            crash_recoveries: self.crash_recoveries + other.crash_recoveries,
        }
    }

    /// Totals of the reliability/fault fields, for quick assertions:
    /// `(retries, dups_suppressed, acks_sent, crash_recoveries)`.
    pub fn reliability_summary(&self) -> (u64, u64, u64, u64) {
        (
            self.retries,
            self.dups_suppressed,
            self.acks_sent,
            self.crash_recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = Counters {
            msgs_sent: 1,
            bytes_sent: 10,
            flops: 5,
            ..Counters::default()
        };
        let b = Counters {
            msgs_sent: 2,
            bytes_recv: 7,
            waves: 3,
            retries: 4,
            acks_sent: 2,
            ..Counters::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 3);
        assert_eq!(m.bytes_sent, 10);
        assert_eq!(m.bytes_recv, 7);
        assert_eq!(m.flops, 5);
        assert_eq!(m.waves, 3);
        assert_eq!(m.reliability_summary(), (4, 0, 2, 0));
    }

    #[test]
    fn default_is_zero() {
        let c = Counters::default();
        assert_eq!(c, Counters::default().merge(&Counters::default()));
    }
}
