//! Communication and computation counters.

/// Per-endpoint event counters. All counts are exact (not modeled), so they
/// double as a verification channel: tests assert e.g. that the PPM runtime
/// sends one bundle per (destination, wave) and that MPI baselines send the
/// expected number of fine-grained messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Modeled bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Modeled bytes received.
    pub bytes_recv: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Memory operations charged.
    pub mem_ops: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// PPM: remote element reads issued (before bundling).
    pub remote_gets: u64,
    /// PPM: remote element writes issued (before bundling).
    pub remote_puts: u64,
    /// PPM: request/write bundles sent (after bundling).
    pub bundles_sent: u64,
    /// PPM: communication waves (request flush rounds) executed.
    pub waves: u64,
    /// PPM: shared-variable accesses that resolved locally.
    pub local_accesses: u64,
    /// Reliability layer: retransmissions performed (one per lost
    /// transmission attempt injected by the fault plan).
    pub retries: u64,
    /// Reliability layer: transmission attempts the fault plan dropped.
    pub faults_dropped: u64,
    /// Reliability layer: duplicate copies the fault plan delivered.
    pub faults_duplicated: u64,
    /// Reliability layer: messages the fault plan held back on the wire.
    pub faults_delayed: u64,
    /// Reliability layer: duplicate envelopes suppressed on receive.
    pub dups_suppressed: u64,
    /// Reliability layer: cumulative ack messages sent.
    pub acks_sent: u64,
    /// Phase-boundary crash recoveries performed.
    pub crash_recoveries: u64,
    /// PPM: remote reads satisfied by the phase-coherent read cache
    /// (no wire traffic).
    pub cache_hits: u64,
    /// PPM: remote reads that missed the read cache (or ran with it
    /// disabled) and went to the wire.
    pub cache_misses: u64,
    /// PPM: duplicate remote reads merged into an already-queued wire
    /// entry within a wave.
    pub dedup_reads: u64,
    /// PPM: wave completions where some VPs resumed while other
    /// destinations of the same wave were still in flight.
    pub partial_wakes: u64,
    /// Failure detector: peers this node began suspecting (retransmit
    /// attempts crossed the detection threshold in simulated time).
    pub peers_suspected: u64,
    /// Failure detector: peers this node confirmed permanently dead at a
    /// clock-barrier boundary (suspicion OR-flood came back unanimous).
    pub peers_confirmed_dead: u64,
    /// Fail-stop tolerance: partition failovers this node performed as the
    /// buddy of a confirmed-dead peer.
    pub failovers: u64,
    /// Fail-stop tolerance: snapshot-replica bytes this node streamed to
    /// its buddy (delta frames piggybacked on end-of-phase write bundles).
    pub replica_bytes: u64,
    /// Pseudo-streaming: resident partition tiles evicted to the modeled
    /// backing store to stay under the tile budget.
    pub tile_spills: u64,
    /// Pseudo-streaming: cold partition tiles made resident on first
    /// touch (every tile starts cold, so refills ≥ spills).
    pub tile_refills: u64,
}

impl Counters {
    /// Element-wise sum, for job-level aggregation. Saturating: counters
    /// are diagnostics, so an (astronomically unlikely) overflow clamps at
    /// `u64::MAX` rather than aborting the job or wrapping to a small lie.
    /// Driven through `named_fields_mut` so a new field cannot be missed.
    pub fn merge(&self, other: &Counters) -> Counters {
        let mut out = *self;
        let rhs = other.named_fields();
        for (i, (name, slot)) in out.named_fields_mut().into_iter().enumerate() {
            debug_assert_eq!(name, rhs[i].0);
            *slot = slot.saturating_add(rhs[i].1);
        }
        out
    }

    /// Snapshot of every reliability/fault-injection field as a named
    /// struct. A named struct (rather than a positional tuple) means adding
    /// a reliability counter without extending the summary is a compile
    /// error at the struct, not a silently dropped field at the call sites.
    pub fn reliability_summary(&self) -> ReliabilitySummary {
        ReliabilitySummary {
            retries: self.retries,
            faults_dropped: self.faults_dropped,
            faults_duplicated: self.faults_duplicated,
            faults_delayed: self.faults_delayed,
            dups_suppressed: self.dups_suppressed,
            acks_sent: self.acks_sent,
            crash_recoveries: self.crash_recoveries,
            peers_suspected: self.peers_suspected,
            peers_confirmed_dead: self.peers_confirmed_dead,
            failovers: self.failovers,
            replica_bytes: self.replica_bytes,
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order. The
    /// single source of truth for exporters (e.g. per-phase deltas in the
    /// trace layer); a test pins its length to the struct size so a new
    /// field cannot be forgotten here.
    pub fn named_fields(&self) -> [(&'static str, u64); 29] {
        [
            ("msgs_sent", self.msgs_sent),
            ("bytes_sent", self.bytes_sent),
            ("msgs_recv", self.msgs_recv),
            ("bytes_recv", self.bytes_recv),
            ("flops", self.flops),
            ("mem_ops", self.mem_ops),
            ("barriers", self.barriers),
            ("remote_gets", self.remote_gets),
            ("remote_puts", self.remote_puts),
            ("bundles_sent", self.bundles_sent),
            ("waves", self.waves),
            ("local_accesses", self.local_accesses),
            ("retries", self.retries),
            ("faults_dropped", self.faults_dropped),
            ("faults_duplicated", self.faults_duplicated),
            ("faults_delayed", self.faults_delayed),
            ("dups_suppressed", self.dups_suppressed),
            ("acks_sent", self.acks_sent),
            ("crash_recoveries", self.crash_recoveries),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("dedup_reads", self.dedup_reads),
            ("partial_wakes", self.partial_wakes),
            ("peers_suspected", self.peers_suspected),
            ("peers_confirmed_dead", self.peers_confirmed_dead),
            ("failovers", self.failovers),
            ("replica_bytes", self.replica_bytes),
            ("tile_spills", self.tile_spills),
            ("tile_refills", self.tile_refills),
        ]
    }

    /// Element-wise difference from an earlier snapshot of the same
    /// (monotonically increasing) counters. Panics in debug builds if
    /// `base` is not actually earlier.
    pub fn delta(&self, base: &Counters) -> Counters {
        let cur = self.named_fields();
        let old = base.named_fields();
        let mut out = Counters::default();
        for (i, (name, slot)) in out.named_fields_mut().into_iter().enumerate() {
            debug_assert_eq!(name, cur[i].0);
            debug_assert!(cur[i].1 >= old[i].1, "counter {name} went backwards");
            *slot = cur[i].1 - old[i].1;
        }
        out
    }

    fn named_fields_mut(&mut self) -> [(&'static str, &mut u64); 29] {
        [
            ("msgs_sent", &mut self.msgs_sent),
            ("bytes_sent", &mut self.bytes_sent),
            ("msgs_recv", &mut self.msgs_recv),
            ("bytes_recv", &mut self.bytes_recv),
            ("flops", &mut self.flops),
            ("mem_ops", &mut self.mem_ops),
            ("barriers", &mut self.barriers),
            ("remote_gets", &mut self.remote_gets),
            ("remote_puts", &mut self.remote_puts),
            ("bundles_sent", &mut self.bundles_sent),
            ("waves", &mut self.waves),
            ("local_accesses", &mut self.local_accesses),
            ("retries", &mut self.retries),
            ("faults_dropped", &mut self.faults_dropped),
            ("faults_duplicated", &mut self.faults_duplicated),
            ("faults_delayed", &mut self.faults_delayed),
            ("dups_suppressed", &mut self.dups_suppressed),
            ("acks_sent", &mut self.acks_sent),
            ("crash_recoveries", &mut self.crash_recoveries),
            ("cache_hits", &mut self.cache_hits),
            ("cache_misses", &mut self.cache_misses),
            ("dedup_reads", &mut self.dedup_reads),
            ("partial_wakes", &mut self.partial_wakes),
            ("peers_suspected", &mut self.peers_suspected),
            ("peers_confirmed_dead", &mut self.peers_confirmed_dead),
            ("failovers", &mut self.failovers),
            ("replica_bytes", &mut self.replica_bytes),
            ("tile_spills", &mut self.tile_spills),
            ("tile_refills", &mut self.tile_refills),
        ]
    }
}

/// All reliability-layer and fault-injection counters, by name. Returned by
/// [`Counters::reliability_summary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilitySummary {
    /// Retransmissions performed.
    pub retries: u64,
    /// Transmission attempts the fault plan dropped.
    pub faults_dropped: u64,
    /// Duplicate copies the fault plan delivered.
    pub faults_duplicated: u64,
    /// Messages the fault plan held back on the wire.
    pub faults_delayed: u64,
    /// Duplicate envelopes suppressed on receive.
    pub dups_suppressed: u64,
    /// Cumulative ack messages sent.
    pub acks_sent: u64,
    /// Phase-boundary crash recoveries performed.
    pub crash_recoveries: u64,
    /// Peers that crossed the failure detector's suspicion threshold.
    pub peers_suspected: u64,
    /// Peers confirmed permanently dead at a barrier boundary.
    pub peers_confirmed_dead: u64,
    /// Partition failovers performed as a dead peer's buddy.
    pub failovers: u64,
    /// Snapshot-replica bytes streamed to the buddy.
    pub replica_bytes: u64,
}

impl ReliabilitySummary {
    /// True when every reliability and fault counter is zero — the
    /// fault-free fast path left no trace.
    pub fn is_clean(&self) -> bool {
        *self == ReliabilitySummary::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = Counters {
            msgs_sent: 1,
            bytes_sent: 10,
            flops: 5,
            ..Counters::default()
        };
        let b = Counters {
            msgs_sent: 2,
            bytes_recv: 7,
            waves: 3,
            retries: 4,
            acks_sent: 2,
            ..Counters::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 3);
        assert_eq!(m.bytes_sent, 10);
        assert_eq!(m.bytes_recv, 7);
        assert_eq!(m.flops, 5);
        assert_eq!(m.waves, 3);
        assert_eq!(
            m.reliability_summary(),
            ReliabilitySummary {
                retries: 4,
                acks_sent: 2,
                ..ReliabilitySummary::default()
            }
        );
        assert!(!m.reliability_summary().is_clean());
        assert!(a.reliability_summary().is_clean());
    }

    #[test]
    fn default_is_zero() {
        let c = Counters::default();
        assert_eq!(c, Counters::default().merge(&Counters::default()));
    }

    #[test]
    fn named_fields_cover_every_counter() {
        // Counters is all-u64; if a field is added without extending
        // named_fields(), the length no longer matches the struct size.
        let c = Counters::default();
        assert_eq!(
            c.named_fields().len() * std::mem::size_of::<u64>(),
            std::mem::size_of::<Counters>(),
            "named_fields() must enumerate every Counters field"
        );
        // Same guard for the reliability summary.
        assert_eq!(
            11 * std::mem::size_of::<u64>(),
            std::mem::size_of::<ReliabilitySummary>(),
            "ReliabilitySummary must cover every reliability field"
        );
    }

    /// Regression: `merge` used to use plain `+`, which panics in debug
    /// builds (and wraps in release) when an accumulated counter is near
    /// `u64::MAX`. It must clamp instead.
    #[test]
    fn merge_saturates_at_u64_max() {
        let a = Counters {
            bytes_sent: u64::MAX,
            waves: u64::MAX - 1,
            ..Counters::default()
        };
        let b = Counters {
            bytes_sent: 17,
            waves: 5,
            msgs_sent: 1,
            ..Counters::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.bytes_sent, u64::MAX);
        assert_eq!(m.waves, u64::MAX);
        assert_eq!(m.msgs_sent, 1);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut later = Counters {
            msgs_sent: 5,
            waves: 9,
            retries: 2,
            ..Counters::default()
        };
        let base = Counters {
            msgs_sent: 3,
            waves: 4,
            ..Counters::default()
        };
        later = later.merge(&base); // make strictly later
        let d = later.delta(&base);
        assert_eq!(d.msgs_sent, 5);
        assert_eq!(d.waves, 9);
        assert_eq!(d.retries, 2);
        assert_eq!(d.bytes_sent, 0);
    }
}
