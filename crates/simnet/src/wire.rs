//! Modeled wire sizes.
//!
//! The simulator moves typed Rust values between node threads without
//! serializing them; communication cost is charged from the *modeled* size of
//! the payload, provided by [`WireSize`]. Sizes approximate a compact binary
//! encoding (fixed-width scalars, 8-byte length prefix for sequences).

/// Number of bytes a value would occupy in a compact wire encoding.
pub trait WireSize {
    /// Modeled encoded size in bytes.
    fn wire_size(&self) -> usize;
}

macro_rules! fixed_wire_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl WireSize for $t {
            #[inline]
            fn wire_size(&self) -> usize { $n }
        })*
    };
}

fixed_wire_size! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    bool => 1,
    () => 0,
}

impl<T: WireSize> WireSize for Option<T> {
    #[inline]
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    #[inline]
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    #[inline]
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize, D: WireSize> WireSize for (A, B, C, D) {
    #[inline]
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size() + self.3.wire_size()
    }
}

/// Sequences carry an 8-byte length prefix plus their elements.
impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for &[T] {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    fn wire_size(&self) -> usize {
        self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(1u8.wire_size(), 1);
        assert_eq!(1u32.wire_size(), 4);
        assert_eq!(1.0f64.wire_size(), 8);
        assert_eq!(1usize.wire_size(), 8);
        assert_eq!(().wire_size(), 0);
        assert_eq!(true.wire_size(), 1);
    }

    #[test]
    fn composites() {
        assert_eq!((1u32, 2.0f64).wire_size(), 12);
        assert_eq!((1u8, 2u8, 3u8).wire_size(), 3);
        assert_eq!((1u8, 2u8, 3u8, 4u64).wire_size(), 11);
        assert_eq!([1.0f64; 3].wire_size(), 24);
        assert_eq!(Some(5u32).wire_size(), 5);
        assert_eq!(None::<u32>.wire_size(), 1);
    }

    #[test]
    fn sequences_have_length_prefix() {
        let v: Vec<f64> = vec![0.0; 10];
        assert_eq!(v.wire_size(), 8 + 80);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.wire_size(), 8);
        let pairs: Vec<(u64, f64)> = vec![(0, 0.0); 4];
        assert_eq!(pairs.wire_size(), 8 + 4 * 16);
    }
}
