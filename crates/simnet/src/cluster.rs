//! Job runner: one OS thread per simulated endpoint.
//!
//! An *endpoint* is whatever unit of the machine the layer above schedules —
//! one per node for the PPM runtime, one per core-rank for the MPI-like
//! substrate. Endpoints execute real Rust code concurrently and exchange
//! real data through the router; *simulated* time is tracked on each
//! endpoint's [`Clock`] and is what experiments report, so host parallelism
//! (or the lack of it) never affects results.

use crate::clock::Clock;
use crate::config::MachineConfig;
use crate::router::{make_router_with_stall, Endpoint};
use crate::stats::Counters;
use crate::time::SimTime;
use crate::trace::{TraceSink, Tracer};

/// Mutable per-endpoint state handed to the job closure.
pub struct EndpointCtx {
    /// Transport handle.
    pub net: Endpoint,
    /// Simulated clock.
    pub clock: Clock,
    /// Event counters.
    pub counters: Counters,
    /// Machine description.
    pub config: MachineConfig,
    /// Trace event recorder (a no-op unless the job was started through
    /// [`run_traced`]). Recording charges no simulated time and touches no
    /// counters, so traced and untraced runs are bit-identical.
    pub tracer: Tracer,
}

impl EndpointCtx {
    /// Endpoint id.
    #[inline]
    pub fn id(&self) -> usize {
        self.net.id()
    }

    /// Number of endpoints in the job.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.net.len()
    }
}

/// Outcome of a simulated job.
#[derive(Debug)]
pub struct JobReport<R> {
    /// Per-endpoint return values, indexed by endpoint id.
    pub results: Vec<R>,
    /// Per-endpoint final clocks.
    pub clocks: Vec<Clock>,
    /// Per-endpoint counters.
    pub counters: Vec<Counters>,
}

impl<R> JobReport<R> {
    /// Job completion time: the latest endpoint clock.
    pub fn makespan(&self) -> SimTime {
        self.clocks
            .iter()
            .map(Clock::now)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Sum of all endpoints' counters.
    pub fn total_counters(&self) -> Counters {
        self.counters
            .iter()
            .fold(Counters::default(), |acc, c| acc.merge(c))
    }
}

/// Run a job of `n` endpoints. The closure receives each endpoint's context
/// and runs on its own OS thread; a panic on any endpoint fails the job.
pub fn run<R, F>(n: usize, config: MachineConfig, f: F) -> JobReport<R>
where
    R: Send,
    F: Fn(&mut EndpointCtx) -> R + Send + Sync,
{
    run_traced(n, config, None, f)
}

/// [`run`], optionally recording trace events. When `trace` is
/// `Some((sink, label))` the job is registered on the sink as one trace
/// process (`pid`) named `label`, and every endpoint gets an enabled
/// [`Tracer`] publishing to its own per-node track. Multiple jobs may share
/// one sink (e.g. a bench sweep) and render as separate process groups.
pub fn run_traced<R, F>(
    n: usize,
    config: MachineConfig,
    trace: Option<(&TraceSink, &str)>,
    f: F,
) -> JobReport<R>
where
    R: Send,
    F: Fn(&mut EndpointCtx) -> R + Send + Sync,
{
    let job = trace.map(|(sink, label)| (sink.clone(), sink.begin_job(label, n as u32)));
    let endpoints = make_router_with_stall(n, config.recv_stall);
    let f = &f;
    let job = &job;
    let outcomes: Vec<(R, Clock, Counters)> = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|net| {
                let tracer = match job {
                    Some((sink, pid)) => sink.tracer(*pid, net.id() as u32),
                    None => Tracer::disabled(),
                };
                scope.spawn(move || {
                    let mut ctx = EndpointCtx {
                        net,
                        clock: Clock::new(),
                        counters: Counters::default(),
                        config,
                        tracer,
                    };
                    let r = f(&mut ctx);
                    (r, ctx.clock, ctx.counters)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise an endpoint's panic with its original payload so
                // callers (and #[should_panic] tests) see the real message.
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
            })
            .collect()
    });

    let mut results = Vec::with_capacity(n);
    let mut clocks = Vec::with_capacity(n);
    let mut counters = Vec::with_capacity(n);
    for (r, cl, co) in outcomes {
        results.push(r);
        clocks.push(cl);
        counters.push(co);
    }
    JobReport {
        results,
        clocks,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn endpoints_run_and_return_in_order() {
        let report = run(4, MachineConfig::franklin(4), |ctx| ctx.id() * 10);
        assert_eq!(report.results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn makespan_is_max_clock() {
        let report = run(3, MachineConfig::franklin(3), |ctx| {
            ctx.clock
                .advance_compute(SimTime::from_ns(100 * (ctx.id() as u64 + 1)));
        });
        assert_eq!(report.makespan(), SimTime::from_ns(300));
    }

    #[test]
    fn ring_exchange() {
        let n = 4;
        let report = run(n, MachineConfig::franklin(n as u32), |ctx| {
            let me = ctx.id();
            let next = (me + 1) % ctx.num_endpoints();
            ctx.net
                .send(Message::new(me, next, 0, SimTime::ZERO, 8, me as u64));
            ctx.counters.msgs_sent += 1;
            let m = ctx.net.recv();
            ctx.counters.msgs_recv += 1;
            m.take::<u64>()
        });
        // endpoint i receives from its predecessor
        assert_eq!(report.results, vec![3, 0, 1, 2]);
        let totals = report.total_counters();
        assert_eq!(totals.msgs_sent, 4);
        assert_eq!(totals.msgs_recv, 4);
    }

    #[test]
    fn single_endpoint_job() {
        let report = run(1, MachineConfig::new(1, 1), |_| "done");
        assert_eq!(report.results, vec!["done"]);
        assert_eq!(report.makespan(), SimTime::ZERO);
    }
}
