//! Property-based tests of the simulator substrate: time algebra, wire
//! sizing, cost-model monotonicity, and transport ordering.

use proptest::prelude::*;

use ppm_simnet::{Clock, Message, NetParams, SimTime, WireSize};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simtime_addition_is_commutative_and_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (x, y) = (SimTime::from_ps(a), SimTime::from_ps(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x.max(y));
        prop_assert_eq!((x + y) - y, x);
    }

    #[test]
    fn simtime_scale_distributes(a in 0u64..1 << 20, k in 0u64..1000, j in 0u64..1000) {
        let t = SimTime::from_ps(a);
        prop_assert_eq!(t.scale(k) + t.scale(j), t.scale(k + j));
    }

    #[test]
    fn clock_breakdown_always_sums_to_now(
        steps in proptest::collection::vec((0u8..3, 0u64..1 << 30), 0..50)
    ) {
        let mut c = Clock::new();
        for (kind, amount) in steps {
            let d = SimTime::from_ps(amount);
            match kind {
                0 => c.advance_compute(d),
                1 => c.advance_comm(d),
                _ => c.wait_until(c.now() + d),
            }
        }
        prop_assert_eq!(c.compute() + c.comm() + c.wait(), c.now());
    }

    #[test]
    fn wire_time_is_monotone_in_bytes(b1 in 0usize..1 << 20, extra in 1usize..1 << 20, share in 1u32..8) {
        let net = NetParams::default();
        for intra in [false, true] {
            prop_assert!(
                net.wire_time(b1, intra, share) <= net.wire_time(b1 + extra, intra, share)
            );
        }
        // Sharing the NIC never speeds things up.
        prop_assert!(net.wire_time(b1, false, share) >= net.wire_time(b1, false, 1));
    }

    #[test]
    fn vec_wire_size_is_additive(a in proptest::collection::vec(any::<f64>(), 0..50),
                                  b in proptest::collection::vec(any::<f64>(), 0..50)) {
        let joined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        // Two length prefixes vs one.
        prop_assert_eq!(a.wire_size() + b.wire_size(), joined.wire_size() + 8);
    }

    #[test]
    fn router_preserves_per_sender_order(n in 1usize..100) {
        let eps = ppm_simnet::make_router(2);
        for i in 0..n as u64 {
            eps[0].send(Message::new(0, 1, i % 3, SimTime::ZERO, 8, i));
        }
        for i in 0..n as u64 {
            prop_assert_eq!(eps[1].recv().take::<u64>(), i);
        }
    }
}
