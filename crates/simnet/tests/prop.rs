//! Property-based tests of the simulator substrate: time algebra, wire
//! sizing, cost-model monotonicity, and transport ordering (in-repo
//! `testkit` harness from ppm-core).

use ppm_core::testkit::forall;
use ppm_core::{prop_assert, prop_assert_eq};
use ppm_simnet::{Clock, Message, NetParams, SimTime, WireSize};

#[test]
fn simtime_addition_is_commutative_and_monotone() {
    forall(
        "simtime_addition_is_commutative_and_monotone",
        64,
        |g| (g.u64_in(0..1 << 40), g.u64_in(0..1 << 40)),
        |&(a, b)| {
            let (x, y) = (SimTime::from_ps(a), SimTime::from_ps(b));
            prop_assert_eq!(x + y, y + x);
            prop_assert!(x + y >= x.max(y));
            prop_assert_eq!((x + y) - y, x);
            Ok(())
        },
    );
}

#[test]
fn simtime_scale_distributes() {
    forall(
        "simtime_scale_distributes",
        64,
        |g| (g.u64_in(0..1 << 20), g.u64_in(0..1000), g.u64_in(0..1000)),
        |&(a, k, j)| {
            let t = SimTime::from_ps(a);
            prop_assert_eq!(t.scale(k) + t.scale(j), t.scale(k + j));
            Ok(())
        },
    );
}

#[test]
fn clock_breakdown_always_sums_to_now() {
    forall(
        "clock_breakdown_always_sums_to_now",
        64,
        |g| g.vec(0..50, |g| (g.u32_in(0..3) as u8, g.u64_in(0..1 << 30))),
        |steps| {
            let mut c = Clock::new();
            for &(kind, amount) in steps {
                let d = SimTime::from_ps(amount);
                match kind {
                    0 => c.advance_compute(d),
                    1 => c.advance_comm(d),
                    _ => c.wait_until(c.now() + d),
                }
            }
            prop_assert_eq!(c.compute() + c.comm() + c.wait(), c.now());
            Ok(())
        },
    );
}

#[test]
fn wire_time_is_monotone_in_bytes() {
    forall(
        "wire_time_is_monotone_in_bytes",
        64,
        |g| {
            (
                g.usize_in(0..1 << 20),
                g.usize_in(1..1 << 20),
                g.u32_in(1..8),
            )
        },
        |&(b1, extra, share)| {
            if extra == 0 || share == 0 {
                return Ok(());
            }
            let net = NetParams::default();
            for intra in [false, true] {
                prop_assert!(
                    net.wire_time(b1, intra, share) <= net.wire_time(b1 + extra, intra, share)
                );
            }
            // Sharing the NIC never speeds things up.
            prop_assert!(net.wire_time(b1, false, share) >= net.wire_time(b1, false, 1));
            Ok(())
        },
    );
}

#[test]
fn vec_wire_size_is_additive() {
    forall(
        "vec_wire_size_is_additive",
        64,
        |g| {
            (
                g.vec(0..50, |g| g.f64_in(-1e9..1e9)),
                g.vec(0..50, |g| g.f64_in(-1e9..1e9)),
            )
        },
        |(a, b)| {
            let joined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            // Two length prefixes vs one.
            prop_assert_eq!(a.wire_size() + b.wire_size(), joined.wire_size() + 8);
            Ok(())
        },
    );
}

#[test]
fn router_preserves_per_sender_order() {
    forall(
        "router_preserves_per_sender_order",
        64,
        |g| g.usize_in(1..100),
        |&n| {
            if n == 0 {
                return Ok(());
            }
            let eps = ppm_simnet::make_router(2);
            for i in 0..n as u64 {
                eps[0].send(Message::new(0, 1, i % 3, SimTime::ZERO, 8, i));
            }
            for i in 0..n as u64 {
                prop_assert_eq!(eps[1].recv().take::<u64>(), i);
            }
            Ok(())
        },
    );
}
