//! Property-based tests of the MPI-like substrate's collectives against
//! sequential references, across arbitrary machine shapes and data
//! (in-repo `testkit` harness from ppm-core).

use ppm_core::testkit::{forall, Gen};
use ppm_core::{prop_assert, prop_assert_eq};
use ppm_mps::run;
use ppm_simnet::MachineConfig;

/// Arbitrary small machine shape as (nodes, cores). Kept as a tuple so the
/// harness can shrink it; shrink candidates with a zero component are
/// rejected by [`shape`].
fn gen_shape(g: &mut Gen) -> (u32, u32) {
    (g.u32_in(1..5), g.u32_in(1..4))
}

fn shape(s: &(u32, u32)) -> Option<MachineConfig> {
    (s.0 >= 1 && s.1 >= 1).then(|| MachineConfig::new(s.0, s.1))
}

#[test]
fn allreduce_sum_matches_reference() {
    forall(
        "allreduce_sum_matches_reference",
        24,
        |g| (gen_shape(g), g.vec(20..21, |g| g.i64_in(-1000..1000))),
        |(s, vals)| {
            let Some(cfg) = shape(s) else { return Ok(()) };
            if vals.is_empty() {
                return Ok(());
            }
            let p = cfg.total_cores() as usize;
            let expected: i64 = vals.iter().cycle().take(p).sum();
            let vals = vals.clone();
            let report = run(cfg, move |comm| {
                comm.allreduce(vals[comm.rank() % vals.len()], |a, b| a + b)
            });
            for r in report.results {
                prop_assert_eq!(r, expected);
            }
            Ok(())
        },
    );
}

#[test]
fn scan_matches_prefix_sums() {
    forall(
        "scan_matches_prefix_sums",
        24,
        |g| (gen_shape(g), g.u64_in(0..1000)),
        |(s, seed)| {
            let Some(cfg) = shape(s) else { return Ok(()) };
            let seed = *seed;
            let p = cfg.total_cores() as usize;
            let value = move |r: usize| ((r as u64 + seed) % 17) as i64 - 8;
            let report = run(cfg, move |comm| {
                let inc = comm.scan(value(comm.rank()), |a, b| a + b);
                let exc = comm.exscan(value(comm.rank()), |a, b| a + b);
                (inc, exc)
            });
            let mut prefix = 0i64;
            for r in 0..p {
                let (inc, exc) = report.results[r];
                prop_assert_eq!(exc, if r == 0 { None } else { Some(prefix) });
                prefix += value(r);
                prop_assert_eq!(inc, prefix);
            }
            Ok(())
        },
    );
}

#[test]
fn bcast_from_any_root() {
    forall(
        "bcast_from_any_root",
        24,
        |g| {
            (
                gen_shape(g),
                g.usize_in(0..64),
                g.vec(0..8, |g| g.u32_in(0..u32::MAX)),
            )
        },
        |(s, root_pick, payload)| {
            let Some(cfg) = shape(s) else { return Ok(()) };
            let p = cfg.total_cores() as usize;
            let root = root_pick % p;
            let expect = payload.clone();
            let payload = payload.clone();
            let report = run(cfg, move |comm| {
                let v = if comm.rank() == root {
                    Some(payload.clone())
                } else {
                    None
                };
                comm.bcast(root, v)
            });
            for r in report.results {
                prop_assert_eq!(&r, &expect);
            }
            Ok(())
        },
    );
}

#[test]
fn alltoallv_is_a_permutation_of_payloads() {
    forall(
        "alltoallv_is_a_permutation_of_payloads",
        24,
        |g| (gen_shape(g), g.u64_in(0..1000)),
        |(s, seed)| {
            let Some(cfg) = shape(s) else { return Ok(()) };
            let seed = *seed;
            let p = cfg.total_cores() as usize;
            let payload = move |src: usize, dst: usize| -> Vec<u64> {
                let len = (src * 31 + dst * 7 + seed as usize) % 4;
                vec![(src * 1000 + dst) as u64; len]
            };
            let report = run(cfg, move |comm| {
                let me = comm.rank();
                let sends: Vec<Vec<u64>> = (0..p).map(|d| payload(me, d)).collect();
                comm.alltoallv(sends)
            });
            for (me, recvs) in report.results.into_iter().enumerate() {
                for (src, got) in recvs.into_iter().enumerate() {
                    prop_assert_eq!(got, payload(src, me));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn gather_collects_in_rank_order() {
    forall(
        "gather_collects_in_rank_order",
        24,
        |g| (gen_shape(g), g.usize_in(0..64)),
        |(s, root_pick)| {
            let Some(cfg) = shape(s) else { return Ok(()) };
            let p = cfg.total_cores() as usize;
            let root = root_pick % p;
            let report = run(cfg, move |comm| {
                comm.gather(root, comm.rank() as u64 * 3 + 1)
            });
            let expect: Vec<u64> = (0..p as u64).map(|r| r * 3 + 1).collect();
            for (r, got) in report.results.into_iter().enumerate() {
                if r == root {
                    prop_assert_eq!(got, Some(expect.clone()));
                } else {
                    prop_assert_eq!(got, None);
                }
            }
            Ok(())
        },
    );
}

/// Simulated makespan is monotone in payload size: moving more bytes can
/// never be faster on the same machine.
#[test]
fn cost_is_monotone_in_bytes() {
    forall(
        "cost_is_monotone_in_bytes",
        24,
        |g| g.usize_in(1..100),
        |&small| {
            if small == 0 {
                return Ok(());
            }
            let large = small * 10;
            let t = |bytes: usize| {
                run(MachineConfig::new(2, 1), move |comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 0, vec![0u8; bytes]);
                    } else {
                        let _: Vec<u8> = comm.recv(0, 0);
                    }
                })
                .makespan()
            };
            prop_assert!(t(small) < t(large));
            Ok(())
        },
    );
}
