//! Property-based tests of the MPI-like substrate's collectives against
//! sequential references, across arbitrary machine shapes and data.

use proptest::prelude::*;

use ppm_mps::run;
use ppm_simnet::MachineConfig;

fn shapes() -> impl Strategy<Value = MachineConfig> {
    (1..5u32, 1..4u32).prop_map(|(n, c)| MachineConfig::new(n, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_matches_reference(cfg in shapes(), vals in proptest::collection::vec(-1000i64..1000, 20)) {
        let p = cfg.total_cores() as usize;
        let expected: i64 = vals.iter().cycle().take(p).sum();
        let report = run(cfg, move |comm| {
            comm.allreduce(vals[comm.rank() % vals.len()], |a, b| a + b)
        });
        for r in report.results {
            prop_assert_eq!(r, expected);
        }
    }

    #[test]
    fn scan_matches_prefix_sums(cfg in shapes(), seed in 0u64..1000) {
        let p = cfg.total_cores() as usize;
        let value = |r: usize| ((r as u64 + seed) % 17) as i64 - 8;
        let report = run(cfg, move |comm| {
            let inc = comm.scan(value(comm.rank()), |a, b| a + b);
            let exc = comm.exscan(value(comm.rank()), |a, b| a + b);
            (inc, exc)
        });
        let mut prefix = 0i64;
        for r in 0..p {
            let (inc, exc) = report.results[r];
            prop_assert_eq!(exc, if r == 0 { None } else { Some(prefix) });
            prefix += value(r);
            prop_assert_eq!(inc, prefix);
        }
    }

    #[test]
    fn bcast_from_any_root(cfg in shapes(), root_pick in 0..64usize, payload in proptest::collection::vec(any::<u32>(), 0..8)) {
        let p = cfg.total_cores() as usize;
        let root = root_pick % p;
        let expect = payload.clone();
        let report = run(cfg, move |comm| {
            let v = if comm.rank() == root { Some(payload.clone()) } else { None };
            comm.bcast(root, v)
        });
        for r in report.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn alltoallv_is_a_permutation_of_payloads(cfg in shapes(), seed in 0u64..1000) {
        let p = cfg.total_cores() as usize;
        let payload = move |src: usize, dst: usize| -> Vec<u64> {
            let len = (src * 31 + dst * 7 + seed as usize) % 4;
            vec![(src * 1000 + dst) as u64; len]
        };
        let report = run(cfg, move |comm| {
            let me = comm.rank();
            let sends: Vec<Vec<u64>> = (0..p).map(|d| payload(me, d)).collect();
            comm.alltoallv(sends)
        });
        for (me, recvs) in report.results.into_iter().enumerate() {
            for (src, got) in recvs.into_iter().enumerate() {
                prop_assert_eq!(got, payload(src, me));
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order(cfg in shapes(), root_pick in 0..64usize) {
        let p = cfg.total_cores() as usize;
        let root = root_pick % p;
        let report = run(cfg, move |comm| comm.gather(root, comm.rank() as u64 * 3 + 1));
        let expect: Vec<u64> = (0..p as u64).map(|r| r * 3 + 1).collect();
        for (r, got) in report.results.into_iter().enumerate() {
            if r == root {
                prop_assert_eq!(got, Some(expect.clone()));
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }

    /// Simulated makespan is monotone in payload size: moving more bytes
    /// can never be faster on the same machine.
    #[test]
    fn cost_is_monotone_in_bytes(small in 1usize..100) {
        let large = small * 10;
        let t = |bytes: usize| {
            run(MachineConfig::new(2, 1), move |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![0u8; bytes]);
                } else {
                    let _: Vec<u8> = comm.recv(0, 0);
                }
            })
            .makespan()
        };
        prop_assert!(t(small) < t(large));
    }
}
