//! # ppm-mps — an MPI-like message-passing substrate
//!
//! The paper's baselines are MPI programs run with one process per core
//! (§4.1, §4.5). This crate provides the equivalent substrate on top of the
//! simulated cluster in [`ppm_simnet`]: a job of `nodes × cores_per_node`
//! *ranks*, each with
//!
//! * tag-matched blocking point-to-point operations
//!   ([`Comm::send`] / [`Comm::recv`] / [`Comm::sendrecv`] /
//!   [`Comm::recv_any`]), and
//! * collectives implemented as real message algorithms
//!   (barrier, bcast, reduce, allreduce, scan, exscan, gather, allgather,
//!   alltoallv) whose simulated cost emerges from the network model.
//!
//! Cost fidelity points baked in, matching the paper's discussion:
//!
//! * ranks on the same node exchange messages through a cheaper
//!   shared-memory path that still pays per-message overhead (the paper's
//!   intra-node MPI overhead without SmartMap);
//! * off-node traffic from a rank contends with the node's other cores for
//!   the single NIC (per-byte gap × `cores_per_node`).
//!
//! # Example
//!
//! ```
//! use ppm_simnet::MachineConfig;
//!
//! // 2 nodes × 4 cores = 8 ranks, like a slice of the paper's Franklin.
//! let report = ppm_mps::run(MachineConfig::franklin(2), |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert!(report.results.iter().all(|&t| t == 28));
//! ```

mod collectives;
mod comm;
pub mod tags;

pub use comm::{Comm, Source};

use ppm_simnet::{JobReport, MachineConfig};

/// Run an SPMD job with one rank per core of the machine.
pub fn run<R, F>(config: MachineConfig, f: F) -> JobReport<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    ppm_simnet::run(config.total_cores() as usize, config, |ctx| {
        let mut comm = Comm::new(ctx);
        f(&mut comm)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_rank_per_core() {
        let report = run(MachineConfig::new(3, 4), |comm| (comm.rank(), comm.node()));
        assert_eq!(report.results.len(), 12);
        assert_eq!(report.results[5], (5, 1));
        assert_eq!(report.results[11], (11, 2));
    }
}
