//! Tag-space layout.
//!
//! User point-to-point tags and internal collective tags share the 64-bit
//! message tag but live in disjoint halves, so a collective can never steal
//! a user message and vice versa.

/// High bit marks collective-internal messages.
const COLL_BIT: u64 = 1 << 63;
/// Maximum user tag value.
pub const MAX_USER_TAG: u64 = COLL_BIT - 1;

/// Encode a user tag.
#[inline]
pub fn user(tag: u64) -> u64 {
    assert!(tag <= MAX_USER_TAG, "user tag {tag} out of range");
    tag
}

/// Encode a collective-internal tag from the collective sequence number and
/// the algorithm step.
#[inline]
pub fn collective(seq: u64, step: u32) -> u64 {
    // 2^23 steps per collective is far beyond any tree depth we run.
    COLL_BIT | (seq << 23) | step as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_are_disjoint() {
        assert_ne!(user(0), collective(0, 0));
        assert_eq!(user(5), 5);
        assert!(collective(0, 0) & COLL_BIT != 0);
    }

    #[test]
    fn collective_tags_distinct_by_seq_and_step() {
        assert_ne!(collective(1, 0), collective(2, 0));
        assert_ne!(collective(1, 0), collective(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_user_tag_rejected() {
        user(MAX_USER_TAG + 1);
    }
}
