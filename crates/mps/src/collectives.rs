//! Collective operations, implemented as real message algorithms over the
//! point-to-point layer so that their simulated cost *emerges* from the
//! network model instead of being asserted analytically:
//!
//! * barrier — dissemination (⌈log₂P⌉ rounds)
//! * bcast / reduce / gather — binomial trees
//! * allreduce / allgather — reduce+bcast / gather+bcast
//! * scan / exscan — Hillis–Steele recursive doubling
//! * alltoallv — pairwise exchange (P−1 rounds)
//!
//! Reduction trees are fixed, so floating-point combines happen in a
//! deterministic order and repeated runs are bit-identical.

use std::any::Any;

use ppm_simnet::WireSize;

use crate::comm::Comm;
use crate::tags;

impl Comm<'_> {
    fn next_coll(&mut self) -> u64 {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        seq
    }

    /// Dissemination barrier across all ranks.
    pub fn barrier(&mut self) {
        let seq = self.next_coll();
        let p = self.size();
        let me = self.rank();
        let mut step = 0u32;
        let mut d = 1usize;
        while d < p {
            let to = (me + d) % p;
            let from = (me + p - d) % p;
            self.send_raw(to, tags::collective(seq, step), ());
            let () = self.recv_raw(from, tags::collective(seq, step));
            d <<= 1;
            step += 1;
        }
        // Mark the barrier on this rank's counters (base ctx access via a
        // zero-cost charge).
        self.note_barrier();
    }

    /// Broadcast `value` from `root` (only the root's `Some` is used) to all
    /// ranks via a binomial tree.
    pub fn bcast<T>(&mut self, root: usize, value: Option<T>) -> T
    where
        T: Any + Send + Clone + WireSize,
    {
        let seq = self.next_coll();
        let p = self.size();
        let me = self.rank();
        let rel = (me + p - root) % p;

        let mut have: Option<T> = if rel == 0 {
            Some(value.expect("bcast root must supply a value"))
        } else {
            None
        };

        // Receive phase: find the bit where we hang off the tree.
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src = (rel - mask + root) % p;
                have = Some(self.recv_raw(src, tags::collective(seq, 0)));
                break;
            }
            mask <<= 1;
        }
        // Send phase: fan out to our subtree, largest child first.
        let v = have.expect("bcast tree covers every rank");
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst = (rel + mask + root) % p;
                self.send_raw(dst, tags::collective(seq, 0), v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Reduce every rank's `value` with `op` onto `root` via a binomial
    /// tree. Non-roots get `None`.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Any + Send + WireSize,
        F: Fn(T, T) -> T,
    {
        let seq = self.next_coll();
        let p = self.size();
        let me = self.rank();
        let rel = (me + p - root) % p;

        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let peer_rel = rel | mask;
                if peer_rel < p {
                    let src = (peer_rel + root) % p;
                    let other: T = self.recv_raw(src, tags::collective(seq, 0));
                    // Lower relative rank on the left keeps the combine
                    // order deterministic and rank-ordered.
                    acc = op(acc, other);
                }
            } else {
                let dst = ((rel & !mask) + root) % p;
                self.send_raw(dst, tags::collective(seq, 0), acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduction whose result every rank receives (reduce to 0 + bcast).
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Any + Send + Clone + WireSize,
        F: Fn(T, T) -> T,
    {
        let r = self.reduce(0, value, op);
        self.bcast(0, r)
    }

    /// Exclusive prefix combine: rank r gets `op` over ranks `0..r`
    /// (`None` on rank 0). Hillis–Steele recursive doubling; `op` must be
    /// associative and commutative.
    pub fn exscan<T, F>(&mut self, value: T, op: F) -> Option<T>
    where
        T: Any + Send + Clone + WireSize,
        F: Fn(T, T) -> T,
    {
        let seq = self.next_coll();
        let p = self.size();
        let me = self.rank();

        let mut partial = value;
        let mut below: Option<T> = None;
        let mut d = 1usize;
        let mut step = 0u32;
        while d < p {
            if me + d < p {
                self.send_raw(me + d, tags::collective(seq, step), partial.clone());
            }
            if me >= d {
                let v: T = self.recv_raw(me - d, tags::collective(seq, step));
                below = Some(match below {
                    None => v.clone(),
                    Some(b) => op(v.clone(), b),
                });
                partial = op(v, partial);
            }
            d <<= 1;
            step += 1;
        }
        below
    }

    /// Inclusive prefix combine: rank r gets `op` over ranks `0..=r`.
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Any + Send + Clone + WireSize,
        F: Fn(T, T) -> T,
    {
        match self.exscan(value.clone(), &op) {
            None => value,
            Some(below) => op(below, value),
        }
    }

    /// Gather every rank's `value` onto `root`, ordered by rank.
    pub fn gather<T>(&mut self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: Any + Send + WireSize,
    {
        let seq = self.next_coll();
        let p = self.size();
        let me = self.rank();
        let rel = (me + p - root) % p;

        let mut acc: Vec<(u64, T)> = vec![(me as u64, value)];
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let peer_rel = rel | mask;
                if peer_rel < p {
                    let src = (peer_rel + root) % p;
                    let mut other: Vec<(u64, T)> = self.recv_raw(src, tags::collective(seq, 0));
                    acc.append(&mut other);
                }
            } else {
                let dst = ((rel & !mask) + root) % p;
                self.send_raw(dst, tags::collective(seq, 0), acc);
                return None;
            }
            mask <<= 1;
        }
        acc.sort_by_key(|(r, _)| *r);
        debug_assert_eq!(acc.len(), p);
        Some(acc.into_iter().map(|(_, v)| v).collect())
    }

    /// Gather whose result every rank receives.
    pub fn allgather<T>(&mut self, value: T) -> Vec<T>
    where
        T: Any + Send + Clone + WireSize,
    {
        let g = self.gather(0, value);
        self.bcast(0, g)
    }

    /// Variable-size all-to-all: `sends[d]` goes to rank `d`; the result's
    /// slot `s` holds what rank `s` sent here. Pairwise exchange.
    pub fn alltoallv<T>(&mut self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Any + Send + WireSize,
    {
        let p = self.size();
        assert_eq!(sends.len(), p, "alltoallv needs one send list per rank");
        let seq = self.next_coll();
        let me = self.rank();

        let mut recvs: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        recvs[me] = std::mem::take(&mut sends[me]);
        for s in 1..p {
            let dst = (me + s) % p;
            let src = (me + p - s) % p;
            let out = std::mem::take(&mut sends[dst]);
            self.send_raw(dst, tags::collective(seq, s as u32), out);
            recvs[src] = self.recv_raw(src, tags::collective(seq, s as u32));
        }
        recvs
    }
}

#[cfg(test)]
mod tests {
    use crate::run;
    use ppm_simnet::MachineConfig;

    /// Machine shapes exercised by every collective test: single node,
    /// power-of-two and non-power-of-two rank counts, multi-core nodes.
    fn shapes() -> Vec<MachineConfig> {
        vec![
            MachineConfig::new(1, 1),
            MachineConfig::new(1, 4),
            MachineConfig::new(3, 1),
            MachineConfig::new(2, 4),
            MachineConfig::new(5, 3),
        ]
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        for cfg in shapes() {
            let report = run(cfg, |comm| {
                // Skew the ranks, then meet at the barrier.
                comm.charge_flops(1_000 * (comm.rank() as u64 + 1));
                let before_max = comm.config().core.flops(1_000 * comm.size() as u64);
                comm.barrier();
                (comm.now(), before_max)
            });
            for (now, before_max) in &report.results {
                assert!(
                    now >= before_max,
                    "rank clock {now} must pass the slowest pre-barrier clock {before_max}"
                );
            }
        }
    }

    #[test]
    fn bcast_delivers_root_value() {
        for cfg in shapes() {
            let p = cfg.total_cores() as usize;
            for root in [0, p - 1, p / 2] {
                let report = run(cfg, |comm| {
                    let v = if comm.rank() == root {
                        Some(vec![root as u64, 42])
                    } else {
                        None
                    };
                    comm.bcast(root, v)
                });
                for r in report.results {
                    assert_eq!(r, vec![root as u64, 42]);
                }
            }
        }
    }

    #[test]
    fn reduce_sums_ranks() {
        for cfg in shapes() {
            let p = cfg.total_cores() as usize;
            let expect = (p * (p - 1) / 2) as u64;
            let report = run(cfg, |comm| comm.reduce(0, comm.rank() as u64, |a, b| a + b));
            assert_eq!(report.results[0], Some(expect));
            for r in &report.results[1..] {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn allreduce_min_and_sum() {
        for cfg in shapes() {
            let p = cfg.total_cores() as usize;
            let report = run(cfg, |comm| {
                let sum = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
                let min = comm.allreduce(comm.rank() as i64 - 5, i64::min);
                (sum, min)
            });
            for (sum, min) in report.results {
                assert_eq!(sum, (p * (p + 1) / 2) as u64);
                assert_eq!(min, -5);
            }
        }
    }

    #[test]
    fn scan_and_exscan_prefixes() {
        for cfg in shapes() {
            let report = run(cfg, |comm| {
                let inc = comm.scan(comm.rank() as u64 + 1, |a, b| a + b);
                let exc = comm.exscan(comm.rank() as u64 + 1, |a, b| a + b);
                (inc, exc)
            });
            for (r, (inc, exc)) in report.results.iter().enumerate() {
                let expect_inc = ((r + 1) * (r + 2) / 2) as u64;
                assert_eq!(*inc, expect_inc, "inclusive scan at rank {r}");
                let expect_exc = if r == 0 {
                    None
                } else {
                    Some((r * (r + 1) / 2) as u64)
                };
                assert_eq!(*exc, expect_exc, "exclusive scan at rank {r}");
            }
        }
    }

    #[test]
    fn gather_and_allgather_order_by_rank() {
        for cfg in shapes() {
            let p = cfg.total_cores() as usize;
            let report = run(cfg, |comm| {
                let g = comm.gather(1 % p, comm.rank() as u64 * 3);
                let ag = comm.allgather(comm.rank() as u64 * 3);
                (g, ag)
            });
            let expect: Vec<u64> = (0..p as u64).map(|r| r * 3).collect();
            for (r, (g, ag)) in report.results.into_iter().enumerate() {
                assert_eq!(ag, expect);
                if r == 1 % p {
                    assert_eq!(g, Some(expect.clone()));
                } else {
                    assert_eq!(g, None);
                }
            }
        }
    }

    #[test]
    fn alltoallv_routes_every_list() {
        for cfg in shapes() {
            let p = cfg.total_cores() as usize;
            let report = run(cfg, |comm| {
                let me = comm.rank();
                // Send to rank d a list [me, d] of length (d % 3).
                let sends: Vec<Vec<u64>> =
                    (0..p).map(|d| vec![(me * 100 + d) as u64; d % 3]).collect();
                comm.alltoallv(sends)
            });
            for (me, recvs) in report.results.into_iter().enumerate() {
                assert_eq!(recvs.len(), p);
                for (s, list) in recvs.into_iter().enumerate() {
                    assert_eq!(list, vec![(s * 100 + me) as u64; me % 3]);
                }
            }
        }
    }

    #[test]
    fn collectives_compose_without_tag_collisions() {
        let report = run(MachineConfig::new(2, 2), |comm| {
            let mut acc = 0u64;
            for i in 0..10 {
                acc += comm.allreduce(i + comm.rank() as u64, |a, b| a + b);
                comm.barrier();
            }
            acc
        });
        // sum over i of (4i + 0+1+2+3) = 4*45/... : per round 4i+6.
        let expect: u64 = (0..10).map(|i| 4 * i + 6).sum();
        for r in report.results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn determinism_bit_identical_runs() {
        let go = || {
            run(MachineConfig::new(3, 2), |comm| {
                let x = comm.allreduce(0.1 * (comm.rank() as f64 + 1.0), |a, b| a + b);
                comm.barrier();
                let y = comm.scan(x, |a, b| a + b);
                (x.to_bits(), y.to_bits(), comm.now())
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan(), b.makespan());
    }
}
