//! Point-to-point communication with MPI-style tag matching.

use std::any::Any;
use std::collections::VecDeque;

use ppm_simnet::{EndpointCtx, Message, SimTime, WireSize};

use crate::tags;

/// Wildcard for [`Comm::recv_any`]-style source matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match a specific sender rank.
    Rank(usize),
    /// Match any sender.
    Any,
}

/// Per-rank communicator, the MPI-like face of a simulated endpoint.
///
/// Each rank models one *core* of the machine (the paper runs MPI with one
/// process per core, §4.5), so off-node traffic pays the NIC-sharing factor
/// `cores_per_node`, while same-node traffic takes the shared-memory path —
/// which still costs per-message overhead, the paper's "intra-node
/// communication overhead" (no SmartMap, §4.5 footnote).
pub struct Comm<'a> {
    ctx: &'a mut EndpointCtx,
    /// Received-but-unmatched messages, in arrival order.
    pending: VecDeque<Message>,
    /// Sequence number for collective operations (see `collectives`).
    pub(crate) coll_seq: u64,
}

impl<'a> Comm<'a> {
    /// Wrap an endpoint context.
    pub fn new(ctx: &'a mut EndpointCtx) -> Self {
        Comm {
            ctx,
            pending: VecDeque::new(),
            coll_seq: 0,
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.ctx.id()
    }

    /// Total ranks in the job.
    #[inline]
    pub fn size(&self) -> usize {
        self.ctx.num_endpoints()
    }

    /// Node hosting this rank.
    #[inline]
    pub fn node(&self) -> u32 {
        self.ctx.config.node_of_rank(self.rank() as u32)
    }

    /// Machine description.
    #[inline]
    pub fn config(&self) -> ppm_simnet::MachineConfig {
        self.ctx.config
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ctx.clock.now()
    }

    /// Charge `n` floating-point operations to this rank.
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.ctx.counters.flops += n;
        self.ctx
            .clock
            .advance_compute(self.ctx.config.core.flops(n));
    }

    /// Charge `n` memory operations to this rank.
    #[inline]
    pub fn charge_mem_ops(&mut self, n: u64) {
        self.ctx.counters.mem_ops += n;
        self.ctx
            .clock
            .advance_compute(self.ctx.config.core.mem_ops(n));
    }

    /// Event counters (for verification in tests and benches).
    #[inline]
    pub fn counters(&self) -> ppm_simnet::Counters {
        self.ctx.counters
    }

    /// Count a completed barrier.
    #[inline]
    pub(crate) fn note_barrier(&mut self) {
        self.ctx.counters.barriers += 1;
    }

    /// Final clock (for reports).
    #[inline]
    pub fn clock(&self) -> ppm_simnet::Clock {
        self.ctx.clock
    }

    fn is_intra(&self, peer: usize) -> bool {
        self.ctx.config.same_node(self.rank() as u32, peer as u32)
    }

    /// Send `value` to rank `dst` with a user `tag`. Buffered (MPI_Bsend
    /// flavour): returns as soon as the sender-side cost is charged.
    pub fn send<T>(&mut self, dst: usize, tag: u64, value: T)
    where
        T: Any + Send + WireSize,
    {
        self.send_raw(dst, tags::user(tag), value);
    }

    pub(crate) fn send_raw<T>(&mut self, dst: usize, tag: u64, value: T)
    where
        T: Any + Send + WireSize,
    {
        let bytes = value.wire_size();
        let intra = self.is_intra(dst);
        let cfg = self.ctx.config;
        // One rank per core: off-node bytes contend with the node's other
        // cores for the NIC.
        let nic_share = if intra { 1 } else { cfg.cores_per_node };
        self.ctx.clock.advance_comm(cfg.net.send_cpu(bytes, intra));
        let ts = self.ctx.clock.now() + cfg.net.wire_time(bytes, intra, nic_share);
        self.ctx.counters.msgs_sent += 1;
        self.ctx.counters.bytes_sent += bytes as u64;
        self.ctx
            .net
            .send(Message::new(self.rank(), dst, tag, ts, bytes, value));
    }

    /// Blocking receive of a message from `src` with user `tag`.
    pub fn recv<T>(&mut self, src: usize, tag: u64) -> T
    where
        T: Any + Send,
    {
        self.recv_matched(Source::Rank(src), tags::user(tag)).1
    }

    /// Blocking receive matching any source; returns `(src, value)`.
    pub fn recv_any<T>(&mut self, tag: u64) -> (usize, T)
    where
        T: Any + Send,
    {
        self.recv_matched(Source::Any, tags::user(tag))
    }

    /// Blocking receive with an explicit source selector (MPI's
    /// `MPI_ANY_SOURCE` style); returns `(src, value)`.
    pub fn recv_from<T>(&mut self, src: Source, tag: u64) -> (usize, T)
    where
        T: Any + Send,
    {
        self.recv_matched(src, tags::user(tag))
    }

    pub(crate) fn recv_raw<T>(&mut self, src: usize, tag: u64) -> T
    where
        T: Any + Send,
    {
        self.recv_matched(Source::Rank(src), tag).1
    }

    fn recv_matched<T>(&mut self, src: Source, tag: u64) -> (usize, T)
    where
        T: Any + Send,
    {
        // Check messages that arrived earlier but did not match then.
        if let Some(pos) = self.pending.iter().position(|m| {
            m.tag == tag
                && match src {
                    Source::Rank(r) => m.src == r,
                    Source::Any => true,
                }
        }) {
            let msg = self.pending.remove(pos).expect("position is valid");
            return self.accept(msg);
        }
        loop {
            let msg = self.ctx.net.recv();
            let matches = msg.tag == tag
                && match src {
                    Source::Rank(r) => msg.src == r,
                    Source::Any => true,
                };
            if matches {
                return self.accept(msg);
            }
            self.pending.push_back(msg);
        }
    }

    /// Account for a matched message and unwrap its payload.
    fn accept<T: Any>(&mut self, msg: Message) -> (usize, T) {
        let cfg = self.ctx.config;
        let intra = self.is_intra(msg.src);
        self.ctx.clock.wait_until(msg.ts);
        self.ctx
            .clock
            .advance_comm(cfg.net.recv_cpu(msg.bytes, intra));
        self.ctx.counters.msgs_recv += 1;
        self.ctx.counters.bytes_recv += msg.bytes as u64;
        (msg.src, msg.take())
    }

    /// Combined send-then-receive with the same peer-symmetric tag, the
    /// usual building block for pairwise exchange steps.
    pub fn sendrecv<T, U>(&mut self, dst: usize, src: usize, tag: u64, value: T) -> U
    where
        T: Any + Send + WireSize,
        U: Any + Send,
    {
        self.send(dst, tag, value);
        self.recv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use ppm_simnet::MachineConfig;

    #[test]
    fn basic_send_recv() {
        let report = run(MachineConfig::new(2, 1), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                v.iter().sum()
            }
        });
        assert_eq!(report.results[1], 3.0);
    }

    #[test]
    fn out_of_order_tags_match_correctly() {
        let report = run(MachineConfig::new(2, 1), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                0
            } else {
                // Receive in the opposite order of sending.
                let b: u64 = comm.recv(0, 2);
                let a: u64 = comm.recv(0, 1);
                a * 100 + b
            }
        });
        assert_eq!(report.results[1], 1020);
    }

    #[test]
    fn recv_any_reports_source() {
        let report = run(MachineConfig::new(3, 1), |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (src, v): (usize, u64) = comm.recv_any(5);
                    seen.push((src, v));
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(0, 5, comm.rank() as u64 * 11);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![(1, 11), (2, 22)]);
    }

    #[test]
    fn receiving_advances_clock_past_arrival() {
        let report = run(MachineConfig::new(2, 1), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 1000]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.now()
        });
        let cfg = MachineConfig::new(2, 1);
        // Receiver must be at least latency + bytes*gap + overheads.
        let min = cfg.net.latency + cfg.net.gap_per_byte.scale(1008);
        assert!(report.results[1] > min);
        // Sender only paid its overhead.
        assert_eq!(report.results[0], cfg.net.overhead);
    }

    #[test]
    fn intra_node_messages_skip_latency() {
        // Two ranks on one quad-core node vs two ranks on separate nodes.
        let t_intra = run(MachineConfig::new(1, 4), |comm| {
            match comm.rank() {
                0 => comm.send(1, 0, vec![0u8; 4096]),
                1 => {
                    let _: Vec<u8> = comm.recv(0, 0);
                }
                _ => {}
            }
            comm.now()
        })
        .results[1];
        let t_inter = run(MachineConfig::new(2, 4), |comm| {
            match comm.rank() {
                0 => comm.send(4, 0, vec![0u8; 4096]),
                4 => {
                    let _: Vec<u8> = comm.recv(0, 0);
                }
                _ => {}
            }
            comm.now()
        })
        .results[4];
        assert!(
            t_intra < t_inter,
            "intra-node {t_intra} should beat inter-node {t_inter}"
        );
    }

    #[test]
    fn recv_from_selects_source() {
        let report = run(MachineConfig::new(3, 1), |comm| {
            if comm.rank() == 0 {
                // Both peers send; pull rank 2's first explicitly, then any.
                let (s2, v2): (usize, u64) = comm.recv_from(Source::Rank(2), 4);
                let (s1, v1): (usize, u64) = comm.recv_from(Source::Any, 4);
                vec![(s2, v2), (s1, v1)]
            } else {
                comm.send(0, 4, comm.rank() as u64 * 7);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![(2, 14), (1, 7)]);
    }

    #[test]
    fn sendrecv_pairwise() {
        let report = run(MachineConfig::new(2, 1), |comm| {
            let peer = 1 - comm.rank();
            let got: u64 = comm.sendrecv(peer, peer, 3, comm.rank() as u64);
            got
        });
        assert_eq!(report.results, vec![1, 0]);
    }

    #[test]
    fn charge_flops_advances_compute() {
        let report = run(MachineConfig::new(1, 1), |comm| {
            comm.charge_flops(1000);
            (comm.now(), comm.counters().flops)
        });
        let cfg = MachineConfig::new(1, 1);
        assert_eq!(report.results[0], (cfg.core.flops(1000), 1000));
    }
}
